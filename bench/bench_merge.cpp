//===- bench_merge.cpp - Parallel flat-merge and fallback benchmarks -------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The PR 6 merge benchmarks, two families:
//
//  dense_*: the dense 50%-interleaved union shape that regressed under the
//  streamed galloping merge (winner runs of length ~1 defeat galloping, and
//  byte-coded leaves pay per-entry encode overhead on top). Measured three
//  ways per (B, encoding): the run-length-adaptive fast path (default), the
//  fast path with the fallback probe disabled (merge_probe_window=0 — the
//  pre-PR6 behavior), and the temp_buf array base case. The fallback row
//  must be >= 1.0x of the array row for byte-coded leaves.
//
//  scale_*: one large flat-by-flat union driven through tree_ops::
//  parallel_flat_merge (kappa raised so the whole operands reach the flat
//  base case), with the quantile split disabled (parallel_merge_grain=0 ->
//  one sequential streamed merge, the PR 5 single-worker encode bottleneck)
//  vs enabled (default grain -> up to kMaxMergeChunks chunk merges under
//  parDo forks). Run under CPAM_NUM_THREADS=1/2/4 to record the scaling
//  profile; chunk boundaries depend only on operand sizes, so the output
//  tree is identical across all of them.
//
// Emits machine-readable JSON with --json=<path> (cpam-perf-v1 schema).
// Deterministic inputs, median of --reps runs after one warmup.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <vector>

#include "bench/bench_common.h"
#include "src/api/pam_set.h"
#include "src/encoding/diff_encoder.h"
#include "src/encoding/gamma_encoder.h"
#include "src/obs/metrics.h"

using namespace cpam;
using namespace cpam::bench;

namespace {

/// Median of \p Reps timed runs with an untimed prepare step before each
/// (result teardown must not dilute the measured merge). One warmup run.
template <class Prep, class Body>
double medianPrepared(int Reps, const Prep &Prepare, const Body &Run) {
  Prepare();
  Run();
  std::vector<double> Ts(static_cast<size_t>(Reps));
  for (int I = 0; I < Reps; ++I) {
    Prepare();
    Timer T;
    Run();
    Ts[static_cast<size_t>(I)] = T.elapsed();
  }
  std::sort(Ts.begin(), Ts.end());
  return Ts[Ts.size() / 2];
}

/// RAII save/restore for the runtime tuning knobs this binary flips.
template <class T> class Restore {
public:
  explicit Restore(T &Ref) : Ref(Ref), Saved(Ref) {}
  ~Restore() { Ref = Saved; }
  const T &saved() const { return Saved; }
  Restore(const Restore &) = delete;
  Restore &operator=(const Restore &) = delete;

private:
  T &Ref;
  T Saved;
};

/// Dense 50%-interleaved flat unions over many independent leaf-sized
/// pairs: KA = Base+2I, KB = Base+2I+(I%2?0:1), so half the keys collide
/// and the other half alternate sides — average winner-run length ~1.
template <int B, template <class> class Enc = raw_encoder>
void runDense(size_t NPairs, JsonReport &Report, const char *Tag = "") {
  using Set = pam_set<uint64_t, B, Enc>;
  constexpr size_t kLeaf = 2 * B; // Entries per operand.

  std::printf("-- dense interleaved B=%d%s (pairs=%zu, %zu entries/operand) "
              "--\n",
              B, Tag, NPairs, kLeaf);

  std::vector<Set> As(NPairs), Bs(NPairs);
  for (size_t P = 0; P < NPairs; ++P) {
    uint64_t Base = P * 8 * kLeaf;
    std::vector<uint64_t> KA(kLeaf), KB(kLeaf);
    for (size_t I = 0; I < kLeaf; ++I) {
      KA[I] = Base + 2 * I;
      KB[I] = Base + 2 * I + (I % 2 ? 0 : 1);
    }
    As[P] = Set::from_sorted(KA);
    std::sort(KB.begin(), KB.end());
    Bs[P] = Set(KB);
  }

  Restore<bool> GFast(Set::ops::flat_fastpath());
  Restore<size_t> GProbe(Set::ops::merge_probe_window());
  size_t Ops = NPairs * 2 * kLeaf;
  std::vector<Set> Outs(NPairs);
  uint64_t Sink = 0;
  auto TimeUnion = [&] {
    return medianPrepared(
        g_reps, [&] { std::fill(Outs.begin(), Outs.end(), Set()); },
        [&] {
          for (size_t P = 0; P < NPairs; ++P) {
            Outs[P] = Set::map_union(As[P], Bs[P]);
            Sink ^= Outs[P].size();
          }
        });
  };

  struct Mode {
    const char *Name;
    bool Fast;
    size_t ProbeW; // ~0 = keep default.
  } Modes[] = {{"fallback", true, size_t(-1)},
               {"nofallback", true, 0},
               {"buf", false, size_t(-1)}};
  double Times[3];
  char Name[64];
  for (int M = 0; M < 3; ++M) {
    Set::ops::flat_fastpath() = Modes[M].Fast;
    Set::ops::merge_probe_window() =
        Modes[M].ProbeW == size_t(-1) ? GProbe.saved() : Modes[M].ProbeW;
    Times[M] = TimeUnion();
    std::snprintf(Name, sizeof(Name), "dense_union%s_%s", Tag, Modes[M].Name);
    Report.add(Name, B, Ops, Times[M]);
    print_time_row(Name, Times[M], Times[M]);
  }
  if (Sink == 0xdeadbeef)
    std::printf("(sink)\n");
  std::printf("   fallback vs buf %.2fx, vs nofallback %.2fx\n",
              Times[0] > 0 ? Times[2] / Times[0] : 0.0,
              Times[0] > 0 ? Times[1] / Times[0] : 0.0);
}

/// One large flat-by-flat union through the quantile-split parallel merge:
/// kappa is raised past 2N so map_union flattens both whole trees and runs
/// a single merge_arrays call, measured with the chunk split disabled
/// (grain=0: the sequential streamed merge) and at the default grain (up
/// to kMaxMergeChunks chunk merges forked via parDo).
template <int B, template <class> class Enc = raw_encoder>
void runScale(size_t N, JsonReport &Report, const char *Tag = "",
              bool Runs = false) {
  using Set = pam_set<uint64_t, B, Enc>;

  std::printf("-- merge scaling B=%d%s%s (n=%zu per side, threads=%d) --\n",
              B, Tag, Runs ? " [runs]" : "", N, par::num_workers());

  // Entry-interleaved (runs of length 1: every chunk merge bails to the
  // array path via the probe) or block-interleaved in 512-entry runs (the
  // galloping streamed merge runs inside every chunk — the shape whose
  // encode was the single-worker bottleneck).
  std::vector<uint64_t> KA(N), KB(N);
  constexpr size_t kBlk = 512;
  for (size_t I = 0; I < N; ++I) {
    if (Runs) {
      size_t Bl = I / kBlk, Off = I % kBlk;
      KA[I] = (2 * Bl) * kBlk + Off;
      KB[I] = (2 * Bl + 1) * kBlk + Off;
    } else {
      KA[I] = 2 * I;
      KB[I] = 2 * I + 1;
    }
  }
  Set A = Set::from_sorted(KA), Bb = Set::from_sorted(KB);

  Restore<size_t> GKappa(Set::ops::kappa());
  Restore<size_t> GGrain(Set::ops::parallel_merge_grain());
  Set::ops::kappa() = size_t(1) << 40;
  size_t Chunks = Set::ops::merge_chunk_count(2 * N, N);

  Set Out;
  uint64_t Sink = 0;
  char Name[64];
  double Times[2];
  struct Mode {
    const char *Name;
    size_t Grain; // ~0 = keep default.
  } Modes[] = {{"seq", 0}, {"par", size_t(-1)}};
  for (int M = 0; M < 2; ++M) {
    Set::ops::parallel_merge_grain() =
        Modes[M].Grain == size_t(-1) ? GGrain.saved() : Modes[M].Grain;
    Times[M] = medianPrepared(
        g_reps, [&] { Out = Set(); },
        [&] {
          Out = Set::map_union(A, Bb);
          Sink ^= Out.size();
        });
    std::snprintf(Name, sizeof(Name), "scale_union%s%s_%s", Tag,
                  Runs ? "_runs" : "", Modes[M].Name);
    Report.add(Name, B, 2 * N, Times[M]);
    print_time_row(Name, Times[M], Times[M]);
  }
  if (Sink == 0xdeadbeef)
    std::printf("(sink)\n");
  std::printf("   chunks=%zu  par vs seq %.2fx\n", Chunks,
              Times[1] > 0 ? Times[0] / Times[1] : 0.0);
  Out = Set();
}

} // namespace

int main(int argc, char **argv) {
  size_t N = arg_size(argc, argv, "n", 1000000);
  g_reps = std::max(1, static_cast<int>(arg_size(argc, argv, "reps", 3)));
  std::string JsonPath = arg_str(argc, argv, "json");

  print_header("merge: dense-interleaved fallback + parallel scaling");
  std::printf("n=%zu reps=%d pool_alloc=%s\n", N, g_reps,
              pool_enabled() ? "on" : "off");

  JsonReport Report("bench_merge", N, g_reps);
  // Clean telemetry window: the metrics section at the bottom then covers
  // exactly the rows above it (graph build included).
  obs::reset_all();

  // Dense-interleaved regression rows: the same pair volume as perf_smoke's
  // flat rows, at a small and the default block size for each encoding.
  size_t Pairs = std::max<size_t>(1, N / 512);
  runDense<8>(Pairs * 16, Report);
  runDense<8, diff_encoder>(Pairs * 16, Report, "_diff");
  runDense<8, gamma_encoder>(Pairs * 16, Report, "_gamma");
  runDense<128>(Pairs, Report);
  runDense<128, diff_encoder>(Pairs, Report, "_diff");
  runDense<128, gamma_encoder>(Pairs, Report, "_gamma");

  // Parallel quantile-split scaling rows (thread count comes from the
  // environment; CI runs this binary at CPAM_NUM_THREADS=1/2/4).
  runScale<128>(N, Report);
  runScale<128, diff_encoder>(N, Report, "_diff");
  runScale<128>(N, Report, "", /*Runs=*/true);
  runScale<128, diff_encoder>(N, Report, "_diff", /*Runs=*/true);

  Report.add_section("metrics", obs::export_json());
  Report.write(JsonPath);
  return 0;
}
