//===- bench_common.h - Shared helpers for the paper benchmarks ------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the bench binaries: command-line scale parsing,
/// median-of-3 timing with a sequential (T1) mode, and row printing in the
/// shape of the paper's tables. Every binary accepts `--n=<count>` (problem
/// size) and `--reps=<r>`.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_BENCH_BENCH_COMMON_H
#define CPAM_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/parallel/scheduler.h"
#include "src/util/timer.h"

namespace cpam {
namespace bench {

/// Parses --name=value style size_t flags.
inline size_t arg_size(int argc, char **argv, const char *Name, size_t Def) {
  std::string Prefix = std::string("--") + Name + "=";
  for (int I = 1; I < argc; ++I)
    if (std::strncmp(argv[I], Prefix.c_str(), Prefix.size()) == 0)
      return std::strtoull(argv[I] + Prefix.size(), nullptr, 10);
  return Def;
}

inline int g_reps = 3;

/// Median-of-g_reps parallel wall time in seconds.
template <class F> double time_par(const F &f) {
  return median_time(f, g_reps);
}

/// Median single-thread time: runs the same parallel code with forking
/// disabled (honest T1 under the work/span model).
template <class F> double time_seq(const F &f) {
  par::set_sequential(true);
  double T = median_time(f, g_reps);
  par::set_sequential(false);
  return T;
}

inline void print_header(const char *Title) {
  std::printf("\n=== %s ===\n", Title);
  std::printf("(threads=%d)\n", par::num_workers());
}

/// One row in paper Table 2 style: name, T1, Tp, speedup.
inline void print_time_row(const char *Name, double T1, double Tp) {
  std::printf("%-28s T1=%9.4fs  Tp=%9.4fs  speedup=%6.2fx\n", Name, T1, Tp,
              Tp > 0 ? T1 / Tp : 0.0);
}

inline void print_size_row(const char *Name, size_t Bytes, size_t Baseline) {
  std::printf("%-28s %10.3f MB  (%.2fx of smallest)\n", Name,
              Bytes / (1024.0 * 1024.0),
              Baseline ? static_cast<double>(Bytes) / Baseline : 0.0);
}

} // namespace bench
} // namespace cpam

#endif // CPAM_BENCH_BENCH_COMMON_H
