//===- bench_common.h - Shared helpers for the paper benchmarks ------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the bench binaries: command-line scale parsing,
/// median-of-3 timing with a sequential (T1) mode, and row printing in the
/// shape of the paper's tables. Every binary accepts `--n=<count>` (problem
/// size) and `--reps=<r>`.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_BENCH_BENCH_COMMON_H
#define CPAM_BENCH_BENCH_COMMON_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/allocator.h"
#include "src/parallel/scheduler.h"
#include "src/util/timer.h"

namespace cpam {
namespace bench {

/// Parses --name=value style size_t flags.
inline size_t arg_size(int argc, char **argv, const char *Name, size_t Def) {
  std::string Prefix = std::string("--") + Name + "=";
  for (int I = 1; I < argc; ++I)
    if (std::strncmp(argv[I], Prefix.c_str(), Prefix.size()) == 0)
      return std::strtoull(argv[I] + Prefix.size(), nullptr, 10);
  return Def;
}

inline int g_reps = 3;

/// Median-of-g_reps parallel wall time in seconds.
template <class F> double time_par(const F &f) {
  return median_time(f, g_reps);
}

/// Median single-thread time: runs the same parallel code with forking
/// disabled (honest T1 under the work/span model).
template <class F> double time_seq(const F &f) {
  par::set_sequential(true);
  double T = median_time(f, g_reps);
  par::set_sequential(false);
  return T;
}

inline void print_header(const char *Title) {
  std::printf("\n=== %s ===\n", Title);
  std::printf("(threads=%d)\n", par::num_workers());
}

/// One row in paper Table 2 style: name, T1, Tp, speedup.
inline void print_time_row(const char *Name, double T1, double Tp) {
  std::printf("%-28s T1=%9.4fs  Tp=%9.4fs  speedup=%6.2fx\n", Name, T1, Tp,
              Tp > 0 ? T1 / Tp : 0.0);
}

inline void print_size_row(const char *Name, size_t Bytes, size_t Baseline) {
  std::printf("%-28s %10.3f MB  (%.2fx of smallest)\n", Name,
              Bytes / (1024.0 * 1024.0),
              Baseline ? static_cast<double>(Bytes) / Baseline : 0.0);
}

/// Parses --name=string flags (empty string when absent).
inline std::string arg_str(int argc, char **argv, const char *Name) {
  std::string Prefix = std::string("--") + Name + "=";
  for (int I = 1; I < argc; ++I)
    if (std::strncmp(argv[I], Prefix.c_str(), Prefix.size()) == 0)
      return std::string(argv[I] + Prefix.size());
  return std::string();
}

/// Accumulates benchmark rows and writes them as a machine-readable JSON
/// document (the BENCH_*.json format recorded in the repo: one object with
/// a config block and a flat result array; throughput in million
/// operations per second).
class JsonReport {
public:
  /// \p ExtraConfig, when nonempty, is spliced verbatim into the config
  /// object (e.g. "\"lockfree_sched\": true").
  JsonReport(const char *Tool, size_t N, int Reps,
             const std::string &ExtraConfig = std::string()) {
    char Buf[384];
    std::snprintf(Buf, sizeof(Buf),
                  "  \"schema\": \"cpam-perf-v1\",\n"
                  "  \"tool\": \"%s\",\n"
                  "  \"config\": {\"threads\": %d, \"pool_alloc\": %s, "
                  "\"n\": %zu, \"reps\": %d%s%s}",
                  Tool, par::num_workers(), pool_enabled() ? "true" : "false",
                  N, Reps, ExtraConfig.empty() ? "" : ", ",
                  ExtraConfig.c_str());
    Header = Buf;
  }

  /// Records one result row. \p B < 0 omits the block-size field.
  void add(const char *Bench, int B, size_t Ops, double Seconds) {
    char Buf[256];
    if (B >= 0)
      std::snprintf(Buf, sizeof(Buf),
                    "    {\"bench\": \"%s\", \"B\": %d, \"ops\": %zu, "
                    "\"seconds\": %.6f, \"mops\": %.3f}",
                    Bench, B, Ops, Seconds,
                    Seconds > 0 ? Ops / Seconds / 1e6 : 0.0);
    else
      std::snprintf(Buf, sizeof(Buf),
                    "    {\"bench\": \"%s\", \"ops\": %zu, "
                    "\"seconds\": %.6f, \"mops\": %.3f}",
                    Bench, Ops, Seconds,
                    Seconds > 0 ? Ops / Seconds / 1e6 : 0.0);
    Rows.push_back(Buf);
  }

  /// Records one count-valued row (telemetry totals like epoch pins or
  /// reclaim backlog, alongside the timed rows).
  void add_count(const char *Bench, uint64_t Value) {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "    {\"bench\": \"%s\", \"count\": %llu}", Bench,
                  static_cast<unsigned long long>(Value));
    Rows.push_back(Buf);
  }

  /// Adds an extra top-level section: \p JsonValue is spliced verbatim as
  /// the value of key \p Name (e.g. the pool-allocator telemetry array).
  void add_section(const char *Name, const std::string &JsonValue) {
    Sections.push_back(std::string("  \"") + Name + "\": " + JsonValue);
  }

  /// Writes the document to \p Path; no-op when Path is empty.
  void write(const std::string &Path) const {
    if (Path.empty())
      return;
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", Path.c_str());
      return;
    }
    std::fprintf(F, "{\n%s,\n", Header.c_str());
    for (const std::string &S : Sections)
      std::fprintf(F, "%s,\n", S.c_str());
    std::fprintf(F, "  \"results\": [\n");
    for (size_t I = 0; I < Rows.size(); ++I)
      std::fprintf(F, "%s%s\n", Rows[I].c_str(),
                   I + 1 < Rows.size() ? "," : "");
    std::fprintf(F, "  ]\n}\n");
    std::fclose(F);
    std::printf("wrote %s\n", Path.c_str());
  }

private:
  std::string Header;
  std::vector<std::string> Sections;
  std::vector<std::string> Rows;
};

} // namespace bench
} // namespace cpam

#endif // CPAM_BENCH_BENCH_COMMON_H
