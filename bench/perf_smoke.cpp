//===- perf_smoke.cpp - JSON-emitting performance smoke runner -------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The repo's recorded performance trajectory: a small, fixed workload over
// the four node-churn-heavy core operations — build from sorted input,
// union of two equal-size maps, multi_insert of a 10% batch, and point
// lookups — each at B=0 (the PAM baseline) and B=128 (the paper's default
// block size), plus flat-by-flat union/intersect/difference over leaf-sized
// operands with the streaming cursor fast path ON (flat_*_fast rows) vs the
// temp_buf array path (flat_*_buf rows). The flat rows run at B in {8, 128}
// for the raw, difference and gamma encodings; the union rows produce
// multi-leaf (~3B-entry) results, exercising the chunked leaf pipeline.
// The JSON additionally carries a pool_stats section with per-size-class
// occupancy columns from pool_allocator::stats(). Emits machine-readable
// JSON with --json=<path>; CI runs this on every push and uploads the file,
// and before/after snapshots are checked in as BENCH_<PR>.json.
// Deterministic inputs (fixed seed), median of --reps runs after one warmup.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <cinttypes>
#include <vector>

#include "bench/bench_common.h"
#include "src/api/pam_map.h"
#include "src/api/pam_set.h"
#include "src/encoding/diff_encoder.h"
#include "src/encoding/gamma_encoder.h"
#include "src/obs/metrics.h"
#include "src/parallel/random.h"

using namespace cpam;
using namespace cpam::bench;

namespace {

/// Median of \p Reps timed runs, with an untimed prepare step before each
/// (refilling moved-from inputs must not dilute the measured operation).
/// One untimed warmup run first.
template <class Prep, class Body>
double medianPrepared(int Reps, const Prep &Prepare, const Body &Run) {
  Prepare();
  Run();
  std::vector<double> Ts(static_cast<size_t>(Reps));
  for (int I = 0; I < Reps; ++I) {
    Prepare();
    Timer T;
    Run();
    Ts[static_cast<size_t>(I)] = T.elapsed();
    if (std::getenv("CPAM_TRACE_REPS"))
      std::printf("      rep %d: %.4fs\n", I, Ts[static_cast<size_t>(I)]);
  }
  std::sort(Ts.begin(), Ts.end());
  return Ts[Ts.size() / 2];
}

template <int B> void runSuite(size_t N, JsonReport &Report) {
  using Map = pam_map<uint64_t, uint64_t, B>;
  using Entry = typename Map::entry_t;

  // Fixed-seed inputs: two interleaved sorted universes so the union has
  // genuine merge work, plus a random 10% batch.
  std::vector<Entry> Sorted(N);
  for (size_t I = 0; I < N; ++I)
    Sorted[I] = {2 * I, I};
  std::vector<Entry> SortedOdd(N);
  for (size_t I = 0; I < N; ++I)
    SortedOdd[I] = {2 * I + 1, I};
  Rng R(20260731);
  std::vector<Entry> Batch(N / 10);
  for (size_t I = 0; I < Batch.size(); ++I)
    Batch[I] = {R.next(4 * N), I};

  std::printf("-- B=%d --\n", B);

  // Long-lived operands are built first, on the cleanest heap the process
  // will ever have, so read benchmarks measure the representation rather
  // than whatever layout earlier churn left behind.
  Map Evens = Map::from_sorted(Sorted);
  Map Odds = Map::from_sorted(SortedOdd);

  // find: allocation-free reads (pool-insensitive by design).
  size_t Finds = N / 2;
  uint64_t Sink = 0;
  double TFind = medianPrepared(
      g_reps, [] {},
      [&] {
        Rng Q(7);
        uint64_t S = 0;
        for (size_t I = 0; I < Finds; ++I)
          if (auto V = Evens.find(2 * Q.next(N)))
            S += *V;
        Sink ^= S;
      });
  Report.add("find_random", B, Finds, TFind);
  print_time_row("find_random", TFind, TFind);
  if (Sink == 0xdeadbeef)
    std::printf("(sink)\n"); // Defeats dead-code elimination of the finds.

  // As in the paper's tables, timed regions cover the operation itself;
  // input refill and teardown of the previous result happen in the
  // untimed prepare step (teardown cost is measured by bench_alloc's
  // churn rows, which alloc *and* free).
  Map Out;
  std::vector<Entry> Scratch;

  // build_sorted: from_array_move node churn, nothing else.
  double TBuild = medianPrepared(
      g_reps,
      [&] {
        Out = Map();
        Scratch = Sorted;
      },
      [&] { Out = Map::from_sorted(std::move(Scratch)); });
  Report.add("build_sorted", B, N, TBuild);
  print_time_row("build_sorted", TBuild, TBuild);

  // union_equal: expose/unfold/fold churn across the whole output.
  double TUnion = medianPrepared(
      g_reps, [&] { Out = Map(); },
      [&] { Out = Map::map_union(Evens, Odds); });
  Report.add("union_equal", B, 2 * N, TUnion);
  print_time_row("union_equal", TUnion, TUnion);

  // multi_insert: batch sort + merge paths (includes sort, as in Fig. 15).
  double TMulti = medianPrepared(
      g_reps,
      [&] {
        Out = Map();
        Scratch = Batch;
      },
      [&] { Out = Evens.multi_insert(std::move(Scratch)); });
  Report.add("multi_insert", B, Batch.size(), TMulti);
  print_time_row("multi_insert", TMulti, TMulti);
  Out = Map();
}

/// Flat-by-flat set operations: many independent leaf-sized operand pairs,
/// measured with the streaming cursor fast path on (flat_*_fast) and with
/// the temp_buf array base case (flat_*_buf). At B=0 there are no flat
/// nodes, so both rows measure the same expose-path control. Two key
/// shapes: interleaved (50% overlap, so union, intersect and difference
/// all have real merge work and combine traffic) and — when \p Runs is
/// set — range-disjoint operands, the sorted-run/batch-append pattern the
/// galloping batch merge targets (union only; intersections of disjoint
/// ranges are empty). Union results (~3B-4B entries per pair) span
/// multiple leaves, driving the chunked streaming writer.
template <int B, template <class> class Enc = cpam::raw_encoder>
void runFlatOps(size_t NPairs, JsonReport &Report, const char *Tag = "",
                bool Runs = false) {
  using Set = pam_set<uint64_t, B, Enc>;
  constexpr size_t kLeaf = B > 0 ? 2 * B : 256; // Entries per operand.

  std::printf("-- flat ops B=%d%s%s (pairs=%zu, %zu entries/operand) --\n", B,
              Tag, Runs ? " [runs]" : "", NPairs, kLeaf);

  // Each pair lives in its own key window; within a window the sides share
  // every other key (interleaved shape) or occupy disjoint ranges (runs).
  std::vector<Set> As(NPairs), Bs(NPairs);
  for (size_t P = 0; P < NPairs; ++P) {
    uint64_t Base = P * 8 * kLeaf;
    std::vector<uint64_t> KA(kLeaf), KB(kLeaf);
    for (size_t I = 0; I < kLeaf; ++I) {
      KA[I] = Runs ? Base + I : Base + 2 * I;
      KB[I] = Runs ? Base + 3 * kLeaf + I
                   : Base + 2 * I + (I % 2 ? 0 : 1);
    }
    As[P] = Set::from_sorted(KA);
    std::sort(KB.begin(), KB.end());
    Bs[P] = Set(KB);
  }

  bool Saved = Set::ops::flat_fastpath();
  size_t Ops = NPairs * 2 * kLeaf; // Entries touched per run.
  char Name[64];
  std::vector<Set> Outs(NPairs);
  std::vector<const char *> Kinds = {"union", "intersect", "difference"};
  if (Runs)
    Kinds = {"union_runs"};
  for (const char *Kind : Kinds) {
    double Times[2];
    for (bool Fast : {false, true}) {
      Set::ops::flat_fastpath() = Fast;
      uint64_t Sink = 0;
      // Result teardown happens in the untimed prepare step, matching the
      // runSuite discipline (the timed region covers the operation only).
      double T = medianPrepared(
          g_reps, [&] { std::fill(Outs.begin(), Outs.end(), Set()); },
          [&] {
            for (size_t P = 0; P < NPairs; ++P) {
              Outs[P] = Kind[0] == 'u' ? Set::map_union(As[P], Bs[P])
                        : Kind[0] == 'i'
                            ? Set::map_intersect(As[P], Bs[P])
                            : Set::map_difference(As[P], Bs[P]);
              Sink ^= Outs[P].size();
            }
          });
      if (Sink == 0xdeadbeef)
        std::printf("(sink)\n");
      std::snprintf(Name, sizeof(Name), "flat_%s%s_%s", Kind, Tag,
                    Fast ? "fast" : "buf");
      Report.add(Name, B, Ops, T);
      print_time_row(Name, T, T);
      Times[Fast] = T;
    }
    std::printf("   %s%s: fast path %.2fx vs temp_buf\n", Kind, Tag,
                Times[1] > 0 ? Times[0] / Times[1] : 0.0);
  }
  Set::ops::flat_fastpath() = Saved;
}

/// Per-size-class pool occupancy after the whole run: allocation traffic,
/// outstanding blocks and batch/slab flow, printed and recorded as the
/// JSON pool_stats section (empty array when the pool is compiled out).
void dumpPoolStats(JsonReport &Report) {
  std::string Json = "[";
#if CPAM_POOL_ALLOC
  std::printf("\n-- pool occupancy per size class (nonzero classes) --\n");
  auto P = pool_allocator::stats();
  bool First = true;
  for (size_t C = 0; C < pool_allocator::kNumClasses; ++C) {
    if (P[C].Allocs == 0)
      continue;
    long long Live = static_cast<long long>(P[C].Allocs - P[C].Frees);
    std::printf("  class %2zu (%6zu B): allocs=%llu frees=%llu live=%lld "
                "refills=%llu drains=%llu carves=%llu\n",
                C, P[C].BlockBytes, (unsigned long long)P[C].Allocs,
                (unsigned long long)P[C].Frees, Live,
                (unsigned long long)P[C].RefillBatches,
                (unsigned long long)P[C].DrainBatches,
                (unsigned long long)P[C].SlabCarves);
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "%s\n    {\"block_bytes\": %zu, \"allocs\": %llu, "
                  "\"frees\": %llu, \"live\": %lld, \"refill_batches\": %llu, "
                  "\"drain_batches\": %llu, \"slab_carves\": %llu}",
                  First ? "" : ",", P[C].BlockBytes,
                  (unsigned long long)P[C].Allocs,
                  (unsigned long long)P[C].Frees, Live,
                  (unsigned long long)P[C].RefillBatches,
                  (unsigned long long)P[C].DrainBatches,
                  (unsigned long long)P[C].SlabCarves);
    Json += Buf;
    First = false;
  }
  if (!First)
    Json += "\n  ";
#endif
  Json += "]";
  Report.add_section("pool_stats", Json);
}

} // namespace

int main(int argc, char **argv) {
  size_t N = arg_size(argc, argv, "n", 1000000);
  g_reps = std::max(1, static_cast<int>(arg_size(argc, argv, "reps", 3)));
  std::string JsonPath = arg_str(argc, argv, "json");

  print_header("perf smoke: node-churn core ops");
  std::printf("n=%zu reps=%d pool_alloc=%s\n", N, g_reps,
              pool_enabled() ? "on" : "off");

  JsonReport Report("perf_smoke", N, g_reps);
  runSuite<0>(N, Report);
  runSuite<128>(N, Report);
  // Flat-by-flat base cases: ~N total entries per side across all pairs,
  // at a small and the default block size for all three encodings (the
  // union rows are multi-leaf: ~3B entries per result).
  size_t Pairs = std::max<size_t>(1, N / 512);
  runFlatOps<0>(Pairs, Report);
  runFlatOps<8>(Pairs * 16, Report);
  runFlatOps<8, diff_encoder>(Pairs * 16, Report, "_diff");
  runFlatOps<8, gamma_encoder>(Pairs * 16, Report, "_gamma");
  runFlatOps<128>(Pairs, Report);
  runFlatOps<128, diff_encoder>(Pairs, Report, "_diff");
  runFlatOps<128, gamma_encoder>(Pairs, Report, "_gamma");
  // Range-disjoint (sorted-run) unions: the batch-append pattern.
  runFlatOps<8>(Pairs * 16, Report, "", true);
  runFlatOps<8, diff_encoder>(Pairs * 16, Report, "_diff", true);
  runFlatOps<8, gamma_encoder>(Pairs * 16, Report, "_gamma", true);
  runFlatOps<128>(Pairs, Report, "", true);
  runFlatOps<128, diff_encoder>(Pairs, Report, "_diff", true);
  runFlatOps<128, gamma_encoder>(Pairs, Report, "_gamma", true);
  dumpPoolStats(Report);
  Report.add_section("metrics", obs::export_json());
  Report.write(JsonPath);
  return 0;
}
