//===- table2_micro.cpp - Table 2: map/aug-map microbenchmarks -------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 2: size, build, union (balanced + imbalanced),
// intersect, difference, map, reduce, filter, find, insert, multi-insert and
// range for PaC-trees (B=128), difference-encoded PaC-trees, and P-trees
// (PAM); plus the augmented-map rows (size, build, union, aug-range,
// aug-filter). Reports T1 (sequential), Tp (all workers) and speedup.
// Paper scale is n = 1e8; default here is n = 2e6 (use --n= to change).
//
//===----------------------------------------------------------------------===//

#include <vector>

#include "bench/bench_common.h"
#include "src/api/aug_map.h"
#include "src/api/pam_map.h"
#include "src/encoding/diff_encoder.h"
#include "src/parallel/random.h"

using namespace cpam;
using namespace cpam::bench;

namespace {

using Entry = std::pair<uint64_t, uint64_t>;

std::vector<Entry> makeEntries(size_t N, uint64_t Seed) {
  std::vector<Entry> E(N);
  Rng R(Seed);
  par::parallel_for(0, N, [&](size_t I) {
    E[I] = {R.ith(I) >> 1, I}; // Distinct whp; >>1 keeps keys positive-ish.
  });
  return E;
}

template <class MapT>
void runPlainRows(const char *Label, size_t N) {
  std::printf("--- %s (no augmentation, n=%zu) ---\n", Label, N);
  auto E1 = makeEntries(N, 1);
  auto E2 = makeEntries(N, 2);
  auto ESmall = makeEntries(std::max<size_t>(1, N / 1000), 3);

  MapT M1(E1), M2(E2), MSmall(ESmall);
  std::printf("%-28s %10.3f MB\n", "Size", M1.size_in_bytes() / 1048576.0);

  print_time_row("Build", time_seq([&] { MapT M(E1); }),
                 time_par([&] { MapT M(E1); }));
  print_time_row(
      "Union (n,n)",
      time_seq([&] { auto U = MapT::map_union(M1, M2); }),
      time_par([&] { auto U = MapT::map_union(M1, M2); }));
  print_time_row(
      "Union (n,n/1000)",
      time_seq([&] { auto U = MapT::map_union(M1, MSmall); }),
      time_par([&] { auto U = MapT::map_union(M1, MSmall); }));
  print_time_row(
      "Intersect (n,n)",
      time_seq([&] { auto X = MapT::map_intersect(M1, M2); }),
      time_par([&] { auto X = MapT::map_intersect(M1, M2); }));
  print_time_row(
      "Difference (n,n)",
      time_seq([&] { auto D = MapT::map_difference(M1, M2); }),
      time_par([&] { auto D = MapT::map_difference(M1, M2); }));
  print_time_row(
      "Map",
      time_seq([&] {
        auto M = M1.map_values([](const Entry &X) { return X.second + 1; });
      }),
      time_par([&] {
        auto M = M1.map_values([](const Entry &X) { return X.second + 1; });
      }));
  print_time_row(
      "Reduce",
      time_seq([&] {
        volatile uint64_t S = M1.map_reduce(
            [](const Entry &X) { return X.second; }, uint64_t(0),
            std::plus<uint64_t>());
        (void)S;
      }),
      time_par([&] {
        volatile uint64_t S = M1.map_reduce(
            [](const Entry &X) { return X.second; }, uint64_t(0),
            std::plus<uint64_t>());
        (void)S;
      }));
  print_time_row(
      "Filter",
      time_seq([&] {
        auto F = M1.filter([](const Entry &X) { return X.second % 3 == 0; });
      }),
      time_par([&] {
        auto F = M1.filter([](const Entry &X) { return X.second % 3 == 0; });
      }));

  // Find: n/4 random lookups.
  size_t Q = N / 4;
  auto DoFinds = [&] {
    std::atomic<uint64_t> Hits{0};
    par::parallel_for(0, Q, [&](size_t I) {
      if (M1.contains(E1[(I * 37) % N].first))
        Hits.fetch_add(1, std::memory_order_relaxed);
    });
  };
  print_time_row("Find (m=n/4)", time_seq(DoFinds), time_par(DoFinds));

  // Insert: sequential point inserts (paper reports T1 only).
  size_t Ins = std::max<size_t>(1, N / 100);
  double InsT = median_time(
      [&] {
        MapT M = M1;
        for (size_t I = 0; I < Ins; ++I)
          M.insert_inplace(hash64(I) | 1, I);
      },
      g_reps);
  std::printf("%-28s T1=%9.4fs  (%zu sequential inserts)\n", "Insert", InsT,
              Ins);

  print_time_row(
      "Multi-Insert (m=n)",
      time_seq([&] { auto M = M1.multi_insert(E2); }),
      time_par([&] { auto M = M1.multi_insert(E2); }));

  // Range: n/100 random width-limited submap extractions.
  size_t RQ = std::max<size_t>(1, N / 100);
  auto DoRanges = [&] {
    std::atomic<uint64_t> Total{0};
    par::parallel_for(
        0, RQ,
        [&](size_t I) {
          uint64_t Lo = hash64(I) >> 1;
          auto R = M1.range(Lo, Lo + (UINT64_MAX >> 12));
          Total.fetch_add(R.size(), std::memory_order_relaxed);
        },
        1);
  };
  print_time_row("Range (m=n/100)", time_seq(DoRanges), time_par(DoRanges));
}

template <class AugT>
void runAugRows(const char *Label, size_t N) {
  std::printf("--- %s (with augmentation, n=%zu) ---\n", Label, N);
  auto E1 = makeEntries(N, 1);
  auto E2 = makeEntries(N, 2);
  AugT M1(E1), M2(E2);
  std::printf("%-28s %10.3f MB\n", "Size", M1.size_in_bytes() / 1048576.0);
  print_time_row("Build", time_seq([&] { AugT M(E1); }),
                 time_par([&] { AugT M(E1); }));
  print_time_row(
      "Union (n,n)",
      time_seq([&] { auto U = AugT::map_union(M1, M2); }),
      time_par([&] { auto U = AugT::map_union(M1, M2); }));
  size_t Q = N / 10;
  auto DoAugRange = [&] {
    std::atomic<uint64_t> Acc{0};
    par::parallel_for(0, Q, [&](size_t I) {
      uint64_t Lo = hash64(I) >> 1;
      Acc.fetch_add(M1.aug_range(Lo, Lo + (UINT64_MAX >> 8)),
                    std::memory_order_relaxed);
    });
  };
  print_time_row("AugRange (m=n/10)", time_seq(DoAugRange),
                 time_par(DoAugRange));
  uint64_t Tau = UINT64_MAX / 2;
  print_time_row(
      "AugFilter",
      time_seq([&] {
        auto F = M1.aug_filter([&](uint64_t A) { return A >= Tau; });
      }),
      time_par([&] {
        auto F = M1.aug_filter([&](uint64_t A) { return A >= Tau; });
      }));
}

} // namespace

int main(int argc, char **argv) {
  size_t N = arg_size(argc, argv, "n", 2000000);
  g_reps = static_cast<int>(arg_size(argc, argv, "reps", 3));
  print_header("Table 2: map microbenchmarks (paper n=1e8)");

  runPlainRows<pam_map<uint64_t, uint64_t, 128>>("PaC-tree (B=128)", N);
  runPlainRows<pam_map<uint64_t, uint64_t, 128, diff_encoder>>(
      "PaC-tree Diff (B=128)", N);
  runPlainRows<pam_map<uint64_t, uint64_t, 0>>("P-tree (PAM)", N);

  using AugE = aug_sum_entry<uint64_t, uint64_t>;
  runAugRows<aug_map<AugE, 128>>("PaC-tree (B=128)", N);
  runAugRows<aug_map<AugE, 128, diff_encoder>>("PaC-tree Diff (B=128)", N);
  runAugRows<aug_map<AugE, 0>>("P-tree (PAM)", N);
  return 0;
}
