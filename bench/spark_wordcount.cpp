//===- spark_wordcount.cpp - Sec. 10.2: collections-system comparison -------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Regenerates the Sec. 10.2 comparison with Apache Spark's shared-memory
// collections on the two queries from the Spark tutorial over the corpus:
// (1) longest word length, (2) most frequent word. Spark is substituted by
// a single-threaded STL pipeline playing the "general-purpose collections
// system" role (DESIGN.md Sec. 3); the paper reports CPAM 3.2x / 4.9x
// faster than cached Spark, and orders of magnitude on raw primitives.
//
//===----------------------------------------------------------------------===//

#include <unordered_map>

#include "bench/bench_common.h"
#include "src/api/pam_map.h"
#include "src/util/textgen.h"

using namespace cpam;
using namespace cpam::bench;

int main(int argc, char **argv) {
  size_t N = arg_size(argc, argv, "n", 10000000);
  g_reps = static_cast<int>(arg_size(argc, argv, "reps", 3));
  print_header("Sec. 10.2: word-count style queries (Spark substituted by "
               "an STL pipeline)");
  Corpus C = generate_corpus(N, 100000, N / 250 + 1, 1.0, 9);

  // Query 1: longest word length.
  double StlLongest = median_time(
      [&] {
        size_t Longest = 0;
        for (uint32_t W : C.Tokens)
          Longest = std::max(Longest, C.Words[W].size());
        volatile size_t Sink = Longest;
        (void)Sink;
      },
      g_reps);
  double CpamLongest = time_par([&] {
    size_t Longest = par::reduce_index(
        0, C.Tokens.size(),
        [&](size_t I) { return C.Words[C.Tokens[I]].size(); }, size_t(0),
        [](size_t A, size_t B) { return std::max(A, B); });
    volatile size_t Sink = Longest;
    (void)Sink;
  });
  std::printf("longest word:       STL=%8.4fs  CPAM=%8.4fs  (%.1fx)\n",
              StlLongest, CpamLongest, StlLongest / CpamLongest);

  // Query 2: most frequent word (reduceByKey + max).
  double StlFreq = median_time(
      [&] {
        std::unordered_map<uint32_t, uint64_t> Counts;
        for (uint32_t W : C.Tokens)
          ++Counts[W];
        std::pair<uint32_t, uint64_t> Best{0, 0};
        for (auto &KV : Counts)
          if (KV.second > Best.second)
            Best = KV;
        volatile uint64_t Sink = Best.second;
        (void)Sink;
      },
      g_reps);
  double CpamFreq = time_par([&] {
    using M = pam_map<uint32_t, uint64_t, 128>;
    std::vector<std::pair<uint32_t, uint64_t>> Pairs(C.Tokens.size());
    par::parallel_for(0, C.Tokens.size(),
                      [&](size_t I) { Pairs[I] = {C.Tokens[I], 1}; });
    M Counts(std::move(Pairs), std::plus<uint64_t>());
    uint64_t Best = Counts.map_reduce(
        [](const auto &E) { return E.second; }, uint64_t(0),
        [](uint64_t A, uint64_t B) { return std::max(A, B); });
    volatile uint64_t Sink = Best;
    (void)Sink;
  });
  std::printf("most frequent word: STL=%8.4fs  CPAM=%8.4fs  (%.1fx)\n",
              StlFreq, CpamFreq, StlFreq / CpamFreq);
  return 0;
}
