//===- table3_apps.cpp - Table 3: application build/query times -------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 3: build and query times plus space for the inverted
// index (AND queries + top-10), the interval tree (parallel stabbing
// queries) and the 2D range tree (Q-Sum counting and Q-All reporting),
// CPAM vs PAM. Paper scale n = 1e8; default n = 1e6.
//
//===----------------------------------------------------------------------===//

#include "bench/bench_common.h"
#include "src/apps/interval_tree.h"
#include "src/apps/inverted_index.h"
#include "src/apps/range_tree.h"
#include "src/parallel/random.h"

using namespace cpam;
using namespace cpam::bench;

namespace {

template <class Index>
void runIndex(const char *Label, const Corpus &C, size_t NumQueries) {
  double BuildT1 = time_seq([&] { Index I(C); });
  double BuildTp = time_par([&] { Index I(C); });
  Index Idx(C);
  // Queries: AND over random word pairs + top-10 by weight.
  std::vector<std::string> Ws(2 * NumQueries);
  Rng R(5);
  for (size_t I = 0; I < Ws.size(); ++I)
    Ws[I] = word_string(static_cast<uint32_t>(R.ith(I, 2000)));
  auto Queries = [&] {
    std::atomic<uint64_t> Acc{0};
    par::parallel_for(
        0, NumQueries,
        [&](size_t I) {
          auto And = Idx.query_and(Ws[2 * I], Ws[2 * I + 1]);
          auto Top = Index::top_k(And, 10);
          Acc.fetch_add(Top.size(), std::memory_order_relaxed);
        },
        1);
  };
  std::printf("[%s]  space=%.3f MB\n", Label,
              Idx.size_in_bytes() / 1048576.0);
  print_time_row("  Build", BuildT1, BuildTp);
  print_time_row("  Query (AND+top10)", time_seq(Queries),
                 time_par(Queries));
}

template <class IT>
void runInterval(const char *Label, const std::vector<Interval> &Ivs,
                 size_t NumQueries) {
  double BuildT1 = time_seq([&] { IT T(Ivs); });
  double BuildTp = time_par([&] { IT T(Ivs); });
  IT T(Ivs);
  auto Queries = [&] {
    std::atomic<uint64_t> Acc{0};
    par::parallel_for(0, NumQueries, [&](size_t I) {
      Acc.fetch_add(T.stabs(hash64(I) % (1u << 30)) ? 1 : 0,
                    std::memory_order_relaxed);
    });
  };
  std::printf("[%s]  space=%.3f MB\n", Label, T.size_in_bytes() / 1048576.0);
  print_time_row("  Build", BuildT1, BuildTp);
  print_time_row("  Query (stab)", time_seq(Queries), time_par(Queries));
}

template <class RT>
void runRange(const char *Label, const std::vector<point2d> &Pts,
              size_t NumSum, size_t NumAll, uint32_t Window) {
  double BuildT1 = time_seq([&] { RT T(Pts); });
  double BuildTp = time_par([&] { RT T(Pts); });
  RT T(Pts);
  auto QSum = [&] {
    std::atomic<uint64_t> Acc{0};
    par::parallel_for(0, NumSum, [&](size_t I) {
      uint32_t X = static_cast<uint32_t>(hash64(2 * I) % (1u << 30));
      uint32_t Y = static_cast<uint32_t>(hash64(2 * I + 1) % (1u << 30));
      Acc.fetch_add(T.query_count(X, Y, X + Window, Y + Window),
                    std::memory_order_relaxed);
    });
  };
  auto QAll = [&] {
    std::atomic<uint64_t> Acc{0};
    par::parallel_for(
        0, NumAll,
        [&](size_t I) {
          uint32_t X = static_cast<uint32_t>(hash64(2 * I) % (1u << 30));
          uint32_t Y = static_cast<uint32_t>(hash64(2 * I + 1) % (1u << 30));
          auto Pts2 = T.query_points(X, Y, X + Window, Y + Window);
          Acc.fetch_add(Pts2.size(), std::memory_order_relaxed);
        },
        1);
  };
  std::printf("[%s]  space=%.3f MB\n", Label, T.size_in_bytes() / 1048576.0);
  print_time_row("  Build", BuildT1, BuildTp);
  print_time_row("  Q-Sum", time_seq(QSum), time_par(QSum));
  print_time_row("  Q-All", time_seq(QAll), time_par(QAll));
}

} // namespace

int main(int argc, char **argv) {
  size_t N = arg_size(argc, argv, "n", 1000000);
  g_reps = static_cast<int>(arg_size(argc, argv, "reps", 3));
  print_header("Table 3: applications (paper n=1e8)");

  std::printf("\n-- Inverted index --\n");
  Corpus C = generate_corpus(2 * N, 50000, std::max<size_t>(N / 250, 10),
                             1.0, 3);
  runIndex<inverted_index<128, 128>>("PaC-tree (CPAM)", C, N / 100);
  runIndex<inverted_index<0, 0>>("P-tree (PAM)", C, N / 100);

  std::printf("\n-- Interval tree --\n");
  auto Ivs = random_intervals(N, 1u << 30, 10000, 1);
  runInterval<interval_tree<32>>("PaC-tree (CPAM)", Ivs, N);
  runInterval<interval_tree<0>>("P-tree (PAM)", Ivs, N);

  std::printf("\n-- 2D range tree --\n");
  size_t Np = N / 5;
  auto Raw = random_points(Np, 1u << 30, 2);
  std::vector<point2d> Pts(Raw.size());
  for (size_t I = 0; I < Raw.size(); ++I)
    Pts[I] = {static_cast<uint32_t>(Raw[I].first),
              static_cast<uint32_t>(Raw[I].second)};
  // Window chosen so Q-All returns ~1e2-1e3 points per query at default n
  // (the paper tunes for ~1e6 returned at n=1e8).
  uint32_t Window = static_cast<uint32_t>(
      (uint64_t(1) << 30) / std::max<size_t>(1, Np / 30000));
  runRange<range_tree<128, 16>>("PaC-tree (CPAM)", Pts, N / 100, N / 2000,
                                Window);
  runRange<range_tree<0, 0>>("P-tree (PAM)", Pts, N / 100, N / 2000, Window);
  return 0;
}
