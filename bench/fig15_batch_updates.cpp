//===- fig15_batch_updates.cpp - Fig. 15: batch insert throughput -----------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Fig. 15: edge-insertion (and deletion) throughput as a
// function of batch size, with batches drawn from the rMAT generator
// (a=0.5, b=c=0.1, d=0.3), timing including sort/dedup as in the paper.
// Also compares against the Aspen baseline (the paper reports ~1.6x higher
// CPAM throughput). Expected shape: throughput grows with batch size.
//
//===----------------------------------------------------------------------===//

#include "bench/bench_common.h"
#include "src/baselines/aspen_graph.h"
#include "src/graph/graph.h"

using namespace cpam;
using namespace cpam::bench;

namespace {

void runGraph(const char *Name, int LogN, size_t Deg, size_t MaxBatch) {
  size_t NumV = size_t(1) << LogN;
  auto Edges = rmat_graph(LogN, NumV * Deg / 2);
  sym_graph G = sym_graph::from_edges(Edges, NumV);
  aspen_graph A = aspen_graph::from_edges(Edges, NumV);
  std::printf("[%s] n=%zu m=%zu\n", Name, NumV, Edges.size());
  RmatParams P;
  P.Seed = 99;
  for (size_t Batch = 10; Batch <= MaxBatch; Batch *= 10) {
    auto Upd = rmat_edges(LogN, Batch, P);
    double TIns = median_time(
        [&] { sym_graph G2 = G.insert_edges(Upd); }, g_reps);
    double TDel = median_time(
        [&] { sym_graph G2 = G.delete_edges(Upd); }, g_reps);
    double TAspen = median_time(
        [&] { aspen_graph A2 = A.insert_edges(Upd); }, g_reps);
    std::printf("  batch=%9zu  insert=%10.0f e/s  delete=%10.0f e/s  "
                "aspen-insert=%10.0f e/s  (ours/aspen %.2fx)\n",
                Batch, Batch / TIns, Batch / TDel, Batch / TAspen,
                TAspen / TIns);
  }
}

} // namespace

int main(int argc, char **argv) {
  g_reps = static_cast<int>(arg_size(argc, argv, "reps", 3));
  size_t MaxBatch = arg_size(argc, argv, "maxbatch", 1000000);
  print_header("Fig. 15: batch update throughput (paper: up to 1e9)");
  runGraph("LiveJournal stand-in", 16, 18, MaxBatch);
  runGraph("Twitter stand-in", 17, 40, MaxBatch);
  return 0;
}
