//===- bench_alloc.cpp - Node-allocator microbenchmarks --------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Isolates the allocation layer the tree operations sit on: LIFO alloc/free
// of the regular-node size class, burst alloc-then-free of flat-payload
// sized blocks, cross-thread produce/consume churn (the pattern a parallel
// `dec` generates), and point-update tree churn at B=0 and B=128. Compare a
// CPAM_POOL_ALLOC=ON build against an OFF build of the same binary to
// measure what the pool buys; emit JSON with --json=<path>.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/api/pam_map.h"
#include "src/core/allocator.h"
#include "src/parallel/random.h"

using namespace cpam;
using namespace cpam::bench;

namespace {

/// LIFO pairs: the instruction-level cost of one alloc+free round trip.
double lifoAllocFree(size_t Ops, size_t Bytes) {
  return time_par([&] {
    for (size_t I = 0; I < Ops; ++I) {
      void *P = tree_alloc(Bytes);
      *static_cast<volatile char *>(P) = 1;
      tree_free(P, Bytes);
    }
  });
}

/// Allocate a burst, then free it all — the temp_buf / flat-node pattern.
double burstAllocFree(size_t Rounds, size_t Burst, size_t Bytes) {
  std::vector<void *> Ps(Burst);
  return time_par([&] {
    for (size_t R = 0; R < Rounds; ++R) {
      for (size_t I = 0; I < Burst; ++I)
        Ps[I] = tree_alloc(Bytes);
      for (size_t I = 0; I < Burst; ++I)
        tree_free(Ps[I], Bytes);
    }
  });
}

/// Worker A allocates bursts, worker B frees them: every block crosses
/// threads, so the pool's batch exchange (not per-block ping-pong) is on
/// the critical path. The handoff storage is built once outside the timed
/// region; only the alloc and free loops are measured.
double crossThreadChurn(size_t Rounds, size_t Burst, size_t Bytes) {
  std::vector<std::vector<void *>> Handoff(Rounds,
                                           std::vector<void *>(Burst));
  return time_par([&] {
    std::thread Producer([&] {
      for (size_t R = 0; R < Rounds; ++R)
        for (size_t I = 0; I < Burst; ++I)
          Handoff[R][I] = tree_alloc(Bytes);
    });
    Producer.join();
    std::thread Consumer([&] {
      for (size_t R = 0; R < Rounds; ++R)
        for (size_t I = 0; I < Burst; ++I)
          tree_free(Handoff[R][I], Bytes);
    });
    Consumer.join();
  });
}

/// Functional point-update churn: every insert copies the root-to-leaf
/// path, every dropped snapshot frees it.
template <int B> double treeInsertChurn(size_t Ops) {
  using Map = pam_map<uint64_t, uint64_t, B>;
  return time_par([&] {
    Rng R(42);
    Map M;
    for (size_t I = 0; I < Ops; ++I)
      M.insert_inplace(R.next(1u << 20), I);
  });
}

} // namespace

int main(int argc, char **argv) {
  size_t N = arg_size(argc, argv, "n", 1000000);
  g_reps = std::max(1, static_cast<int>(arg_size(argc, argv, "reps", 3)));
  std::string JsonPath = arg_str(argc, argv, "json");

  print_header("allocator microbenchmarks");
  std::printf("n=%zu reps=%d pool_alloc=%s\n", N, g_reps,
              pool_enabled() ? "on" : "off");
  JsonReport Report("bench_alloc", N, g_reps);

  struct Row {
    const char *Name;
    size_t Ops;
    double Seconds;
  };
  size_t RegBytes = 64; // The regular_t size class for word-sized entries.
  size_t FlatBytes = 4096; // A typical B=128 flat payload.
  // Round counts truncate for small --n; each row reports the ops actually
  // executed (rounds * burst), never the requested total.
  size_t BurstSm = std::max<size_t>(1, N / 1024);
  size_t BurstLg = std::max<size_t>(1, N / 16 / 256);
  size_t XRounds = std::max<size_t>(1, N / 2 / 1024);
  Row Rows[] = {
      {"lifo_alloc_free_64B", N, lifoAllocFree(N, RegBytes)},
      {"burst_alloc_free_64B", BurstSm * 1024,
       burstAllocFree(BurstSm, 1024, RegBytes)},
      {"burst_alloc_free_4KB", BurstLg * 256,
       burstAllocFree(BurstLg, 256, FlatBytes)},
      {"cross_thread_64B", XRounds * 1024,
       crossThreadChurn(XRounds, 1024, RegBytes)},
      {"tree_insert_churn_B0", N / 4, treeInsertChurn<0>(N / 4)},
      {"tree_insert_churn_B128", N / 4, treeInsertChurn<128>(N / 4)},
  };
  for (const Row &R : Rows) {
    Report.add(R.Name, -1, R.Ops, R.Seconds);
    std::printf("%-28s %10zu ops  %9.4fs  %8.2f Mops/s\n", R.Name, R.Ops,
                R.Seconds, R.Seconds > 0 ? R.Ops / R.Seconds / 1e6 : 0.0);
  }
  Report.write(JsonPath);
  return 0;
}
