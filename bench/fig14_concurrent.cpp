//===- fig14_concurrent.cpp - Fig. 14: concurrent updates and queries -------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Fig. 14: BFS queries running concurrently with small-batch
// edge insertions (batch = 5 undirected rMAT edges, i.e. up to 10 directed
// edges after self-loop filtering), exploiting snapshots: the updater
// publishes new graph versions through serving::version_chain (atomic root
// swap + epoch-reclaimed retirement — see src/serving/version_chain.h)
// while readers query an O(1) snapshot. Expected shape: concurrent queries
// are moderately slower than solo (paper: 1.85x); updates barely change
// (paper: 1.07x).
//
// Methodology (fixed in PR 8): the solo and concurrent phases run the SAME
// query count from the SAME starting version — each phase gets a fresh
// chain seeded with the initial graph, and the concurrent updater runs
// open-ended until the readers finish, so the ratios compare identical
// work on identical inputs. Update throughput is computed from the edges
// actually inserted (self-loops are filtered from the rMAT draws), not a
// nominal batch size.
//
//===----------------------------------------------------------------------===//

#include <atomic>
#include <thread>

#include "bench/bench_common.h"
#include "src/graph/bfs.h"
#include "src/graph/graph.h"
#include "src/parallel/random.h"
#include "src/serving/version_chain.h"

using namespace cpam;
using namespace cpam::bench;

namespace {

using graph_chain = serving::version_chain<sym_graph>;

double runQueries(const graph_chain &Chain, size_t NumQueries, size_t NumV) {
  Timer T;
  for (size_t Q = 0; Q < NumQueries; ++Q) {
    sym_graph Snap = Chain.acquire();
    auto S = Snap.flat_snapshot();
    auto Parents = bfs(make_neighbors(S), NumV, 0);
    volatile size_t Sink = Parents.size();
    (void)Sink;
  }
  return T.elapsed() / NumQueries;
}

struct UpdateStats {
  size_t Batches = 0;
  size_t DirectedEdges = 0; // Edges actually inserted (self-loops dropped).
  double Seconds = 0;
  double perBatch() const { return Batches ? Seconds / Batches : 0; }
  double edgesPerSec() const {
    return Seconds > 0 ? DirectedEdges / Seconds : 0;
  }
};

/// Draws 5 undirected rMAT edges per batch, filters self-loops, inserts
/// both directions, publishes one version per batch. Runs until \p
/// NumBatches batches are done or \p StopFlag (when non-null) is set.
/// (Runs on a plain thread — a foreign thread to the scheduler pool,
/// exercising its sequential degradation path — matching the paper's tiny
/// 5-edge batches.)
UpdateStats runUpdates(graph_chain &Chain, size_t NumBatches, int LogN,
                       const std::atomic<bool> *StopFlag) {
  RmatParams P;
  P.Seed = 1234;
  UpdateStats Stats;
  sym_graph Tip = Chain.acquire();
  Timer T;
  for (size_t I = 0; I < NumBatches; ++I) {
    if (StopFlag && StopFlag->load(std::memory_order_relaxed))
      break;
    auto Upd = rmat_edges(LogN, 5, P);
    std::vector<edge_pair> Batch;
    for (auto &[U, V] : Upd)
      if (U != V) {
        Batch.push_back({U, V});
        Batch.push_back({V, U});
      }
    P.Seed = hash64(P.Seed);
    Stats.DirectedEdges += Batch.size();
    Tip = Tip.insert_edges(std::move(Batch));
    Chain.publish(Tip);
    ++Stats.Batches;
  }
  Stats.Seconds = T.elapsed();
  return Stats;
}

} // namespace

int main(int argc, char **argv) {
  int LogN = static_cast<int>(arg_size(argc, argv, "logn", 16));
  size_t NumQueries = arg_size(argc, argv, "queries", 20);
  size_t NumBatches = arg_size(argc, argv, "batches", 2000);
  print_header("Fig. 14: concurrent updates and BFS queries");

  size_t NumV = size_t(1) << LogN;
  auto Edges = rmat_graph(LogN, NumV * 18 / 2);
  sym_graph G0 = sym_graph::from_edges(Edges, NumV);
  std::printf("graph: n=%zu m=%zu\n", NumV, Edges.size());

  // Solo phases, each on a fresh chain seeded with G0.
  double QuerySolo;
  {
    graph_chain Chain(G0);
    QuerySolo = runQueries(Chain, NumQueries, NumV);
  }
  UpdateStats UpdSolo;
  {
    graph_chain Chain(G0);
    UpdSolo = runUpdates(Chain, NumBatches, LogN, nullptr);
  }

  // Concurrent phase: same starting version G0, same query count as the
  // solo phase; the updater publishes continuously until the readers
  // finish (so every query contends with live ingest end to end).
  double QueryConc;
  UpdateStats UpdConc;
  {
    graph_chain Chain(G0);
    std::atomic<bool> Stop{false};
    std::thread Updater([&] {
      UpdConc = runUpdates(Chain, ~size_t(0), LogN, &Stop);
    });
    QueryConc = runQueries(Chain, NumQueries, NumV);
    Stop.store(true, std::memory_order_relaxed);
    Updater.join();
    Chain.reclaim();
  }

  double UpdateSolo = UpdSolo.perBatch();
  double UpdateConc = UpdConc.perBatch();
  std::printf("BFS query   solo=%8.4fs  concurrent=%8.4fs  (%.2fx)  "
              "[%zu queries each, same start version]\n",
              QuerySolo, QueryConc, QueryConc / QuerySolo, NumQueries);
  std::printf("update      solo=%8.6fs  concurrent=%8.6fs  (%.2fx) per "
              "batch (avg %.1f directed edges/batch)\n",
              UpdateSolo, UpdateConc,
              UpdateSolo > 0 ? UpdateConc / UpdateSolo : 0.0,
              UpdConc.Batches
                  ? double(UpdConc.DirectedEdges) / UpdConc.Batches
                  : 0.0);
  std::printf("update throughput (concurrent): %.0f directed edges/s over "
              "%zu batches, latency %.0f us/batch\n",
              UpdConc.edgesPerSec(), UpdConc.Batches, UpdateConc * 1e6);
  return 0;
}
