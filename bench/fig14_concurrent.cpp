//===- fig14_concurrent.cpp - Fig. 14: concurrent updates and queries -------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Fig. 14: BFS queries running concurrently with small-batch
// edge insertions (batch = 10 directed edges from the rMAT stream),
// exploiting snapshots: the updater installs new graph versions while
// readers query an O(1) snapshot. Reports solo vs concurrent average times
// and the update throughput/latency. Expected shape: concurrent queries
// are moderately slower than solo (paper: 1.85x); updates barely change
// (paper: 1.07x).
//
//===----------------------------------------------------------------------===//

#include <mutex>
#include <thread>

#include "bench/bench_common.h"
#include "src/graph/bfs.h"
#include "src/graph/graph.h"
#include "src/parallel/random.h"

using namespace cpam;
using namespace cpam::bench;

namespace {

struct VersionedGraph {
  std::mutex M;
  sym_graph Current;
  sym_graph snapshot() {
    std::lock_guard<std::mutex> L(M);
    return Current; // O(1) copy.
  }
  void install(sym_graph G) {
    std::lock_guard<std::mutex> L(M);
    Current = std::move(G);
  }
};

double runQueries(VersionedGraph &VG, size_t NumQueries, size_t NumV) {
  Timer T;
  for (size_t Q = 0; Q < NumQueries; ++Q) {
    sym_graph Snap = VG.snapshot();
    auto S = Snap.flat_snapshot();
    auto Parents = bfs(make_neighbors(S), NumV, 0);
    volatile size_t Sink = Parents.size();
    (void)Sink;
  }
  return T.elapsed() / NumQueries;
}

/// Runs \p NumBatches updates of 10 directed edges each; returns average
/// seconds per batch. (Runs on a plain thread: the update batches are tiny,
/// matching the paper's batch size of 5 undirected edges.)
double runUpdates(VersionedGraph &VG, size_t NumBatches, int LogN) {
  RmatParams P;
  P.Seed = 1234;
  Timer T;
  for (size_t I = 0; I < NumBatches; ++I) {
    auto Upd = rmat_edges(LogN, 5, P);
    std::vector<edge_pair> Batch;
    for (auto &[U, V] : Upd)
      if (U != V) {
        Batch.push_back({U, V});
        Batch.push_back({V, U});
      }
    P.Seed = hash64(P.Seed);
    sym_graph Next = VG.snapshot().insert_edges(Batch);
    VG.install(std::move(Next));
  }
  return T.elapsed() / NumBatches;
}

} // namespace

int main(int argc, char **argv) {
  int LogN = static_cast<int>(arg_size(argc, argv, "logn", 16));
  size_t NumQueries = arg_size(argc, argv, "queries", 20);
  size_t NumBatches = arg_size(argc, argv, "batches", 2000);
  print_header("Fig. 14: concurrent updates and BFS queries");

  size_t NumV = size_t(1) << LogN;
  auto Edges = rmat_graph(LogN, NumV * 18 / 2);
  VersionedGraph VG;
  VG.Current = sym_graph::from_edges(Edges, NumV);
  std::printf("graph: n=%zu m=%zu\n", NumV, Edges.size());

  // Solo phases.
  double QuerySolo = runQueries(VG, NumQueries, NumV);
  double UpdateSolo = runUpdates(VG, NumBatches, LogN);

  // Concurrent phase: updater on its own thread, queries on the main pool.
  double UpdateConc = 0;
  std::thread Updater(
      [&] { UpdateConc = runUpdates(VG, NumBatches * 4, LogN); });
  double QueryConc = runQueries(VG, NumQueries * 2, NumV);
  Updater.join();

  std::printf("BFS query   solo=%8.4fs  concurrent=%8.4fs  (%.2fx)\n",
              QuerySolo, QueryConc, QueryConc / QuerySolo);
  std::printf("update      solo=%8.6fs  concurrent=%8.6fs  (%.2fx) per "
              "10-edge batch\n",
              UpdateSolo, UpdateConc, UpdateConc / UpdateSolo);
  std::printf("update throughput (concurrent): %.0f directed edges/s, "
              "latency %.0f us/batch\n",
              10.0 / UpdateConc, UpdateConc * 1e6);
  return 0;
}
