//===- table5_graph_algos.cpp - Table 5: BFS / MIS / BC ---------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 5: parallel running times of BFS, MIS and single-source
// BC over CPAM graphs with and without flat snapshots, and over the Aspen
// (C-tree) baseline, plus flat-snapshot construction times. Expected
// shape: flat snapshots help all algorithms; CPAM builds snapshots faster
// than Aspen (fewer cache misses in the chunked vertex tree) and is
// competitive or faster on the algorithms (~1.1x in the paper).
//
//===----------------------------------------------------------------------===//

#include "bench/bench_common.h"
#include "src/baselines/aspen_graph.h"
#include "src/graph/bc.h"
#include "src/graph/bfs.h"
#include "src/graph/graph.h"
#include "src/graph/mis.h"

using namespace cpam;
using namespace cpam::bench;

namespace {

void runGraph(const char *Name, int LogN, size_t Deg) {
  size_t NumV = size_t(1) << LogN;
  auto Edges = rmat_graph(LogN, NumV * Deg / 2);
  std::printf("[%s] n=%zu m=%zu\n", Name, NumV, Edges.size());

  sym_graph G = sym_graph::from_edges(Edges, NumV);
  aspen_graph A = aspen_graph::from_edges(Edges, NumV);
  vertex_id Src = Edges[0].first;

  // Flat snapshot construction (the FS Time column).
  double FsCpam = time_par([&] { auto S = G.flat_snapshot(); });
  double FsAspen = time_par([&] { auto S = A.flat_snapshot(); });
  std::printf("  %-24s cpam=%8.4fs  aspen=%8.4fs  (aspen/cpam %.2fx)\n",
              "FS build", FsCpam, FsAspen, FsAspen / FsCpam);

  auto Snap = G.flat_snapshot();
  auto NFs = make_neighbors(Snap);
  // Without a flat snapshot, every frontier vertex walks the vertex tree.
  auto NTree = [&](vertex_id U, auto f) {
    auto E = G.vertices().find_entry(U);
    if (E)
      E->second.foreach_seq([&](vertex_id V) { f(V); });
  };
  auto SnapA = A.flat_snapshot();
  auto NAspen = [&](vertex_id U, auto f) {
    if (U < SnapA.size())
      SnapA[U].foreach_seq(f);
  };

  double BfsNoFs = time_par([&] { auto P = bfs(NTree, NumV, Src); });
  double BfsFs = time_par([&] { auto P = bfs(NFs, NumV, Src); });
  double BfsAspen = time_par([&] { auto P = bfs(NAspen, NumV, Src); });
  std::printf("  %-24s no-fs=%8.4fs  fs=%8.4fs  aspen-fs=%8.4fs  "
              "(aspen/ours %.2fx)\n",
              "BFS", BfsNoFs, BfsFs, BfsAspen, BfsAspen / BfsFs);

  double MisNoFs = time_par([&] { auto M = mis(NTree, NumV); });
  double MisFs = time_par([&] { auto M = mis(NFs, NumV); });
  double MisAspen = time_par([&] { auto M = mis(NAspen, NumV); });
  std::printf("  %-24s no-fs=%8.4fs  fs=%8.4fs  aspen-fs=%8.4fs  "
              "(aspen/ours %.2fx)\n",
              "MIS", MisNoFs, MisFs, MisAspen, MisAspen / MisFs);

  double BcNoFs =
      time_par([&] { auto D = bc_from_source(NTree, NumV, Src); });
  double BcFs = time_par([&] { auto D = bc_from_source(NFs, NumV, Src); });
  double BcAspen =
      time_par([&] { auto D = bc_from_source(NAspen, NumV, Src); });
  std::printf("  %-24s no-fs=%8.4fs  fs=%8.4fs  aspen-fs=%8.4fs  "
              "(aspen/ours %.2fx)\n",
              "BC", BcNoFs, BcFs, BcAspen, BcAspen / BcFs);
}

} // namespace

int main(int argc, char **argv) {
  g_reps = static_cast<int>(arg_size(argc, argv, "reps", 3));
  int LogN = static_cast<int>(arg_size(argc, argv, "logn", 16));
  print_header("Table 5: graph algorithms, CPAM vs Aspen");
  runGraph("LiveJournal stand-in", LogN, 18);
  runGraph("com-Orkut stand-in", LogN - 1, 64);
  runGraph("Twitter stand-in", LogN + 1, 40);
  return 0;
}
