//===- fig13_blocksize_space.cpp - Fig. 13: map size vs block size B --------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Fig. 13: bytes used by PaC-tree maps (plain / augmented /
// difference-encoded) as a function of B, against the array lower bound
// (16 bytes/pair) and the difference-encoded-array lower bound, plus the
// P-tree (PAM) sizes. Expected shape: PaC sizes converge onto the array
// bound as B grows (within ~1% at B = 128); augmentation adds ~1% for
// PaC-trees but ~20% for P-trees.
//
//===----------------------------------------------------------------------===//

#include <vector>

#include "bench/bench_common.h"
#include "src/api/aug_map.h"
#include "src/api/pam_map.h"
#include "src/encoding/diff_encoder.h"
#include "src/encoding/varint.h"
#include "src/parallel/random.h"

using namespace cpam;
using namespace cpam::bench;

namespace {

using Entry = std::pair<uint64_t, uint64_t>;
using AugE = aug_sum_entry<uint64_t, uint64_t>;

template <int B> void rowForB(const std::vector<Entry> &E) {
  pam_map<uint64_t, uint64_t, B> Plain(E);
  pam_map<uint64_t, uint64_t, B, diff_encoder> Diff(E);
  aug_map<AugE, B> Aug(E);
  aug_map<AugE, B, diff_encoder> AugDiff(E);
  std::printf("B=%5d  pac=%9.3fMB  pac-aug=%9.3fMB  pac-diff=%9.3fMB  "
              "pac-aug-diff=%9.3fMB\n",
              B, Plain.size_in_bytes() / 1048576.0,
              Aug.size_in_bytes() / 1048576.0,
              Diff.size_in_bytes() / 1048576.0,
              AugDiff.size_in_bytes() / 1048576.0);
}

} // namespace

int main(int argc, char **argv) {
  size_t N = arg_size(argc, argv, "n", 1000000);
  print_header("Fig. 13: map size vs block size B (paper n=1e8)");

  std::vector<Entry> E(N);
  Rng R(1);
  par::parallel_for(0, N, [&](size_t I) { E[I] = {R.ith(I) >> 1, I}; });
  // Lower bounds: flat array, and diff-encoded keys + raw values.
  std::vector<Entry> Sorted = E;
  par::sort(Sorted, [](const Entry &A, const Entry &B2) {
    return A.first < B2.first;
  });
  size_t ArrayBytes = N * sizeof(Entry);
  size_t DiffKeyBytes = N * sizeof(uint64_t); // Values stay 8 bytes.
  for (size_t I = 0; I < N; ++I)
    DiffKeyBytes += varint_size(
        I == 0 ? Sorted[0].first : Sorted[I].first - Sorted[I - 1].first);
  std::printf("array lower bound:        %9.3f MB\n", ArrayBytes / 1048576.0);
  std::printf("diff-array lower bound:   %9.3f MB\n",
              DiffKeyBytes / 1048576.0);

  pam_map<uint64_t, uint64_t, 0> PTree(E);
  aug_map<AugE, 0> PTreeAug(E);
  std::printf("P-tree: %9.3f MB   P-tree-aug: %9.3f MB  (aug overhead "
              "%.1f%%)\n",
              PTree.size_in_bytes() / 1048576.0,
              PTreeAug.size_in_bytes() / 1048576.0,
              100.0 * (static_cast<double>(PTreeAug.size_in_bytes()) /
                           PTree.size_in_bytes() -
                       1.0));

  rowForB<1>(E);
  rowForB<2>(E);
  rowForB<8>(E);
  rowForB<32>(E);
  rowForB<128>(E);
  rowForB<512>(E);
  rowForB<2048>(E);

  // Headline claims at B = 128 (Sec. 10.1).
  pam_map<uint64_t, uint64_t, 128> Pac(E);
  aug_map<AugE, 128> PacAug(E);
  std::printf("\nB=128 vs array bound: %.3fx   aug overhead: %.2f%%   "
              "P-tree/PaC: %.2fx\n",
              static_cast<double>(Pac.size_in_bytes()) / ArrayBytes,
              100.0 * (static_cast<double>(PacAug.size_in_bytes()) /
                           Pac.size_in_bytes() -
                       1.0),
              static_cast<double>(PTree.size_in_bytes()) /
                  Pac.size_in_bytes());
  return 0;
}
