//===- fig02_sequence.cpp - Fig. 2: sequence primitives ---------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Fig. 2: reduce, map, filter, is_sorted, reverse, find, select
// (nth), subseq and append over 8-byte elements, comparing PaC-tree
// sequences (CPAM, B=128), P-tree sequences (PAM) and the flat-array
// baseline standing in for ParallelSTL. Uses Google Benchmark as harness.
// Paper scale is n = 1e8; default here is n = 4e6 (env CPAM_BENCH_N).
//
// Expected shape: CPAM ~ Array on whole-sequence ops (reduce/map/filter),
// CPAM far slower on nth (O(log n + B) vs O(1)), and CPAM far *faster* on
// append (O(log n + B) join vs O(n) copy) — the 1594x of the paper.
//
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "src/api/pam_seq.h"
#include "src/baselines/array_seq.h"
#include "src/parallel/random.h"

using namespace cpam;

namespace {

size_t benchN() {
  if (const char *E = std::getenv("CPAM_BENCH_N"))
    return std::strtoull(E, nullptr, 10);
  return 4000000;
}

using CpamSeq = pam_seq<uint64_t, 128>;
using PamSeq = pam_seq<uint64_t, 0>;
using Array = array_seq<uint64_t>;

std::vector<uint64_t> &input() {
  static std::vector<uint64_t> V = [] {
    size_t N = benchN();
    std::vector<uint64_t> X(N);
    par::parallel_for(0, N, [&](size_t I) { X[I] = hash64(I); });
    return X;
  }();
  return V;
}

template <class S> const S &seq() {
  static S Instance(input());
  return Instance;
}

template <class S> void bmReduce(benchmark::State &St) {
  const S &X = seq<S>();
  for (auto _ : St)
    benchmark::DoNotOptimize(X.reduce(uint64_t(0), std::plus<uint64_t>()));
}

template <class S> void bmMap(benchmark::State &St) {
  const S &X = seq<S>();
  for (auto _ : St) {
    auto M = X.map([](uint64_t V) { return V ^ 0x5555; });
    benchmark::DoNotOptimize(M.size());
  }
}

template <class S> void bmFilter(benchmark::State &St) {
  const S &X = seq<S>();
  for (auto _ : St) {
    auto F = X.filter([](uint64_t V) { return (V & 7) == 0; });
    benchmark::DoNotOptimize(F.size());
  }
}

template <class S> void bmIsSorted(benchmark::State &St) {
  const S &X = seq<S>();
  for (auto _ : St)
    benchmark::DoNotOptimize(X.is_sorted());
}

template <class S> void bmReverse(benchmark::State &St) {
  const S &X = seq<S>();
  for (auto _ : St) {
    auto R = X.reverse();
    benchmark::DoNotOptimize(R.size());
  }
}

template <class S> void bmFind(benchmark::State &St) {
  const S &X = seq<S>();
  uint64_t Needle = input()[input().size() / 2];
  for (auto _ : St)
    benchmark::DoNotOptimize(
        X.find_first([&](uint64_t V) { return V == Needle; }));
}

template <class S> void bmSelect(benchmark::State &St) {
  const S &X = seq<S>();
  size_t I = 0, N = input().size();
  for (auto _ : St) {
    benchmark::DoNotOptimize(X.nth((I * 40503) % N));
    ++I;
  }
}

template <class S> void bmSubseq(benchmark::State &St) {
  const S &X = seq<S>();
  size_t N = input().size();
  for (auto _ : St) {
    auto Sub = X.subseq(N / 4, N / 4 + 1000);
    benchmark::DoNotOptimize(Sub.size());
  }
}

template <class S> void bmAppend(benchmark::State &St) {
  const S &X = seq<S>();
  for (auto _ : St) {
    auto A = S::append(X, X);
    benchmark::DoNotOptimize(A.size());
  }
}

} // namespace

BENCHMARK_TEMPLATE(bmReduce, CpamSeq)->Name("reduce/CPAM")->UseRealTime();
BENCHMARK_TEMPLATE(bmReduce, PamSeq)->Name("reduce/PAM")->UseRealTime();
BENCHMARK_TEMPLATE(bmReduce, Array)->Name("reduce/Array")->UseRealTime();
BENCHMARK_TEMPLATE(bmMap, CpamSeq)->Name("map/CPAM")->UseRealTime();
BENCHMARK_TEMPLATE(bmMap, PamSeq)->Name("map/PAM")->UseRealTime();
BENCHMARK_TEMPLATE(bmMap, Array)->Name("map/Array")->UseRealTime();
BENCHMARK_TEMPLATE(bmFilter, CpamSeq)->Name("filter/CPAM")->UseRealTime();
BENCHMARK_TEMPLATE(bmFilter, PamSeq)->Name("filter/PAM")->UseRealTime();
BENCHMARK_TEMPLATE(bmFilter, Array)->Name("filter/Array")->UseRealTime();
BENCHMARK_TEMPLATE(bmIsSorted, CpamSeq)
    ->Name("is_sorted/CPAM")
    ->UseRealTime();
BENCHMARK_TEMPLATE(bmIsSorted, PamSeq)->Name("is_sorted/PAM")->UseRealTime();
BENCHMARK_TEMPLATE(bmIsSorted, Array)->Name("is_sorted/Array")->UseRealTime();
BENCHMARK_TEMPLATE(bmReverse, CpamSeq)->Name("reverse/CPAM")->UseRealTime();
BENCHMARK_TEMPLATE(bmReverse, PamSeq)->Name("reverse/PAM")->UseRealTime();
BENCHMARK_TEMPLATE(bmReverse, Array)->Name("reverse/Array")->UseRealTime();
BENCHMARK_TEMPLATE(bmFind, CpamSeq)->Name("find/CPAM")->UseRealTime();
BENCHMARK_TEMPLATE(bmFind, PamSeq)->Name("find/PAM")->UseRealTime();
BENCHMARK_TEMPLATE(bmFind, Array)->Name("find/Array")->UseRealTime();
BENCHMARK_TEMPLATE(bmSelect, CpamSeq)->Name("select/CPAM")->UseRealTime();
BENCHMARK_TEMPLATE(bmSelect, PamSeq)->Name("select/PAM")->UseRealTime();
BENCHMARK_TEMPLATE(bmSelect, Array)->Name("select/Array")->UseRealTime();
BENCHMARK_TEMPLATE(bmSubseq, CpamSeq)->Name("subseq/CPAM")->UseRealTime();
BENCHMARK_TEMPLATE(bmSubseq, PamSeq)->Name("subseq/PAM")->UseRealTime();
BENCHMARK_TEMPLATE(bmSubseq, Array)->Name("subseq/Array")->UseRealTime();
BENCHMARK_TEMPLATE(bmAppend, CpamSeq)->Name("append/CPAM")->UseRealTime();
BENCHMARK_TEMPLATE(bmAppend, PamSeq)->Name("append/PAM")->UseRealTime();
BENCHMARK_TEMPLATE(bmAppend, Array)->Name("append/Array")->UseRealTime();

BENCHMARK_MAIN();
