//===- fig11_graph_sizes.cpp - Fig. 11 + Table 4: graph memory --------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Fig. 11 / Table 4: memory of seven graphs (synthetic
// stand-ins matching the originals' average degree and locality character;
// DESIGN.md Sec. 3) under GBBS (static diff-encoded CSR), PaC-tree (Diff),
// PaC-tree, Aspen (C-trees) and P-trees (PAM). Expected ordering per
// graph: GBBS <= PaC-diff < PaC, Aspen; P-tree largest (4-9.7x over
// PaC-diff); Aspen/PaC-diff between 1.2x and 2.7x, largest on the sparse
// road-like graph.
//
//===----------------------------------------------------------------------===//

#include "bench/bench_common.h"
#include "src/baselines/aspen_graph.h"
#include "src/baselines/csr_graph.h"
#include "src/graph/graph.h"

using namespace cpam;
using namespace cpam::bench;

namespace {

void runGraph(const char *Name, const std::vector<edge_pair> &Edges,
              size_t NumV) {
  csr_graph Gbbs = csr_graph::from_edges(Edges, NumV);
  sym_graph Diff = sym_graph::from_edges(Edges, NumV);
  sym_graph_nodiff NoDiff = sym_graph_nodiff::from_edges(Edges, NumV);
  aspen_graph Aspen = aspen_graph::from_edges(Edges, NumV);
  sym_graph_ptree PTree = sym_graph_ptree::from_edges(Edges, NumV);
  size_t Small =
      std::min({Gbbs.size_in_bytes(), Diff.size_in_bytes(),
                NoDiff.size_in_bytes(), Aspen.size_in_bytes()});
  std::printf("[%s] n=%zu m=%zu (directed)\n", Name, NumV, Edges.size());
  print_size_row("  GBBS (Diff)", Gbbs.size_in_bytes(), Small);
  print_size_row("  PaC-tree (Diff)", Diff.size_in_bytes(), Small);
  print_size_row("  PaC-tree", NoDiff.size_in_bytes(), Small);
  print_size_row("  Aspen (C-tree)", Aspen.size_in_bytes(), Small);
  print_size_row("  P-tree (PAM)", PTree.size_in_bytes(), Small);
  std::printf("  Aspen / PaC-diff = %.2fx\n",
              static_cast<double>(Aspen.size_in_bytes()) /
                  Diff.size_in_bytes());
}

} // namespace

int main(int argc, char **argv) {
  size_t Scale = arg_size(argc, argv, "scale", 1);
  print_header("Fig. 11 / Table 4: graph representation sizes");

  // Stand-ins: (name, log2 vertices, average directed degree). Degrees
  // mirror the originals (DBLP 4.9, YouTube 5.3, USA-Road 2.4 via mesh,
  // LiveJournal 17.7, com-Orkut 76, Twitter 57.7, Friendster 55).
  struct Spec {
    const char *Name;
    int LogN;
    size_t Deg;
  };
  for (const Spec &S :
       {Spec{"DBLP (DB) stand-in", 15, 5}, Spec{"YouTube (YT) stand-in", 16, 5},
        Spec{"LiveJournal (LJ) stand-in", 16, 18},
        Spec{"com-Orkut (OK) stand-in", 15, 64},
        Spec{"Twitter (TW) stand-in", 17, 40},
        Spec{"Friendster (FS) stand-in", 18, 30}}) {
    size_t NumV = (size_t(1) << S.LogN) * Scale;
    int LogN = S.LogN + (Scale > 1 ? 1 : 0);
    auto Edges = rmat_graph(LogN, NumV * S.Deg / 2);
    runGraph(S.Name, Edges, size_t(1) << LogN);
  }
  {
    // USA-Road stand-in: sparse mesh with high index locality.
    size_t Side = 350 * Scale;
    auto Edges = mesh_graph(Side);
    runGraph("USA-Road (RU) stand-in (mesh)", Edges, Side * Side);
  }
  return 0;
}
