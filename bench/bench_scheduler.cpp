//===- bench_scheduler.cpp - Scheduler microbenchmarks ---------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The parallel runtime's recorded trajectory (BENCH_PR4.json):
//
//  - fork_overhead: a tight loop of parDo(nop, nop) — the push + reclaim
//    cycle that every fork in the tree algorithms pays. fork_baseline_seq
//    is the same loop with forking disabled, so (fork_overhead -
//    fork_baseline_seq) / n is the net cost of one fork-join.
//  - parallel_for_gran1 / parallel_for_default: fork saturation (one fork
//    per element) and the default-grain loop; with >1 workers gran1 doubles
//    as the steal-throughput row (see the sched_* counter rows).
//  - build/union/flatten at par_gran 2048 (the retuned default) vs 8192
//    (the mutex-era setting), B=128: proves the tree operations are no
//    slower — and the machine-room is cheaper — at the finer grain.
//  - sched_* rows: scheduler telemetry counters accumulated over the run
//    (ops = count, seconds = 0), recorded so steal/park behavior lands in
//    the artifact next to the timings.
//
// The deque implementation is whatever the pool was created with: compile
// default CPAM_LOCKFREE_SCHED, overridable by the environment variable of
// the same name. CI and BENCH_PR4.json run the binary twice (env 0/1) and
// compare.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <vector>

#include "bench/bench_common.h"
#include "src/api/pam_map.h"
#include "src/util/timer.h"

using namespace cpam;
using namespace cpam::bench;

namespace {

/// Median of \p Reps timed runs with an untimed prepare step and one
/// untimed warmup (same discipline as perf_smoke).
template <class Prep, class Body>
double medianPrepared(int Reps, const Prep &Prepare, const Body &Run) {
  Prepare();
  Run();
  std::vector<double> Ts(static_cast<size_t>(Reps));
  for (int I = 0; I < Reps; ++I) {
    Prepare();
    Timer T;
    Run();
    Ts[static_cast<size_t>(I)] = T.elapsed();
  }
  std::sort(Ts.begin(), Ts.end());
  return Ts[Ts.size() / 2];
}

void runForkOverhead(size_t N, JsonReport &Report) {
  // Volatile sinks keep the compiler from collapsing the loop bodies; the
  // scheduler calls are opaque (separate TU) anyway.
  volatile uint64_t SinkA = 0, SinkB = 0;
  auto Loop = [&] {
    for (size_t I = 0; I < N; ++I)
      par::par_do([&] { SinkA = SinkA + 1; }, [&] { SinkB = SinkB + 1; });
  };

  double TPar = medianPrepared(g_reps, [] {}, Loop);
  Report.add("fork_overhead", -1, N, TPar);
  print_time_row("fork_overhead", TPar, TPar);

  par::set_sequential(true);
  double TSeq = medianPrepared(g_reps, [] {}, Loop);
  par::set_sequential(false);
  Report.add("fork_baseline_seq", -1, N, TSeq);
  print_time_row("fork_baseline_seq", TSeq, TSeq);

  std::printf("   net fork-join cost: %.1f ns/fork\n",
              (TPar - TSeq) / N * 1e9);
}

void runParallelFor(size_t N, JsonReport &Report) {
  std::vector<uint8_t> Out(N);
  double TGran1 = medianPrepared(
      g_reps, [] {},
      [&] {
        par::parallel_for(
            0, N, [&](size_t I) { Out[I] = static_cast<uint8_t>(I); },
            /*Gran=*/1);
      });
  Report.add("parallel_for_gran1", -1, N, TGran1);
  print_time_row("parallel_for_gran1", TGran1, TGran1);

  double TDef = medianPrepared(
      g_reps, [] {},
      [&] {
        par::parallel_for(
            0, N, [&](size_t I) { Out[I] = static_cast<uint8_t>(I + 1); });
      });
  Report.add("parallel_for_default", -1, N, TDef);
  print_time_row("parallel_for_default", TDef, TDef);
}

/// Tree operations at a given fork grain (the retuned 2048 default vs the
/// mutex-era 8192), B=128, raw encoding.
void runTreeOpsAtGrain(size_t N, size_t Grain, JsonReport &Report) {
  using Map = pam_map<uint64_t, uint64_t, 128>;
  using Entry = typename Map::entry_t;
  using ops = typename Map::ops;

  size_t SavedGran = ops::par_gran();
  size_t SavedGc = ops::par_gc_gran();
  ops::par_gran() = Grain;
  ops::par_gc_gran() = Grain;

  std::vector<Entry> Sorted(N), SortedOdd(N);
  for (size_t I = 0; I < N; ++I) {
    Sorted[I] = {2 * I, I};
    SortedOdd[I] = {2 * I + 1, I};
  }
  // Warm the pool with a full build/destroy cycle first so every grain
  // section measures against recycled (address-sorted) storage — otherwise
  // whichever grain runs first pays the fresh-slab carving and the
  // comparison measures allocator state, not the grain.
  { Map Warm = Map::from_sorted(Sorted); }
  Map Evens = Map::from_sorted(Sorted);
  Map Odds = Map::from_sorted(SortedOdd);

  char Name[64];
  Map Out;
  std::vector<Entry> Scratch;

  double TBuild = medianPrepared(
      g_reps,
      [&] {
        Out = Map();
        Scratch = Sorted;
      },
      [&] { Out = Map::from_sorted(std::move(Scratch)); });
  std::snprintf(Name, sizeof(Name), "build_sorted_g%zu", Grain);
  Report.add(Name, 128, N, TBuild);
  print_time_row(Name, TBuild, TBuild);

  double TUnion = medianPrepared(
      g_reps, [&] { Out = Map(); },
      [&] { Out = Map::map_union(Evens, Odds); });
  std::snprintf(Name, sizeof(Name), "union_equal_g%zu", Grain);
  Report.add(Name, 128, 2 * N, TUnion);
  print_time_row(Name, TUnion, TUnion);
  Out = Map();

  // Flatten at the ops layer into a preallocated buffer: the timed region
  // is the parallel tree walk alone, no vector allocation / page faults.
  {
    std::vector<Entry> Stage = Sorted;
    typename ops::node_t *T = ops::from_array_move(Stage.data(), N);
    std::vector<Entry> Buf(N);
    double TFlatten = medianPrepared(
        g_reps, [] {}, [&] { ops::to_array(T, Buf.data()); });
    ops::dec(T);
    std::snprintf(Name, sizeof(Name), "flatten_g%zu", Grain);
    Report.add(Name, 128, N, TFlatten);
    print_time_row(Name, TFlatten, TFlatten);
  }

  ops::par_gran() = SavedGran;
  ops::par_gc_gran() = SavedGc;
}

void dumpTelemetry(JsonReport &Report) {
  par::SchedulerStats S = par::scheduler_stats();
  std::printf("\n-- scheduler telemetry (whole run) --\n");
  std::printf("forks=%llu inline_reclaims=%llu steals=%llu "
              "failed_steals=%llu parks=%llu wakes=%llu\n",
              (unsigned long long)S.Forks, (unsigned long long)S.InlineReclaims,
              (unsigned long long)S.Steals, (unsigned long long)S.FailedSteals,
              (unsigned long long)S.Parks, (unsigned long long)S.Wakes);
  Report.add("sched_forks", -1, S.Forks, 0.0);
  Report.add("sched_steals", -1, S.Steals, 0.0);
  Report.add("sched_failed_steals", -1, S.FailedSteals, 0.0);
  Report.add("sched_parks", -1, S.Parks, 0.0);

#if CPAM_POOL_ALLOC
  std::printf("\n-- pool allocator per-class telemetry (nonzero classes) --\n");
  auto P = pool_allocator::stats();
  for (size_t C = 0; C < pool_allocator::kNumClasses; ++C) {
    if (P[C].Allocs == 0)
      continue;
    std::printf("  class %2zu (%6zu B): allocs=%llu frees=%llu live=%lld "
                "refills=%llu drains=%llu carves=%llu\n",
                C, P[C].BlockBytes, (unsigned long long)P[C].Allocs,
                (unsigned long long)P[C].Frees,
                (long long)(P[C].Allocs - P[C].Frees),
                (unsigned long long)P[C].RefillBatches,
                (unsigned long long)P[C].DrainBatches,
                (unsigned long long)P[C].SlabCarves);
  }
#endif
}

} // namespace

int main(int argc, char **argv) {
  size_t N = arg_size(argc, argv, "n", 1000000);
  g_reps = std::max(1, static_cast<int>(arg_size(argc, argv, "reps", 3)));
  std::string JsonPath = arg_str(argc, argv, "json");

  print_header("scheduler: fork-join overhead, stealing, grain retune");
  std::printf("n=%zu reps=%d lockfree_sched=%s\n", N, g_reps,
              par::lockfree_sched() ? "on" : "off");

  JsonReport Report("bench_scheduler", N, g_reps,
                    par::lockfree_sched() ? "\"lockfree_sched\": true"
                                          : "\"lockfree_sched\": false");
  par::scheduler_stats_reset();

  // Fork machinery in isolation.
  runForkOverhead(std::max<size_t>(N, 100000), Report);
  runParallelFor(4 * N, Report);

  // Tree operations at the retuned vs the mutex-era fork grain.
  for (size_t Grain : {size_t(2048), size_t(8192)})
    runTreeOpsAtGrain(N, Grain, Report);

  dumpTelemetry(Report);
  Report.write(JsonPath);
  return 0;
}
