//===- bench_serving.cpp - Read-while-ingest serving benchmark -------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The repo's end-to-end serving number: an open-loop read-while-ingest
// driver over serving::versioned_graph. A producer thread streams rMAT
// edges into the bounded ingest queue as fast as backpressure allows; the
// pipeline's single writer applies them in batches (one multi-level graph
// union per publish) and publishes versions through the version chain;
// R reader threads continuously (a) acquire an O(1) snapshot — measuring
// snapshot-acquire latency — and (b) run a full BFS on the snapshot —
// measuring query latency under live ingest.
//
// Reported per reader count (default sweep 1/4/16): acquire p50/p99, BFS
// p50/p99, sustained ingest throughput (directed edges/s), versions
// published/reclaimed. Readers are foreign threads to the scheduler pool,
// so their BFS runs on the scheduler's sequential degradation path while
// the writer's batch unions still use the pool — the intended serving
// split. Emits cpam-perf-v1 JSON (--json=...); BENCH_PR8.json records the
// reference run.
//
// Flags: --logn=14 --secs=2 --readers=R (0 = sweep 1/4/16) --batch=4096
//        --queue=65536 --aspen=1 (also run the aspen_graph baseline row)
//        --json=path
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/baselines/aspen_graph.h"
#include "src/graph/bfs.h"
#include "src/graph/graph.h"
#include "src/obs/metrics.h"
#include "src/parallel/random.h"
#include "src/serving/version_chain.h"
#include "src/util/failpoint.h"

using namespace cpam;
using namespace cpam::bench;

namespace {

double percentile(std::vector<double> &V, double P) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  size_t I = static_cast<size_t>(P * (V.size() - 1) + 0.5);
  return V[std::min(I, V.size() - 1)];
}

struct EpisodeResult {
  size_t Readers = 0;
  size_t AcquireSamples = 0, BfsSamples = 0;
  double AcquireP50 = 0, AcquireP99 = 0; // Seconds.
  double BfsP50 = 0, BfsP99 = 0;         // Seconds.
  double IngestEdgesPerSec = 0;
  uint64_t IngestEdges = 0, Versions = 0, Reclaimed = 0, Pins = 0;
  // Epoch-manager and pipeline telemetry for the JSON count rows.
  uint64_t Conflicts = 0, Advances = 0, RetiredBacklog = 0;
  uint64_t Submitted = 0, Batches = 0, FullWaits = 0;
};

/// One read-while-ingest episode over graph type G at \p Readers reader
/// threads for \p Secs seconds.
template <class G>
EpisodeResult runEpisode(const G &G0, size_t NumV, int LogN, size_t Readers,
                         double Secs, size_t BatchWindow, size_t QueueCap) {
  // Fresh telemetry window per episode (quiescent here: no pipeline or
  // readers yet), so the exported metrics describe the last episode alone.
  obs::reset_all();
  typename serving::versioned_graph<G>::options O;
  O.BatchWindow = BatchWindow;
  O.QueueCapacity = QueueCap;
  serving::versioned_graph<G> VG(G0, O);

  std::atomic<bool> Stop{false};

  // Open-loop producer: streams rMAT edges; the bounded queue's
  // backpressure is the only throttle, so applied/sec is the sustained
  // ingest capacity under this read load.
  std::thread Producer([&] {
    RmatParams P;
    P.Seed = 99;
    while (!Stop.load(std::memory_order_relaxed)) {
      auto Upd = rmat_edges(LogN, 256, P);
      P.Seed = hash64(P.Seed);
      for (auto &[U, V] : Upd) {
        if (U == V)
          continue;
        if (!VG.submit_edge(U, V) || !VG.submit_edge(V, U))
          return; // Pipeline stopping.
      }
    }
  });

  std::vector<std::vector<double>> AcqSamples(Readers), BfsSamples(Readers);
  std::vector<std::thread> ReaderThreads;
  ReaderThreads.reserve(Readers);
  for (size_t R = 0; R < Readers; ++R) {
    ReaderThreads.emplace_back([&, R] {
      Rng Rnd(hash64(R + 1));
      uint64_t Draw = 0;
      while (!Stop.load(std::memory_order_relaxed)) {
        // A burst of acquire-only snapshots samples the pointer-swap +
        // epoch-pin path densely; then one full BFS on the newest
        // snapshot samples end-to-end query latency.
        for (int I = 0; I < 16; ++I) {
          Timer T;
          G Snap = VG.snapshot();
          AcqSamples[R].push_back(T.elapsed());
          volatile size_t Sink = Snap.num_vertices();
          (void)Sink;
        }
        Timer T;
        G Snap = VG.snapshot();
        auto S = Snap.flat_snapshot();
        auto Parents =
            bfs(make_neighbors(S), NumV, Rnd.ith(Draw++) % NumV);
        BfsSamples[R].push_back(T.elapsed());
        volatile size_t Sink = Parents.size();
        (void)Sink;
      }
    });
  }

  Timer Phase;
  while (Phase.elapsed() < Secs)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Stop.store(true, std::memory_order_relaxed);
  for (auto &T : ReaderThreads)
    T.join();
  double Elapsed = Phase.elapsed();
  auto Ingest = VG.ingest_stats();
  VG.stop(); // Unblocks the producer if it is parked on a full queue.
  Producer.join();

  EpisodeResult Res;
  Res.Readers = Readers;
  std::vector<double> AllAcq, AllBfs;
  for (size_t R = 0; R < Readers; ++R) {
    AllAcq.insert(AllAcq.end(), AcqSamples[R].begin(), AcqSamples[R].end());
    AllBfs.insert(AllBfs.end(), BfsSamples[R].begin(), BfsSamples[R].end());
  }
  Res.AcquireSamples = AllAcq.size();
  Res.BfsSamples = AllBfs.size();
  Res.AcquireP50 = percentile(AllAcq, 0.50);
  Res.AcquireP99 = percentile(AllAcq, 0.99);
  Res.BfsP50 = percentile(AllBfs, 0.50);
  Res.BfsP99 = percentile(AllBfs, 0.99);
  Res.IngestEdges = Ingest.Applied;
  Res.IngestEdgesPerSec = Elapsed > 0 ? Ingest.Applied / Elapsed : 0;
  Res.Versions = VG.chain().seq();
  Res.Reclaimed = VG.chain().reclaimed_total();
  auto Epochs = VG.chain().epochs().stats();
  Res.Pins = Epochs.Pins;
  Res.Conflicts = Epochs.SlotConflicts;
  // current() starts at 1; everything above is writer advances (publishes).
  Res.Advances = VG.chain().epochs().current() - 1;
  // Writer joined by stop(), so the writer-private backlog is readable:
  // versions retired but still pinned down when the episode ended.
  Res.RetiredBacklog = VG.chain().retired_count();
  Res.Submitted = Ingest.Submitted;
  Res.Batches = Ingest.Batches;
  Res.FullWaits = Ingest.FullWaits;
  return Res;
}

void printResult(const char *Tag, const EpisodeResult &R) {
  std::printf("%-6s r=%-3zu acquire p50=%7.2fus p99=%7.2fus (%zu samples)  "
              "bfs p50=%7.2fms p99=%7.2fms (%zu)  ingest=%9.0f edges/s  "
              "versions=%llu reclaimed=%llu\n",
              Tag, R.Readers, R.AcquireP50 * 1e6, R.AcquireP99 * 1e6,
              R.AcquireSamples, R.BfsP50 * 1e3, R.BfsP99 * 1e3, R.BfsSamples,
              R.IngestEdgesPerSec,
              static_cast<unsigned long long>(R.Versions),
              static_cast<unsigned long long>(R.Reclaimed));
  std::printf("       epochs: pins=%llu conflicts=%llu advances=%llu "
              "backlog=%llu  queue: submitted=%llu batches=%llu "
              "full_waits=%llu\n",
              static_cast<unsigned long long>(R.Pins),
              static_cast<unsigned long long>(R.Conflicts),
              static_cast<unsigned long long>(R.Advances),
              static_cast<unsigned long long>(R.RetiredBacklog),
              static_cast<unsigned long long>(R.Submitted),
              static_cast<unsigned long long>(R.Batches),
              static_cast<unsigned long long>(R.FullWaits));
}

void addRows(JsonReport &Json, const char *Tag, const EpisodeResult &R) {
  char Name[128];
  auto Row = [&](const char *Metric, size_t Ops, double Seconds) {
    std::snprintf(Name, sizeof(Name), "%s_%s_r%zu", Tag, Metric, R.Readers);
    Json.add(Name, -1, Ops, Seconds);
  };
  Row("acquire_p50", R.AcquireSamples, R.AcquireP50);
  Row("acquire_p99", R.AcquireSamples, R.AcquireP99);
  Row("bfs_p50", R.BfsSamples, R.BfsP50);
  Row("bfs_p99", R.BfsSamples, R.BfsP99);
  // ops/seconds here make mops the ingest rate in million edges/s.
  Row("ingest", R.IngestEdges,
      R.IngestEdgesPerSec > 0 ? R.IngestEdges / R.IngestEdgesPerSec : 0);
  auto Count = [&](const char *Metric, uint64_t V) {
    std::snprintf(Name, sizeof(Name), "%s_%s_r%zu", Tag, Metric, R.Readers);
    Json.add_count(Name, V);
  };
  Count("versions", R.Versions);
  Count("reclaimed", R.Reclaimed);
  Count("epoch_pins", R.Pins);
  Count("epoch_conflicts", R.Conflicts);
  Count("epoch_advances", R.Advances);
  Count("retired_backlog", R.RetiredBacklog);
  Count("ingest_submitted", R.Submitted);
  Count("ingest_batches", R.Batches);
  Count("ingest_full_waits", R.FullWaits);
}

//===----------------------------------------------------------------------===//
// Overload episodes: open-loop ingest past queue capacity per shed policy.
//===----------------------------------------------------------------------===//

struct OverloadResult {
  const char *Tag = "";
  uint64_t Submitted = 0, Applied = 0, Rejected = 0, Shed = 0;
  uint64_t DeadlineTimeouts = 0, FullWaits = 0;
  size_t AcquireSamples = 0;
  double AcquireP50 = 0, AcquireP99 = 0; // Seconds.
  uint64_t RetiredBacklogHw = 0;
};

/// One overload episode: the "serving.slow_apply" failpoint wedges every
/// batch (2ms dwell) so an open-loop producer outruns the writer and the
/// queue saturates; the episode then measures what each overload policy
/// does to producers (reject/shed/deadline counters) and to readers
/// (snapshot-acquire latency while the queue is pinned at capacity).
/// Unlike the parity rows above, this row is *meant* to run armed — it is
/// the robustness benchmark, and it arms/disarms its own failpoint.
OverloadResult runOverloadEpisode(const sym_graph &G0, const char *Tag,
                                  serving::overload_policy Policy,
                                  bool UseDeadline, double Secs) {
  obs::reset_all();
  fail::arm("serving.slow_apply", "always/arg=2");
  serving::versioned_graph<sym_graph>::options O;
  O.QueueCapacity = 4096;
  O.BatchWindow = 1024;
  O.Policy = Policy;
  serving::versioned_graph<sym_graph> VG(G0, O);

  std::atomic<bool> Stop{false};
  std::thread Producer([&] {
    RmatParams P;
    P.Seed = 7;
    while (!Stop.load(std::memory_order_relaxed)) {
      auto Upd = rmat_edges(14, 256, P);
      P.Seed = hash64(P.Seed);
      for (auto &[U, V] : Upd) {
        if (U == V)
          continue;
        bool Ok = UseDeadline
                      ? VG.pipeline().submit_for(
                            edge_pair{U, V}, std::chrono::milliseconds(1))
                      : VG.pipeline().submit(edge_pair{U, V});
        // Refusals are the point of this episode; only a stopping
        // pipeline ends the loop early.
        (void)Ok;
        if (Stop.load(std::memory_order_relaxed))
          return;
      }
    }
  });

  std::vector<double> Acq;
  std::thread Reader([&] {
    while (!Stop.load(std::memory_order_relaxed)) {
      Timer T;
      sym_graph Snap = VG.snapshot();
      Acq.push_back(T.elapsed());
      volatile size_t Sink = Snap.num_vertices();
      (void)Sink;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  Timer Phase;
  while (Phase.elapsed() < Secs)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Stop.store(true, std::memory_order_relaxed);
  Reader.join();
  VG.stop(); // Wakes a producer parked on a full queue (Block policy).
  Producer.join();
  auto St = VG.ingest_stats();
  fail::disarm("serving.slow_apply");

  OverloadResult R;
  R.Tag = Tag;
  R.Submitted = St.Submitted;
  R.Applied = St.Applied;
  R.Rejected = St.Rejected;
  R.Shed = St.Shed;
  R.DeadlineTimeouts = St.DeadlineTimeouts;
  R.FullWaits = St.FullWaits;
  R.AcquireSamples = Acq.size();
  R.AcquireP50 = percentile(Acq, 0.50);
  R.AcquireP99 = percentile(Acq, 0.99);
  R.RetiredBacklogHw = VG.chain().retired_high_water();
  return R;
}

void printOverload(const OverloadResult &R) {
  std::printf("overload %-8s submitted=%8llu applied=%8llu rejected=%8llu "
              "shed=%8llu deadline_to=%6llu full_waits=%6llu  "
              "acquire p50=%7.2fus p99=%7.2fus (%zu)\n",
              R.Tag, static_cast<unsigned long long>(R.Submitted),
              static_cast<unsigned long long>(R.Applied),
              static_cast<unsigned long long>(R.Rejected),
              static_cast<unsigned long long>(R.Shed),
              static_cast<unsigned long long>(R.DeadlineTimeouts),
              static_cast<unsigned long long>(R.FullWaits),
              R.AcquireP50 * 1e6, R.AcquireP99 * 1e6, R.AcquireSamples);
}

void addOverloadRows(JsonReport &Json, const OverloadResult &R) {
  char Name[128];
  auto Count = [&](const char *Metric, uint64_t V) {
    std::snprintf(Name, sizeof(Name), "overload_%s_%s", R.Tag, Metric);
    Json.add_count(Name, V);
  };
  Count("submitted", R.Submitted);
  Count("applied", R.Applied);
  Count("rejected", R.Rejected);
  Count("shed", R.Shed);
  Count("deadline_timeouts", R.DeadlineTimeouts);
  Count("full_waits", R.FullWaits);
  Count("retired_backlog_hw", R.RetiredBacklogHw);
  std::snprintf(Name, sizeof(Name), "overload_%s_acquire_p99", R.Tag);
  Json.add(Name, -1, R.AcquireSamples, R.AcquireP99);
  std::snprintf(Name, sizeof(Name), "overload_%s_acquire_p50", R.Tag);
  Json.add(Name, -1, R.AcquireSamples, R.AcquireP50);
}

} // namespace

int main(int argc, char **argv) {
  int LogN = static_cast<int>(arg_size(argc, argv, "logn", 14));
  double Secs = arg_size(argc, argv, "secs", 2);
  size_t ReadersArg = arg_size(argc, argv, "readers", 0);
  size_t BatchWindow = arg_size(argc, argv, "batch", 4096);
  size_t QueueCap = arg_size(argc, argv, "queue", 65536);
  bool RunAspen = arg_size(argc, argv, "aspen", 1) != 0;
  std::string JsonPath = arg_str(argc, argv, "json");
  print_header("Serving: open-loop BFS readers vs live batch ingest");

  size_t NumV = size_t(1) << LogN;
  auto Edges = rmat_graph(LogN, NumV * 10 / 2);
  sym_graph G0 = sym_graph::from_edges(Edges, NumV);
  std::printf("graph: n=%zu m=%zu  batch_window=%zu queue=%zu secs=%.1f\n",
              NumV, Edges.size(), BatchWindow, QueueCap, Secs);

  char Extra[160];
  std::snprintf(Extra, sizeof(Extra),
                "\"logn\": %d, \"secs\": %.2f, \"batch_window\": %zu, "
                "\"queue\": %zu",
                LogN, Secs, BatchWindow, QueueCap);
  JsonReport Json("bench_serving", NumV, /*Reps=*/1, Extra);

  std::vector<size_t> ReaderCounts =
      ReadersArg ? std::vector<size_t>{ReadersArg}
                 : std::vector<size_t>{1, 4, 16};
  for (size_t R : ReaderCounts) {
    EpisodeResult Res =
        runEpisode(G0, NumV, LogN, R, Secs, BatchWindow, QueueCap);
    printResult("cpam", Res);
    addRows(Json, "cpam", Res);
  }

  if (RunAspen) {
    aspen_graph A0 = aspen_graph::from_edges(Edges, NumV);
    size_t R = ReadersArg ? ReadersArg : 4;
    EpisodeResult Res =
        runEpisode(A0, NumV, LogN, R, Secs, BatchWindow, QueueCap);
    printResult("aspen", Res);
    addRows(Json, "aspen", Res);
  }

  // Overload rows: queue saturated on purpose (writer wedged by the
  // slow-apply failpoint) — one row per producer-side overload strategy.
  if (arg_size(argc, argv, "overload", 1) != 0) {
    double OSecs = std::min(Secs, 1.0);
    struct {
      const char *Tag;
      serving::overload_policy Policy;
      bool Deadline;
    } Rows[] = {
        {"block", serving::overload_policy::Block, false},
        {"deadline", serving::overload_policy::Block, true},
        {"reject", serving::overload_policy::RejectNewest, false},
        {"shed", serving::overload_policy::ShedOldest, false},
    };
    for (const auto &Row : Rows) {
      OverloadResult R =
          runOverloadEpisode(G0, Row.Tag, Row.Policy, Row.Deadline, OSecs);
      printOverload(R);
      addOverloadRows(Json, R);
    }
  }

  // Registry snapshot (serving histograms/gauge, scheduler + pool sources)
  // for the last episode — each episode starts with obs::reset_all().
  Json.add_section("metrics", obs::export_json());
  Json.write(JsonPath);
  return 0;
}
