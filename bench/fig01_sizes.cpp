//===- fig01_sizes.cpp - Fig. 1: relative sizes across applications ---------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Fig. 1: memory of the interval tree, range tree, inverted
// index and two large graphs ("Twitter"/"Friendster" rMAT stand-ins; see
// DESIGN.md Sec. 3) under PaC-trees (CPAM), difference-encoded PaC-trees,
// P-trees (PAM), Aspen (C-trees) and the static GBBS representation.
// Expected shape: PaC-diff smallest (graphs within ~1.3-2.6x of Aspen's
// inverse: Aspen is 1.3-2.6x LARGER), P-trees up to ~10x larger.
//
//===----------------------------------------------------------------------===//

#include "bench/bench_common.h"
#include "src/apps/interval_tree.h"
#include "src/apps/inverted_index.h"
#include "src/apps/range_tree.h"
#include "src/baselines/aspen_graph.h"
#include "src/baselines/csr_graph.h"
#include "src/graph/graph.h"

using namespace cpam;
using namespace cpam::bench;

int main(int argc, char **argv) {
  size_t N = arg_size(argc, argv, "n", 1000000);
  print_header("Fig. 1: structure sizes relative to smallest");

  {
    auto Ivs = random_intervals(N, 1u << 30, 10000, 1);
    interval_tree<32> Pac(Ivs);
    interval_tree<0> PTree(Ivs);
    size_t Small = std::min(Pac.size_in_bytes(), PTree.size_in_bytes());
    std::printf("[interval tree, n=%zu]\n", N);
    print_size_row("PaC-tree (CPAM)", Pac.size_in_bytes(), Small);
    print_size_row("P-tree (PAM)", PTree.size_in_bytes(), Small);
  }
  {
    size_t Np = N / 5;
    auto Raw = random_points(Np, 1u << 30, 2);
    std::vector<point2d> Pts(Raw.size());
    for (size_t I = 0; I < Raw.size(); ++I)
      Pts[I] = {static_cast<uint32_t>(Raw[I].first),
                static_cast<uint32_t>(Raw[I].second)};
    range_tree<128, 16> Pac(Pts);
    range_tree<0, 0> PTree(Pts);
    size_t Small = std::min(Pac.size_in_bytes(), PTree.size_in_bytes());
    std::printf("[range tree, n=%zu]\n", Np);
    print_size_row("PaC-tree (CPAM)", Pac.size_in_bytes(), Small);
    print_size_row("P-tree (PAM)", PTree.size_in_bytes(), Small);
  }
  {
    Corpus C = generate_corpus(2 * N, 50000, N / 250 + 10, 1.0, 3);
    inverted_index<128, 128> Pac(C);
    inverted_index<0, 0> PTree(C);
    size_t Small = std::min(Pac.size_in_bytes(), PTree.size_in_bytes());
    std::printf("[inverted index (Wikipedia stand-in), %zu tokens]\n",
                C.Tokens.size());
    print_size_row("PaC-tree-diff (CPAM)", Pac.size_in_bytes(), Small);
    print_size_row("P-tree (PAM)", PTree.size_in_bytes(), Small);
  }
  for (auto [Name, LogN, Deg] :
       {std::tuple<const char *, int, size_t>{"Twitter stand-in", 17, 29},
        {"Friendster stand-in", 18, 27}}) {
    size_t NumV = size_t(1) << LogN;
    auto Edges = rmat_graph(LogN, NumV * Deg / 2);
    std::printf("[%s: %zu vertices, %zu directed edges]\n", Name, NumV,
                Edges.size());
    csr_graph Gbbs = csr_graph::from_edges(Edges, NumV);
    sym_graph Diff = sym_graph::from_edges(Edges, NumV);
    sym_graph_nodiff NoDiff = sym_graph_nodiff::from_edges(Edges, NumV);
    aspen_graph Aspen = aspen_graph::from_edges(Edges, NumV);
    sym_graph_ptree PTree = sym_graph_ptree::from_edges(Edges, NumV);
    size_t Small = std::min({Gbbs.size_in_bytes(), Diff.size_in_bytes()});
    print_size_row("GBBS (static, diff)", Gbbs.size_in_bytes(), Small);
    print_size_row("PaC-tree-diff (CPAM)", Diff.size_in_bytes(), Small);
    print_size_row("PaC-tree (CPAM)", NoDiff.size_in_bytes(), Small);
    print_size_row("Aspen (C-tree)", Aspen.size_in_bytes(), Small);
    print_size_row("P-tree (PAM)", PTree.size_in_bytes(), Small);
  }
  return 0;
}
