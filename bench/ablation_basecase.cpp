//===- ablation_basecase.cpp - Sec. 8 ablations ------------------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Ablations for the design choices of Sec. 8 (and DESIGN.md):
//  1. Base-case granularity kappa for union / multi-insert / intersect:
//     expose-only (kappa=0) vs kappa in {B, 4B, 8B, 16B}. The paper reports
//     kappa=4B 4.4x and kappa=8B 6.7x faster than expose-only (B=128).
//  2. Copy-on-write reuse: in-place updates (refcount-1 reuse) vs forced
//     path copying (shared snapshot held).
//
//===----------------------------------------------------------------------===//

#include "bench/bench_common.h"
#include "src/api/pam_map.h"
#include "src/parallel/random.h"

using namespace cpam;
using namespace cpam::bench;

namespace {

using M = pam_map<uint64_t, uint64_t, 128>;
using Entry = std::pair<uint64_t, uint64_t>;

std::vector<Entry> makeEntries(size_t N, uint64_t Seed) {
  std::vector<Entry> E(N);
  Rng R(Seed);
  par::parallel_for(0, N, [&](size_t I) { E[I] = {R.ith(I) >> 1, I}; });
  return E;
}

} // namespace

int main(int argc, char **argv) {
  size_t N = arg_size(argc, argv, "n", 1000000);
  g_reps = static_cast<int>(arg_size(argc, argv, "reps", 3));
  print_header("Sec. 8 ablation: base-case granularity kappa (B=128)");

  auto E1 = makeEntries(N, 1);
  auto E2 = makeEntries(N, 2);
  M M1(E1), M2(E2);

  double Baseline = 0;
  for (size_t Kappa : {size_t(0), size_t(128), size_t(512), size_t(1024),
                       size_t(2048)}) {
    M::ops::kappa() = Kappa;
    double Union = time_par([&] { auto U = M::map_union(M1, M2); });
    double Inter = time_par([&] { auto X = M::map_intersect(M1, M2); });
    double Multi = time_par([&] { auto X = M1.multi_insert(E2); });
    if (Kappa == 0)
      Baseline = Union;
    std::printf("kappa=%5zu (%3zuB)  union=%8.4fs (%.2fx vs expose-only)  "
                "intersect=%8.4fs  multi-insert=%8.4fs\n",
                Kappa, Kappa / 128, Union, Baseline / Union, Inter, Multi);
  }
  M::ops::kappa() = 8 * 128; // Restore the default.

  print_header("Copy-on-write reuse ablation (sequential point inserts)");
  size_t Ins = std::max<size_t>(1, N / 20);
  double InPlace = median_time(
      [&] {
        M X = M1; // Unique after first path copy: nodes reused in place.
        for (size_t I = 0; I < Ins; ++I)
          X.insert_inplace(hash64(I) | 1, I);
      },
      g_reps);
  double PathCopy = median_time(
      [&] {
        M X = M1;
        for (size_t I = 0; I < Ins; ++I) {
          M Snapshot = X; // Forces the path to be copied every time.
          X.insert_inplace(hash64(I) | 1, I);
        }
      },
      g_reps);
  std::printf("in-place (reuse) %8.4fs   forced path-copy %8.4fs   "
              "(copy/reuse %.2fx)\n",
              InPlace, PathCopy, PathCopy / InPlace);
  return 0;
}
