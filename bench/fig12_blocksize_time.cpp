//===- fig12_blocksize_time.cpp - Fig. 12: primitive time vs block size B ---===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Fig. 12: running times of Build, Filter, Insert, Find, Range
// and Union / Union-Imbal as a function of the block size B. Expected
// shape: most operations speed up until B ~ 16-32; point operations (find,
// insert, range) and the imbalanced union then slow back down linearly in B
// (the O(mB) term of Thm. 6.3); B = 1 matches the P-tree.
//
//===----------------------------------------------------------------------===//

#include <vector>

#include "bench/bench_common.h"
#include "src/api/pam_map.h"
#include "src/parallel/random.h"

using namespace cpam;
using namespace cpam::bench;

namespace {

using Entry = std::pair<uint64_t, uint64_t>;

std::vector<Entry> makeEntries(size_t N, uint64_t Seed) {
  std::vector<Entry> E(N);
  Rng R(Seed);
  par::parallel_for(0, N, [&](size_t I) { E[I] = {R.ith(I) >> 1, I}; });
  return E;
}

template <int B> void runForB(size_t N) {
  using M = pam_map<uint64_t, uint64_t, B>;
  auto E1 = makeEntries(N, 1);
  auto E2 = makeEntries(N, 2);
  auto ESmall = makeEntries(std::max<size_t>(1, N / 1000), 3);
  M M1(E1), M2(E2), MSmall(ESmall);

  double Build = time_par([&] { M X(E1); });
  double Filter = time_par([&] {
    auto F = M1.filter([](const Entry &X) { return X.second % 3 == 0; });
  });
  size_t Ins = std::max<size_t>(1, N / 200);
  double Insert = median_time(
      [&] {
        M X = M1;
        for (size_t I = 0; I < Ins; ++I)
          X.insert_inplace(hash64(I) | 1, I);
      },
      g_reps);
  size_t Q = N / 4;
  double Find = time_par([&] {
    std::atomic<uint64_t> H{0};
    par::parallel_for(0, Q, [&](size_t I) {
      if (M1.contains(E1[(I * 37) % N].first))
        H.fetch_add(1, std::memory_order_relaxed);
    });
  });
  size_t RQ = std::max<size_t>(1, N / 200);
  double Range = time_par([&] {
    par::parallel_for(
        0, RQ,
        [&](size_t I) {
          uint64_t Lo = hash64(I) >> 1;
          auto R = M1.range(Lo, Lo + (UINT64_MAX >> 12));
        },
        1);
  });
  double Union = time_par([&] { auto U = M::map_union(M1, M2); });
  double UnionImbal =
      time_par([&] { auto U = M::map_union(M1, MSmall); });
  std::printf("B=%5d build=%8.4f filter=%8.4f insert(%zu)=%8.4f "
              "find=%8.4f range=%8.4f union=%8.4f union-imbal=%8.4f\n",
              B, Build, Filter, Ins, Insert, Find, Range, Union, UnionImbal);
}

} // namespace

int main(int argc, char **argv) {
  size_t N = arg_size(argc, argv, "n", 1000000);
  g_reps = static_cast<int>(arg_size(argc, argv, "reps", 3));
  print_header("Fig. 12: primitive running times vs block size B "
               "(paper n=1e8; seconds)");
  runForB<0>(N); // P-tree reference (printed as B=0).
  runForB<1>(N);
  runForB<2>(N);
  runForB<8>(N);
  runForB<32>(N);
  runForB<128>(N);
  runForB<512>(N);
  runForB<2048>(N);
  return 0;
}
