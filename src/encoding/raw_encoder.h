//===- raw_encoder.h - Blocked, uncompressed leaf encoding ----------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The default "empty" encoding scheme C of Def. 4.1: entries are stored as
/// a plain array inside the flat node. Works for arbitrary C++ entry types
/// (including entries owning nested PaC-trees, as in the range tree and the
/// graph representation): entries are properly constructed and destroyed.
///
/// Encoder interface (all encoders implement this; see Sec. 8 "Compression
/// on Blocks" for the user-defined-scheme design):
///   encoded_size(A, N)    bytes needed for A[0..N)
///   encode(A, N, Out)     write block; may move from A
///   decode(In, N, Out)    copy-construct all entries into raw storage Out
///   decode_move(In,N,Out) move entries out, leaving the block destroyed
///   for_each_while(In, N, F)  left-to-right visit, F returns false to stop
///   destroy(In, N)        destroy entries owned by an encoded block
///   can_be_parallel       true if decode is parallelizable (affects span,
///                         Sec. 6.2)
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_ENCODING_RAW_ENCODER_H
#define CPAM_ENCODING_RAW_ENCODER_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace cpam {

template <class Entry> struct raw_encoder {
  using entry_t = typename Entry::entry_t;
  static constexpr bool can_be_parallel = true;
  static constexpr bool is_trivial = std::is_trivially_copyable_v<entry_t>;

  static size_t encoded_size(const entry_t *, size_t N) {
    return N * sizeof(entry_t);
  }

  static void encode(entry_t *A, size_t N, uint8_t *Out) {
    if (N == 0)
      return; // Callers may pass null buffers for empty blocks.
    entry_t *Dst = reinterpret_cast<entry_t *>(Out);
    if constexpr (is_trivial) {
      std::memcpy(static_cast<void *>(Dst), A, N * sizeof(entry_t));
    } else {
      for (size_t I = 0; I < N; ++I)
        ::new (static_cast<void *>(Dst + I)) entry_t(std::move(A[I]));
    }
  }

  static void decode(const uint8_t *In, size_t N, entry_t *Out) {
    if (N == 0)
      return;
    const entry_t *Src = reinterpret_cast<const entry_t *>(In);
    if constexpr (is_trivial) {
      std::memcpy(static_cast<void *>(Out), Src, N * sizeof(entry_t));
    } else {
      for (size_t I = 0; I < N; ++I)
        ::new (static_cast<void *>(Out + I)) entry_t(Src[I]);
    }
  }

  static void decode_move(uint8_t *In, size_t N, entry_t *Out) {
    if (N == 0)
      return;
    entry_t *Src = reinterpret_cast<entry_t *>(In);
    if constexpr (is_trivial) {
      std::memcpy(static_cast<void *>(Out), Src, N * sizeof(entry_t));
    } else {
      for (size_t I = 0; I < N; ++I) {
        ::new (static_cast<void *>(Out + I)) entry_t(std::move(Src[I]));
        Src[I].~entry_t();
      }
    }
  }

  template <class F>
  static bool for_each_while(const uint8_t *In, size_t N, F &&f) {
    const entry_t *Src = reinterpret_cast<const entry_t *>(In);
    for (size_t I = 0; I < N; ++I)
      if (!f(Src[I]))
        return false;
    return true;
  }

  static void destroy(uint8_t *In, size_t N) {
    if constexpr (!std::is_trivially_destructible_v<entry_t>) {
      entry_t *Src = reinterpret_cast<entry_t *>(In);
      for (size_t I = 0; I < N; ++I)
        Src[I].~entry_t();
    }
  }
};

} // namespace cpam

#endif // CPAM_ENCODING_RAW_ENCODER_H
