//===- raw_encoder.h - Blocked, uncompressed leaf encoding ----------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The default "empty" encoding scheme C of Def. 4.1: entries are stored as
/// a plain array inside the flat node. Works for arbitrary C++ entry types
/// (including entries owning nested PaC-trees, as in the range tree and the
/// graph representation): entries are properly constructed and destroyed.
///
/// Encoder interface (all encoders implement this; see Sec. 8 "Compression
/// on Blocks" for the user-defined-scheme design):
///   encoded_size(A, N)    bytes needed for A[0..N)
///   encode(A, N, Out)     write block; may move from A
///   decode(In, N, Out)    copy-construct all entries into raw storage Out
///   decode_move(In,N,Out) move entries out, leaving the block destroyed
///   for_each_while(In, N, F)  left-to-right visit, F returns false to stop
///   destroy(In, N)        destroy entries owned by an encoded block
///   can_be_parallel       true if decode is parallelizable (affects span,
///                         Sec. 6.2)
///
/// Streaming cursor interface (used by the flat-leaf set-operation fast
/// paths, which merge encoded blocks without materializing them):
///
///   read_cursor(In, N, Consume)  yields the block's entries one at a time:
///     done()      no entries left
///     peek()      const ref to the current entry (valid until the cursor
///                 advances)
///     take()      moves the current entry out and advances; when Consume is
///                 false the entry is copied instead (the block stays alive)
///     skip()      advances, discarding the current entry
///     release()   destroys any unconsumed entries the cursor owns; also run
///                 by the destructor, so abandoning a cursor mid-block leaks
///                 nothing. With Consume set the caller must not destroy the
///                 block's entries again (free the shell bytes only).
///
///   write_cursor(Buf, MaxN)  appends entries into an output block staged in
///   caller-owned Buf (at least max_bytes(MaxN) bytes):
///     push(E)     appends E (moved); keys must arrive in strictly
///                 increasing order for delta-coded schemes
///     push_n(A,N) batch append: one tight loop with the chain state in
///                 registers (a memcpy for the raw scheme)
///     count()     entries pushed since the last cut()/finish()
///     bytes()     exact encoded payload size of those entries
///     cut(Out)    seals the current chunk as a complete, independently
///                 decodable block in Out (bytes() bytes) and restarts the
///                 cursor at the buffer base: for delta-coded schemes the
///                 next pushed key is encoded full-width, beginning a fresh
///                 delta chain, so one chunk-sized buffer can emit any
///                 number of finished leaves from a single entry stream
///     finish(Out) cut() under its end-of-stream name
///     drain(Out)  moves the staged chunk into raw entry storage Out
///                 instead (the fallback when the tail of a stream is too
///                 short to be a legal leaf) and resets the cursor
///     release()   drops staged entries; also run by the destructor.
///   stages_entries is true when the staged bytes are themselves a plain
///   entry array exposed via staged() (raw encoding), letting callers build
///   trees from the staging area with zero extra moves.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_ENCODING_RAW_ENCODER_H
#define CPAM_ENCODING_RAW_ENCODER_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace cpam {

template <class Entry> struct raw_encoder {
  using entry_t = typename Entry::entry_t;
  static constexpr bool can_be_parallel = true;
  static constexpr bool is_trivial = std::is_trivially_copyable_v<entry_t>;

  static size_t encoded_size(const entry_t *, size_t N) {
    return N * sizeof(entry_t);
  }

  static void encode(entry_t *A, size_t N, uint8_t *Out) {
    if (N == 0)
      return; // Callers may pass null buffers for empty blocks.
    entry_t *Dst = reinterpret_cast<entry_t *>(Out);
    if constexpr (is_trivial) {
      std::memcpy(static_cast<void *>(Dst), A, N * sizeof(entry_t));
    } else {
      for (size_t I = 0; I < N; ++I)
        ::new (static_cast<void *>(Dst + I)) entry_t(std::move(A[I]));
    }
  }

  static void decode(const uint8_t *In, size_t N, entry_t *Out) {
    if (N == 0)
      return;
    const entry_t *Src = reinterpret_cast<const entry_t *>(In);
    if constexpr (is_trivial) {
      std::memcpy(static_cast<void *>(Out), Src, N * sizeof(entry_t));
    } else {
      for (size_t I = 0; I < N; ++I)
        ::new (static_cast<void *>(Out + I)) entry_t(Src[I]);
    }
  }

  static void decode_move(uint8_t *In, size_t N, entry_t *Out) {
    if (N == 0)
      return;
    entry_t *Src = reinterpret_cast<entry_t *>(In);
    if constexpr (is_trivial) {
      std::memcpy(static_cast<void *>(Out), Src, N * sizeof(entry_t));
    } else {
      for (size_t I = 0; I < N; ++I) {
        ::new (static_cast<void *>(Out + I)) entry_t(std::move(Src[I]));
        Src[I].~entry_t();
      }
    }
  }

  template <class F>
  static bool for_each_while(const uint8_t *In, size_t N, F &&f) {
    const entry_t *Src = reinterpret_cast<const entry_t *>(In);
    for (size_t I = 0; I < N; ++I)
      if (!f(Src[I]))
        return false;
    return true;
  }

  static void destroy(uint8_t *In, size_t N) {
    if constexpr (!std::is_trivially_destructible_v<entry_t>) {
      entry_t *Src = reinterpret_cast<entry_t *>(In);
      for (size_t I = 0; I < N; ++I)
        Src[I].~entry_t();
    }
  }

  /// Streaming reader over an encoded block. With \p Consume set, entries
  /// are moved out as they are taken and the block's entries are destroyed
  /// by the time the cursor is done (or released) — the caller then frees
  /// only the shell bytes. A block of a shared node must use Consume=false.
  class read_cursor {
  public:
    read_cursor(const uint8_t *In, size_t N, bool Consume = false)
        // Consuming cursors mutate the payload of a uniquely owned block.
        : Src(reinterpret_cast<entry_t *>(const_cast<uint8_t *>(In))), N(N),
          Consume(Consume) {}
    read_cursor(const read_cursor &) = delete;
    read_cursor &operator=(const read_cursor &) = delete;
    ~read_cursor() { release(); }

    bool done() const { return I == N; }
    size_t remaining() const { return N - I; }
    const entry_t &peek() const {
      assert(I < N && "peek past the end of the block");
      return Src[I];
    }
    entry_t take() {
      assert(I < N && "take past the end of the block");
      if constexpr (std::is_copy_constructible_v<entry_t>) {
        if (!Consume)
          return Src[I++];
      } else {
        assert(Consume && "move-only entries require a consuming cursor");
      }
      entry_t E = std::move(Src[I]);
      Src[I].~entry_t();
      ++I;
      return E;
    }
    void skip() {
      assert(I < N && "skip past the end of the block");
      if (Consume)
        Src[I].~entry_t();
      ++I;
    }
    /// Destroys the unconsumed tail of a consuming cursor.
    void release() {
      if (Consume)
        for (; I < N; ++I)
          Src[I].~entry_t();
      I = N;
    }

  private:
    entry_t *Src;
    size_t N;
    size_t I = 0;
    bool Consume;
  };

  /// Streaming writer: the staging buffer is the entry array itself, which
  /// doubles as the encoded payload (the raw scheme is the identity).
  class write_cursor {
  public:
    static constexpr bool stages_entries = true;
    static size_t max_bytes(size_t MaxN) { return MaxN * sizeof(entry_t); }

    write_cursor(uint8_t *Buf, size_t MaxN)
        : A(reinterpret_cast<entry_t *>(Buf)), Cap(MaxN) {
      static_assert(alignof(entry_t) <= 16,
                    "entry alignment beyond 16 unsupported");
    }
    write_cursor(const write_cursor &) = delete;
    write_cursor &operator=(const write_cursor &) = delete;
    ~write_cursor() { release(); }

    void push(entry_t E) {
      assert(N < Cap && "write cursor overflow");
      ::new (static_cast<void *>(A + N)) entry_t(std::move(E));
      ++N;
    }
    /// Batch push: moves \p Src[0..Count) into the staging in one pass
    /// (a memcpy for trivially copyable entries).
    void push_n(entry_t *Src, size_t Count) {
      assert(N + Count <= Cap && "write cursor overflow");
      if constexpr (is_trivial) {
        if (Count)
          std::memcpy(static_cast<void *>(A + N), Src,
                      Count * sizeof(entry_t));
      } else {
        for (size_t I = 0; I < Count; ++I)
          ::new (static_cast<void *>(A + N + I)) entry_t(std::move(Src[I]));
      }
      N += Count;
    }
    size_t count() const { return N; }
    size_t bytes() const { return N * sizeof(entry_t); }
    /// Staged entries (moving out of them is allowed; the cursor still
    /// destroys the husks).
    entry_t *staged() { return A; }

    /// Seals the current chunk into \p Out (moving the staged entries) and
    /// restarts at the buffer base; the raw scheme has no cross-entry state
    /// to reset, so a cut block is trivially self-contained.
    void cut(uint8_t *Out) {
      encode(A, N, Out); // Moves non-trivial entries out of the staging.
      release();
    }
    void finish(uint8_t *Out) { cut(Out); }
    void drain(entry_t *Out) {
      if constexpr (is_trivial) {
        if (N)
          std::memcpy(static_cast<void *>(Out), A, N * sizeof(entry_t));
      } else {
        for (size_t I = 0; I < N; ++I)
          ::new (static_cast<void *>(Out + I)) entry_t(std::move(A[I]));
      }
      release();
    }
    void release() {
      if constexpr (!std::is_trivially_destructible_v<entry_t>)
        for (size_t I = 0; I < N; ++I)
          A[I].~entry_t();
      N = 0;
    }

  private:
    entry_t *A;
    size_t N = 0;
    [[maybe_unused]] size_t Cap;
  };
};

} // namespace cpam

#endif // CPAM_ENCODING_RAW_ENCODER_H
