//===- varint.h - Variable-length byte codes ------------------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Variable-length byte codes ("byte codes" in the paper, Sec. 3): an
/// unsigned integer is stored in 7-bit groups, least significant first, with
/// the high bit of each byte marking continuation. The paper uses byte codes
/// rather than gamma codes because they are cheap to encode/decode and waste
/// little space [Shun, Dhulipala, Blelloch, DCC'15].
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_ENCODING_VARINT_H
#define CPAM_ENCODING_VARINT_H

#include <cstddef>
#include <cstdint>

namespace cpam {

/// Number of bytes byte-coding \p X requires (1..10).
inline size_t varint_size(uint64_t X) {
  size_t N = 1;
  while (X >= 0x80) {
    X >>= 7;
    ++N;
  }
  return N;
}

/// Encodes \p X at \p Out; returns one past the last byte written.
inline uint8_t *varint_encode(uint64_t X, uint8_t *Out) {
  while (X >= 0x80) {
    *Out++ = static_cast<uint8_t>(X) | 0x80;
    X >>= 7;
  }
  *Out++ = static_cast<uint8_t>(X);
  return Out;
}

/// Decodes a value at \p In into \p X; returns one past the last byte read.
inline const uint8_t *varint_decode(const uint8_t *In, uint64_t &X) {
  uint64_t Result = 0;
  int Shift = 0;
  uint8_t Byte;
  do {
    Byte = *In++;
    Result |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
    Shift += 7;
  } while (Byte & 0x80);
  X = Result;
  return In;
}

/// ZigZag maps signed to unsigned so small magnitudes stay small.
inline uint64_t zigzag_encode(int64_t X) {
  return (static_cast<uint64_t>(X) << 1) ^ static_cast<uint64_t>(X >> 63);
}

inline int64_t zigzag_decode(uint64_t X) {
  return static_cast<int64_t>(X >> 1) ^ -static_cast<int64_t>(X & 1);
}

} // namespace cpam

#endif // CPAM_ENCODING_VARINT_H
