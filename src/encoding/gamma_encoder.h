//===- gamma_encoder.h - Elias gamma difference encoding --------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A user-defined encoding scheme demonstrating the Sec. 8 extension point:
/// difference encoding with Elias gamma codes instead of byte codes. Gamma
/// codes a positive integer x as (unary length of x) ++ (binary remainder):
/// 2*floor(log2 x) + 1 bits. Denser than byte codes for tiny deltas (a
/// delta of 1 costs 1 bit vs 8), slower to decode — the tradeoff the paper
/// cites for preferring byte codes by default [49].
///
/// Set-only (no values); keys within a block are strictly increasing.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_ENCODING_GAMMA_ENCODER_H
#define CPAM_ENCODING_GAMMA_ENCODER_H

#include <cassert>
#include <cstring>
#include <type_traits>

#include "src/encoding/varint.h"

namespace cpam {

namespace detail {

/// Append-only MSB-first bit writer over a byte buffer.
class BitWriter {
public:
  explicit BitWriter(uint8_t *Out) : Out(Out) {}
  void put(uint64_t Bits, int Count) { // Writes the low Count bits, MSB first.
    for (int I = Count - 1; I >= 0; --I) {
      if (BitPos == 0)
        Out[Byte] = 0;
      if ((Bits >> I) & 1)
        Out[Byte] |= static_cast<uint8_t>(0x80u >> BitPos);
      if (++BitPos == 8) {
        BitPos = 0;
        ++Byte;
      }
    }
  }

private:
  uint8_t *Out;
  size_t Byte = 0;
  int BitPos = 0;
};

/// MSB-first bit reader.
class BitReader {
public:
  explicit BitReader(const uint8_t *In) : In(In) {}
  int bit() {
    int B = (In[Byte] >> (7 - BitPos)) & 1;
    if (++BitPos == 8) {
      BitPos = 0;
      ++Byte;
    }
    return B;
  }
  uint64_t bits(int Count) {
    uint64_t X = 0;
    for (int I = 0; I < Count; ++I)
      X = (X << 1) | static_cast<uint64_t>(bit());
    return X;
  }

private:
  const uint8_t *In;
  size_t Byte = 0;
  int BitPos = 0;
};

inline int bitLength(uint64_t X) {
  assert(X > 0 && "gamma codes encode positive integers only");
  return 64 - __builtin_clzll(X);
}

/// Bits needed to gamma-code X (>= 1).
inline size_t gammaBits(uint64_t X) {
  return 2 * static_cast<size_t>(bitLength(X)) - 1;
}

inline void gammaPut(BitWriter &W, uint64_t X) {
  int L = bitLength(X);
  W.put(0, L - 1);          // Unary prefix: L-1 zeros.
  W.put(X, L);              // X itself starts with a 1 bit.
}

inline uint64_t gammaGet(BitReader &R) {
  int Zeros = 0;
  while (R.bit() == 0)
    ++Zeros;
  uint64_t X = 1;
  if (Zeros > 0)
    X = (uint64_t(1) << Zeros) | R.bits(Zeros);
  return X;
}

} // namespace detail

/// Difference encoding with Elias gamma codes (sets of unsigned integers).
/// Layout: varint(first key), then gamma(delta) for each following key,
/// padded to a byte boundary.
template <class Entry> struct gamma_encoder {
  using entry_t = typename Entry::entry_t;
  using key_t = typename Entry::key_t;
  static_assert(!Entry::has_val, "gamma_encoder supports sets only");
  static_assert(std::is_integral_v<key_t> && std::is_unsigned_v<key_t>,
                "gamma difference encoding requires unsigned integer keys");
  static constexpr bool can_be_parallel = false;

  static size_t encoded_size(const entry_t *A, size_t N) {
    if (N == 0)
      return 0;
    size_t Bits = 0;
    for (size_t I = 1; I < N; ++I) {
      uint64_t Delta = static_cast<uint64_t>(Entry::get_key(A[I])) -
                       static_cast<uint64_t>(Entry::get_key(A[I - 1]));
      assert(Delta > 0 && "block keys must be strictly increasing");
      Bits += detail::gammaBits(Delta);
    }
    return varint_size(static_cast<uint64_t>(Entry::get_key(A[0]))) +
           (Bits + 7) / 8;
  }

  static void encode(entry_t *A, size_t N, uint8_t *Out) {
    if (N == 0)
      return;
    Out = varint_encode(static_cast<uint64_t>(Entry::get_key(A[0])), Out);
    detail::BitWriter W(Out);
    for (size_t I = 1; I < N; ++I) {
      uint64_t Delta = static_cast<uint64_t>(Entry::get_key(A[I])) -
                       static_cast<uint64_t>(Entry::get_key(A[I - 1]));
      detail::gammaPut(W, Delta);
    }
  }

  template <class F>
  static bool for_each_while(const uint8_t *In, size_t N, F &&f) {
    if (N == 0)
      return true;
    uint64_t Prev;
    In = varint_decode(In, Prev);
    if (!f(static_cast<key_t>(Prev)))
      return false;
    detail::BitReader R(In);
    for (size_t I = 1; I < N; ++I) {
      Prev += detail::gammaGet(R);
      if (!f(static_cast<key_t>(Prev)))
        return false;
    }
    return true;
  }

  static void decode(const uint8_t *In, size_t N, entry_t *Out) {
    size_t I = 0;
    for_each_while(In, N, [&](const entry_t &E) {
      ::new (static_cast<void *>(Out + I++)) entry_t(E);
      return true;
    });
  }

  static void decode_move(uint8_t *In, size_t N, entry_t *Out) {
    decode(In, N, Out);
  }

  static void destroy(uint8_t *, size_t) {}

  /// Streaming reader: varint first key, then one gamma code per advance.
  class read_cursor {
  public:
    read_cursor(const uint8_t *In, size_t N, bool /*Consume*/ = false)
        : Remaining(N) {
      if (Remaining) {
        In = varint_decode(In, Prev);
        R = detail::BitReader(In);
        Cur = static_cast<key_t>(Prev);
      }
    }
    read_cursor(const read_cursor &) = delete;
    read_cursor &operator=(const read_cursor &) = delete;

    bool done() const { return Remaining == 0; }
    size_t remaining() const { return Remaining; }
    const entry_t &peek() const {
      assert(Remaining && "peek past the end of the block");
      return Cur;
    }
    entry_t take() {
      entry_t E = Cur;
      skip();
      return E;
    }
    void skip() {
      assert(Remaining && "skip past the end of the block");
      if (--Remaining) {
        Prev += detail::gammaGet(R);
        Cur = static_cast<key_t>(Prev);
      }
    }
    void release() { Remaining = 0; }

  private:
    size_t Remaining;
    uint64_t Prev = 0;
    detail::BitReader R{nullptr};
    entry_t Cur{};
  };

  /// Streaming writer: gamma-codes each delta as it is pushed; bytes() is
  /// the exact padded payload size so far and finish() is a single memcpy.
  /// cut() seals the bytes pushed so far (padding the gamma stream to a
  /// byte boundary) and restarts at the buffer base: the key after a cut is
  /// varint-coded full-width, so every sealed chunk decodes independently.
  class write_cursor {
  public:
    static constexpr bool stages_entries = false;
    /// Worst case: 10-byte varint first key, then up to 127 gamma bits
    /// (= 16 bytes) per delta.
    static size_t max_bytes(size_t MaxN) { return 10 + 16 * MaxN; }

    write_cursor(uint8_t *Buf, size_t /*MaxN*/) : Base(Buf) {}
    write_cursor(const write_cursor &) = delete;
    write_cursor &operator=(const write_cursor &) = delete;

    void push(entry_t E) {
      uint64_t K = static_cast<uint64_t>(Entry::get_key(E));
      if (N == 0) {
        uint8_t *Out = varint_encode(K, Base);
        VarBytes = static_cast<size_t>(Out - Base);
        W = detail::BitWriter(Out);
      } else {
        assert(K > Prev && "block keys must be strictly increasing");
        uint64_t Delta = K - Prev;
        detail::gammaPut(W, Delta);
        Bits += detail::gammaBits(Delta);
      }
      Prev = K;
      ++N;
    }
    /// Batch push: gamma-codes \p Src[0..Count) in one tight loop with the
    /// bit-writer state held locally (one writeback).
    void push_n(const entry_t *Src, size_t Count) {
      if (Count == 0)
        return;
      size_t First = 0; // Entries already accounted for by push() below.
      if (N == 0) {
        push(Src[0]); // Counts the entry itself (N becomes 1).
        First = 1;
      }
      detail::BitWriter LW = W;
      uint64_t P = Prev;
      size_t B = Bits;
      for (size_t I = First; I < Count; ++I) {
        uint64_t K = static_cast<uint64_t>(Entry::get_key(Src[I]));
        assert(K > P && "block keys must be strictly increasing");
        uint64_t Delta = K - P;
        detail::gammaPut(LW, Delta);
        B += detail::gammaBits(Delta);
        P = K;
      }
      W = LW;
      Prev = P;
      Bits = B;
      N += Count - First;
    }
    size_t count() const { return N; }
    size_t bytes() const {
      return N == 0 ? 0 : VarBytes + (Bits + 7) / 8;
    }

    /// Seals the current chunk into \p Dst and restarts: release() zeroes
    /// the bit count and Prev, so the next push re-encodes its key as a
    /// full-width varint at the buffer base.
    void cut(uint8_t *Dst) {
      if (N)
        std::memcpy(Dst, Base, bytes());
      release();
    }
    void finish(uint8_t *Dst) { cut(Dst); }
    void drain(entry_t *DstEntries) {
      decode(Base, N, DstEntries);
      release();
    }
    void release() {
      N = 0;
      Bits = 0;
      VarBytes = 0;
      Prev = 0;
    }

  private:
    uint8_t *Base;
    detail::BitWriter W{nullptr};
    size_t N = 0;
    size_t Bits = 0;
    size_t VarBytes = 0;
    uint64_t Prev = 0;
  };
};

} // namespace cpam

#endif // CPAM_ENCODING_GAMMA_ENCODER_H
