//===- diff_encoder.h - Difference (delta) encoding for integer keys ------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Difference encoding C_DE of Sec. 3: within a block, the first key is
/// stored in full and every following key as the byte-coded difference from
/// its predecessor (keys in a block are strictly increasing). Two variants:
///
///  - diff_encoder: keys delta/byte-coded; values (if any) stored as raw
///    bytes. This is CPAM's default difference encoding.
///  - diff_val_encoder: keys delta/byte-coded and values byte-coded too —
///    the "custom encoder" the paper's inverted index uses to reach 7.8x
///    space savings (Sec. 10.3).
///
/// Decoding is inherently sequential within a block (each key depends on the
/// previous one), i.e. `can_be_parallel = false`; Thm. 6.13 describes the
/// span impact.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_ENCODING_DIFF_ENCODER_H
#define CPAM_ENCODING_DIFF_ENCODER_H

#include <cassert>
#include <cstring>
#include <type_traits>

#include "src/encoding/varint.h"

namespace cpam {

namespace detail {

/// Shared implementation; \p ValsByteCoded selects the value representation.
template <class Entry, bool ValsByteCoded> struct diff_encoder_impl {
  using entry_t = typename Entry::entry_t;
  using key_t = typename Entry::key_t;
  static_assert(std::is_integral_v<key_t> && std::is_unsigned_v<key_t>,
                "difference encoding requires unsigned integral keys");
  static constexpr bool has_val = Entry::has_val;
  static constexpr bool can_be_parallel = false;

  static size_t value_bytes([[maybe_unused]] const entry_t &E) {
    if constexpr (!has_val)
      return 0;
    else if constexpr (ValsByteCoded)
      return varint_size(static_cast<uint64_t>(Entry::get_val(E)));
    else
      return sizeof(typename Entry::val_t);
  }

  static uint8_t *encode_value([[maybe_unused]] const entry_t &E,
                               uint8_t *Out) {
    if constexpr (!has_val) {
      return Out;
    } else if constexpr (ValsByteCoded) {
      return varint_encode(static_cast<uint64_t>(Entry::get_val(E)), Out);
    } else {
      std::memcpy(Out, &Entry::get_val(E), sizeof(typename Entry::val_t));
      return Out + sizeof(typename Entry::val_t);
    }
  }

  static const uint8_t *decode_entry(const uint8_t *In, uint64_t &PrevKey,
                                     bool First, entry_t &Out) {
    uint64_t X;
    In = varint_decode(In, X);
    PrevKey = First ? X : PrevKey + X;
    if constexpr (!has_val) {
      Out = static_cast<key_t>(PrevKey);
    } else {
      using val_t = typename Entry::val_t;
      val_t V;
      if constexpr (ValsByteCoded) {
        uint64_t VRaw;
        In = varint_decode(In, VRaw);
        V = static_cast<val_t>(VRaw);
      } else {
        std::memcpy(&V, In, sizeof(val_t));
        In += sizeof(val_t);
      }
      Out = entry_t(static_cast<key_t>(PrevKey), V);
    }
    return In;
  }

  static size_t encoded_size(const entry_t *A, size_t N) {
    if (N == 0)
      return 0;
    size_t Bytes = varint_size(static_cast<uint64_t>(Entry::get_key(A[0]))) +
                   value_bytes(A[0]);
    for (size_t I = 1; I < N; ++I) {
      uint64_t Delta = static_cast<uint64_t>(Entry::get_key(A[I])) -
                       static_cast<uint64_t>(Entry::get_key(A[I - 1]));
      assert(Delta > 0 && "block keys must be strictly increasing");
      Bytes += varint_size(Delta) + value_bytes(A[I]);
    }
    return Bytes;
  }

  static void encode(entry_t *A, size_t N, uint8_t *Out) {
    if (N == 0)
      return;
    Out = varint_encode(static_cast<uint64_t>(Entry::get_key(A[0])), Out);
    Out = encode_value(A[0], Out);
    for (size_t I = 1; I < N; ++I) {
      uint64_t Delta = static_cast<uint64_t>(Entry::get_key(A[I])) -
                       static_cast<uint64_t>(Entry::get_key(A[I - 1]));
      Out = varint_encode(Delta, Out);
      Out = encode_value(A[I], Out);
    }
  }

  static void decode(const uint8_t *In, size_t N, entry_t *Out) {
    uint64_t Prev = 0;
    for (size_t I = 0; I < N; ++I) {
      entry_t E;
      In = decode_entry(In, Prev, I == 0, E);
      ::new (static_cast<void *>(Out + I)) entry_t(E);
    }
  }

  static void decode_move(uint8_t *In, size_t N, entry_t *Out) {
    decode(In, N, Out);
  }

  template <class F>
  static bool for_each_while(const uint8_t *In, size_t N, F &&f) {
    uint64_t Prev = 0;
    for (size_t I = 0; I < N; ++I) {
      entry_t E;
      In = decode_entry(In, Prev, I == 0, E);
      if (!f(E))
        return false;
    }
    return true;
  }

  static void destroy(uint8_t *, size_t) {}

  /// Streaming reader: decodes one entry per advance (no block
  /// materialization). Delta blocks own no C++ objects, so Consume only
  /// matters for the caller's shell bookkeeping.
  class read_cursor {
  public:
    read_cursor(const uint8_t *In, size_t N, bool /*Consume*/ = false)
        : In(In), Remaining(N) {
      if (Remaining)
        this->In = decode_entry(this->In, Prev, /*First=*/true, Cur);
    }
    read_cursor(const read_cursor &) = delete;
    read_cursor &operator=(const read_cursor &) = delete;

    bool done() const { return Remaining == 0; }
    size_t remaining() const { return Remaining; }
    const entry_t &peek() const {
      assert(Remaining && "peek past the end of the block");
      return Cur;
    }
    entry_t take() {
      entry_t E = Cur;
      skip();
      return E;
    }
    void skip() {
      assert(Remaining && "skip past the end of the block");
      if (--Remaining)
        In = decode_entry(In, Prev, /*First=*/false, Cur);
    }
    void release() { Remaining = 0; }

  private:
    const uint8_t *In;
    size_t Remaining;
    uint64_t Prev = 0;
    entry_t Cur{};
  };

  /// Streaming writer: byte-codes each entry as it is pushed, so bytes()
  /// is exact at every point and finish() is a single memcpy — no
  /// encoded_size or encode pass over a materialized array. cut() seals the
  /// bytes pushed so far as one complete block and restarts the delta
  /// chain, so the key after a cut is encoded full-width and every sealed
  /// chunk decodes independently.
  class write_cursor {
  public:
    static constexpr bool stages_entries = false;
    /// First key costs up to a full-width varint; every entry at most a
    /// full-width delta plus its value bytes.
    static size_t max_bytes(size_t MaxN) {
      size_t PerEntry = 10; // 64-bit varint worst case.
      if constexpr (has_val)
        PerEntry += ValsByteCoded ? 10 : sizeof(typename Entry::val_t);
      return MaxN * PerEntry;
    }

    write_cursor(uint8_t *Buf, size_t /*MaxN*/) : Base(Buf), Out(Buf) {}
    write_cursor(const write_cursor &) = delete;
    write_cursor &operator=(const write_cursor &) = delete;

    void push(entry_t E) {
      uint64_t K = static_cast<uint64_t>(Entry::get_key(E));
      if (N == 0) {
        Out = varint_encode(K, Out);
      } else {
        assert(K > Prev && "block keys must be strictly increasing");
        Out = varint_encode(K - Prev, Out);
      }
      Out = encode_value(E, Out);
      Prev = K;
      ++N;
    }
    /// Batch push: byte-codes \p Src[0..Count) in one tight loop with the
    /// chain state held in registers (one writeback), which measures well
    /// below Count individual push() calls.
    void push_n(const entry_t *Src, size_t Count) {
      uint8_t *O = Out;
      uint64_t P = Prev;
      size_t I = 0;
      if (N == 0 && Count) {
        P = static_cast<uint64_t>(Entry::get_key(Src[0]));
        O = varint_encode(P, O);
        O = encode_value(Src[0], O);
        I = 1;
      }
      for (; I < Count; ++I) {
        uint64_t K = static_cast<uint64_t>(Entry::get_key(Src[I]));
        assert(K > P && "block keys must be strictly increasing");
        O = varint_encode(K - P, O);
        O = encode_value(Src[I], O);
        P = K;
      }
      Out = O;
      Prev = P;
      N += Count;
    }
    size_t count() const { return N; }
    size_t bytes() const { return static_cast<size_t>(Out - Base); }

    /// Seals the current chunk into \p Dst and restarts: release() zeroes
    /// N and Prev, so the next push re-encodes its key full-width.
    void cut(uint8_t *Dst) {
      if (N)
        std::memcpy(Dst, Base, bytes());
      release();
    }
    void finish(uint8_t *Dst) { cut(Dst); }
    void drain(entry_t *DstEntries) {
      decode(Base, N, DstEntries);
      release();
    }
    void release() {
      Out = Base;
      N = 0;
      Prev = 0;
    }

  private:
    uint8_t *Base;
    uint8_t *Out;
    size_t N = 0;
    uint64_t Prev = 0;
  };
};

} // namespace detail

/// Difference encoding: delta/byte-coded keys, raw values.
template <class Entry>
using diff_encoder = detail::diff_encoder_impl<Entry, false>;

/// Difference encoding with byte-coded values as well.
template <class Entry>
using diff_val_encoder = detail::diff_encoder_impl<Entry, true>;

} // namespace cpam

#endif // CPAM_ENCODING_DIFF_ENCODER_H
