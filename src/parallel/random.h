//===- random.h - Deterministic pseudo-random utilities -------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-based deterministic randomness. Used by the data generators
/// (rMAT, Zipf) and by the C-tree baseline's head selection. Deterministic
/// seeds keep every experiment reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_PARALLEL_RANDOM_H
#define CPAM_PARALLEL_RANDOM_H

#include <cstdint>

namespace cpam {

/// Stateless 64-bit mix (SplitMix64 finalizer). High-quality and cheap;
/// suitable for hashing indices into pseudo-random streams.
inline uint64_t hash64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// A tiny counter-based RNG: the I-th draw of stream S is hash64(S, I), so
/// parallel loops can draw independently without shared state.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0) : Seed(Seed) {}

  /// I-th 64-bit value of this stream.
  uint64_t ith(uint64_t I) const { return hash64(Seed ^ hash64(I)); }
  /// I-th value reduced to [0, Bound).
  uint64_t ith(uint64_t I, uint64_t Bound) const { return ith(I) % Bound; }
  /// I-th draw as a double in [0, 1).
  double ith_double(uint64_t I) const {
    return static_cast<double>(ith(I) >> 11) * 0x1.0p-53;
  }
  /// Derives an independent child stream.
  Rng fork(uint64_t Salt) const { return Rng(hash64(Seed ^ (Salt + 0x1234))); }

  /// Stateful draw (advances the stream).
  uint64_t next() { return ith(Counter++); }
  uint64_t next(uint64_t Bound) { return next() % Bound; }
  double next_double() { return ith_double(Counter++); }

private:
  uint64_t Seed;
  uint64_t Counter = 0;
};

} // namespace cpam

#endif // CPAM_PARALLEL_RANDOM_H
