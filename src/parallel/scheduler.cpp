//===- scheduler.cpp - Work-stealing fork-join scheduler -----------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "src/parallel/scheduler.h"

#include <chrono>
#include <cstdlib>
#include <random>

using namespace cpam;
using namespace cpam::par;

namespace {
thread_local int ThisWorkerId = -1;

int chooseNumWorkers() {
  if (const char *Env = std::getenv("CPAM_NUM_THREADS")) {
    int N = std::atoi(Env);
    if (N > 0)
      return N;
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : static_cast<int>(HW);
}

/// Cheap per-thread RNG used only for victim selection.
unsigned nextVictimSeed() {
  thread_local unsigned Seed =
      std::hash<std::thread::id>()(std::this_thread::get_id()) | 1u;
  Seed = Seed * 1664525u + 1013904223u;
  return Seed;
}
} // namespace

Scheduler &Scheduler::get() {
  static Scheduler S;
  return S;
}

int Scheduler::workerId() { return ThisWorkerId; }

int Scheduler::threadSlot() {
  // Not cached across calls so a thread that later joins the pool (the main
  // thread becomes worker 0 when it first constructs the scheduler) starts
  // reporting its worker id.
  if (ThisWorkerId >= 0)
    return ThisWorkerId;
  static std::atomic<int> NextForeign{0};
  thread_local int ForeignSlot =
      kForeignSlotBase + NextForeign.fetch_add(1, std::memory_order_relaxed);
  return ForeignSlot;
}

Scheduler::Scheduler()
    : NumWorkers(chooseNumWorkers()), Deques(NumWorkers) {
  // The constructing thread becomes worker 0 so that top-level calls from
  // main() participate in the pool.
  ThisWorkerId = 0;
  Threads.reserve(NumWorkers - 1);
  for (int I = 1; I < NumWorkers; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

Scheduler::~Scheduler() {
  Stop.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();
}

void Scheduler::push(int Id, Task *T) {
  WorkDeque &D = Deques[Id];
  std::lock_guard<std::mutex> Lock(D.M);
  D.Q.push_back(T);
}

bool Scheduler::tryReclaim(int Id, Task *T) {
  WorkDeque &D = Deques[Id];
  std::lock_guard<std::mutex> Lock(D.M);
  if (T->Taken)
    return false;
  // By the LIFO discipline of fork-join, an unclaimed task pushed by this
  // worker must be the newest entry in its deque.
  assert(!D.Q.empty() && D.Q.back() == T &&
         "unclaimed forked task should sit on top of the owner's deque");
  D.Q.pop_back();
  T->Taken = true;
  return true;
}

Task *Scheduler::popOwn(int Id) {
  WorkDeque &D = Deques[Id];
  std::lock_guard<std::mutex> Lock(D.M);
  if (D.Q.empty())
    return nullptr;
  Task *T = D.Q.back();
  D.Q.pop_back();
  T->Taken = true;
  return T;
}

Task *Scheduler::steal(int Id) {
  if (NumWorkers == 1)
    return nullptr;
  int Victim = static_cast<int>(nextVictimSeed() % NumWorkers);
  if (Victim == Id)
    return nullptr;
  WorkDeque &D = Deques[Victim];
  std::unique_lock<std::mutex> Lock(D.M, std::try_to_lock);
  if (!Lock.owns_lock() || D.Q.empty())
    return nullptr;
  Task *T = D.Q.front();
  D.Q.pop_front();
  T->Taken = true;
  return T;
}

void Scheduler::waitHelping(int Id, Task *T) {
  // The forked task was stolen; execute other pending work until it is done.
  int Spins = 0;
  while (!T->Done.load(std::memory_order_acquire)) {
    Task *Other = popOwn(Id);
    if (!Other)
      Other = steal(Id);
    if (Other) {
      runTask(Other);
      Spins = 0;
      continue;
    }
    if (++Spins > 256) {
      std::this_thread::yield();
      Spins = 0;
    }
  }
}

void Scheduler::workerLoop(int Id) {
  ThisWorkerId = Id;
  int Spins = 0;
  while (!Stop.load(std::memory_order_acquire)) {
    Task *T = popOwn(Id);
    if (!T)
      T = steal(Id);
    if (T) {
      runTask(T);
      Spins = 0;
      continue;
    }
    // Escalating backoff: a herd of idle workers spin-stealing interferes
    // badly with small sequential operations (mutex and cache-line
    // traffic), so after a short spinning phase idle workers go to sleep.
    ++Spins;
    if (Spins > 4096) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    } else if (Spins > 1024) {
      std::this_thread::yield();
    }
  }
}
