//===- scheduler.cpp - Work-stealing fork-join scheduler -----------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "src/parallel/scheduler.h"

#include <chrono>
#include <cstdlib>

#include "src/obs/trace.h"

using namespace cpam;
using namespace cpam::par;

namespace {
thread_local int ThisWorkerId = -1;

/// Tracks the singleton's lifetime for exit-time telemetry readers (see
/// Scheduler::alive()). File-scope atomic: trivially destructible, so it
/// stays readable at any point of static destruction.
std::atomic<bool> SchedulerAlive{false};

int chooseNumWorkers() {
  if (const char *Env = std::getenv("CPAM_NUM_THREADS")) {
    int N = std::atoi(Env);
    if (N > 0)
      return N;
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : static_cast<int>(HW);
}

/// Deque implementation for a fresh pool: the CPAM_LOCKFREE_SCHED
/// environment variable (0/1) wins; otherwise the compile-time default.
bool chooseLockfree() {
  if (const char *Env = std::getenv("CPAM_LOCKFREE_SCHED"))
    return std::atoi(Env) != 0;
  return CPAM_LOCKFREE_SCHED != 0;
}

/// Cheap per-thread RNG used only for victim selection.
unsigned nextVictimSeed() {
  thread_local unsigned Seed =
      std::hash<std::thread::id>()(std::this_thread::get_id()) | 1u;
  Seed = Seed * 1664525u + 1013904223u;
  return Seed;
}

/// One spin-wait hint (cheaper than yield; keeps the core's pipeline free
/// for the hyper-twin during short waits).
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

/// Exponential backoff between failed steal probes: the pause burst doubles
/// every 32 consecutive failures, capped at 64 pauses (~a few hundred ns).
inline void stealBackoff(int Failed) {
  int Shift = Failed >> 5;
  int Spins = 1 << (Shift > 6 ? 6 : Shift);
  for (int I = 0; I < Spins; ++I)
    cpuRelax();
}

/// Failed-probe thresholds of the idle escalation: spin (with the
/// exponential backoff above), then yield the core, then park. At ~100 ns
/// per probe the full spin+yield phase lasts a few hundred microseconds —
/// long enough to ride out a fork-join barrier, short enough that an idle
/// pool stops burning CPU almost immediately.
constexpr int kSpinProbes = 256;
constexpr int kYieldProbes = 1024;

/// Parked workers re-check for work at this interval even without a wake
/// signal: it bounds the delay of a push that lands in the fence-free wake
/// protocol's store-load window (see unparkOne). At 10 ms a parked worker
/// costs ~100 cheap scans per second — idle pools measure well under 1% of
/// one core — while the worst-case missed-wake delay stays invisible next
/// to any real parallel phase.
constexpr std::chrono::milliseconds kParkBackstop(10);
} // namespace

Scheduler &Scheduler::get() {
  static Scheduler S;
  return S;
}

int Scheduler::workerId() { return ThisWorkerId; }

bool Scheduler::alive() {
  return SchedulerAlive.load(std::memory_order_acquire);
}

int Scheduler::threadSlot() {
  // Not cached across calls so a thread that later joins the pool (the main
  // thread becomes worker 0 when it first constructs the scheduler) starts
  // reporting its worker id.
  if (ThisWorkerId >= 0)
    return ThisWorkerId;
  static std::atomic<int> NextForeign{0};
  thread_local int ForeignSlot =
      kForeignSlotBase + NextForeign.fetch_add(1, std::memory_order_relaxed);
  return ForeignSlot;
}

Scheduler::Scheduler()
    : NumWorkers(chooseNumWorkers()), UseLockfree(chooseLockfree()),
      MDeques(NumWorkers), LFDeques(NumWorkers), Stats(NumWorkers) {
  // The constructing thread becomes worker 0 so that top-level calls from
  // main() participate in the pool.
  ThisWorkerId = 0;
  Threads.reserve(NumWorkers - 1);
  for (int I = 1; I < NumWorkers; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
  SchedulerAlive.store(true, std::memory_order_release);
}

Scheduler::~Scheduler() {
  SchedulerAlive.store(false, std::memory_order_release);
  Stop.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> Lock(ParkM);
    ++WakeEpoch;
  }
  ParkCV.notify_all();
  {
    std::lock_guard<std::mutex> Lock(JoinM);
    ++JoinEpoch;
  }
  JoinCV.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats S;
  for (const WorkerStats &W : Stats) {
    S.Forks += W.Forks.load(std::memory_order_relaxed);
    S.InlineReclaims += W.InlineReclaims.load(std::memory_order_relaxed);
    S.Steals += W.Steals.load(std::memory_order_relaxed);
    S.FailedSteals += W.FailedSteals.load(std::memory_order_relaxed);
    S.Parks += W.Parks.load(std::memory_order_relaxed);
    S.Wakes += W.Wakes.load(std::memory_order_relaxed);
    S.JoinParks += W.JoinParks.load(std::memory_order_relaxed);
  }
  return S;
}

void Scheduler::statsReset() {
  for (WorkerStats &W : Stats) {
    W.Forks.store(0, std::memory_order_relaxed);
    W.InlineReclaims.store(0, std::memory_order_relaxed);
    W.Steals.store(0, std::memory_order_relaxed);
    W.FailedSteals.store(0, std::memory_order_relaxed);
    W.Parks.store(0, std::memory_order_relaxed);
    W.Wakes.store(0, std::memory_order_relaxed);
    W.JoinParks.store(0, std::memory_order_relaxed);
  }
}

void Scheduler::push(int Id, Task *T) {
  if (UseLockfree) {
    LFDeques[Id].push(T);
  } else {
    WorkDeque &D = MDeques[Id];
    std::lock_guard<std::mutex> Lock(D.M);
    D.Q.push_back(T);
    D.ApproxSize.store(D.Q.size(), std::memory_order_relaxed);
  }
  counter_bump(Stats[Id].Forks);
  // Per-fork instants only at the verbose trace level: forks are the
  // hottest event in the system and would wrap the ring in milliseconds.
  if (obs::trace::level() >= 2)
    obs::trace::instant("fork", "sched");
  unparkOne(Id);
}

void Scheduler::unparkOne(int Id) {
  // Deliberately fence-free: a seq_cst fence here would make the wake
  // handshake airtight but put ~20 ns on *every* fork. Instead the parker
  // fences after registering and re-scans for work, which closes the race
  // except for a store-load reordering window a few instructions wide; a
  // push that lands in it is caught by the parker's 10 ms backstop timeout
  // (and by the NumParked check of every subsequent push, which cannot
  // race the same registration). Wake-on-push is best-effort by design —
  // see README "Parallel runtime".
  if (NumJoinParked.load(std::memory_order_relaxed) != 0) {
    // A joiner parked on a long stolen branch can help with this fresh
    // work: poke the join channel too (same best-effort discipline).
    {
      std::lock_guard<std::mutex> Lock(JoinM);
      ++JoinEpoch;
    }
    JoinCV.notify_all();
  }
  if (NumParked.load(std::memory_order_relaxed) == 0)
    return;
  {
    std::lock_guard<std::mutex> Lock(ParkM);
    ++WakeEpoch;
  }
  ParkCV.notify_one();
  counter_bump(Stats[Id].Wakes);
}

bool Scheduler::tryReclaim(int Id, Task *T) {
  if (UseLockfree) {
    Task *P = nullptr;
    if (!LFDeques[Id].pop(P))
      return false; // Empty (or a thief won the final-element race): stolen.
    assert(P == T &&
           "bottom of the owner's deque at reclaim time must be the frame's "
           "own task (helping steals from tops only)");
    (void)T;
    counter_bump(Stats[Id].InlineReclaims);
    return true;
  }
  WorkDeque &D = MDeques[Id];
  std::lock_guard<std::mutex> Lock(D.M);
  if (D.Q.empty() || D.Q.back() != T)
    return false; // T was stolen; whatever remains belongs to older frames.
  D.Q.pop_back();
  D.ApproxSize.store(D.Q.size(), std::memory_order_relaxed);
  counter_bump(Stats[Id].InlineReclaims);
  return true;
}

Task *Scheduler::steal(int Id) {
  if (NumWorkers == 1)
    return nullptr;
  // The caller's own deque is a legal victim: while helping, claiming one
  // of its *older* frames' tasks from the top is ordinary help-first work
  // (and keeps the tryReclaim bottom invariant intact).
  int Victim = static_cast<int>(nextVictimSeed() % NumWorkers);
  Task *T = nullptr;
  if (UseLockfree) {
    Task *V = nullptr;
    if (LFDeques[Victim].steal(V) == chase_lev_deque<Task *>::steal_t::Ok)
      T = V;
  } else {
    WorkDeque &D = MDeques[Victim];
    std::unique_lock<std::mutex> Lock(D.M, std::try_to_lock);
    if (Lock.owns_lock() && !D.Q.empty()) {
      T = D.Q.front();
      D.Q.pop_front();
      D.ApproxSize.store(D.Q.size(), std::memory_order_relaxed);
    }
  }
  counter_bump(T ? Stats[Id].Steals : Stats[Id].FailedSteals);
  if (T && obs::trace::level() >= 2)
    obs::trace::instant("steal", "sched");
  return T;
}

bool Scheduler::hasWork() const {
  for (int I = 0; I < NumWorkers; ++I) {
    bool NonEmpty =
        UseLockfree ? !LFDeques[I].empty_approx()
                    : MDeques[I].ApproxSize.load(std::memory_order_relaxed) > 0;
    if (NonEmpty)
      return true;
  }
  return false;
}

void Scheduler::park(int Id) {
  // Snapshot the wake epoch *before* registering: a push that bumps the
  // epoch after this point trips the wait predicate, and one that bumped it
  // before published its task under ParkM, so the hasWork() scan below sees
  // it (the lock acquisition synchronizes with the pusher's release).
  uint64_t E;
  {
    std::lock_guard<std::mutex> Lock(ParkM);
    E = WakeEpoch;
  }
  NumParked.fetch_add(1, std::memory_order_relaxed);
  // Publish the registration before re-scanning: any push whose NumParked
  // load is ordered after this fence sees it and signals; pushes that
  // slipped into the reordering window are bounded by the wait_for backstop
  // below (see unparkOne).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (hasWork() || Stop.load(std::memory_order_acquire)) {
    NumParked.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  counter_bump(Stats[Id].Parks);
  {
    obs::trace::span S("park", "sched");
    std::unique_lock<std::mutex> Lock(ParkM);
    ParkCV.wait_for(Lock, kParkBackstop, [&] {
      return WakeEpoch != E || Stop.load(std::memory_order_relaxed);
    });
  }
  NumParked.fetch_sub(1, std::memory_order_relaxed);
}

void Scheduler::waitHelping(int Id, Task *T) {
  // The forked task was stolen; execute other pending work until it is
  // done. Steal-only (see the header): popping the own deque's bottom here
  // would consume an enclosing frame's task and break its reclaim.
  int Failed = 0;
  while (!T->Done.load(std::memory_order_acquire)) {
    Task *Other = steal(Id);
    if (Other) {
      obs::trace::span S("task", "sched");
      runTask(Other);
      Failed = 0;
      continue;
    }
    ++Failed;
    if (Failed < kSpinProbes) {
      stealBackoff(Failed);
    } else if (Failed < kYieldProbes) {
      std::this_thread::yield();
    } else {
      // Park while joining: every stolen task's completion signals JoinCV
      // (signalJoiners), so a worker blocked on a long stolen branch
      // sleeps on the condvar instead of burning 50 us poll cycles. After
      // a wake: one steal attempt, then straight back to the condvar
      // (same shape as workerLoop's post-park escalation).
      joinPark(Id, T);
      Failed = kYieldProbes;
    }
  }
}

void Scheduler::signalJoiners() {
  // Pairs with joinPark's registration fence: the completer's Done store
  // is ordered before this fence, the joiner's registration before its
  // fence — so either this load sees the registration (and signals) or
  // the joiner's re-check sees Done. The fence costs only on task
  // completions, which are steal-rate rare next to forks.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (NumJoinParked.load(std::memory_order_relaxed) == 0)
    return;
  {
    std::lock_guard<std::mutex> Lock(JoinM);
    ++JoinEpoch;
  }
  JoinCV.notify_all();
}

void Scheduler::joinPark(int Id, Task *T) {
  // Same snapshot/register/fence/re-check discipline as park(), with the
  // joined task's Done flag added to the re-check and the wait predicate.
  // The backstop timeout additionally bounds the fence-free window of
  // unparkOne's join poke (a push racing this registration).
  uint64_t E;
  {
    std::lock_guard<std::mutex> Lock(JoinM);
    E = JoinEpoch;
  }
  NumJoinParked.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (T->Done.load(std::memory_order_acquire) || hasWork() ||
      Stop.load(std::memory_order_acquire)) {
    NumJoinParked.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  counter_bump(Stats[Id].JoinParks);
  {
    obs::trace::span S("join_park", "sched");
    std::unique_lock<std::mutex> Lock(JoinM);
    JoinCV.wait_for(Lock, kParkBackstop, [&] {
      return JoinEpoch != E || T->Done.load(std::memory_order_relaxed) ||
             Stop.load(std::memory_order_relaxed);
    });
  }
  NumJoinParked.fetch_sub(1, std::memory_order_relaxed);
}

void Scheduler::workerLoop(int Id) {
  ThisWorkerId = Id;
  int Failed = 0;
  while (!Stop.load(std::memory_order_acquire)) {
    Task *T = steal(Id);
    if (T) {
      obs::trace::span S("task", "sched");
      runTask(T);
      Failed = 0;
      continue;
    }
    ++Failed;
    if (Failed < kSpinProbes) {
      stealBackoff(Failed);
    } else if (Failed < kYieldProbes) {
      std::this_thread::yield();
    } else {
      park(Id);
      // One steal attempt after a wake, then straight back to the condvar
      // if it finds nothing: a genuine wake-for-work almost always lands
      // the next steal (resetting the escalation), while backstop timeouts
      // and raced wakes must not burn a spin/yield phase per cycle — that
      // measured ~40% of a core for four idle workers.
      Failed = kYieldProbes;
    }
  }
}
