//===- chase_lev.h - Lock-free Chase-Lev work-stealing deque --------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Chase-Lev work-stealing deque [Chase & Lev, SPAA 2005] with the
/// C11-memory-model orderings of [Le, Pop, Cohen & Zappa Nardelli, PPoPP
/// 2013]. One owner thread pushes and pops at the *bottom*; any number of
/// thief threads steal from the *top*:
///
///  - `push` is a plain store plus a release fence — no locked instruction
///    at all on the fast path (growing the ring is the only slow path).
///  - `pop` is fence-protected but CAS-free except when it races a thief
///    for the final element.
///  - `steal` claims the oldest element with one CAS on Top.
///
/// The ring is a bounded circular array that doubles on overflow. Retired
/// rings are kept on a chain owned by the deque and freed only in the
/// destructor: a thief that loaded the old ring pointer may still read a
/// slot from it after the owner swapped in the doubled ring, and the copy
/// preserves every logical index in [Top, Bottom), so such a read returns
/// the same value the new ring holds and the CAS on Top still arbitrates
/// who claims it. Total retired memory is bounded by the geometric growth
/// (< one live ring's worth).
///
/// Memory-order contract (the proof obligations of the PPoPP'13 paper):
///
///  - The release fence in `push` before the Bottom store pairs with the
///    acquire load of Bottom in `steal`: a thief that observes the new
///    Bottom also observes the slot contents. The slot store/load pair is
///    additionally release/acquire (free on x86 — both compile to plain
///    movs): when the element is a pointer, this is the edge that
///    publishes the pointed-to payload written before `push`, and it is
///    the one ThreadSanitizer can see — TSan does not instrument
///    standalone fences, so the fence-only form reports false races on
///    the payload.
///  - The owner's Bottom decrement and Top read in `pop`, and the thief's
///    Top and Bottom reads in `steal`, are all seq_cst: their places in the
///    single SC total order, combined with coherence on the monotonically
///    increasing Top, form the store-load (Dekker) protocol that makes the
///    owner and a thief agree on who gets a final element. (The PPoPP'13
///    presentation uses relaxed accesses around seq_cst *fences*; the
///    access form is equivalent here and compiles to one locked xchg
///    instead of an mfence on the hot owner path.)
///  - CAS failures on Top are relaxed: a loser retries from scratch and
///    re-reads everything it depends on.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_PARALLEL_CHASE_LEV_H
#define CPAM_PARALLEL_CHASE_LEV_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace cpam {
namespace par {

template <class T> class chase_lev_deque {
  static_assert(std::is_trivially_copyable_v<T>,
                "deque elements are copied through relaxed atomic slots");

public:
  /// Outcome of a steal attempt. `Lost` (a thief or the owner claimed the
  /// element first) is distinguished from `Empty` so callers can retry
  /// immediately on contention but back off on genuine emptiness.
  enum class steal_t { Ok, Empty, Lost };

  explicit chase_lev_deque(size_t InitCap = 64)
      : Buf(Ring::make(InitCap < 8 ? 8 : InitCap, nullptr)) {}

  chase_lev_deque(const chase_lev_deque &) = delete;
  chase_lev_deque &operator=(const chase_lev_deque &) = delete;

  ~chase_lev_deque() {
    // Single-threaded teardown: free the live ring and every retired one.
    Ring *R = Buf.load(std::memory_order_relaxed);
    while (R) {
      Ring *Prev = R->Prev;
      Ring::destroy(R);
      R = Prev;
    }
  }

  /// Owner only: append \p V at the bottom.
  void push(T V) {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t Tp = Top.load(std::memory_order_acquire);
    Ring *A = Buf.load(std::memory_order_relaxed);
    if (B - Tp > static_cast<int64_t>(A->Mask)) // Full: double the ring.
      A = grow(A, Tp, B);
    A->slot(B).store(V, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_release);
    Bottom.store(B + 1, std::memory_order_relaxed);
  }

  /// Owner only: remove the newest element. Returns false when empty (or
  /// when a thief won the race for the final element).
  bool pop(T &Out) {
    int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
    Ring *A = Buf.load(std::memory_order_relaxed);
    // seq_cst store + seq_cst load instead of relaxed ops around a seq_cst
    // fence: the accesses themselves enter the SC total order, which is
    // what the Dekker argument needs, and the store compiles to one locked
    // xchg on x86 — measurably cheaper than the mfence the fence form
    // emits on the hottest owner path.
    Bottom.store(B, std::memory_order_seq_cst);
    int64_t Tp = Top.load(std::memory_order_seq_cst);
    if (Tp > B) { // Was empty: undo.
      Bottom.store(B + 1, std::memory_order_relaxed);
      return false;
    }
    T V = A->slot(B).load(std::memory_order_relaxed);
    if (Tp == B) {
      // Final element: race thieves for it via the Top CAS.
      bool Won = Top.compare_exchange_strong(Tp, Tp + 1,
                                             std::memory_order_seq_cst,
                                             std::memory_order_relaxed);
      Bottom.store(B + 1, std::memory_order_relaxed);
      if (!Won)
        return false;
    }
    Out = V;
    return true;
  }

  /// Any thread: claim the oldest element.
  steal_t steal(T &Out) {
    // Both loads seq_cst (plain movs on x86): the SC total order gives the
    // load-load ordering the fence provided, and lets the proof against
    // pop run through coherence on Top/Bottom alone.
    int64_t Tp = Top.load(std::memory_order_seq_cst);
    int64_t B = Bottom.load(std::memory_order_seq_cst);
    if (Tp >= B)
      return steal_t::Empty;
    Ring *A = Buf.load(std::memory_order_acquire);
    T V = A->slot(Tp).load(std::memory_order_acquire);
    if (!Top.compare_exchange_strong(Tp, Tp + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed))
      return steal_t::Lost;
    Out = V;
    return steal_t::Ok;
  }

  /// Approximate (racy) emptiness check — used only as a park-time hint,
  /// never for correctness.
  bool empty_approx() const {
    return Top.load(std::memory_order_relaxed) >=
           Bottom.load(std::memory_order_relaxed);
  }

  /// Approximate (racy) element count.
  size_t size_approx() const {
    int64_t N = Bottom.load(std::memory_order_relaxed) -
                Top.load(std::memory_order_relaxed);
    return N > 0 ? static_cast<size_t>(N) : 0;
  }

  /// Current ring capacity (owner/test use; racy otherwise).
  size_t capacity() const {
    return Buf.load(std::memory_order_relaxed)->Mask + 1;
  }

private:
  struct Ring {
    size_t Mask;  // Capacity - 1 (capacity is a power of two).
    Ring *Prev;   // Retired predecessor, freed in ~chase_lev_deque.
    // Slots[] follows the header.

    std::atomic<T> &slot(int64_t I) {
      auto *Slots = reinterpret_cast<std::atomic<T> *>(this + 1);
      return Slots[static_cast<size_t>(I) & Mask];
    }

    static Ring *make(size_t Cap, Ring *Prev) {
      assert((Cap & (Cap - 1)) == 0 && "ring capacity must be a power of 2");
      void *Mem = ::operator new(sizeof(Ring) + Cap * sizeof(std::atomic<T>),
                                 std::align_val_t(64));
      Ring *R = ::new (Mem) Ring{Cap - 1, Prev};
      // Start the slots' lifetimes (cold path: construction and growth
      // only). Every slot is written before it is ever read, so no
      // initial value is needed.
      auto *Slots = reinterpret_cast<std::atomic<T> *>(R + 1);
      for (size_t I = 0; I < Cap; ++I)
        ::new (static_cast<void *>(Slots + I)) std::atomic<T>;
      return R;
    }
    static void destroy(Ring *R) {
      ::operator delete(R, std::align_val_t(64));
    }
  };

  /// Owner only: replace the full ring \p A with one of twice the capacity,
  /// copying the live logical range [Tp, B). The old ring stays readable
  /// (chained via Prev) for thieves that already hold its pointer.
  Ring *grow(Ring *A, int64_t Tp, int64_t B) {
    Ring *N = Ring::make(2 * (A->Mask + 1), A);
    for (int64_t I = Tp; I < B; ++I)
      N->slot(I).store(A->slot(I).load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    Buf.store(N, std::memory_order_release);
    return N;
  }

  // Top and Bottom sit on separate cache lines: Top is hammered by thieves'
  // CASes, Bottom only by the owner.
  alignas(64) std::atomic<int64_t> Top{0};
  alignas(64) std::atomic<int64_t> Bottom{0};
  std::atomic<Ring *> Buf;
};

} // namespace par
} // namespace cpam

#endif // CPAM_PARALLEL_CHASE_LEV_H
