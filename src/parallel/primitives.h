//===- primitives.h - Parallel array primitives ---------------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel primitives over contiguous arrays: tabulate, reduce, exclusive
/// scan, pack/filter, merge and a parallel merge sort. These stand in for
/// the ParlayLib primitives the original CPAM builds on. All primitives have
/// the standard work/span bounds (reduce/scan/pack: O(n) work, O(log n)
/// span; sort: O(n log n) work, O(log^2 n) span).
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_PARALLEL_PRIMITIVES_H
#define CPAM_PARALLEL_PRIMITIVES_H

#include <algorithm>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "src/parallel/scheduler.h"

namespace cpam {
namespace par {

/// Sequential cutoff below which divide-and-conquer primitives stop forking.
inline constexpr size_t kSeqThreshold = 2048;

/// Builds a vector of length \p N whose I-th element is f(I).
template <class F>
auto tabulate(size_t N, const F &f) -> std::vector<decltype(f(size_t(0)))> {
  using T = decltype(f(size_t(0)));
  std::vector<T> Out(N);
  parallel_for(0, N, [&](size_t I) { Out[I] = f(I); });
  return Out;
}

namespace detail {
template <class T, class F>
T reduce_rec(const T *A, size_t N, const T &Identity, const F &f) {
  if (N == 0)
    return Identity;
  if (N <= kSeqThreshold) {
    T Acc = A[0];
    for (size_t I = 1; I < N; ++I)
      Acc = f(Acc, A[I]);
    return Acc;
  }
  size_t Mid = N / 2;
  T L, R;
  par_do([&] { L = reduce_rec(A, Mid, Identity, f); },
         [&] { R = reduce_rec(A + Mid, N - Mid, Identity, f); });
  return f(L, R);
}

template <class F, class T, class G>
T reduce_idx_rec(size_t Lo, size_t Hi, const G &get, const T &Identity,
                 const F &f) {
  if (Lo >= Hi)
    return Identity;
  size_t N = Hi - Lo;
  if (N <= kSeqThreshold) {
    T Acc = get(Lo);
    for (size_t I = Lo + 1; I < Hi; ++I)
      Acc = f(Acc, get(I));
    return Acc;
  }
  size_t Mid = Lo + N / 2;
  T L, R;
  par_do([&] { L = reduce_idx_rec(Lo, Mid, get, Identity, f); },
         [&] { R = reduce_idx_rec(Mid, Hi, get, Identity, f); });
  return f(L, R);
}
} // namespace detail

/// Reduces A[0..N) with the associative operation \p f.
template <class T, class F>
T reduce(const T *A, size_t N, T Identity, const F &f) {
  return detail::reduce_rec(A, N, Identity, f);
}

/// Reduces get(Lo..Hi) with the associative operation \p f.
template <class T, class G, class F>
T reduce_index(size_t Lo, size_t Hi, const G &get, T Identity, const F &f) {
  return detail::reduce_idx_rec(Lo, Hi, get, Identity, f);
}

/// Exclusive prefix sums of A[0..N) into Out (may alias A); returns total.
template <class T>
T scan_exclusive(const T *A, size_t N, T *Out, T Identity = T()) {
  if (N == 0)
    return Identity;
  if (N <= kSeqThreshold) {
    T Acc = Identity;
    for (size_t I = 0; I < N; ++I) {
      T V = A[I];
      Out[I] = Acc;
      Acc = Acc + V;
    }
    return Acc;
  }
  size_t NumBlocks = (N + kSeqThreshold - 1) / kSeqThreshold;
  std::vector<T> BlockSums(NumBlocks);
  parallel_for(
      0, NumBlocks,
      [&](size_t B) {
        size_t Lo = B * kSeqThreshold, Hi = std::min(N, Lo + kSeqThreshold);
        T Acc = Identity;
        for (size_t I = Lo; I < Hi; ++I)
          Acc = Acc + A[I];
        BlockSums[B] = Acc;
      },
      1);
  T Total = Identity;
  for (size_t B = 0; B < NumBlocks; ++B) {
    T V = BlockSums[B];
    BlockSums[B] = Total;
    Total = Total + V;
  }
  parallel_for(
      0, NumBlocks,
      [&](size_t B) {
        size_t Lo = B * kSeqThreshold, Hi = std::min(N, Lo + kSeqThreshold);
        T Acc = BlockSums[B];
        for (size_t I = Lo; I < Hi; ++I) {
          T V = A[I];
          Out[I] = Acc;
          Acc = Acc + V;
        }
      },
      1);
  return Total;
}

namespace detail {
/// Blocked compaction scaffold shared by pack and pack_index: count kept
/// elements per block, prefix-sum the block offsets, then scatter.
/// EmitAt(K, I) writes the value for kept index I to output slot K.
template <class Flags, class Emit>
size_t pack_blocks(size_t N, const Flags &Keep, const Emit &EmitAt) {
  if (N == 0)
    return 0;
  if (N <= kSeqThreshold) {
    size_t K = 0;
    for (size_t I = 0; I < N; ++I)
      if (Keep(I))
        EmitAt(K++, I);
    return K;
  }
  size_t NumBlocks = (N + kSeqThreshold - 1) / kSeqThreshold;
  std::vector<size_t> Counts(NumBlocks);
  parallel_for(
      0, NumBlocks,
      [&](size_t B) {
        size_t Lo = B * kSeqThreshold, Hi = std::min(N, Lo + kSeqThreshold);
        size_t C = 0;
        for (size_t I = Lo; I < Hi; ++I)
          C += Keep(I) ? 1 : 0;
        Counts[B] = C;
      },
      1);
  size_t Total = 0;
  for (size_t B = 0; B < NumBlocks; ++B) {
    size_t C = Counts[B];
    Counts[B] = Total;
    Total += C;
  }
  parallel_for(
      0, NumBlocks,
      [&](size_t B) {
        size_t Lo = B * kSeqThreshold, Hi = std::min(N, Lo + kSeqThreshold);
        size_t K = Counts[B];
        for (size_t I = Lo; I < Hi; ++I)
          if (Keep(I))
            EmitAt(K++, I);
      },
      1);
  return Total;
}
} // namespace detail

/// Copies the elements of A[0..N) whose flag is set into Out (compacted).
/// Returns the number of elements written.
template <class T, class Flags>
size_t pack(const T *A, const Flags &Keep, size_t N, T *Out) {
  return detail::pack_blocks(N, Keep,
                             [&](size_t K, size_t I) { Out[K] = A[I]; });
}

/// Writes the indices I in [0, N) with Keep(I) set into Out (compacted);
/// returns the number written. Equivalent to pack over the identity array
/// without materializing it.
template <class Flags>
size_t pack_index(size_t N, const Flags &Keep, size_t *Out) {
  return detail::pack_blocks(N, Keep,
                             [&](size_t K, size_t I) { Out[K] = I; });
}

/// filter: pack with a predicate over element values.
template <class T, class Pred>
size_t filter(const T *A, size_t N, T *Out, const Pred &P) {
  return pack(A, [&](size_t I) { return P(A[I]); }, N, Out);
}

namespace detail {
template <class T, class Less>
void merge_rec(const T *A, size_t Na, const T *B, size_t Nb, T *Out,
               const Less &Lt) {
  if (Na + Nb <= kSeqThreshold) {
    std::merge(A, A + Na, B, B + Nb, Out, Lt);
    return;
  }
  if (Na < Nb) {
    merge_rec(B, Nb, A, Na, Out, Lt);
    return;
  }
  // Split the larger input at its median; binary-search the other.
  size_t Ma = Na / 2;
  size_t Mb = std::lower_bound(B, B + Nb, A[Ma], Lt) - B;
  par_do([&] { merge_rec(A, Ma, B, Mb, Out, Lt); },
         [&] { merge_rec(A + Ma, Na - Ma, B + Mb, Nb - Mb, Out + Ma + Mb, Lt); });
}

template <class T, class Less>
void sort_rec(T *A, size_t N, T *Buf, bool OutInBuf, const Less &Lt) {
  if (N <= kSeqThreshold) {
    std::sort(A, A + N, Lt);
    if (OutInBuf)
      std::move(A, A + N, Buf);
    return;
  }
  size_t Mid = N / 2;
  par_do([&] { sort_rec(A, Mid, Buf, !OutInBuf, Lt); },
         [&] { sort_rec(A + Mid, N - Mid, Buf + Mid, !OutInBuf, Lt); });
  if (OutInBuf)
    merge_rec(A, Mid, A + Mid, N - Mid, Buf, Lt);
  else
    merge_rec(Buf, Mid, Buf + Mid, N - Mid, A, Lt);
}
} // namespace detail

/// Merges sorted A[0..Na) and B[0..Nb) into Out under \p Lt.
template <class T, class Less = std::less<T>>
void merge(const T *A, size_t Na, const T *B, size_t Nb, T *Out,
           Less Lt = Less()) {
  detail::merge_rec(A, Na, B, Nb, Out, Lt);
}

/// Parallel (unstable) comparison sort of A[0..N) in place.
template <class T, class Less = std::less<T>>
void sort(T *A, size_t N, Less Lt = Less()) {
  if (N <= kSeqThreshold) {
    std::sort(A, A + N, Lt);
    return;
  }
  std::vector<T> Buf(N);
  detail::sort_rec(A, N, Buf.data(), /*OutInBuf=*/false, Lt);
}

/// Parallel sort of a vector in place.
template <class T, class Less = std::less<T>>
void sort(std::vector<T> &V, Less Lt = Less()) {
  sort(V.data(), V.size(), Lt);
}

/// Removes adjacent duplicates from sorted A (by Eq); returns new length.
template <class T, class Eq = std::equal_to<T>>
size_t unique(T *A, size_t N, Eq Equal = Eq()) {
  if (N == 0)
    return 0;
  if (N <= kSeqThreshold)
    return std::unique(A, A + N, Equal) - A;
  std::vector<T> Tmp(N);
  size_t K = pack(
      A, [&](size_t I) { return I == 0 || !Equal(A[I - 1], A[I]); }, N,
      Tmp.data());
  parallel_for(0, K, [&](size_t I) { A[I] = Tmp[I]; });
  return K;
}

} // namespace par
} // namespace cpam

#endif // CPAM_PARALLEL_PRIMITIVES_H
