//===- scheduler.h - Work-stealing fork-join scheduler -------------------===//
//
// Part of the CPAM reproduction of "PaC-trees: Supporting Parallel and
// Compressed Purely-Functional Collections" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing fork-join scheduler in the style of ParlayLib, which the
/// original CPAM uses as its parallel substrate. The model is binary
/// forking: parDo(f1, f2) runs the two thunks, possibly in parallel, and
/// returns only when both are complete. Tasks are allocated on the forking
/// thread's stack; a per-worker deque holds pending right-hand branches,
/// and idle workers steal from the top (oldest, hence largest) end of a
/// random victim's deque.
///
/// Two interchangeable deque implementations are compiled in:
///
///  - *Lock-free* (default): the Chase-Lev deque of src/parallel/chase_lev.h
///    — owner push/pop without locked instructions on the fast path, steals
///    via one CAS. Idle workers spin briefly with exponential backoff, then
///    park on a condition variable; a push wakes them (see the memory-order
///    contract in README "Parallel runtime"), so an idle process costs ~0
///    CPU.
///  - *Mutex* (legacy fallback): a std::mutex + std::deque pair per worker.
///
/// The CMake option CPAM_LOCKFREE_SCHED selects the compile-time default;
/// the environment variable CPAM_LOCKFREE_SCHED (0/1), read once when the
/// pool is created, overrides it at runtime. Both paths share the worker
/// loop, the parking protocol and the telemetry, so A/B runs differ only in
/// the deque operations themselves.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_PARALLEL_SCHEDULER_H
#define CPAM_PARALLEL_SCHEDULER_H

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "src/parallel/chase_lev.h"
#include "src/util/failpoint.h"

/// Build-time default for the lock-free scheduler (see file header). Both
/// deque implementations are always compiled; this only picks which one a
/// fresh pool uses when the CPAM_LOCKFREE_SCHED environment variable is
/// absent.
#ifndef CPAM_LOCKFREE_SCHED
#define CPAM_LOCKFREE_SCHED 1
#endif

namespace cpam {
namespace par {

/// Single-writer relaxed counter increment: the counter is written by
/// exactly one thread, so the unsynchronized load+store compiles to a
/// plain increment (no locked RMW); snapshot readers load it relaxed from
/// other threads. Shared by the scheduler's and the pool allocator's
/// telemetry.
inline void counter_bump(std::atomic<uint64_t> &C) {
  C.store(C.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

/// A unit of work produced by a fork. The task object lives on the forking
/// thread's stack; the forker does not return from parDo until the task has
/// run, so no heap allocation or reference counting is required.
struct Task {
  void (*Run)(void *Env) = nullptr;
  void *Env = nullptr;
  /// An exception the task body threw on a helping/stealing thread,
  /// captured by runTask (written before the Done release-store, so the
  /// joiner's acquire load orders the read) and rethrown by parDo on the
  /// forking thread.
  std::exception_ptr Exc;
  /// Set with release semantics when the task body has finished.
  std::atomic<bool> Done{false};
};

namespace detail {
/// Runs both thunks sequentially with fork-join exception semantics: f2
/// runs even if f1 throws (so a branch that owns resources always gets to
/// run or release them), and the first exception wins. Costs nothing on the
/// no-throw path (zero-cost EH).
template <class F1, class F2> void runBothSeq(F1 &&f1, F2 &&f2) {
  std::exception_ptr E1;
  try {
    f1();
  } catch (...) {
    E1 = std::current_exception();
  }
  if (!E1) {
    f2();
    return;
  }
  try {
    f2();
  } catch (...) {
    // f1's exception wins; f2's is swallowed (same policy as the forked
    // path below).
  }
  std::rethrow_exception(E1);
}
} // namespace detail

/// Aggregated scheduler telemetry (see par::scheduler_stats()). Counters
/// are summed over per-worker relaxed counters, so a snapshot taken while
/// workers are active is approximate; quiescent snapshots are exact.
struct SchedulerStats {
  uint64_t Forks = 0;          ///< Tasks pushed by parDo.
  uint64_t InlineReclaims = 0; ///< Forked tasks popped back un-stolen.
  uint64_t Steals = 0;         ///< Successful steals.
  uint64_t FailedSteals = 0;   ///< Steal attempts finding empty/losing CAS.
  uint64_t Parks = 0;          ///< Times a worker blocked on the condvar.
  uint64_t Wakes = 0;          ///< Wake signals issued by pushes.
  uint64_t JoinParks = 0;      ///< Times a joiner parked on a stolen branch.
};

/// The process-wide scheduler. The first thread to touch the scheduler
/// (normally the main thread) is registered as worker 0; numWorkers()-1
/// additional threads are spawned. Threads that are not pool members can
/// still call parDo; they simply run both branches sequentially.
class Scheduler {
public:
  /// Returns the singleton, creating the thread pool on first use.
  static Scheduler &get();

  ~Scheduler();
  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  int numWorkers() const { return NumWorkers; }

  /// True when this pool runs on the lock-free Chase-Lev deques.
  bool lockfree() const { return UseLockfree; }

  /// Telemetry snapshot, summed across workers.
  SchedulerStats stats() const;
  /// Zeroes all telemetry counters (quiescent use only).
  void statsReset();

  /// Returns the calling thread's worker id, or -1 for non-pool threads.
  static int workerId();

  /// True while the singleton exists (between get()'s construction and
  /// static destruction). Exit-time telemetry consumers (the obs registry's
  /// scheduler source) check this instead of calling get(), which would
  /// either construct a pool at exit or touch a destroyed one.
  static bool alive();

  /// Returns a small dense slot id for *any* thread: pool workers report
  /// their worker id; foreign threads (user-spawned std::threads, test
  /// harness threads) get stable ids handed out above kForeignSlotBase.
  /// Consumers (e.g. the pooled node allocator's stripe selection) only
  /// need a cheap, stable, well-distributed integer — this never constructs
  /// the thread pool, so it is safe to call from static initialization.
  static int threadSlot();
  static constexpr int kForeignSlotBase = 1024;

  /// When true, parDo runs both branches inline on the calling thread.
  /// Used by benchmarks to measure honest single-thread (T1) times.
  static std::atomic<bool> &sequentialMode() {
    static std::atomic<bool> Seq{false};
    return Seq;
  }

  /// Runs \p f1 and \p f2 to completion, potentially in parallel.
  ///
  /// Exception contract: both branches always run to completion (a throw in
  /// one never skips the other — each branch may own resources it must
  /// consume or release), and the first exception — f1's if both throw — is
  /// rethrown on the forking thread after the join. An exception thrown by
  /// a stolen f2 on a helping thread is captured in the stack Task and
  /// rethrown here.
  template <class F1, class F2> void parDo(F1 &&f1, F2 &&f2) {
    int Id = workerId();
    if (CPAM_FAILPOINT_ACTIVE("sched.fork") || Id < 0 || NumWorkers == 1 ||
        sequentialMode().load(std::memory_order_relaxed)) {
      // Not a pool thread (a user-spawned std::thread), or a single-worker
      // pool — where no thief exists, so every fork would be reclaimed
      // inline anyway: degrade to sequential execution, which is always
      // correct and skips the deque entirely. The "sched.fork" failpoint
      // (fork refusal under injected scheduler pressure) lands here too; it
      // is evaluated first so every fork attempt counts a hit even where
      // the pool shape alone would already force inline execution.
      detail::runBothSeq(f1, f2);
      return;
    }
    Task T;
    T.Env = &f2;
    T.Run = [](void *Env) { (*static_cast<F2 *>(Env))(); };
    push(Id, &T);
    std::exception_ptr E1;
    try {
      f1();
    } catch (...) {
      E1 = std::current_exception();
    }
    if (tryReclaim(Id, &T)) {
      if (!E1) {
        f2();
        return;
      }
      try {
        f2();
      } catch (...) {
      }
      std::rethrow_exception(E1);
    }
    waitHelping(Id, &T);
    if (E1)
      std::rethrow_exception(E1);
    if (T.Exc)
      std::rethrow_exception(T.Exc);
  }

private:
  /// Legacy mutex-guarded deque. ApproxSize mirrors Q.size() so the park
  /// path can scan for work without taking every lock.
  struct WorkDeque {
    std::mutex M;
    std::deque<Task *> Q;
    std::atomic<size_t> ApproxSize{0};
  };

  /// Per-worker telemetry, incremented via counter_bump (each counter is
  /// written by exactly one worker); the snapshot reads them relaxed from
  /// any thread.
  struct alignas(64) WorkerStats {
    std::atomic<uint64_t> Forks{0};
    std::atomic<uint64_t> InlineReclaims{0};
    std::atomic<uint64_t> Steals{0};
    std::atomic<uint64_t> FailedSteals{0};
    std::atomic<uint64_t> Parks{0};
    std::atomic<uint64_t> Wakes{0};
    std::atomic<uint64_t> JoinParks{0};
  };

  Scheduler();

  /// Appends \p T to worker \p Id's deque and wakes a parked worker if any.
  void push(int Id, Task *T);
  /// Pops worker \p Id's newest task if it is \p T. By the LIFO fork-join
  /// discipline (and because helping steals from deque *tops* only), the
  /// bottom of the owner's deque at reclaim time is either \p T itself or
  /// nothing of this frame: every task pushed after T has completed, and T
  /// can only have been claimed after everything older was stolen too.
  bool tryReclaim(int Id, Task *T);
  /// Runs stolen tasks until \p T completes. Steals only (never pops the
  /// own deque's bottom, which would break the tryReclaim invariant of
  /// enclosing frames); the waiter's own deque is one of the victims.
  /// When nothing is stealable it escalates spin -> yield -> joinPark: the
  /// completion of any stolen task signals JoinCV, so a joiner blocked on
  /// a long stolen branch sleeps instead of polling.
  void waitHelping(int Id, Task *T);
  /// Parks a joiner until some stolen task completes (signalJoiners), new
  /// work is pushed (unparkOne pokes JoinCV too), the backstop elapses, or
  /// the pool shuts down. Same register/fence/re-check discipline as
  /// park(), with \p T's Done flag in the re-check and wait predicate.
  void joinPark(int Id, Task *T);
  /// Wakes parked joiners after a task completion; the seq_cst fence pairs
  /// with joinPark's registration fence so a completion either sees the
  /// registration or the joiner re-check sees Done.
  void signalJoiners();
  /// One steal attempt against a random victim (possibly the caller's own
  /// deque top). Returns nullptr on failure.
  Task *steal(int Id);
  /// True if any deque looks non-empty (approximate; park-path use only).
  bool hasWork() const;
  /// Blocks until a push signals, the backstop timeout elapses, or the
  /// pool shuts down. Registers via NumParked, fences, then re-scans for
  /// work before sleeping; the timed backstop bounds the one store-load
  /// reordering window the fence-free push side leaves open.
  void park(int Id);
  /// Wakes one parked worker if there is one. Called after every push;
  /// fence-free by design (best-effort, backstopped — see scheduler.cpp).
  void unparkOne(int Id);
  void workerLoop(int Id);
  void runTask(Task *T) {
    // A task body that throws (injected allocation failure inside a stolen
    // branch) must not unwind into the worker loop — capture and hand the
    // exception to the joiner, which rethrows on the forking thread.
    try {
      T->Run(T->Env);
    } catch (...) {
      T->Exc = std::current_exception();
    }
    T->Done.store(true, std::memory_order_release);
    signalJoiners();
  }

  int NumWorkers;
  bool UseLockfree;
  std::vector<WorkDeque> MDeques;             // Mutex path.
  std::vector<chase_lev_deque<Task *>> LFDeques; // Lock-free path.
  std::vector<WorkerStats> Stats;
  std::vector<std::thread> Threads;
  std::atomic<bool> Stop{false};

  // Elastic parking state. WakeEpoch is guarded by ParkM; NumParked is the
  // lock-free fast-path hint pushes read (zero while the pool is busy).
  std::atomic<int> NumParked{0};
  std::mutex ParkM;
  std::condition_variable ParkCV;
  uint64_t WakeEpoch = 0;

  // Join parking state (waitHelping). Separate from the idle-park channel:
  // completions signal here, and only joiners wait here, so an idle pool's
  // parked workers are never woken by task completions (and vice versa).
  // JoinEpoch is guarded by JoinM; NumJoinParked is the fast-path hint both
  // completions and pushes read (zero unless someone joins a long branch).
  std::atomic<int> NumJoinParked{0};
  std::mutex JoinM;
  std::condition_variable JoinCV;
  uint64_t JoinEpoch = 0;
};

/// Number of worker threads (reads CPAM_NUM_THREADS, defaulting to the
/// hardware concurrency).
inline int num_workers() { return Scheduler::get().numWorkers(); }

/// Id of the calling worker in [0, num_workers()), or -1 off-pool.
inline int worker_id() { return Scheduler::workerId(); }

/// Stable dense slot id for any thread (worker id for pool workers). Cheap:
/// does not construct the scheduler.
inline int thread_slot() { return Scheduler::threadSlot(); }

/// Forces all fork-join constructs to run sequentially (for T1 timing).
inline void set_sequential(bool Seq) {
  Scheduler::sequentialMode().store(Seq, std::memory_order_relaxed);
}

/// True when the pool runs on the lock-free Chase-Lev deques (compile
/// default CPAM_LOCKFREE_SCHED, overridable by the environment variable of
/// the same name, both read once at pool creation).
inline bool lockfree_sched() { return Scheduler::get().lockfree(); }

/// Scheduler telemetry snapshot (forks, inline reclaims, steals, failed
/// steals, parks, wakes) summed across workers. Approximate while workers
/// are active; exact when quiescent.
inline SchedulerStats scheduler_stats() { return Scheduler::get().stats(); }

/// Zeroes the scheduler telemetry (call while quiescent).
inline void scheduler_stats_reset() { Scheduler::get().statsReset(); }

/// Fork-join: run both thunks, potentially in parallel.
template <class F1, class F2> void par_do(F1 &&f1, F2 &&f2) {
  Scheduler::get().parDo(std::forward<F1>(f1), std::forward<F2>(f2));
}

/// Conditional fork-join: parallel only if \p DoParallel. Both arms share
/// parDo's exception contract (both branches always run; first exception
/// wins).
template <class F1, class F2>
void par_do_if(bool DoParallel, F1 &&f1, F2 &&f2) {
  if (DoParallel) {
    par_do(std::forward<F1>(f1), std::forward<F2>(f2));
    return;
  }
  detail::runBothSeq(f1, f2);
}

namespace detail {
template <class F>
void parallel_for_rec(size_t Lo, size_t Hi, const F &f, size_t Gran) {
  if (Hi - Lo <= Gran) {
    for (size_t I = Lo; I < Hi; ++I)
      f(I);
    return;
  }
  size_t Mid = Lo + (Hi - Lo) / 2;
  par_do([&] { parallel_for_rec(Lo, Mid, f, Gran); },
         [&] { parallel_for_rec(Mid, Hi, f, Gran); });
}
} // namespace detail

/// Anchor for parallel_for's default chunking: one lock-free fork-join
/// cycle (push + reclaim, the "fork_overhead" row of bench_scheduler —
/// 19.3 ns with a live thief on the reference container, vs 42.1 ns on
/// the mutex deques it replaced; BENCH_PR4.json) costs at most
/// kForkCostIters iterations of a trivial loop body (~1 ns each) even
/// allowing for steal-traffic inflation. Both derived constants below are
/// justified in these units.
inline constexpr size_t kForkCostIters = 64;

/// Largest chunk parallel_for runs sequentially: at 16 * kForkCostIters
/// iterations per fork, scheduling overhead is bounded by ~1/16 (~6%) even
/// for the cheapest possible bodies — and by measurement forks come in
/// ~3x under the kForkCostIters bound, so the real ceiling is ~2%. The
/// cap sat at 2048 when each fork paid two mutex round trips; the
/// lock-free fork cost halves the break-even chunk.
inline constexpr size_t kParallelForMaxGrain = 16 * kForkCostIters;

/// Chunks per worker when the range is small enough that the grain cap is
/// not reached: 8-way oversubscription bounds load imbalance from uneven
/// chunk runtimes at ~1/8 of a worker's share while adding at most
/// 8 * num_workers forks — noise at lock-free fork cost.
inline constexpr size_t kParallelForOversub = 8;

/// Parallel loop over [Lo, Hi). \p Gran is the largest chunk executed
/// sequentially; 0 picks a default based on the range size and worker count
/// (see the constants above).
template <class F>
void parallel_for(size_t Lo, size_t Hi, const F &f, size_t Gran = 0) {
  if (Lo >= Hi)
    return;
  size_t N = Hi - Lo;
  if (Gran == 0) {
    size_t PerWorker =
        N / (kParallelForOversub * static_cast<size_t>(num_workers()) + 1);
    Gran = std::max<size_t>(1, std::min(kParallelForMaxGrain, PerWorker));
  }
  if (N <= Gran) {
    for (size_t I = Lo; I < Hi; ++I)
      f(I);
    return;
  }
  detail::parallel_for_rec(Lo, Hi, f, Gran);
}

} // namespace par
} // namespace cpam

#endif // CPAM_PARALLEL_SCHEDULER_H
