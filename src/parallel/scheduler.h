//===- scheduler.h - Work-stealing fork-join scheduler -------------------===//
//
// Part of the CPAM reproduction of "PaC-trees: Supporting Parallel and
// Compressed Purely-Functional Collections" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal work-stealing fork-join scheduler in the style of ParlayLib,
/// which the original CPAM uses as its parallel substrate. The model is
/// binary forking: parDo(f1, f2) runs the two thunks, possibly in parallel,
/// and returns only when both are complete. Tasks are allocated on the
/// forking thread's stack; a per-worker deque holds pending right-hand
/// branches, and idle workers steal from the front (oldest, hence largest)
/// end of a random victim's deque.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_PARALLEL_SCHEDULER_H
#define CPAM_PARALLEL_SCHEDULER_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace cpam {
namespace par {

/// A unit of work produced by a fork. The task object lives on the forking
/// thread's stack; the forker does not return from parDo until the task has
/// run, so no heap allocation or reference counting is required.
struct Task {
  void (*Run)(void *Env) = nullptr;
  void *Env = nullptr;
  /// Set (under the owning deque's lock) when some thread claims the task.
  bool Taken = false;
  /// Set with release semantics when the task body has finished.
  std::atomic<bool> Done{false};
};

/// The process-wide scheduler. The first thread to touch the scheduler
/// (normally the main thread) is registered as worker 0; numWorkers()-1
/// additional threads are spawned. Threads that are not pool members can
/// still call parDo; they simply run both branches sequentially.
class Scheduler {
public:
  /// Returns the singleton, creating the thread pool on first use.
  static Scheduler &get();

  ~Scheduler();
  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  int numWorkers() const { return NumWorkers; }

  /// Returns the calling thread's worker id, or -1 for non-pool threads.
  static int workerId();

  /// Returns a small dense slot id for *any* thread: pool workers report
  /// their worker id; foreign threads (user-spawned std::threads, test
  /// harness threads) get stable ids handed out above kForeignSlotBase.
  /// Consumers (e.g. the pooled node allocator's stripe selection) only
  /// need a cheap, stable, well-distributed integer — this never constructs
  /// the thread pool, so it is safe to call from static initialization.
  static int threadSlot();
  static constexpr int kForeignSlotBase = 1024;

  /// When true, parDo runs both branches inline on the calling thread.
  /// Used by benchmarks to measure honest single-thread (T1) times.
  static std::atomic<bool> &sequentialMode() {
    static std::atomic<bool> Seq{false};
    return Seq;
  }

  /// Runs \p f1 and \p f2 to completion, potentially in parallel.
  template <class F1, class F2> void parDo(F1 &&f1, F2 &&f2) {
    int Id = workerId();
    if (Id < 0 || sequentialMode().load(std::memory_order_relaxed)) {
      // Not a pool thread (e.g. a user-spawned std::thread): degrade to
      // sequential execution, which is always correct.
      f1();
      f2();
      return;
    }
    Task T;
    T.Env = &f2;
    T.Run = [](void *Env) { (*static_cast<F2 *>(Env))(); };
    push(Id, &T);
    f1();
    if (tryReclaim(Id, &T)) {
      f2();
      return;
    }
    waitHelping(Id, &T);
  }

private:
  struct WorkDeque {
    std::mutex M;
    std::deque<Task *> Q;
  };

  Scheduler();

  void push(int Id, Task *T);
  /// Removes \p T from worker \p Id's deque if nobody has claimed it yet.
  bool tryReclaim(int Id, Task *T);
  /// Runs other pending tasks until \p T completes.
  void waitHelping(int Id, Task *T);
  /// Pops the newest task from the caller's own deque.
  Task *popOwn(int Id);
  /// Steals the oldest task from a random victim.
  Task *steal(int Id);
  void workerLoop(int Id);
  static void runTask(Task *T) {
    T->Run(T->Env);
    T->Done.store(true, std::memory_order_release);
  }

  int NumWorkers;
  std::vector<WorkDeque> Deques;
  std::vector<std::thread> Threads;
  std::atomic<bool> Stop{false};
  std::atomic<int> NumIdle{0};
};

/// Number of worker threads (reads CPAM_NUM_THREADS, defaulting to the
/// hardware concurrency).
inline int num_workers() { return Scheduler::get().numWorkers(); }

/// Id of the calling worker in [0, num_workers()), or -1 off-pool.
inline int worker_id() { return Scheduler::workerId(); }

/// Stable dense slot id for any thread (worker id for pool workers). Cheap:
/// does not construct the scheduler.
inline int thread_slot() { return Scheduler::threadSlot(); }

/// Forces all fork-join constructs to run sequentially (for T1 timing).
inline void set_sequential(bool Seq) {
  Scheduler::sequentialMode().store(Seq, std::memory_order_relaxed);
}

/// Fork-join: run both thunks, potentially in parallel.
template <class F1, class F2> void par_do(F1 &&f1, F2 &&f2) {
  Scheduler::get().parDo(std::forward<F1>(f1), std::forward<F2>(f2));
}

/// Conditional fork-join: parallel only if \p DoParallel.
template <class F1, class F2>
void par_do_if(bool DoParallel, F1 &&f1, F2 &&f2) {
  if (DoParallel) {
    par_do(std::forward<F1>(f1), std::forward<F2>(f2));
    return;
  }
  f1();
  f2();
}

namespace detail {
template <class F>
void parallel_for_rec(size_t Lo, size_t Hi, const F &f, size_t Gran) {
  if (Hi - Lo <= Gran) {
    for (size_t I = Lo; I < Hi; ++I)
      f(I);
    return;
  }
  size_t Mid = Lo + (Hi - Lo) / 2;
  par_do([&] { parallel_for_rec(Lo, Mid, f, Gran); },
         [&] { parallel_for_rec(Mid, Hi, f, Gran); });
}
} // namespace detail

/// Parallel loop over [Lo, Hi). \p Gran is the largest chunk executed
/// sequentially; 0 picks a default based on the range size and worker count.
template <class F>
void parallel_for(size_t Lo, size_t Hi, const F &f, size_t Gran = 0) {
  if (Lo >= Hi)
    return;
  size_t N = Hi - Lo;
  if (Gran == 0) {
    size_t PerWorker = N / (8 * static_cast<size_t>(num_workers()) + 1);
    Gran = std::max<size_t>(1, std::min<size_t>(2048, PerWorker));
  }
  if (N <= Gran) {
    for (size_t I = Lo; I < Hi; ++I)
      f(I);
    return;
  }
  detail::parallel_for_rec(Lo, Hi, f, Gran);
}

} // namespace par
} // namespace cpam

#endif // CPAM_PARALLEL_SCHEDULER_H
