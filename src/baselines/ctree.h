//===- ctree.h - C-tree (Aspen) baseline ------------------------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A faithful reimplementation of the C-tree design from Aspen [Dhulipala,
/// Blelloch, Shun, PLDI'19], the paper's main graph comparator (Fig. 3c):
/// elements are pseudo-randomly promoted to *heads* with probability 1/B
/// (hash-based, so expected block size B — a randomized guarantee, unlike
/// the deterministic B..2B blocks of PaC-trees). Heads live in a P-tree;
/// each head carries the difference-encoded block of elements up to the
/// next head; elements before the first head form the prefix. Supports
/// build, lookup, iteration, batch union and space accounting — the pieces
/// the Fig. 1/11 and Table 5 / Fig. 15 comparisons need.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_BASELINES_CTREE_H
#define CPAM_BASELINES_CTREE_H

#include <vector>

#include "src/api/pam_map.h"
#include "src/encoding/varint.h"
#include "src/parallel/random.h"

namespace cpam {

/// A C-tree over 32-bit keys with expected block size \p B.
template <int B = 64> class ctree_set {
public:
  /// A difference-encoded run of keys (used for blocks and the prefix).
  struct block {
    std::vector<uint8_t> Bytes;
    uint32_t Count = 0;

    static block encode(const uint32_t *A, size_t N) {
      block Blk;
      Blk.Count = static_cast<uint32_t>(N);
      size_t Sz = 0;
      for (size_t I = 0; I < N; ++I)
        Sz += varint_size(I == 0 ? A[0] : A[I] - A[I - 1]);
      Blk.Bytes.resize(Sz);
      uint8_t *Out = Blk.Bytes.data();
      for (size_t I = 0; I < N; ++I)
        Out = varint_encode(I == 0 ? A[0] : A[I] - A[I - 1], Out);
      return Blk;
    }

    template <class F> bool foreach_while(const F &f) const {
      const uint8_t *In = Bytes.data();
      uint64_t Prev = 0, Delta;
      for (uint32_t I = 0; I < Count; ++I) {
        In = varint_decode(In, Delta);
        Prev = I == 0 ? Delta : Prev + Delta;
        if (!f(static_cast<uint32_t>(Prev)))
          return false;
      }
      return true;
    }
  };

  /// P-tree over heads (Aspen leaves the head tree uncompressed).
  using head_tree = pam_map<uint32_t, block, 0>;

  ctree_set() = default;

  static bool is_head(uint32_t K) { return hash64(K) % B == 0; }

  /// Builds from sorted, distinct keys.
  static ctree_set from_sorted(const std::vector<uint32_t> &Keys) {
    ctree_set Out;
    Out.Size = Keys.size();
    if (Keys.empty())
      return Out;
    // Locate heads.
    std::vector<size_t> HeadIdx;
    for (size_t I = 0; I < Keys.size(); ++I)
      if (is_head(Keys[I]))
        HeadIdx.push_back(I);
    size_t FirstHead = HeadIdx.empty() ? Keys.size() : HeadIdx[0];
    Out.Prefix = block::encode(Keys.data(), FirstHead);
    std::vector<typename head_tree::entry_t> Entries(HeadIdx.size());
    par::parallel_for(
        0, HeadIdx.size(),
        [&](size_t H) {
          size_t Lo = HeadIdx[H];
          size_t Hi = H + 1 < HeadIdx.size() ? HeadIdx[H + 1] : Keys.size();
          // The block stores the elements after the head.
          Entries[H] = {Keys[Lo],
                        block::encode(Keys.data() + Lo + 1, Hi - Lo - 1)};
        },
        /*Gran=*/1);
    Out.Heads = head_tree::from_sorted(std::move(Entries));
    return Out;
  }

  size_t size() const { return Size; }

  /// In-order visit of all keys.
  template <class F> void foreach_seq(const F &f) const {
    Prefix.foreach_while([&](uint32_t K) {
      f(K);
      return true;
    });
    Heads.foreach_seq([&](const typename head_tree::entry_t &E) {
      f(E.first);
      E.second.foreach_while([&](uint32_t K) {
        f(K);
        return true;
      });
      return true;
    });
  }

  bool contains(uint32_t K) const {
    if (is_head(K))
      return Heads.contains(K);
    // Find the owning block: the largest head <= K, else the prefix.
    auto Owner = Heads.previous(K);
    const block *Blk = Owner ? &Owner->second : &Prefix;
    bool Found = false;
    Blk->foreach_while([&](uint32_t X) {
      if (X == K)
        Found = true;
      return X < K;
    });
    return Found;
  }

  /// Batch union with sorted, distinct keys: affected blocks are decoded,
  /// merged and re-chunked by the head rule (new heads split blocks), as in
  /// Aspen's union. Purely functional: returns a new C-tree sharing
  /// untouched heads.
  ctree_set union_sorted(const std::vector<uint32_t> &Batch) const {
    if (Batch.empty())
      return *this;
    if (Size == 0)
      return from_sorted(Batch);
    // Partition the batch by owning block (prefix = sentinel head).
    constexpr uint64_t kPrefix = UINT64_MAX;
    std::vector<std::pair<uint64_t, size_t>> Owner(Batch.size());
    par::parallel_for(0, Batch.size(), [&](size_t I) {
      auto H = Heads.previous(Batch[I]); // Largest head <= key.
      Owner[I] = {H ? static_cast<uint64_t>(H->first) : kPrefix, I};
    });
    // The batch is sorted, so owners are grouped already; walk the groups.
    ctree_set Out;
    std::vector<typename head_tree::entry_t> NewEntries;
    std::vector<uint32_t> RemovedHeads;
    std::vector<uint32_t> Merged;
    size_t Added = 0;
    auto ProcessGroup = [&](uint64_t OwnerHead, size_t Lo, size_t Hi) {
      // Decode the owned run: head (if any) + its block.
      std::vector<uint32_t> Run;
      if (OwnerHead == kPrefix) {
        Prefix.foreach_while([&](uint32_t K) {
          Run.push_back(K);
          return true;
        });
      } else {
        Run.push_back(static_cast<uint32_t>(OwnerHead));
        Heads.find(static_cast<uint32_t>(OwnerHead))
            ->foreach_while([&](uint32_t K) {
              Run.push_back(K);
              return true;
            });
        RemovedHeads.push_back(static_cast<uint32_t>(OwnerHead));
      }
      // Merge with the batch slice.
      Merged.clear();
      std::merge(Run.begin(), Run.end(), Batch.begin() + Lo,
                 Batch.begin() + Hi, std::back_inserter(Merged));
      Merged.erase(std::unique(Merged.begin(), Merged.end()), Merged.end());
      Added += Merged.size() - Run.size();
      // Re-chunk by the head rule.
      size_t I = 0;
      if (!Merged.empty() && !is_head(Merged[0]) && OwnerHead == kPrefix) {
        size_t J = 0;
        while (J < Merged.size() && !is_head(Merged[J]))
          ++J;
        Out.Prefix = block::encode(Merged.data(), J);
        I = J;
      }
      while (I < Merged.size()) {
        assert(is_head(Merged[I]) && "chunk must start at a head");
        size_t J = I + 1;
        while (J < Merged.size() && !is_head(Merged[J]))
          ++J;
        NewEntries.push_back(
            {Merged[I], block::encode(Merged.data() + I + 1, J - I - 1)});
        I = J;
      }
    };
    bool PrefixTouched = false;
    size_t GroupLo = 0;
    for (size_t I = 1; I <= Batch.size(); ++I) {
      if (I == Batch.size() || Owner[I].first != Owner[GroupLo].first) {
        if (Owner[GroupLo].first == kPrefix)
          PrefixTouched = true;
        ProcessGroup(Owner[GroupLo].first, GroupLo, I);
        GroupLo = I;
      }
    }
    if (!PrefixTouched)
      Out.Prefix = Prefix;
    // Apply: drop rewritten heads, insert the re-chunked entries.
    head_tree H = Heads.multi_delete(RemovedHeads);
    std::sort(NewEntries.begin(), NewEntries.end(),
              [](const auto &A, const auto &C) { return A.first < C.first; });
    Out.Heads = H.multi_insert_sorted(std::move(NewEntries));
    Out.Size = Size + Added;
    return Out;
  }

  /// Structure bytes: head-tree nodes plus all block storage.
  size_t size_in_bytes() const {
    size_t Blocks = Heads.map_reduce(
        [](const typename head_tree::entry_t &E) {
          return E.second.Bytes.capacity() + sizeof(block);
        },
        size_t(0), std::plus<size_t>());
    return Heads.size_in_bytes() + Blocks + Prefix.Bytes.capacity();
  }

  const head_tree &heads() const { return Heads; }
  const block &prefix() const { return Prefix; }

private:
  head_tree Heads;
  block Prefix;
  size_t Size = 0;
};

} // namespace cpam

#endif // CPAM_BASELINES_CTREE_H
