//===- aspen_graph.h - Aspen-style graph (C-tree edge lists) ---------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Aspen graph comparator: a P-tree vertex tree (Aspen does not chunk
/// the vertex tree — the very limitation Fig. 11 highlights) whose values
/// are C-tree edge lists with difference encoding. Supports build, space
/// accounting, flat snapshots (for BFS/MIS/BC via the shared Ligra layer)
/// and batch edge insertion. Copies are O(1) refcounted snapshots, so the
/// baseline rides the serving layer unchanged: bench_serving drives
/// serving::versioned_graph<aspen_graph> head-to-head against sym_graph.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_BASELINES_ASPEN_GRAPH_H
#define CPAM_BASELINES_ASPEN_GRAPH_H

#include "src/baselines/ctree.h"
#include "src/util/datagen.h"

namespace cpam {

template <int EdgeB = 64> class aspen_graph_t {
public:
  using edge_list = ctree_set<EdgeB>;
  /// Aspen's vertex tree is an uncompressed P-tree.
  using vertex_tree = pam_map<vertex_id, edge_list, 0>;

  aspen_graph_t() = default;

  static aspen_graph_t from_edges(const std::vector<edge_pair> &Edges,
                                  size_t NumVertices) {
    aspen_graph_t G;
    G.NumVertices = NumVertices;
    if (Edges.empty())
      return G;
    std::vector<size_t> Starts(Edges.size());
    size_t NumSrc = par::pack_index(
        Edges.size(),
        [&](size_t I) {
          return I == 0 || Edges[I].first != Edges[I - 1].first;
        },
        Starts.data());
    Starts.resize(NumSrc);
    std::vector<typename vertex_tree::entry_t> Entries(NumSrc);
    par::parallel_for(
        0, NumSrc,
        [&](size_t S) {
          size_t Lo = Starts[S];
          size_t Hi = S + 1 < NumSrc ? Starts[S + 1] : Edges.size();
          std::vector<vertex_id> Ngh(Hi - Lo);
          for (size_t I = Lo; I < Hi; ++I)
            Ngh[I - Lo] = Edges[I].second;
          Entries[S] = {Edges[Lo].first, edge_list::from_sorted(Ngh)};
        },
        /*Gran=*/1);
    G.VT = vertex_tree::from_sorted(std::move(Entries));
    return G;
  }

  size_t num_vertices() const { return NumVertices; }
  size_t num_edges() const {
    return VT.map_reduce(
        [](const auto &E) { return E.second.size(); }, size_t(0),
        std::plus<size_t>());
  }
  size_t size_in_bytes() const {
    size_t Inner = VT.map_reduce(
        [](const auto &E) { return E.second.size_in_bytes(); }, size_t(0),
        std::plus<size_t>());
    return VT.size_in_bytes() + Inner;
  }

  size_t degree(vertex_id V) const {
    auto E = VT.find(V);
    return E ? E->size() : 0;
  }

  edge_list neighbors(vertex_id V) const {
    auto E = VT.find(V);
    return E ? *E : edge_list();
  }

  std::vector<edge_list> flat_snapshot() const {
    std::vector<edge_list> Snap(NumVertices);
    VT.foreach_index([&](size_t, const auto &E) { Snap[E.first] = E.second; });
    return Snap;
  }

  /// Batch insertion of directed edges (Aspen's update path: per-vertex
  /// C-tree unions merged into the vertex tree).
  aspen_graph_t insert_edges(std::vector<edge_pair> Batch) const {
    aspen_graph_t Out;
    Out.NumVertices = NumVertices;
    if (Batch.empty()) {
      Out.VT = VT;
      return Out;
    }
    par::sort(Batch);
    size_t M = par::unique(Batch.data(), Batch.size());
    Batch.resize(M);
    std::vector<size_t> Starts(M);
    size_t NumSrc = par::pack_index(
        M,
        [&](size_t I) {
          return I == 0 || Batch[I].first != Batch[I - 1].first;
        },
        Starts.data());
    Starts.resize(NumSrc);
    std::vector<typename vertex_tree::entry_t> Delta(NumSrc);
    par::parallel_for(
        0, NumSrc,
        [&](size_t S) {
          size_t Lo = Starts[S];
          size_t Hi = S + 1 < NumSrc ? Starts[S + 1] : M;
          std::vector<vertex_id> Ngh(Hi - Lo);
          for (size_t I = Lo; I < Hi; ++I)
            Ngh[I - Lo] = Batch[I].second;
          // Merge into the existing list if the vertex is present.
          auto Old = VT.find(Batch[Lo].first);
          Delta[S] = {Batch[Lo].first, Old ? Old->union_sorted(Ngh)
                                           : edge_list::from_sorted(Ngh)};
        },
        /*Gran=*/1);
    Out.VT = VT.multi_insert_sorted(std::move(Delta));
    if (static_cast<size_t>(Batch.back().first) + 1 > Out.NumVertices)
      Out.NumVertices = Batch.back().first + 1;
    return Out;
  }

  const vertex_tree &vertices() const { return VT; }

private:
  vertex_tree VT;
  size_t NumVertices = 0;
};

using aspen_graph = aspen_graph_t<64>;

} // namespace cpam

#endif // CPAM_BASELINES_ASPEN_GRAPH_H
