//===- csr_graph.h - Static difference-encoded CSR (GBBS baseline) ---------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GBBS-style static compressed graph baseline of Figs. 1/11: a CSR
/// layout whose sorted adjacency lists are difference/byte encoded. This is
/// the space lower-bound comparator for the tree-based representations (no
/// updates, no snapshots).
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_BASELINES_CSR_GRAPH_H
#define CPAM_BASELINES_CSR_GRAPH_H

#include <vector>

#include "src/encoding/varint.h"
#include "src/parallel/primitives.h"
#include "src/util/datagen.h"

namespace cpam {

class csr_graph {
public:
  csr_graph() = default;

  /// Builds from a symmetric, sorted, deduplicated edge list.
  static csr_graph from_edges(const std::vector<edge_pair> &Edges,
                              size_t NumVertices) {
    csr_graph G;
    G.NumVertices = NumVertices;
    G.NumEdges = Edges.size();
    // Per-vertex degree and encoded size.
    std::vector<size_t> Deg(NumVertices, 0), Bytes(NumVertices, 0);
    std::vector<size_t> Starts(NumVertices, 0);
    for (size_t I = 0; I < Edges.size(); ++I) { // Edges sorted by src.
      vertex_id U = Edges[I].first;
      if (Deg[U]++ == 0)
        Starts[U] = I;
    }
    par::parallel_for(0, NumVertices, [&](size_t V) {
      size_t B = 0;
      for (size_t I = 0; I < Deg[V]; ++I) {
        vertex_id Ngh = Edges[Starts[V] + I].second;
        uint64_t Delta =
            I == 0 ? Ngh : Ngh - Edges[Starts[V] + I - 1].second;
        B += varint_size(Delta);
      }
      Bytes[V] = B;
    });
    G.Offsets.resize(NumVertices + 1);
    size_t Total =
        par::scan_exclusive(Bytes.data(), NumVertices, G.Offsets.data());
    G.Offsets[NumVertices] = Total;
    G.Degrees.assign(Deg.begin(), Deg.end());
    G.Data.resize(Total);
    par::parallel_for(0, NumVertices, [&](size_t V) {
      uint8_t *Out = G.Data.data() + G.Offsets[V];
      for (size_t I = 0; I < Deg[V]; ++I) {
        vertex_id Ngh = Edges[Starts[V] + I].second;
        uint64_t Delta =
            I == 0 ? Ngh : Ngh - Edges[Starts[V] + I - 1].second;
        Out = varint_encode(Delta, Out);
      }
    });
    return G;
  }

  size_t num_vertices() const { return NumVertices; }
  size_t num_edges() const { return NumEdges; }
  size_t degree(vertex_id V) const { return Degrees[V]; }

  /// Sequential visit of V's sorted neighbors.
  template <class F> void foreach_neighbor(vertex_id V, const F &f) const {
    const uint8_t *In = Data.data() + Offsets[V];
    uint64_t Prev = 0;
    for (size_t I = 0; I < Degrees[V]; ++I) {
      uint64_t Delta;
      In = varint_decode(In, Delta);
      Prev = I == 0 ? Delta : Prev + Delta;
      f(static_cast<vertex_id>(Prev));
    }
  }

  /// NeighborFn adapter for the Ligra layer.
  template <class F> void operator()(vertex_id U, const F &f) const {
    foreach_neighbor(U, f);
  }

  size_t size_in_bytes() const {
    return Data.capacity() + Offsets.capacity() * sizeof(uint64_t) +
           Degrees.capacity() * sizeof(uint32_t);
  }

private:
  size_t NumVertices = 0;
  size_t NumEdges = 0;
  std::vector<uint64_t> Offsets;
  std::vector<uint32_t> Degrees;
  std::vector<uint8_t> Data;
};

} // namespace cpam

#endif // CPAM_BASELINES_CSR_GRAPH_H
