//===- array_seq.h - Flat-array sequence baseline (ParallelSTL role) -------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat-array sequence baseline playing ParallelSTL's role in Fig. 2
/// (see DESIGN.md Sec. 3): the same primitives as pam_seq implemented over
/// a contiguous array with our parallel runtime. Arrays win on nth (O(1)
/// vs O(log n + B)) and lose catastrophically on append (O(n) copy vs
/// O(log n + B) join) — exactly the tradeoff Fig. 2 reports.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_BASELINES_ARRAY_SEQ_H
#define CPAM_BASELINES_ARRAY_SEQ_H

#include <vector>

#include "src/parallel/primitives.h"

namespace cpam {

template <class T> class array_seq {
public:
  array_seq() = default;
  explicit array_seq(std::vector<T> V) : Data(std::move(V)) {}

  size_t size() const { return Data.size(); }
  size_t size_in_bytes() const { return Data.capacity() * sizeof(T); }

  /// O(1) random access (the array advantage in Fig. 2's "select").
  T nth(size_t I) const { return Data[I]; }

  template <class Combine> T reduce(T Identity, const Combine &Cmb) const {
    return par::reduce(Data.data(), Data.size(), Identity, Cmb);
  }

  template <class Pred> array_seq filter(const Pred &P) const {
    std::vector<T> Out(Data.size());
    size_t K = par::filter(Data.data(), Data.size(), Out.data(), P);
    Out.resize(K);
    return array_seq(std::move(Out));
  }

  template <class F> array_seq map(const F &f) const {
    std::vector<T> Out(Data.size());
    par::parallel_for(0, Data.size(), [&](size_t I) { Out[I] = f(Data[I]); });
    return array_seq(std::move(Out));
  }

  array_seq reverse() const {
    std::vector<T> Out(Data.size());
    size_t N = Data.size();
    par::parallel_for(0, N, [&](size_t I) { Out[I] = Data[N - 1 - I]; });
    return array_seq(std::move(Out));
  }

  template <class Less = std::less<T>>
  bool is_sorted(const Less &Lt = Less()) const {
    if (Data.empty())
      return true;
    return par::reduce_index(
        1, Data.size(),
        [&](size_t I) { return !Lt(Data[I], Data[I - 1]); }, true,
        [](bool A, bool C) { return A && C; });
  }

  template <class Pred> size_t find_first(const Pred &P) const {
    // Blocked scan with early exit, as ParallelSTL's find_if does.
    for (size_t Lo = 0; Lo < Data.size(); Lo += 65536) {
      size_t Hi = std::min(Data.size(), Lo + 65536);
      size_t Found = par::reduce_index(
          Lo, Hi, [&](size_t I) { return P(Data[I]) ? I : Data.size(); },
          Data.size(),
          [](size_t A, size_t C) { return A < C ? A : C; });
      if (Found != Data.size())
        return Found;
    }
    return Data.size();
  }

  array_seq subseq(size_t From, size_t To) const {
    std::vector<T> Out(To - From);
    par::parallel_for(From, To, [&](size_t I) { Out[I - From] = Data[I]; });
    return array_seq(std::move(Out));
  }

  /// O(n) copy — the array disadvantage in Fig. 2's "append".
  static array_seq append(const array_seq &A, const array_seq &B) {
    std::vector<T> Out(A.size() + B.size());
    par::parallel_for(0, A.size(), [&](size_t I) { Out[I] = A.Data[I]; });
    par::parallel_for(0, B.size(),
                      [&](size_t I) { Out[A.size() + I] = B.Data[I]; });
    return array_seq(std::move(Out));
  }

  const std::vector<T> &data() const { return Data; }

private:
  std::vector<T> Data;
};

} // namespace cpam

#endif // CPAM_BASELINES_ARRAY_SEQ_H
