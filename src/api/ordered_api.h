//===- ordered_api.h - Shared functional API for ordered collections ------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRTP base implementing the purely-functional collection surface shared by
/// pam_set, pam_map and aug_map. Collections are immutable values: copying
/// is O(1) (a snapshot sharing structure via reference counts), and every
/// "update" returns a new collection. The *_inplace convenience mutators
/// consume the receiver's reference, which lets the copy-on-write layer
/// reuse unshared nodes (Sec. 8's in-place optimization).
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_API_ORDERED_API_H
#define CPAM_API_ORDERED_API_H

#include <optional>
#include <vector>

#include "src/core/aug_ops.h"
#include "src/core/invariants.h"
#include "src/core/map_ops.h"

namespace cpam {

template <class Derived, class Ops> class ordered_api {
public:
  using ops = Ops;
  using node_t = typename Ops::node_t;
  using entry_t = typename Ops::entry_t;
  using key_t = typename Ops::key_t;

  ordered_api() = default;
  ordered_api(const ordered_api &O) : Root(Ops::inc(O.Root)) {}
  ordered_api(ordered_api &&O) noexcept : Root(O.Root) { O.Root = nullptr; }
  ordered_api &operator=(const ordered_api &O) {
    if (this != &O) {
      Ops::dec(Root);
      Root = Ops::inc(O.Root);
    }
    return *this;
  }
  ordered_api &operator=(ordered_api &&O) noexcept {
    if (this != &O) {
      Ops::dec(Root);
      Root = O.Root;
      O.Root = nullptr;
    }
    return *this;
  }
  ~ordered_api() { Ops::dec(Root); }

  //===--------------------------------------------------------------------===
  // Size and measurement.
  //===--------------------------------------------------------------------===

  size_t size() const { return Ops::size(Root); }
  bool empty() const { return Root == nullptr; }
  /// Heap bytes used by this structure (the paper's space metric).
  size_t size_in_bytes() const { return Ops::size_in_bytes(Root); }
  /// Number of physical tree nodes.
  size_t node_count() const { return Ops::node_count(Root); }

  //===--------------------------------------------------------------------===
  // Search.
  //===--------------------------------------------------------------------===

  std::optional<entry_t> find_entry(const key_t &K) const {
    return Ops::find(Root, K);
  }
  bool contains(const key_t &K) const { return Ops::contains(Root, K); }
  /// Number of keys strictly less than K.
  size_t rank(const key_t &K) const { return Ops::rank(Root, K); }
  /// I-th smallest entry.
  entry_t select(size_t I) const { return Ops::select(Root, I); }
  std::optional<entry_t> next(const key_t &K) const {
    return Ops::next_or_eq(Root, K);
  }
  std::optional<entry_t> previous(const key_t &K) const {
    return Ops::previous_or_eq(Root, K);
  }
  std::optional<entry_t> first() const { return Ops::first_entry(Root); }
  std::optional<entry_t> last() const { return Ops::last_entry(Root); }

  //===--------------------------------------------------------------------===
  // Functional updates (return a new collection).
  //===--------------------------------------------------------------------===

  Derived insert(entry_t E) const {
    return Derived(Ops::insert(Ops::inc(Root), std::move(E)));
  }
  Derived remove(const key_t &K) const {
    return Derived(Ops::remove(Ops::inc(Root), K));
  }
  /// Entries with KL <= key <= KR.
  Derived range(const key_t &KL, const key_t &KR) const {
    return Derived(Ops::range(Ops::inc(Root), KL, KR));
  }
  template <class Pred> Derived filter(const Pred &P) const {
    return Derived(Ops::filter(Ops::inc(Root), P));
  }

  //===--------------------------------------------------------------------===
  // In-place convenience mutators (consume this reference; nodes not shared
  // with other snapshots are updated without copying). Root is detached
  // before the consuming call: the op owns (and on a throw has released)
  // the old tree, so an injected allocation failure leaves this collection
  // empty rather than dangling — the basic guarantee, leak-free either way.
  //===--------------------------------------------------------------------===

  void insert_inplace(entry_t E) {
    node_t *R = Root;
    Root = nullptr;
    Root = Ops::insert(R, std::move(E));
  }
  template <class CombineOp>
  void insert_inplace(entry_t E, const CombineOp &Op) {
    node_t *R = Root;
    Root = nullptr;
    Root = Ops::insert(R, std::move(E), Op);
  }
  void remove_inplace(const key_t &K) {
    node_t *R = Root;
    Root = nullptr;
    Root = Ops::remove(R, K);
  }

  //===--------------------------------------------------------------------===
  // Set algebra.
  //===--------------------------------------------------------------------===

  template <class CombineOp = take_right>
  static Derived map_union(const Derived &A, const Derived &B,
                           const CombineOp &Op = CombineOp()) {
    return Derived(Ops::union_(Ops::inc(A.Root), Ops::inc(B.Root), Op));
  }
  template <class CombineOp = take_right>
  static Derived map_union(Derived &&A, Derived &&B,
                           const CombineOp &Op = CombineOp()) {
    node_t *RA = A.Root, *RB = B.Root;
    A.Root = B.Root = nullptr;
    return Derived(Ops::union_(RA, RB, Op));
  }
  template <class CombineOp = take_right>
  static Derived map_intersect(const Derived &A, const Derived &B,
                               const CombineOp &Op = CombineOp()) {
    return Derived(Ops::intersect(Ops::inc(A.Root), Ops::inc(B.Root), Op));
  }
  /// A \ B.
  static Derived map_difference(const Derived &A, const Derived &B) {
    return Derived(Ops::difference(Ops::inc(A.Root), Ops::inc(B.Root)));
  }

  //===--------------------------------------------------------------------===
  // Batch updates.
  //===--------------------------------------------------------------------===

  /// Inserts a batch (unsorted, possibly duplicated keys; duplicates are
  /// combined left-to-right, then with the stored value via \p Op).
  template <class CombineOp = take_right>
  Derived multi_insert(std::vector<entry_t> Batch,
                       const CombineOp &Op = CombineOp()) const {
    size_t K = Ops::sort_and_combine(Batch.data(), Batch.size(), Op);
    return Derived(
        Ops::multi_insert_sorted(Ops::inc(Root), Batch.data(), K, Op));
  }
  /// Inserts a batch that is already sorted with distinct keys (moved).
  template <class CombineOp = take_right>
  Derived multi_insert_sorted(std::vector<entry_t> Batch,
                              const CombineOp &Op = CombineOp()) const {
    return Derived(Ops::multi_insert_sorted(Ops::inc(Root), Batch.data(),
                                            Batch.size(), Op));
  }
  Derived multi_delete(std::vector<key_t> Keys) const {
    par::sort(Keys);
    size_t K = par::unique(Keys.data(), Keys.size());
    return Derived(Ops::multi_delete_sorted(Ops::inc(Root), Keys.data(), K));
  }
  /// Sorted, distinct key batch (no resort).
  Derived multi_delete_sorted(const std::vector<key_t> &Keys) const {
    return Derived(Ops::multi_delete_sorted(Ops::inc(Root), Keys.data(),
                                            Keys.size()));
  }

  //===--------------------------------------------------------------------===
  // Traversal.
  //===--------------------------------------------------------------------===

  /// Sequential in-order visit; F returns false to stop early.
  template <class F> void foreach_seq(const F &f) const {
    Ops::foreach_seq(Root, [&](const entry_t &E) {
      if constexpr (std::is_void_v<decltype(f(E))>) {
        f(E);
        return true;
      } else {
        return f(E);
      }
    });
  }
  /// Parallel visit with in-order index: f(I, E).
  template <class F> void foreach_index(const F &f) const {
    Ops::foreach_index(Root, f);
  }
  template <class F, class T2, class Combine>
  T2 map_reduce(const F &f, T2 Identity, const Combine &Cmb) const {
    return Ops::map_reduce(Root, f, Identity, Cmb);
  }
  std::vector<entry_t> to_vector() const {
    std::vector<entry_t> Out(size());
    Ops::to_array(Root, Out.data());
    return Out;
  }

  //===--------------------------------------------------------------------===
  // Testing hooks.
  //===--------------------------------------------------------------------===

  /// Empty string if the Def. 4.1 invariants hold; else a description.
  std::string check_invariants() const {
    std::string S = invariant_checker<Ops>::check(Root);
    if (!S.empty())
      return S;
    using EntryT = typename Derived::entry_traits;
    return order_checker<Ops, EntryT>::check(Root);
  }

  /// Raw root (for internal composition: graphs, range trees).
  node_t *root() const { return Root; }
  /// Adopts an owned root pointer.
  static Derived take_root(node_t *R) { return Derived(R); }

protected:
  /// All construction funnels through here: small whole trees are folded
  /// into a single root block (see tree_ops::compress_root).
  explicit ordered_api(node_t *R) : Root(Ops::compress_root(R)) {}
  node_t *Root = nullptr;
};

} // namespace cpam

#endif // CPAM_API_ORDERED_API_H
