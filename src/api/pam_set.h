//===- pam_set.h - Purely-functional ordered set ---------------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#ifndef CPAM_API_PAM_SET_H
#define CPAM_API_PAM_SET_H

#include "src/api/ordered_api.h"
#include "src/encoding/raw_encoder.h"

namespace cpam {

/// A purely-functional ordered set of K backed by a PaC-tree with block
/// size \p BlockSizeB and encoding \p Enc (use diff_encoder for integer
/// keys to get the paper's difference-encoded sets). `BlockSizeB == 0`
/// selects the P-tree (PAM) representation.
template <class K, int BlockSizeB = 128,
          template <class> class Enc = raw_encoder,
          class Less = std::less<K>>
class pam_set
    : public ordered_api<pam_set<K, BlockSizeB, Enc, Less>,
                         map_ops<set_entry<K, Less>, Enc, BlockSizeB>> {
  using Entry = set_entry<K, Less>;
  using Base = ordered_api<pam_set, map_ops<Entry, Enc, BlockSizeB>>;
  friend Base;

public:
  using entry_traits = Entry;
  using typename Base::entry_t; // == K
  using typename Base::node_t;
  using ops = typename Base::ops;

  pam_set() = default;

  /// Builds from unsorted keys (duplicates removed).
  explicit pam_set(const std::vector<K> &Keys)
      : Base(ops::build(Keys.data(), Keys.size())) {}

  /// Builds from keys already sorted and distinct (moved).
  static pam_set from_sorted(std::vector<K> Keys) {
    return pam_set(ops::from_array_move(Keys.data(), Keys.size()));
  }

private:
  explicit pam_set(node_t *R) : Base(R) {}
};

} // namespace cpam

#endif // CPAM_API_PAM_SET_H
