//===- aug_map.h - Purely-functional augmented ordered map -----------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#ifndef CPAM_API_AUG_MAP_H
#define CPAM_API_AUG_MAP_H

#include "src/api/ordered_api.h"
#include "src/encoding/raw_encoder.h"

namespace cpam {

/// A purely-functional augmented ordered map. \p AugEntry supplies the key,
/// value and ordering like map_entry, plus the augmentation (aug_t,
/// aug_empty, aug_from_entry, aug_combine); see entry.h. PaC-trees store
/// one augmented value per regular node and one per flat block, which is
/// where the large augmentation space savings over P-trees come from
/// (Fig. 13).
template <class AugEntry, int BlockSizeB = 128,
          template <class> class Enc = raw_encoder>
class aug_map : public ordered_api<aug_map<AugEntry, BlockSizeB, Enc>,
                                   aug_ops<AugEntry, Enc, BlockSizeB>> {
  using Base = ordered_api<aug_map, aug_ops<AugEntry, Enc, BlockSizeB>>;
  friend Base;

public:
  using entry_traits = AugEntry;
  using typename Base::entry_t;
  using typename Base::key_t;
  using typename Base::node_t;
  using ops = typename Base::ops;
  using aug_t = typename AugEntry::aug_t;

  aug_map() = default;

  template <class CombineOp = take_right>
  explicit aug_map(const std::vector<entry_t> &Entries,
                   const CombineOp &Op = CombineOp())
      : Base(ops::build(Entries.data(), Entries.size(), Op)) {}

  static aug_map from_sorted(std::vector<entry_t> Entries) {
    return aug_map(ops::from_array_move(Entries.data(), Entries.size()));
  }

  /// Value lookup.
  std::optional<typename AugEntry::val_t> find(const key_t &Key) const {
    auto E = this->find_entry(Key);
    if (!E)
      return std::nullopt;
    return AugEntry::get_val(*E);
  }

  aug_map insert(const key_t &Key, typename AugEntry::val_t Val) const {
    return Base::insert(entry_t(Key, std::move(Val)));
  }
  using Base::insert;
  void insert_inplace(const key_t &Key, typename AugEntry::val_t Val) {
    Base::insert_inplace(entry_t(Key, std::move(Val)));
  }
  using Base::insert_inplace;

  /// Aggregate over the whole map.
  aug_t aug_val() const { return ops::aug_val(this->Root); }
  /// Aggregate over keys <= K.
  aug_t aug_left(const key_t &K) const { return ops::aug_left(this->Root, K); }
  /// Aggregate over keys >= K.
  aug_t aug_right(const key_t &K) const {
    return ops::aug_right(this->Root, K);
  }
  /// Aggregate over KL <= key <= KR. O(log n + B) work.
  aug_t aug_range(const key_t &KL, const key_t &KR) const {
    return ops::aug_range(this->Root, KL, KR);
  }
  /// Entries whose aug_from_entry satisfies P, pruning subtrees whose
  /// aggregate fails P (P must be monotone w.r.t. aug_combine).
  template <class Pred> aug_map aug_filter(const Pred &P) const {
    return aug_map(ops::aug_filter(ops::inc(this->Root), P));
  }
  /// Leftmost entry whose own aggregate satisfies monotone \p P.
  template <class Pred>
  std::optional<entry_t> aug_find_first(const Pred &P) const {
    return ops::aug_find_first(this->Root, P);
  }

private:
  explicit aug_map(node_t *R) : Base(R) {}
};

} // namespace cpam

#endif // CPAM_API_AUG_MAP_H
