//===- pam_seq.h - Purely-functional sequence ------------------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#ifndef CPAM_API_PAM_SEQ_H
#define CPAM_API_PAM_SEQ_H

#include <vector>

#include "src/core/invariants.h"
#include "src/core/seq_ops.h"
#include "src/encoding/raw_encoder.h"

namespace cpam {

/// A purely-functional sequence of T backed by a PaC-tree (Table 1's
/// Sequence interface). Sequences are positional: elements carry no
/// ordering invariant. Copies are O(1) snapshots. Unlike flat arrays,
/// append and take/drop/subseq cost O(log n + B) (Fig. 2's append result).
template <class T, int BlockSizeB = 128,
          template <class> class Enc = raw_encoder>
class pam_seq {
  using Entry = set_entry<T>;
  using Ops = seq_ops<Entry, Enc, BlockSizeB>;

public:
  using value_type = T;
  using node_t = typename Ops::node_t;
  using ops = Ops;

  pam_seq() = default;
  pam_seq(const pam_seq &O) : Root(Ops::inc(O.Root)) {}
  pam_seq(pam_seq &&O) noexcept : Root(O.Root) { O.Root = nullptr; }
  pam_seq &operator=(const pam_seq &O) {
    if (this != &O) {
      Ops::dec(Root);
      Root = Ops::inc(O.Root);
    }
    return *this;
  }
  pam_seq &operator=(pam_seq &&O) noexcept {
    if (this != &O) {
      Ops::dec(Root);
      Root = O.Root;
      O.Root = nullptr;
    }
    return *this;
  }
  ~pam_seq() { Ops::dec(Root); }

  /// Builds from an array, preserving order. O(n) work, O(log n) span.
  explicit pam_seq(const std::vector<T> &V)
      : Root(Ops::from_array(V.data(), V.size())) {}

  /// Builds a sequence of length N with elements f(0..N).
  template <class F> static pam_seq tabulate(size_t N, const F &f) {
    std::vector<T> V(N);
    par::parallel_for(0, N, [&](size_t I) { V[I] = f(I); });
    return pam_seq(Ops::from_array_move(V.data(), N));
  }

  size_t size() const { return Ops::size(Root); }
  bool empty() const { return Root == nullptr; }
  size_t size_in_bytes() const { return Ops::size_in_bytes(Root); }

  /// Element at index I. O(log n + B) work (vs O(1) for arrays — the nth
  /// tradeoff discussed with Fig. 2).
  T nth(size_t I) const { return Ops::nth(Root, I); }

  pam_seq take(size_t N) const { return pam_seq(Ops::take(copy_root(), N)); }
  pam_seq drop(size_t N) const { return pam_seq(Ops::drop(copy_root(), N)); }
  pam_seq subseq(size_t From, size_t To) const {
    return pam_seq(Ops::subseq(copy_root(), From, To));
  }
  /// Concatenation in O(log n + B).
  static pam_seq append(const pam_seq &A, const pam_seq &B) {
    return pam_seq(Ops::append(A.copy_root(), B.copy_root()));
  }
  pam_seq reverse() const { return pam_seq(Ops::reverse(copy_root())); }
  template <class F> pam_seq map(const F &f) const {
    return pam_seq(Ops::map(copy_root(), f));
  }
  template <class Pred> pam_seq filter(const Pred &P) const {
    return pam_seq(Ops::filter(copy_root(), P));
  }
  template <class F, class T2, class Combine>
  T2 map_reduce(const F &f, T2 Identity, const Combine &Cmb) const {
    return Ops::map_reduce(Root, f, Identity, Cmb);
  }
  /// Sum-style reduction with an associative combiner.
  template <class Combine> T reduce(T Identity, const Combine &Cmb) const {
    return Ops::map_reduce(Root, [](const T &X) { return X; }, Identity,
                           Cmb);
  }
  /// Index of the first element satisfying P, or size() if none.
  template <class Pred> size_t find_first(const Pred &P) const {
    return Ops::find_first(Root, P);
  }
  template <class Less = std::less<T>>
  bool is_sorted(const Less &Lt = Less()) const {
    return Ops::is_sorted(Root, Lt);
  }

  std::vector<T> to_vector() const {
    std::vector<T> Out(size());
    Ops::to_array(Root, Out.data());
    return Out;
  }

  /// Empty string if Def. 4.1 structural invariants hold.
  std::string check_invariants() const {
    return invariant_checker<Ops>::check(Root);
  }

  node_t *root() const { return Root; }

private:
  explicit pam_seq(node_t *R) : Root(Ops::compress_root(R)) {}
  node_t *copy_root() const { return Ops::inc(Root); }
  node_t *Root = nullptr;
};

} // namespace cpam

#endif // CPAM_API_PAM_SEQ_H
