//===- pam_map.h - Purely-functional ordered map ---------------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#ifndef CPAM_API_PAM_MAP_H
#define CPAM_API_PAM_MAP_H

#include "src/api/ordered_api.h"
#include "src/encoding/raw_encoder.h"

namespace cpam {

/// A purely-functional ordered map from K to V backed by a PaC-tree with
/// block size \p BlockSizeB and block encoding \p Enc. `BlockSizeB == 0`
/// selects the un-blocked P-tree representation (the PAM baseline).
///
/// Copies are O(1) snapshots; all operations are safe to run from parallel
/// code as long as each map value is owned by one logical thread (snapshots
/// may be read concurrently with updates to other snapshots).
template <class K, class V, int BlockSizeB = 128,
          template <class> class Enc = raw_encoder,
          class Less = std::less<K>>
class pam_map
    : public ordered_api<pam_map<K, V, BlockSizeB, Enc, Less>,
                         map_ops<map_entry<K, V, Less>, Enc, BlockSizeB>> {
  using Entry = map_entry<K, V, Less>;
  using Base = ordered_api<pam_map, map_ops<Entry, Enc, BlockSizeB>>;
  friend Base;

public:
  using entry_traits = Entry;
  using typename Base::entry_t;
  using typename Base::node_t;
  using ops = typename Base::ops;

  pam_map() = default;

  /// Builds from unsorted entries; duplicate keys combine via \p Op
  /// (default: last writer wins).
  template <class CombineOp = take_right>
  explicit pam_map(const std::vector<entry_t> &Entries,
                   const CombineOp &Op = CombineOp())
      : Base(ops::build(Entries.data(), Entries.size(), Op)) {}

  /// Builds from unsorted entries the caller relinquishes (no input copy).
  template <class CombineOp = take_right>
  explicit pam_map(std::vector<entry_t> &&Entries,
                   const CombineOp &Op = CombineOp())
      : Base(ops::build_move(Entries.data(), Entries.size(), Op)) {}

  /// Builds from entries already sorted by key with distinct keys (moved).
  static pam_map from_sorted(std::vector<entry_t> Entries) {
    return pam_map(
        ops::from_array_move(Entries.data(), Entries.size()));
  }

  /// Value lookup.
  std::optional<V> find(const K &Key) const {
    auto E = this->find_entry(Key);
    if (!E)
      return std::nullopt;
    return E->second;
  }

  /// Insert a (key, value) pair functionally.
  pam_map insert(const K &Key, V Val) const {
    return Base::insert(entry_t(Key, std::move(Val)));
  }
  using Base::insert;
  void insert_inplace(const K &Key, V Val) {
    Base::insert_inplace(entry_t(Key, std::move(Val)));
  }
  using Base::insert_inplace;

  /// New map with the same keys and f(entry) as values.
  template <class F> pam_map map_values(const F &f) const {
    return pam_map(ops::map_values(ops::inc(this->Root), f));
  }

  std::vector<K> keys() const {
    std::vector<entry_t> Es = this->to_vector();
    std::vector<K> Out(Es.size());
    par::parallel_for(0, Es.size(), [&](size_t I) { Out[I] = Es[I].first; });
    return Out;
  }

private:
  explicit pam_map(node_t *R) : Base(R) {}
};

} // namespace cpam

#endif // CPAM_API_PAM_MAP_H
