//===- timer.h - Wall-clock timing helper ----------------------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#ifndef CPAM_UTIL_TIMER_H
#define CPAM_UTIL_TIMER_H

#include <chrono>

namespace cpam {

/// Simple monotonic wall-clock timer measuring seconds since construction or
/// the last reset().
class Timer {
public:
  Timer() : Start(Clock::now()) {}
  void reset() { Start = Clock::now(); }
  /// Elapsed seconds.
  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }
  /// Elapsed milliseconds.
  double elapsed_ms() const { return elapsed() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Runs \p f \p Reps times and returns the median elapsed seconds.
template <class F> double median_time(const F &f, int Reps = 3) {
  double Best[16];
  if (Reps > 16)
    Reps = 16;
  for (int I = 0; I < Reps; ++I) {
    Timer T;
    f();
    Best[I] = T.elapsed();
  }
  // Insertion sort the few samples and return the median.
  for (int I = 1; I < Reps; ++I)
    for (int J = I; J > 0 && Best[J] < Best[J - 1]; --J) {
      double Tmp = Best[J];
      Best[J] = Best[J - 1];
      Best[J - 1] = Tmp;
    }
  return Best[Reps / 2];
}

} // namespace cpam

#endif // CPAM_UTIL_TIMER_H
