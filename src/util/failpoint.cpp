//===- failpoint.cpp - Deterministic fault-injection registry -------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "src/util/failpoint.h"

#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/obs/metrics.h"

using namespace cpam;
using namespace cpam::fail;

std::atomic<int> cpam::fail::detail::ArmedCount{0};

namespace {

/// The registry: leaked singleton (sites cache point references forever;
/// exit-time exporters may still walk it). Map storage gives points stable
/// addresses.
struct Registry {
  std::mutex M;
  std::map<std::string, std::unique_ptr<point>> Points;

  Registry() {
    // Adopt into the obs exporter so armed specs and hit/fire counts show
    // up in every cpam-metrics-v1 dump. The callbacks take only the
    // failpoint mutex (never the obs lock), so the obs-lock -> fail-lock
    // order is acyclic.
    obs::registry::get().register_source(
        "failpoints", [this] { return exportJson(); },
        [this] { resetCounts(); });
  }

  point &get(const std::string &Name) {
    std::lock_guard<std::mutex> L(M);
    auto &P = Points[Name];
    if (!P)
      P = std::make_unique<point>(Name);
    return *P;
  }

  point *find(const std::string &Name) {
    std::lock_guard<std::mutex> L(M);
    auto It = Points.find(Name);
    return It == Points.end() ? nullptr : It->second.get();
  }

  std::string exportJson() {
    std::lock_guard<std::mutex> L(M);
    std::string Out = "{";
    bool First = true;
    char Buf[160];
    for (auto &[Name, P] : Points) {
      const char *Mode = "off";
      switch (P->Mode.load(std::memory_order_relaxed)) {
      case trigger::Off:
        break;
      case trigger::Always:
        Mode = "always";
        break;
      case trigger::Nth:
        Mode = "nth";
        break;
      case trigger::EveryNth:
        Mode = "every";
        break;
      case trigger::Prob:
        Mode = "p";
        break;
      }
      snprintf(Buf, sizeof(Buf),
               "%s\n      \"%s\": {\"mode\": \"%s\", \"n\": %llu, "
               "\"hits\": %llu, \"fires\": %llu}",
               First ? "" : ",", Name.c_str(), Mode,
               static_cast<unsigned long long>(
                   P->Param.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(
                   P->Hits.load(std::memory_order_relaxed)),
               static_cast<unsigned long long>(
                   P->Fires.load(std::memory_order_relaxed)));
      Out += Buf;
      First = false;
    }
    Out += First ? "}" : "\n    }";
    return Out;
  }

  void resetCounts() {
    std::lock_guard<std::mutex> L(M);
    for (auto &[Name, P] : Points) {
      P->Hits.store(0, std::memory_order_relaxed);
      P->Fires.store(0, std::memory_order_relaxed);
    }
  }
};

Registry &registry() {
  static Registry *R = new Registry;
  return *R;
}

/// Applies one parsed spec to \p P, maintaining the armed count.
void apply(point &P, trigger Mode, uint64_t Param, uint64_t Seed,
           uint64_t Arg) {
  bool WasArmed = P.Mode.load(std::memory_order_relaxed) != trigger::Off;
  bool IsArmed = Mode != trigger::Off;
  P.Param.store(Param, std::memory_order_relaxed);
  P.Seed.store(Seed, std::memory_order_relaxed);
  P.Arg.store(Arg, std::memory_order_relaxed);
  // Mode last, with release: a hot-path should_fire that sees the new mode
  // sees the new parameters too.
  P.Mode.store(Mode, std::memory_order_release);
  if (IsArmed && !WasArmed)
    detail::ArmedCount.fetch_add(1, std::memory_order_relaxed);
  else if (!IsArmed && WasArmed)
    detail::ArmedCount.fetch_sub(1, std::memory_order_relaxed);
}

/// Parses "clause(/clause)*". Returns false (leaving outputs untouched) on
/// any malformed clause.
bool parseSpec(const std::string &Spec, trigger &Mode, uint64_t &Param,
               uint64_t &Seed, uint64_t &Arg) {
  trigger M = trigger::Off;
  uint64_t N = 0, S = 0, A = 0;
  bool HaveMode = false;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t End = Spec.find('/', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Clause = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Clause.empty())
      return false;
    auto Num = [](const std::string &V, uint64_t &Out) {
      if (V.empty())
        return false;
      char *EndP = nullptr;
      Out = std::strtoull(V.c_str(), &EndP, 10);
      return EndP && *EndP == '\0';
    };
    size_t Eq = Clause.find('=');
    std::string Key = Clause.substr(0, Eq);
    std::string Val = Eq == std::string::npos ? "" : Clause.substr(Eq + 1);
    if (Key == "always" && Eq == std::string::npos) {
      M = trigger::Always;
      HaveMode = true;
    } else if (Key == "off" && Eq == std::string::npos) {
      M = trigger::Off;
      HaveMode = true;
    } else if (Key == "nth") {
      if (!Num(Val, N) || N == 0)
        return false;
      M = trigger::Nth;
      HaveMode = true;
    } else if (Key == "every") {
      if (!Num(Val, N) || N == 0)
        return false;
      M = trigger::EveryNth;
      HaveMode = true;
    } else if (Key == "p") {
      if (!Num(Val, N) || N == 0)
        return false;
      M = trigger::Prob;
      HaveMode = true;
    } else if (Key == "seed") {
      if (!Num(Val, S))
        return false;
    } else if (Key == "arg") {
      if (!Num(Val, A))
        return false;
    } else {
      return false;
    }
    if (End == Spec.size())
      break;
  }
  if (!HaveMode)
    return false;
  Mode = M;
  Param = N;
  Seed = S;
  Arg = A;
  return true;
}

/// Parses CPAM_FAILPOINTS ("name:spec,name:spec") once, at first registry
/// use. Malformed entries are skipped (loudly, to stderr) rather than
/// aborting the process.
void configureFromEnv() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    const char *Env = std::getenv("CPAM_FAILPOINTS");
    if (!Env || !*Env)
      return;
    std::string All(Env);
    size_t Pos = 0;
    while (Pos <= All.size()) {
      size_t End = All.find(',', Pos);
      if (End == std::string::npos)
        End = All.size();
      std::string Entry = All.substr(Pos, End - Pos);
      Pos = End + 1;
      size_t Colon = Entry.find(':');
      bool Ok = false;
      if (Colon != std::string::npos && Colon > 0) {
        trigger Mode;
        uint64_t Param, Seed, Arg;
        if (parseSpec(Entry.substr(Colon + 1), Mode, Param, Seed, Arg)) {
          apply(registry().get(Entry.substr(0, Colon)), Mode, Param, Seed,
                Arg);
          Ok = true;
        }
      }
      if (!Ok && !Entry.empty())
        fprintf(stderr, "cpam: ignoring malformed CPAM_FAILPOINTS entry "
                        "'%s'\n",
                Entry.c_str());
      if (End == All.size())
        break;
    }
  });
}

} // namespace

point &cpam::fail::detail::get(const char *Name) {
  configureFromEnv();
  return registry().get(Name);
}

bool cpam::fail::arm(const std::string &Name, const std::string &Spec) {
  configureFromEnv();
  trigger Mode;
  uint64_t Param, Seed, Arg;
  if (!parseSpec(Spec, Mode, Param, Seed, Arg))
    return false;
  apply(registry().get(Name), Mode, Param, Seed, Arg);
  return true;
}

void cpam::fail::disarm(const std::string &Name) {
  if (point *P = registry().find(Name))
    apply(*P, trigger::Off, 0, 0, 0);
}

void cpam::fail::disarm_all() {
  // Collect first: apply() only touches atomics, but keeping the lock span
  // trivial avoids any future lock-order questions.
  std::vector<point *> Ps;
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> L(R.M);
    for (auto &[Name, P] : R.Points)
      Ps.push_back(P.get());
  }
  for (point *P : Ps)
    apply(*P, trigger::Off, 0, 0, 0);
}

void cpam::fail::reset_counts() { registry().resetCounts(); }

uint64_t cpam::fail::hits(const std::string &Name) {
  point *P = registry().find(Name);
  return P ? P->Hits.load(std::memory_order_relaxed) : 0;
}

uint64_t cpam::fail::fires(const std::string &Name) {
  point *P = registry().find(Name);
  return P ? P->Fires.load(std::memory_order_relaxed) : 0;
}

uint64_t cpam::fail::arg(const std::string &Name, uint64_t Default) {
  point *P = registry().find(Name);
  if (!P || P->Mode.load(std::memory_order_acquire) == trigger::Off)
    return Default;
  return P->Arg.load(std::memory_order_relaxed);
}

cpam::fail::scoped_arm::~scoped_arm() {
  if (point *P = registry().find(Name)) {
    apply(*P, trigger::Off, 0, 0, 0);
    P->Hits.store(0, std::memory_order_relaxed);
    P->Fires.store(0, std::memory_order_relaxed);
  }
}
