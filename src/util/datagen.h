//===- datagen.h - Deterministic synthetic dataset generators -------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic workload generators standing in for the paper's proprietary or
/// oversized datasets (SNAP graphs, the Wikipedia corpus): rMAT power-law
/// graphs (Sec. 10.5 uses a=0.5, b=c=0.1, d=0.3), 2D mesh ("road-like")
/// graphs, uniform random intervals and points. All are deterministic in
/// the seed. See DESIGN.md Sec. 3 for the substitution rationale.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_UTIL_DATAGEN_H
#define CPAM_UTIL_DATAGEN_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cpam {

using vertex_id = uint32_t;
using edge_pair = std::pair<vertex_id, vertex_id>;

/// Parameters of the recursive matrix (rMAT) generator [Chakrabarti et al.].
struct RmatParams {
  double A = 0.5, B = 0.1, C = 0.1; // D = 1 - A - B - C.
  uint64_t Seed = 42;
};

/// Generates \p NumEdges directed rMAT edges over 2^LogN vertices. May
/// contain duplicates and self loops, as in the paper's update streams.
std::vector<edge_pair> rmat_edges(int LogN, size_t NumEdges,
                                  RmatParams P = RmatParams());

/// Generates a symmetrized, deduplicated rMAT edge list (both directions
/// present, no self loops), sorted by (src, dst).
std::vector<edge_pair> rmat_graph(int LogN, size_t NumDirectedEdges,
                                  RmatParams P = RmatParams());

/// Generates a 2D grid/mesh graph with Side*Side vertices (sorted symmetric
/// edge list). Sparse with high index locality — the USA-Road stand-in.
std::vector<edge_pair> mesh_graph(size_t Side);

/// An interval [Left, Right] on the integer line with Left <= Right.
struct Interval {
  uint64_t Left;
  uint64_t Right;
};

/// N random intervals with endpoints in [0, Universe) and length at most
/// MaxLen.
std::vector<Interval> random_intervals(size_t N, uint64_t Universe,
                                       uint64_t MaxLen, uint64_t Seed = 1);

/// N uniformly random 2D points in [0, Universe)^2 with distinct
/// x-coordinates (x-coordinates are a random permutation-like sample).
std::vector<std::pair<uint64_t, uint64_t>>
random_points(size_t N, uint64_t Universe, uint64_t Seed = 2);

/// N distinct uniformly random 64-bit keys in [0, Universe), sorted.
std::vector<uint64_t> random_keys_sorted(size_t N, uint64_t Universe,
                                         uint64_t Seed = 3);

/// N uniformly random 64-bit keys in [0, Universe), unsorted, possibly
/// duplicated.
std::vector<uint64_t> random_keys(size_t N, uint64_t Universe,
                                  uint64_t Seed = 4);

} // namespace cpam

#endif // CPAM_UTIL_DATAGEN_H
