//===- failpoint.h - Deterministic fault-injection registry ---------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named failpoints: sites in production code where tests
/// inject failures (allocation throws, fork refusals, artificial stalls)
/// deterministically. Each site is guarded by CPAM_FAILPOINT_ACTIVE("name"),
/// which compiles to a single relaxed load of a global armed-count when no
/// failpoint is armed — the framework is zero-cost in production builds and
/// disarmed test runs alike.
///
/// Triggers (per point):
///
///  - `always`    every hit fires.
///  - `nth=N`     exactly the N-th hit fires (one-shot).
///  - `every=N`   every N-th hit fires (hits N, 2N, 3N, ...).
///  - `p=N`       each hit fires with probability 1/N, decided by a
///                counter-based RNG over (seed, hit index): a pure function
///                of the spec, so a given seed replays the exact same
///                fire pattern on every run, at any thread interleaving of
///                *other* points.
///
/// Modifier clauses: `seed=S` (the `p=` stream seed) and `arg=V` (an opaque
/// site-interpreted payload, e.g. a sleep duration in ms for the serving
/// stall points). Clauses combine with '/': `alloc.node:p=64/seed=7`.
///
/// Configuration: programmatically via fail::arm()/fail::scoped_arm, or from
/// the environment at first use — `CPAM_FAILPOINTS=name:spec,name:spec`.
/// Hit/fire counters for every registered point export through the obs
/// registry (source "failpoints" in obs::export_json(); obs::reset_all()
/// zeroes the counts but keeps the arming).
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_UTIL_FAILPOINT_H
#define CPAM_UTIL_FAILPOINT_H

#include <atomic>
#include <cstdint>
#include <string>

/// Compile gate: 0 turns every CPAM_FAILPOINT_ACTIVE site into a constant
/// `false` (for paranoid overhead A/B runs; the default single-load guard
/// already measures as noise).
#ifndef CPAM_FAILPOINTS_ENABLED
#define CPAM_FAILPOINTS_ENABLED 1
#endif

namespace cpam {
namespace fail {

enum class trigger : uint8_t { Off, Always, Nth, EveryNth, Prob };

/// One named failpoint. Stable address for the lifetime of the process
/// (sites cache a reference); all fields atomic so arming races benignly
/// with hot-path evaluation.
struct point {
  explicit point(std::string Name) : Name(std::move(Name)) {}
  point(const point &) = delete;
  point &operator=(const point &) = delete;

  const std::string Name;
  std::atomic<trigger> Mode{trigger::Off};
  std::atomic<uint64_t> Param{0}; ///< N of nth=/every=/p=.
  std::atomic<uint64_t> Seed{0};  ///< Seed of the p= decision stream.
  std::atomic<uint64_t> Arg{0};   ///< Site-interpreted payload (arg=).
  std::atomic<uint64_t> Hits{0};  ///< Guard evaluations while armed.
  std::atomic<uint64_t> Fires{0}; ///< Hits that fired.

  /// Counts a hit and decides whether this one fires. Only called while the
  /// global armed-count is nonzero, but the point itself may still be off.
  bool should_fire() {
    trigger M = Mode.load(std::memory_order_acquire);
    if (M == trigger::Off)
      return false;
    uint64_t H = Hits.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t N = Param.load(std::memory_order_relaxed);
    bool Fire = false;
    switch (M) {
    case trigger::Always:
      Fire = true;
      break;
    case trigger::Nth:
      Fire = H == N;
      break;
    case trigger::EveryNth:
      Fire = N != 0 && H % N == 0;
      break;
    case trigger::Prob: {
      // splitmix64 over (seed, hit index): the decision for hit H depends
      // only on the spec, never on timing.
      uint64_t X = Seed.load(std::memory_order_relaxed) +
                   H * 0x9e3779b97f4a7c15ULL;
      X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
      X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
      X ^= X >> 31;
      Fire = N != 0 && X % N == 0;
      break;
    }
    case trigger::Off:
      break;
    }
    if (Fire)
      Fires.fetch_add(1, std::memory_order_relaxed);
    return Fire;
  }
};

namespace detail {
/// Number of points whose Mode != Off. The one load every disarmed site
/// pays.
extern std::atomic<int> ArmedCount;

inline bool any_armed() {
  return ArmedCount.load(std::memory_order_relaxed) != 0;
}

/// Looks up (or creates) the point named \p Name. Parses CPAM_FAILPOINTS on
/// first use. Thread-safe; the returned reference is stable forever.
point &get(const char *Name);
} // namespace detail

/// Arms \p Name with \p Spec (grammar in the file header). Returns false on
/// a malformed spec (the point is left untouched).
bool arm(const std::string &Name, const std::string &Spec);

/// Disarms \p Name (hit/fire counts are kept).
void disarm(const std::string &Name);

/// Disarms every point.
void disarm_all();

/// Zeroes every point's hit/fire counters (arming is kept).
void reset_counts();

/// Hit / fire counters and the arg payload of \p Name (0 / Default if the
/// point was never referenced).
uint64_t hits(const std::string &Name);
uint64_t fires(const std::string &Name);
uint64_t arg(const std::string &Name, uint64_t Default = 0);

/// RAII arming for tests: arms in the constructor, disarms (and zeroes the
/// counters) in the destructor so no failpoint leaks into later tests.
class scoped_arm {
public:
  scoped_arm(std::string Name, const std::string &Spec)
      : Name(std::move(Name)) {
    arm(this->Name, Spec);
  }
  scoped_arm(const scoped_arm &) = delete;
  scoped_arm &operator=(const scoped_arm &) = delete;
  ~scoped_arm();

private:
  std::string Name;
};

} // namespace fail
} // namespace cpam

/// Site guard. Evaluates to true when the named failpoint decides to fire.
/// Disarmed cost: one relaxed load + predicted-untaken branch. The static
/// local caches the registry lookup per site, so armed cost is one atomic
/// fetch_add per hit, no lock.
#if CPAM_FAILPOINTS_ENABLED
#define CPAM_FAILPOINT_ACTIVE(NameLiteral)                                     \
  (__builtin_expect(::cpam::fail::detail::any_armed(), 0) &&                   \
   ([]() -> ::cpam::fail::point & {                                            \
     static ::cpam::fail::point &P = ::cpam::fail::detail::get(NameLiteral);   \
     return P;                                                                 \
   }())                                                                        \
       .should_fire())
#else
#define CPAM_FAILPOINT_ACTIVE(NameLiteral) false
#endif

#endif // CPAM_UTIL_FAILPOINT_H
