//===- textgen.cpp - Zipfian text corpus generator -------------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "src/util/textgen.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/parallel/random.h"
#include "src/parallel/scheduler.h"

using namespace cpam;

std::string cpam::word_string(uint32_t Id) {
  // Bijective base-26 so every id maps to a unique nonempty word.
  std::string S;
  uint64_t X = Id + 1;
  while (X > 0) {
    X -= 1;
    S.push_back(static_cast<char>('a' + (X % 26)));
    X /= 26;
  }
  std::reverse(S.begin(), S.end());
  return S;
}

Corpus cpam::generate_corpus(size_t NumTokens, size_t VocabSize,
                             size_t NumDocs, double Exponent, uint64_t Seed) {
  assert(VocabSize > 0 && NumDocs > 0 && "empty corpus requested");
  Corpus C;

  // Zipf CDF over the vocabulary. Rank r has weight 1/(r+1)^s.
  std::vector<double> Cdf(VocabSize);
  double Total = 0;
  for (size_t R = 0; R < VocabSize; ++R) {
    Total += 1.0 / std::pow(static_cast<double>(R + 1), Exponent);
    Cdf[R] = Total;
  }
  for (size_t R = 0; R < VocabSize; ++R)
    Cdf[R] /= Total;

  // Word ids are assigned to ranks pseudo-randomly so that frequent words
  // are not all lexicographically small (as in real text).
  std::vector<uint32_t> RankToWord(VocabSize);
  for (size_t R = 0; R < VocabSize; ++R)
    RankToWord[R] = static_cast<uint32_t>(R);
  Rng Shuffle(Seed ^ 0xbeef);
  for (size_t R = VocabSize - 1; R > 0; --R)
    std::swap(RankToWord[R], RankToWord[Shuffle.ith(R, R + 1)]);

  C.Tokens.resize(NumTokens);
  Rng R(Seed);
  par::parallel_for(0, NumTokens, [&](size_t I) {
    double X = R.ith_double(I);
    size_t Rank =
        std::lower_bound(Cdf.begin(), Cdf.end(), X) - Cdf.begin();
    if (Rank >= VocabSize)
      Rank = VocabSize - 1;
    C.Tokens[I] = RankToWord[Rank];
  });

  C.DocOffsets.resize(NumDocs + 1);
  for (size_t D = 0; D <= NumDocs; ++D)
    C.DocOffsets[D] = D * NumTokens / NumDocs;

  C.Words.resize(VocabSize);
  par::parallel_for(0, VocabSize, [&](size_t W) {
    C.Words[W] = word_string(static_cast<uint32_t>(W));
  });
  return C;
}
