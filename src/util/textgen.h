//===- textgen.h - Zipfian text corpus generator ---------------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic Zipf-distributed synthetic text corpus, standing in for the
/// Wikipedia dump used by the paper's inverted index and Spark comparisons
/// (Secs. 10.2/10.3). Word frequencies follow a Zipf law (exponent ~1),
/// which is the property the paper's space results depend on: frequent words
/// dominate posting-list space and their sorted doc-id deltas are small.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_UTIL_TEXTGEN_H
#define CPAM_UTIL_TEXTGEN_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cpam {

/// A generated corpus: a token stream of word ids partitioned into
/// documents, plus the vocabulary strings.
struct Corpus {
  /// Word id of every token, in document order.
  std::vector<uint32_t> Tokens;
  /// DocOffsets[d] .. DocOffsets[d+1] is document d's token range.
  std::vector<uint64_t> DocOffsets;
  /// Vocabulary: Words[w] is the string for word id w.
  std::vector<std::string> Words;

  size_t num_docs() const { return DocOffsets.size() - 1; }
};

/// Generates a corpus of \p NumTokens tokens over a \p VocabSize -word
/// Zipf(s=\p Exponent) vocabulary, split into \p NumDocs documents of
/// near-equal length.
Corpus generate_corpus(size_t NumTokens, size_t VocabSize, size_t NumDocs,
                       double Exponent = 1.0, uint64_t Seed = 7);

/// Deterministic lowercase word string for a word id ("a", "b", ..., "aa").
std::string word_string(uint32_t Id);

} // namespace cpam

#endif // CPAM_UTIL_TEXTGEN_H
