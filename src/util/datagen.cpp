//===- datagen.cpp - Deterministic synthetic dataset generators -----------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "src/util/datagen.h"

#include <algorithm>
#include <cassert>

#include "src/parallel/primitives.h"
#include "src/parallel/random.h"
#include "src/parallel/scheduler.h"

using namespace cpam;

/// Draws one rMAT edge by descending LogN levels of the recursive matrix.
static edge_pair rmatOne(int LogN, const RmatParams &P, uint64_t Stream,
                         uint64_t I) {
  Rng R(hash64(Stream ^ hash64(I)));
  vertex_id Src = 0, Dst = 0;
  for (int L = 0; L < LogN; ++L) {
    double X = R.next_double();
    Src <<= 1;
    Dst <<= 1;
    if (X < P.A) {
      // Top-left quadrant: neither bit set.
    } else if (X < P.A + P.B) {
      Dst |= 1;
    } else if (X < P.A + P.B + P.C) {
      Src |= 1;
    } else {
      Src |= 1;
      Dst |= 1;
    }
  }
  return {Src, Dst};
}

std::vector<edge_pair> cpam::rmat_edges(int LogN, size_t NumEdges,
                                        RmatParams P) {
  std::vector<edge_pair> E(NumEdges);
  par::parallel_for(0, NumEdges,
                    [&](size_t I) { E[I] = rmatOne(LogN, P, P.Seed, I); });
  return E;
}

std::vector<edge_pair> cpam::rmat_graph(int LogN, size_t NumDirectedEdges,
                                        RmatParams P) {
  std::vector<edge_pair> Raw = rmat_edges(LogN, NumDirectedEdges, P);
  std::vector<edge_pair> Sym(2 * Raw.size());
  par::parallel_for(0, Raw.size(), [&](size_t I) {
    Sym[2 * I] = Raw[I];
    Sym[2 * I + 1] = {Raw[I].second, Raw[I].first};
  });
  par::sort(Sym);
  // Drop self loops and duplicates.
  std::vector<edge_pair> Out(Sym.size());
  size_t K = par::pack(
      Sym.data(),
      [&](size_t I) {
        if (Sym[I].first == Sym[I].second)
          return false;
        return I == 0 || Sym[I] != Sym[I - 1];
      },
      Sym.size(), Out.data());
  Out.resize(K);
  return Out;
}

std::vector<edge_pair> cpam::mesh_graph(size_t Side) {
  assert(Side >= 2 && "mesh graphs need at least a 2x2 grid");
  // Each interior vertex connects to its right and down neighbours; the
  // symmetric closure is emitted directly so the list is already sorted.
  std::vector<edge_pair> Out;
  Out.reserve(4 * Side * Side);
  for (size_t R = 0; R < Side; ++R) {
    for (size_t C = 0; C < Side; ++C) {
      vertex_id V = static_cast<vertex_id>(R * Side + C);
      if (C + 1 < Side) {
        Out.push_back({V, V + 1});
      }
      if (C > 0)
        Out.push_back({V, V - 1});
      if (R > 0)
        Out.push_back({V, static_cast<vertex_id>(V - Side)});
      if (R + 1 < Side)
        Out.push_back({V, static_cast<vertex_id>(V + Side)});
    }
  }
  // Neighbour lists per vertex are emitted out of order; sort to normalize.
  par::sort(Out);
  return Out;
}

std::vector<Interval> cpam::random_intervals(size_t N, uint64_t Universe,
                                             uint64_t MaxLen, uint64_t Seed) {
  assert(MaxLen >= 1 && Universe > MaxLen && "degenerate interval universe");
  std::vector<Interval> Out(N);
  Rng R(Seed);
  par::parallel_for(0, N, [&](size_t I) {
    uint64_t L = R.ith(2 * I, Universe - MaxLen);
    uint64_t Len = 1 + R.ith(2 * I + 1, MaxLen);
    Out[I] = {L, L + Len};
  });
  return Out;
}

std::vector<std::pair<uint64_t, uint64_t>>
cpam::random_points(size_t N, uint64_t Universe, uint64_t Seed) {
  std::vector<std::pair<uint64_t, uint64_t>> Out(N);
  Rng R(Seed);
  par::parallel_for(0, N, [&](size_t I) {
    Out[I] = {R.ith(2 * I, Universe), R.ith(2 * I + 1, Universe)};
  });
  return Out;
}

std::vector<uint64_t> cpam::random_keys_sorted(size_t N, uint64_t Universe,
                                               uint64_t Seed) {
  std::vector<uint64_t> Keys = random_keys(N + N / 8 + 16, Universe, Seed);
  par::sort(Keys);
  size_t K = par::unique(Keys.data(), Keys.size());
  Keys.resize(std::min(K, N));
  return Keys;
}

std::vector<uint64_t> cpam::random_keys(size_t N, uint64_t Universe,
                                        uint64_t Seed) {
  std::vector<uint64_t> Out(N);
  Rng R(Seed);
  par::parallel_for(0, N, [&](size_t I) { Out[I] = R.ith(I, Universe); });
  return Out;
}
