//===- range_tree.h - 2D range queries with nested PaC-trees ---------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two-dimensional range-tree application of Sec. 9: a top-level
/// augmented map keyed by x-coordinate whose augmented values are *inner
/// PaC-trees* holding every y-coordinate in the subtree. Count queries
/// decompose the x-range into O(log n) canonical subtrees and rank into each
/// inner tree: O(log^2 n) per query, batchable in parallel. Both levels use
/// difference encoding over packed 32-bit coordinates; the paper reports
/// that ~95% of PAM's range-tree space goes to the inner trees, which is
/// exactly what PaC-tree compression shrinks (2.18x overall, Sec. 10.4).
/// The paper uses B = 128 at the top level and B = 16 for inner trees.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_APPS_RANGE_TREE_H
#define CPAM_APPS_RANGE_TREE_H

#include <vector>

#include "src/api/aug_map.h"
#include "src/api/pam_set.h"
#include "src/encoding/diff_encoder.h"

namespace cpam {

/// A 2D point with 32-bit coordinates.
struct point2d {
  uint32_t X;
  uint32_t Y;
  friend bool operator==(const point2d &, const point2d &) = default;
};

namespace detail {
/// Packs (Hi, Lo) so lexicographic u64 order equals (Hi, then Lo) order.
inline uint64_t pack32(uint32_t Hi, uint32_t Lo) {
  return (static_cast<uint64_t>(Hi) << 32) | Lo;
}
} // namespace detail

/// Entry of the top-level tree: key packs (x, y); the augmented value is the
/// inner set of (y, x) pairs in the subtree.
template <int InnerB> struct range_tree_entry {
  using inner_set = pam_set<uint64_t, InnerB, diff_encoder>;
  using key_t = uint64_t; // pack32(x, y)
  using entry_t = uint64_t;
  using val_t = no_aug;
  using aug_t = inner_set;
  static constexpr bool has_val = false;
  static const key_t &get_key(const entry_t &E) { return E; }
  static bool comp(key_t A, key_t B) { return A < B; }
  static aug_t aug_empty() { return inner_set(); }
  static aug_t aug_from_entry(const entry_t &E) {
    // Re-pack as (y, x) so the inner set is ordered by y.
    std::vector<uint64_t> One = {
        detail::pack32(static_cast<uint32_t>(E & 0xffffffffu),
                       static_cast<uint32_t>(E >> 32))};
    return inner_set(One);
  }
  static aug_t aug_combine(const aug_t &A, const aug_t &B) {
    return inner_set::map_union(A, B);
  }
};

/// Purely-functional 2D range tree. OuterB/InnerB are the PaC-tree block
/// sizes of the two levels (0 = P-tree baseline at both levels).
template <int OuterB = 128, int InnerB = 16> class range_tree {
public:
  using entry = range_tree_entry<InnerB>;
  using inner_set = typename entry::inner_set;
  using map_t = aug_map<entry, OuterB, diff_encoder>;
  using ops = typename map_t::ops;
  using node_t = typename map_t::node_t;

  range_tree() = default;
  explicit range_tree(const std::vector<point2d> &Pts) {
    std::vector<uint64_t> E(Pts.size());
    par::parallel_for(0, Pts.size(), [&](size_t I) {
      E[I] = detail::pack32(Pts[I].X, Pts[I].Y);
    });
    M = map_t(E);
  }

  size_t size() const { return M.size(); }
  std::string check_invariants() const { return M.check_invariants(); }

  /// Structure bytes including all inner trees (the paper's space metric).
  size_t size_in_bytes() const {
    size_t Outer = M.size_in_bytes();
    size_t Inner = sumInner(M.root());
    return Outer + Inner;
  }

  void insert_inplace(point2d P) {
    M.insert_inplace(detail::pack32(P.X, P.Y));
  }
  void remove_inplace(point2d P) {
    M.remove_inplace(detail::pack32(P.X, P.Y));
  }

  /// Number of points with XLo <= x <= XHi and YLo <= y <= YHi
  /// (Q-Sum in Table 3). O(log^2 n).
  size_t query_count(uint32_t XLo, uint32_t YLo, uint32_t XHi,
                     uint32_t YHi) const {
    return countRec(M.root(), detail::pack32(XLo, 0),
                    detail::pack32(XHi, UINT32_MAX), YLo, YHi);
  }

  /// All points in the rectangle (Q-All in Table 3), in (x, y) order.
  std::vector<point2d> query_points(uint32_t XLo, uint32_t YLo, uint32_t XHi,
                                    uint32_t YHi) const {
    std::vector<point2d> Out;
    reportRec(M.root(), detail::pack32(XLo, 0),
              detail::pack32(XHi, UINT32_MAX), YLo, YHi, Out);
    return Out;
  }

  const map_t &map() const { return M; }

private:
  using NL = typename ops::NL;

  static size_t countYs(const inner_set &S, uint32_t YLo, uint32_t YHi) {
    // Inner keys are pack32(y, x): the y-range maps to a key interval.
    size_t Above = S.rank(detail::pack32(YHi, UINT32_MAX) + 0) +
                   (S.contains(detail::pack32(YHi, UINT32_MAX)) ? 1 : 0);
    size_t Below = S.rank(detail::pack32(YLo, 0));
    return Above - Below;
  }

  /// Counts points with key in [KLo, KHi] and y in [YLo, YHi]. Canonical
  /// subtrees fully inside the x-range are answered by their inner set.
  static size_t countRec(const node_t *T, uint64_t KLo, uint64_t KHi,
                         uint32_t YLo, uint32_t YHi) {
    if (!T)
      return 0;
    if (ops::is_flat(T)) {
      const auto *F = static_cast<const typename NL::flat_t *>(T);
      size_t C = 0;
      NL::encoder::for_each_while(
          NL::payload(F), T->Size, [&](const uint64_t &E) {
            if (E > KHi)
              return false;
            uint32_t Y = static_cast<uint32_t>(E & 0xffffffffu);
            if (E >= KLo && Y >= YLo && Y <= YHi)
              ++C;
            return true;
          });
      return C;
    }
    const auto *R = static_cast<const typename NL::regular_t *>(T);
    uint64_t K = R->E;
    if (K < KLo)
      return countRec(R->Right, KLo, KHi, YLo, YHi);
    if (K > KHi)
      return countRec(R->Left, KLo, KHi, YLo, YHi);
    // Root inside the x-range: count left fringe, root, right fringe.
    uint32_t Y = static_cast<uint32_t>(K & 0xffffffffu);
    size_t C = (Y >= YLo && Y <= YHi) ? 1 : 0;
    C += countSide<true>(R->Left, KLo, YLo, YHi);
    C += countSide<false>(R->Right, KHi, YLo, YHi);
    return C;
  }

  /// One-sided count: keys >= Bound (IsLeft) or <= Bound (!IsLeft); whole
  /// subtrees on the inside are answered via their inner set in O(log n).
  template <bool IsLeft>
  static size_t countSide(const node_t *T, uint64_t Bound, uint32_t YLo,
                          uint32_t YHi) {
    if (!T)
      return 0;
    if (ops::is_flat(T)) {
      const auto *F = static_cast<const typename NL::flat_t *>(T);
      size_t C = 0;
      NL::encoder::for_each_while(
          NL::payload(F), T->Size, [&](const uint64_t &E) {
            if (!IsLeft && E > Bound)
              return false;
            uint32_t Y = static_cast<uint32_t>(E & 0xffffffffu);
            if ((IsLeft ? E >= Bound : E <= Bound) && Y >= YLo && Y <= YHi)
              ++C;
            return true;
          });
      return C;
    }
    const auto *R = static_cast<const typename NL::regular_t *>(T);
    uint64_t K = R->E;
    bool RootIn = IsLeft ? K >= Bound : K <= Bound;
    uint32_t Y = static_cast<uint32_t>(K & 0xffffffffu);
    size_t C = (RootIn && Y >= YLo && Y <= YHi) ? 1 : 0;
    if constexpr (IsLeft) {
      if (!RootIn)
        return countSide<IsLeft>(R->Right, Bound, YLo, YHi);
      // Right subtree entirely inside: use its inner set.
      C += countYs(ops::aug_of(R->Right), YLo, YHi);
      return C + countSide<IsLeft>(R->Left, Bound, YLo, YHi);
    } else {
      if (!RootIn)
        return countSide<IsLeft>(R->Left, Bound, YLo, YHi);
      C += countYs(ops::aug_of(R->Left), YLo, YHi);
      return C + countSide<IsLeft>(R->Right, Bound, YLo, YHi);
    }
  }

  static void reportRec(const node_t *T, uint64_t KLo, uint64_t KHi,
                        uint32_t YLo, uint32_t YHi,
                        std::vector<point2d> &Out) {
    if (!T)
      return;
    if (ops::is_flat(T)) {
      const auto *F = static_cast<const typename NL::flat_t *>(T);
      NL::encoder::for_each_while(
          NL::payload(F), T->Size, [&](const uint64_t &E) {
            if (E > KHi)
              return false;
            uint32_t Y = static_cast<uint32_t>(E & 0xffffffffu);
            if (E >= KLo && Y >= YLo && Y <= YHi)
              Out.push_back({static_cast<uint32_t>(E >> 32), Y});
            return true;
          });
      return;
    }
    const auto *R = static_cast<const typename NL::regular_t *>(T);
    uint64_t K = R->E;
    if (K >= KLo)
      reportRec(R->Left, KLo, KHi, YLo, YHi, Out);
    if (K >= KLo && K <= KHi) {
      uint32_t Y = static_cast<uint32_t>(K & 0xffffffffu);
      if (Y >= YLo && Y <= YHi)
        Out.push_back({static_cast<uint32_t>(K >> 32), Y});
    }
    if (K <= KHi)
      reportRec(R->Right, KLo, KHi, YLo, YHi, Out);
  }

  static size_t sumInner(const node_t *T) {
    if (!T)
      return 0;
    // Flat blocks store one inner tree for the whole block.
    if (ops::is_flat(T))
      return ops::aug_of(T).size_in_bytes();
    const auto *R = static_cast<const typename NL::regular_t *>(T);
    size_t Own = ops::aug_of(T).size_in_bytes();
    size_t L = 0, Rt = 0;
    par::par_do_if(T->Size >= 4096, [&] { L = sumInner(R->Left); },
                   [&] { Rt = sumInner(R->Right); });
    return Own + L + Rt;
  }

  map_t M;
};

} // namespace cpam

#endif // CPAM_APPS_RANGE_TREE_H
