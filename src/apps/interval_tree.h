//===- interval_tree.h - 1D interval (stabbing) queries --------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interval-tree application of Sec. 9: intervals on the integer line
/// stored in an augmented PaC-tree keyed by (left, right) endpoint, with the
/// maximum right endpoint as the augmented value. A stabbing query for point
/// p reports intervals [l, r] with l <= p <= r, pruning subtrees whose
/// maximum right endpoint falls short of p; reporting k intervals costs
/// O(k log n). Insertions/deletions cost O(log n + B) and batch in parallel.
/// The paper uses B = 32 for this application.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_APPS_INTERVAL_TREE_H
#define CPAM_APPS_INTERVAL_TREE_H

#include <vector>

#include "src/api/aug_map.h"
#include "src/util/datagen.h"

namespace cpam {

/// Entry for the interval map: the entry is the (left, right) pair itself;
/// the augmented value is the maximum right endpoint in the subtree.
struct interval_entry {
  using key_t = std::pair<uint64_t, uint64_t>;
  using entry_t = key_t;
  using val_t = no_aug;
  using aug_t = uint64_t;
  static constexpr bool has_val = false;
  static const key_t &get_key(const entry_t &E) { return E; }
  static bool comp(const key_t &A, const key_t &B) { return A < B; }
  static aug_t aug_empty() { return 0; }
  static aug_t aug_from_entry(const entry_t &E) { return E.second; }
  static aug_t aug_combine(aug_t A, aug_t B) { return A > B ? A : B; }
};

/// Purely-functional interval tree supporting parallel stabbing queries.
template <int BlockSizeB = 32> class interval_tree {
public:
  using map_t = aug_map<interval_entry, BlockSizeB>;
  using ops = typename map_t::ops;
  using node_t = typename map_t::node_t;

  interval_tree() = default;
  /// Builds from a batch of intervals in parallel.
  explicit interval_tree(const std::vector<Interval> &Ivs) {
    std::vector<typename map_t::entry_t> E(Ivs.size());
    par::parallel_for(0, Ivs.size(), [&](size_t I) {
      E[I] = {Ivs[I].Left, Ivs[I].Right};
    });
    M = map_t(E);
  }

  size_t size() const { return M.size(); }
  size_t size_in_bytes() const { return M.size_in_bytes(); }

  /// Functional insert/remove of a single interval.
  void insert_inplace(Interval Iv) {
    M.insert_inplace(typename map_t::entry_t{Iv.Left, Iv.Right});
  }
  void remove_inplace(Interval Iv) {
    M.remove_inplace({Iv.Left, Iv.Right});
  }
  /// O(1) snapshot.
  interval_tree snapshot() const { return *this; }

  /// True iff some interval contains \p P. O(log n + B).
  bool stabs(uint64_t P) const {
    if (M.empty())
      return false;
    if (P == 0) // aug_empty() == 0 would make the test below vacuous.
      return M.first()->first == 0;
    // Among intervals with l <= p, is some r >= p?
    return M.aug_left({P, UINT64_MAX}) >= P;
  }

  /// Number of intervals containing \p P.
  size_t count_stab(uint64_t P) const {
    size_t Count = 0;
    countRec(M.root(), P, Count);
    return Count;
  }

  /// All intervals containing \p P, in key order. O(k log n) work.
  std::vector<Interval> report_stab(uint64_t P) const {
    std::vector<Interval> Out;
    reportRec(M.root(), P, Out);
    return Out;
  }

  std::string check_invariants() const { return M.check_invariants(); }
  const map_t &map() const { return M; }

private:
  using NL = typename ops::NL;

  static void countRec(const node_t *T, uint64_t P, size_t &Count) {
    if (!T || ops::aug_of(T) < P)
      return; // No right endpoint reaches P: prune.
    if (ops::is_flat(T)) {
      const auto *F = static_cast<const typename NL::flat_t *>(T);
      NL::encoder::for_each_while(
          NL::payload(F), T->Size, [&](const typename ops::entry_t &E) {
            if (E.first > P)
              return false;
            if (E.second >= P)
              ++Count;
            return true;
          });
      return;
    }
    const auto *R = static_cast<const typename NL::regular_t *>(T);
    if (R->E.first > P) {
      countRec(R->Left, P, Count);
      return;
    }
    countRec(R->Left, P, Count);
    if (R->E.second >= P)
      ++Count;
    countRec(R->Right, P, Count);
  }

  static void reportRec(const node_t *T, uint64_t P,
                        std::vector<Interval> &Out) {
    if (!T || ops::aug_of(T) < P)
      return;
    if (ops::is_flat(T)) {
      const auto *F = static_cast<const typename NL::flat_t *>(T);
      NL::encoder::for_each_while(
          NL::payload(F), T->Size, [&](const typename ops::entry_t &E) {
            if (E.first > P)
              return false;
            if (E.second >= P)
              Out.push_back({E.first, E.second});
            return true;
          });
      return;
    }
    const auto *R = static_cast<const typename NL::regular_t *>(T);
    if (R->E.first > P) {
      reportRec(R->Left, P, Out);
      return;
    }
    reportRec(R->Left, P, Out);
    if (R->E.second >= P)
      Out.push_back({R->E.first, R->E.second});
    reportRec(R->Right, P, Out);
  }

  map_t M;
};

} // namespace cpam

#endif // CPAM_APPS_INTERVAL_TREE_H
