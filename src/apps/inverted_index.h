//===- inverted_index.h - Weighted inverted index ---------------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inverted-index application of Sec. 9: a top-level map from words to
/// posting lists; each posting list is an augmented map from document id to
/// an importance score, augmented with the maximum score. Posting lists are
/// difference-encoded over sorted document ids with byte-coded scores — the
/// custom encoder the paper credits for 7.8x space savings (Sec. 10.3,
/// "less than two bytes per document"). Queries: AND (posting
/// intersection), OR (posting union), and top-k by score.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_APPS_INVERTED_INDEX_H
#define CPAM_APPS_INVERTED_INDEX_H

#include <queue>
#include <string>
#include <vector>

#include "src/api/aug_map.h"
#include "src/api/pam_map.h"
#include "src/encoding/diff_encoder.h"
#include "src/util/textgen.h"

namespace cpam {

/// A weighted inverted index over a token corpus.
template <int TopB = 128, int PostB = 128> class inverted_index {
public:
  using doc_id = uint32_t;
  using score_t = uint32_t;
  using posting_entry = aug_max_entry<doc_id, score_t>;
  /// Posting list: doc -> score, diff-encoded, augmented with max score.
  using posting_t = aug_map<posting_entry, PostB, diff_val_encoder>;
  /// Top-level map: word -> posting list.
  using index_t = pam_map<std::string, posting_t, TopB>;

  inverted_index() = default;

  /// Builds the index from a corpus; the score of (word, doc) is the number
  /// of occurrences of the word in the document.
  explicit inverted_index(const Corpus &C) {
    // 1. Tag every token with its document.
    size_t N = C.Tokens.size();
    std::vector<uint64_t> Pairs(N); // pack (word, doc)
    par::parallel_for(0, C.num_docs(), [&](size_t D) {
      for (uint64_t I = C.DocOffsets[D]; I < C.DocOffsets[D + 1]; ++I)
        Pairs[I] =
            (static_cast<uint64_t>(C.Tokens[I]) << 32) | static_cast<uint32_t>(D);
    });
    // 2. Sort by (word, doc) and run-length-encode into scores.
    par::sort(Pairs);
    std::vector<size_t> Starts(N);
    size_t NumRuns = par::pack(
        par::tabulate(N, [](size_t I) { return I; }).data(),
        [&](size_t I) { return I == 0 || Pairs[I] != Pairs[I - 1]; }, N,
        Starts.data());
    Starts.resize(NumRuns);
    // 3. Group runs by word and build one posting list per word.
    std::vector<size_t> WordStarts(NumRuns);
    size_t NumWords = par::pack(
        par::tabulate(NumRuns, [](size_t I) { return I; }).data(),
        [&](size_t I) {
          return I == 0 ||
                 (Pairs[Starts[I]] >> 32) != (Pairs[Starts[I - 1]] >> 32);
        },
        NumRuns, WordStarts.data());
    WordStarts.resize(NumWords);
    std::vector<typename index_t::entry_t> Top(NumWords);
    par::parallel_for(
        0, NumWords,
        [&](size_t W) {
          size_t RunLo = WordStarts[W];
          size_t RunHi = W + 1 < NumWords ? WordStarts[W + 1] : NumRuns;
          std::vector<typename posting_t::entry_t> Posting(RunHi - RunLo);
          for (size_t R = RunLo; R < RunHi; ++R) {
            size_t Lo = Starts[R];
            size_t Hi = R + 1 < NumRuns ? Starts[R + 1] : N;
            Posting[R - RunLo] = {
                static_cast<doc_id>(Pairs[Lo] & 0xffffffffu),
                static_cast<score_t>(Hi - Lo)};
          }
          uint32_t WordId = static_cast<uint32_t>(Pairs[Starts[RunLo]] >> 32);
          Top[W] = {C.Words[WordId], posting_t::from_sorted(std::move(Posting))};
        },
        /*Gran=*/1);
    Index = index_t(Top);
  }

  size_t num_words() const { return Index.size(); }
  /// Total postings across all words.
  size_t num_postings() const {
    return Index.map_reduce(
        [](const auto &E) { return E.second.size(); }, size_t(0),
        std::plus<size_t>());
  }

  /// Structure bytes: the top tree, the strings and every posting tree.
  size_t size_in_bytes() const {
    size_t Strings = Index.map_reduce(
        [](const auto &E) {
          return E.first.capacity() > sizeof(std::string)
                     ? E.first.capacity()
                     : 0; // Small-string optimized words are inline.
        },
        size_t(0), std::plus<size_t>());
    size_t Postings = Index.map_reduce(
        [](const auto &E) { return E.second.size_in_bytes(); }, size_t(0),
        std::plus<size_t>());
    return Index.size_in_bytes() + Strings + Postings;
  }

  /// Posting list of one word (empty if absent). O(log n) snapshot.
  posting_t get_list(const std::string &Word) const {
    auto V = Index.find(Word);
    return V ? *V : posting_t();
  }

  /// Documents containing both words; scores are summed (AND query).
  posting_t query_and(const std::string &A, const std::string &B) const {
    return posting_t::map_intersect(get_list(A), get_list(B),
                                    std::plus<score_t>());
  }

  /// Documents containing either word; scores are summed (OR query).
  posting_t query_or(const std::string &A, const std::string &B) const {
    return posting_t::map_union(get_list(A), get_list(B),
                                std::plus<score_t>());
  }

  /// The K highest-scored documents of a posting list, best first.
  /// O((K + B) log n) using the max-score augmentation.
  static std::vector<std::pair<doc_id, score_t>>
  top_k(const posting_t &List, size_t K) {
    using ops = typename posting_t::ops;
    using node_t = typename posting_t::node_t;
    using NL = typename ops::NL;
    struct Item {
      score_t Score;
      const node_t *Node;     // nullptr => a concrete entry
      std::pair<doc_id, score_t> E;
      bool operator<(const Item &O) const { return Score < O.Score; }
    };
    std::priority_queue<Item> Q;
    auto PushNode = [&Q](const node_t *T) {
      if (T)
        Q.push({ops::aug_of(T), T, {}});
    };
    PushNode(List.root());
    std::vector<std::pair<doc_id, score_t>> Out;
    while (!Q.empty() && Out.size() < K) {
      Item It = Q.top();
      Q.pop();
      if (!It.Node) {
        Out.push_back(It.E);
        continue;
      }
      if (ops::is_flat(It.Node)) {
        const auto *F = static_cast<const typename NL::flat_t *>(It.Node);
        NL::encoder::for_each_while(NL::payload(F), It.Node->Size,
                                    [&](const auto &E) {
                                      Q.push({E.second, nullptr, E});
                                      return true;
                                    });
        continue;
      }
      const auto *R = static_cast<const typename NL::regular_t *>(It.Node);
      Q.push({R->E.second, nullptr, R->E});
      PushNode(R->Left);
      PushNode(R->Right);
    }
    return Out;
  }

  const index_t &index() const { return Index; }

private:
  index_t Index;
};

} // namespace cpam

#endif // CPAM_APPS_INVERTED_INDEX_H
