//===- node.h - PaC-tree node storage layer --------------------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage layer of a PaC-tree PaC(alpha, B, C) (Def. 4.1): reference-
/// counted binary *regular* nodes plus *flat* nodes holding a block of B..2B
/// entries encoded by scheme C. `B == 0` disables blocking entirely, which
/// yields exactly the P-trees of PAM and serves as the PAM baseline
/// throughout the evaluation.
///
/// Ownership discipline: every function that takes a `node_t *` *consumes*
/// one reference to it and every returned `node_t *` carries one reference.
/// Nodes with reference count 1 are cannibalized in place (entries moved
/// out, shells freed without touching child counts), which implements the
/// paper's in-place/visibility optimization (Sec. 8) as copy-on-write.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_CORE_NODE_H
#define CPAM_CORE_NODE_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "src/core/allocator.h"
#include "src/core/entry.h"
#include "src/parallel/scheduler.h"

namespace cpam {

/// Storage layer for PaC-trees over entries \p Entry, block encoding
/// \p EncoderT and block-size parameter \p BlockSizeB (0 = plain P-tree).
template <class Entry, template <class> class EncoderT, int BlockSizeB>
struct node_layer {
  using entry_t = typename Entry::entry_t;
  using key_t = typename Entry::key_t;
  using encoder = EncoderT<Entry>;

  static constexpr bool is_aug = is_augmented_v<Entry>;
  using aug_t =
      std::conditional_t<is_aug, typename Entry::aug_t, no_aug>;

  static constexpr size_t kB = BlockSizeB;
  static constexpr bool kBlocked = BlockSizeB > 0;
  /// Default granularity for parallel destruction/flatten/traversal of
  /// subtrees. Halved from 4096 when the scheduler moved to lock-free
  /// Chase-Lev deques (a fork now costs ~19 ns; see BENCH_PR4.json).
  static constexpr size_t kGcGranDefault = 2048;

  /// Runtime granularity for the node-layer parallel walks (dec, flatten,
  /// build_expanded, size_in_bytes, node_count). Mutable for the grain A/B
  /// benchmarks (single-threaded setup code only).
  static size_t &par_gc_gran() {
    static size_t G = kGcGranDefault;
    return G;
  }

  //===--------------------------------------------------------------------===
  // Node layouts.
  //===--------------------------------------------------------------------===

  enum NodeKind : uint8_t { RegularKind = 0, FlatKind = 1 };

  struct node_t {
    std::atomic<uint32_t> Ref;
    uint32_t Size; // Number of entries in this subtree.
    NodeKind Kind;
  };

  struct regular_t : node_t {
    node_t *Left;
    node_t *Right;
    entry_t E;
    [[no_unique_address]] aug_t Aug;
  };

  struct flat_t : node_t {
    uint32_t Bytes; // Encoded payload size.
    [[no_unique_address]] aug_t Aug;
    // Payload (encoded entries) follows at kPayloadOffset.
  };

  static constexpr size_t kPayloadAlign =
      alignof(entry_t) > 8 ? alignof(entry_t) : 8;
  static_assert(kPayloadAlign <= 16, "entry alignment beyond 16 unsupported");
  static constexpr size_t kPayloadOffset =
      (sizeof(flat_t) + kPayloadAlign - 1) & ~(kPayloadAlign - 1);

  static uint8_t *payload(flat_t *T) {
    return reinterpret_cast<uint8_t *>(T) + kPayloadOffset;
  }
  static const uint8_t *payload(const flat_t *T) {
    return reinterpret_cast<const uint8_t *>(T) + kPayloadOffset;
  }

  //===--------------------------------------------------------------------===
  // Basic accessors.
  //===--------------------------------------------------------------------===

  static bool is_flat(const node_t *T) { return T && T->Kind == FlatKind; }
  static bool is_regular(const node_t *T) {
    return T && T->Kind == RegularKind;
  }
  static regular_t *as_regular(node_t *T) {
    assert(is_regular(T) && "expected a regular node");
    return static_cast<regular_t *>(T);
  }
  static flat_t *as_flat(node_t *T) {
    assert(is_flat(T) && "expected a flat node");
    return static_cast<flat_t *>(T);
  }

  static size_t size(const node_t *T) { return T ? T->Size : 0; }
  static size_t weight(const node_t *T) { return size(T) + 1; }

  static const key_t &get_key(const node_t *T) {
    assert(is_regular(T) && "expected a regular node");
    return Entry::get_key(static_cast<const regular_t *>(T)->E);
  }

  /// Augmented value of a (possibly null) subtree.
  static aug_t aug_of(const node_t *T) {
    if constexpr (!is_aug)
      return aug_t{};
    else {
      if (!T)
        return Entry::aug_empty();
      if (T->Kind == FlatKind)
        return static_cast<const flat_t *>(T)->Aug;
      return static_cast<const regular_t *>(T)->Aug;
    }
  }

  //===--------------------------------------------------------------------===
  // Reference counting.
  //===--------------------------------------------------------------------===

  static uint32_t ref_count(const node_t *T) {
    return T->Ref.load(std::memory_order_acquire);
  }

  static node_t *inc(node_t *T) {
    if (T)
      T->Ref.fetch_add(1, std::memory_order_relaxed);
    return T;
  }

  /// Releases one reference; frees recursively (in parallel for large
  /// subtrees) when the count reaches zero.
  static void dec(node_t *T) {
    if (!T)
      return;
    if (T->Ref.fetch_sub(1, std::memory_order_acq_rel) != 1)
      return;
    if (T->Kind == FlatKind) {
      free_flat(static_cast<flat_t *>(T));
      return;
    }
    regular_t *R = static_cast<regular_t *>(T);
    node_t *L = R->Left, *Rt = R->Right;
    free_regular_shell(R);
    par::par_do_if(size(L) + size(Rt) >= par_gc_gran(), [&] { dec(L); },
                   [&] { dec(Rt); });
  }

  //===--------------------------------------------------------------------===
  // Construction and destruction.
  //===--------------------------------------------------------------------===

  /// RAII ownership of one node reference, for exception-safe composition:
  /// decs the held node on scope exit unless release()d. Used on every path
  /// that holds an owned node across a call that may throw bad_alloc, so an
  /// injected allocation failure cannot leak the sibling.
  class node_guard {
  public:
    explicit node_guard(node_t *T) : T(T) {}
    node_guard(const node_guard &) = delete;
    node_guard &operator=(const node_guard &) = delete;
    ~node_guard() { dec(T); }
    node_t *release() {
      node_t *R = T;
      T = nullptr;
      return R;
    }
    node_t *get() const { return T; }

  private:
    node_t *T;
  };

  /// Creates a regular node over owned children \p L and \p R. Does not
  /// enforce the blocked-leaves invariant; see tree_ops::node_join for that.
  /// On allocation failure both children are released (throw ⇒ every owned
  /// input released — the exception contract all consuming builders share).
  static node_t *make_regular(node_t *L, entry_t E, node_t *R) {
    void *Mem;
    try {
      Mem = tree_alloc(sizeof(regular_t));
    } catch (...) {
      dec(L);
      dec(R);
      throw;
    }
    regular_t *T = ::new (Mem) regular_t;
    T->Ref.store(1, std::memory_order_relaxed);
    T->Kind = RegularKind;
    assert(size(L) + size(R) + 1 <= UINT32_MAX && "tree too large");
    T->Size = static_cast<uint32_t>(size(L) + size(R) + 1);
    T->Left = L;
    T->Right = R;
    T->E = std::move(E); // Members were default-constructed by placement new.
    if constexpr (is_aug)
      T->Aug = Entry::aug_combine(
          Entry::aug_combine(aug_of(L), Entry::aug_from_entry(T->E)),
          aug_of(R));
    return T;
  }

  /// Creates a flat node from \p N entries (moved out of \p A).
  static node_t *make_flat(entry_t *A, size_t N) {
    assert(kBlocked && "flat nodes only exist in blocked trees");
    assert(N >= 1 && N <= 2 * kB && "flat node size out of range");
    aug_t Aug{};
    if constexpr (is_aug) {
      Aug = Entry::aug_from_entry(A[0]);
      for (size_t I = 1; I < N; ++I)
        Aug = Entry::aug_combine(Aug, Entry::aug_from_entry(A[I]));
    }
    size_t Bytes = encoder::encoded_size(A, N);
    void *Mem = tree_alloc(kPayloadOffset + Bytes);
    flat_t *T = ::new (Mem) flat_t;
    T->Ref.store(1, std::memory_order_relaxed);
    T->Kind = FlatKind;
    T->Size = static_cast<uint32_t>(N);
    T->Bytes = static_cast<uint32_t>(Bytes);
    T->Aug = Aug;
    encoder::encode(A, N, payload(T));
    return T;
  }

  static node_t *singleton(entry_t E) {
    return make_regular(nullptr, std::move(E), nullptr);
  }

  /// Allocates a flat node whose payload the caller fills with exactly
  /// \p Bytes of encoded data for \p N entries (e.g. from an encoder
  /// write_cursor's cut()/finish() — tree_ops::leaf_chunk_writer seals one
  /// of these per streamed chunk). The augmented value is \p Aug; the
  /// streaming leaf paths are only taken for unaugmented trees, where it
  /// is empty.
  static flat_t *alloc_flat(size_t N, size_t Bytes, aug_t Aug = aug_t{}) {
    assert(kBlocked && "flat nodes only exist in blocked trees");
    assert(N >= 1 && N <= 2 * kB && "flat node size out of range");
    void *Mem = tree_alloc(kPayloadOffset + Bytes);
    flat_t *T = ::new (Mem) flat_t;
    T->Ref.store(1, std::memory_order_relaxed);
    T->Kind = FlatKind;
    T->Size = static_cast<uint32_t>(N);
    T->Bytes = static_cast<uint32_t>(Bytes);
    T->Aug = Aug;
    return T;
  }

  /// Frees a regular node shell without touching its children's counts.
  /// The entry is destroyed exactly once, by ~regular_t (callers that want
  /// the entry move it out first, leaving a destructible husk).
  static void free_regular_shell(regular_t *T) {
    T->~regular_t();
    tree_free(T, sizeof(regular_t));
  }

  static void free_flat(flat_t *T) {
    encoder::destroy(payload(T), T->Size);
    size_t Bytes = kPayloadOffset + T->Bytes;
    T->~flat_t();
    tree_free(T, Bytes);
  }

  /// Frees a flat node's storage WITHOUT destroying its payload entries —
  /// for callers that already consumed them through a consuming read
  /// cursor (see tree_ops::leaf_reader).
  static void free_flat_shell(flat_t *T) {
    size_t Bytes = kPayloadOffset + T->Bytes;
    T->~flat_t();
    tree_free(T, Bytes);
  }

  //===--------------------------------------------------------------------===
  // Temporary entry buffers (raw storage, destroyed on scope exit).
  //===--------------------------------------------------------------------===

  class temp_buf {
  public:
    explicit temp_buf(size_t Cap) : Cap(Cap) {
      Data = static_cast<entry_t *>(tree_alloc(Cap * sizeof(entry_t)));
    }
    temp_buf(const temp_buf &) = delete;
    temp_buf &operator=(const temp_buf &) = delete;
    ~temp_buf() {
      if constexpr (!std::is_trivially_destructible_v<entry_t>)
        for (size_t I = 0; I < Count; ++I)
          Data[I].~entry_t();
      tree_free(Data, Cap * sizeof(entry_t));
    }
    entry_t *data() { return Data; }
    /// Records that entries [0, N) are now constructed.
    void set_count(size_t N) {
      assert(N <= Cap && "temp buffer overflow");
      Count = N;
    }
    size_t count() const { return Count; }

  private:
    entry_t *Data;
    size_t Count = 0;
    size_t Cap;
  };

  //===--------------------------------------------------------------------===
  // Flatten / unfold (fold lives in tree_ops::node_join).
  //===--------------------------------------------------------------------===

  /// Writes the entries of \p T in order into raw storage \p Out
  /// (placement-constructing them), consuming one reference to \p T.
  /// Returns the number written.
  static size_t flatten(node_t *T, entry_t *Out) {
    if (!T)
      return 0;
    size_t N = T->Size;
    if (T->Kind == FlatKind) {
      flat_t *F = static_cast<flat_t *>(T);
      if (ref_count(T) == 1) {
        encoder::decode_move(payload(F), N, Out);
        free_flat_shell(F);
      } else {
        encoder::decode(payload(F), N, Out);
        dec(T);
      }
      return N;
    }
    regular_t *R = static_cast<regular_t *>(T);
    node_t *L = R->Left, *Rt = R->Right;
    size_t Ls = size(L);
    if (ref_count(T) == 1) {
      ::new (static_cast<void *>(Out + Ls)) entry_t(std::move(R->E));
      free_regular_shell(R);
    } else {
      ::new (static_cast<void *>(Out + Ls)) entry_t(R->E);
      inc(L);
      inc(Rt);
      dec(T);
    }
    // The two halves write disjoint output ranges, so large subtrees fork
    // (this is what keeps oversized flatten-and-merge base cases — e.g. the
    // ablation study's large-kappa configurations — from serializing).
    par::par_do_if(N >= par_gc_gran(), [&] { flatten(L, Out); },
                   [&] { flatten(Rt, Out + Ls + 1); });
    return N;
  }

  /// Builds a perfectly balanced tree of regular nodes from \p A[0..N)
  /// (entries moved out). Used to expand flat nodes ("unfold", Fig. 5) —
  /// deliberately does *not* re-fold.
  static node_t *build_expanded(entry_t *A, size_t N) {
    if (N == 0)
      return nullptr;
    size_t Mid = N / 2;
    node_t *L = nullptr, *R = nullptr;
    // Both branches always run (parDo's exception contract), so on a throw
    // each half either produced a subtree (released here) or threw after
    // releasing its own resources; unconsumed entries stay owned by the
    // caller's buffer.
    try {
      par::par_do_if(
          N >= par_gc_gran(), [&] { L = build_expanded(A, Mid); },
          [&] { R = build_expanded(A + Mid + 1, N - Mid - 1); });
    } catch (...) {
      dec(L);
      dec(R);
      throw;
    }
    return make_regular(L, std::move(A[Mid]), R);
  }

  /// Expands a flat node into a perfectly balanced binary tree of regular
  /// nodes (the expanded version of Def. 4.1), consuming \p T.
  static node_t *unfold(node_t *T) {
    assert(is_flat(T) && "unfold expects a flat node");
    size_t N = T->Size;
    node_guard G(T); // Covers a throw from the buffer allocation.
    temp_buf Buf(N);
    flatten(G.release(), Buf.data());
    Buf.set_count(N);
    node_t *Out = build_expanded(Buf.data(), N);
    return Out;
  }

  //===--------------------------------------------------------------------===
  // Measurement.
  //===--------------------------------------------------------------------===

  /// Total heap bytes reachable from \p T (the paper's space metric).
  static size_t size_in_bytes(const node_t *T) {
    if (!T)
      return 0;
    if (T->Kind == FlatKind)
      return kPayloadOffset + static_cast<const flat_t *>(T)->Bytes;
    const regular_t *R = static_cast<const regular_t *>(T);
    size_t SL = 0, SR = 0;
    par::par_do_if(T->Size >= par_gc_gran(),
                   [&] { SL = size_in_bytes(R->Left); },
                   [&] { SR = size_in_bytes(R->Right); });
    return sizeof(regular_t) + SL + SR;
  }

  /// Number of physical nodes (regular + flat) reachable from \p T.
  static size_t node_count(const node_t *T) {
    if (!T)
      return 0;
    if (T->Kind == FlatKind)
      return 1;
    const regular_t *R = static_cast<const regular_t *>(T);
    size_t CL = 0, CR = 0;
    par::par_do_if(T->Size >= par_gc_gran(),
                   [&] { CL = node_count(R->Left); },
                   [&] { CR = node_count(R->Right); });
    return 1 + CL + CR;
  }
};

} // namespace cpam

#endif // CPAM_CORE_NODE_H
