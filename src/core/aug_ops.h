//===- aug_ops.h - Queries over augmented PaC-trees ------------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Augmented-map queries (Sec. 3 "Augmentation"): aug_val, aug_left /
/// aug_right (prefix/suffix aggregates), aug_range, and aug_filter. A
/// PaC-tree stores one augmented value per regular node and one per flat
/// node; queries therefore touch O(log n) regular nodes plus at most two
/// flat blocks, giving O(log n + B) work for aug_range (Sec. 7).
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_CORE_AUG_OPS_H
#define CPAM_CORE_AUG_OPS_H

#include "src/core/map_ops.h"

namespace cpam {

template <class Entry, template <class> class EncoderT, int BlockSizeB>
struct aug_ops : map_ops<Entry, EncoderT, BlockSizeB> {
  using MO = map_ops<Entry, EncoderT, BlockSizeB>;
  using NL = typename MO::NL;
  using node_t = typename MO::node_t;
  using entry_t = typename MO::entry_t;
  using key_t = typename MO::key_t;
  using aug_t = typename Entry::aug_t;
  using exposed = typename MO::exposed;
  using MO::aug_of;
  using MO::dec;
  using MO::entry_key;
  using MO::expose;
  using MO::from_array_move;
  using MO::is_flat;
  using MO::join;
  using MO::join2;
  using MO::key_less;
  using MO::par_gran;
  using MO::size;

  static_assert(is_augmented_v<Entry>,
                "aug_ops requires an augmented entry type");

  /// Aggregate over the whole tree.
  static aug_t aug_val(const node_t *T) { return aug_of(T); }

  /// Aggregate over all entries with key <= K (read-only).
  static aug_t aug_left(const node_t *T, const key_t &K) {
    aug_t Acc = Entry::aug_empty();
    while (T) {
      if (is_flat(T)) {
        const auto *F = static_cast<const typename NL::flat_t *>(T);
        NL::encoder::for_each_while(
            NL::payload(F), T->Size, [&](const entry_t &E) {
              if (key_less(K, entry_key(E)))
                return false;
              Acc = Entry::aug_combine(Acc, Entry::aug_from_entry(E));
              return true;
            });
        return Acc;
      }
      const auto *R = static_cast<const typename NL::regular_t *>(T);
      if (key_less(K, entry_key(R->E))) {
        T = R->Left;
        continue;
      }
      Acc = Entry::aug_combine(
          Entry::aug_combine(Acc, aug_of(R->Left)),
          Entry::aug_from_entry(R->E));
      T = R->Right;
    }
    return Acc;
  }

  /// Aggregate over all entries with key >= K (read-only).
  static aug_t aug_right(const node_t *T, const key_t &K) {
    aug_t Acc = Entry::aug_empty();
    while (T) {
      if (is_flat(T)) {
        const auto *F = static_cast<const typename NL::flat_t *>(T);
        NL::encoder::for_each_while(
            NL::payload(F), T->Size, [&](const entry_t &E) {
              if (!key_less(entry_key(E), K))
                Acc = Entry::aug_combine(Acc, Entry::aug_from_entry(E));
              return true;
            });
        return Acc;
      }
      const auto *R = static_cast<const typename NL::regular_t *>(T);
      if (key_less(entry_key(R->E), K)) {
        T = R->Right;
        continue;
      }
      Acc = Entry::aug_combine(
          Entry::aug_combine(Entry::aug_from_entry(R->E), aug_of(R->Right)),
          Acc);
      T = R->Left;
    }
    return Acc;
  }

  /// Aggregate over all entries with KL <= key <= KR (read-only).
  /// O(log n + B) work.
  static aug_t aug_range(const node_t *T, const key_t &KL, const key_t &KR) {
    while (T) {
      if (is_flat(T)) {
        const auto *F = static_cast<const typename NL::flat_t *>(T);
        aug_t Acc = Entry::aug_empty();
        NL::encoder::for_each_while(
            NL::payload(F), T->Size, [&](const entry_t &E) {
              if (key_less(KR, entry_key(E)))
                return false;
              if (!key_less(entry_key(E), KL))
                Acc = Entry::aug_combine(Acc, Entry::aug_from_entry(E));
              return true;
            });
        return Acc;
      }
      const auto *R = static_cast<const typename NL::regular_t *>(T);
      if (key_less(entry_key(R->E), KL)) {
        T = R->Right;
        continue;
      }
      if (key_less(KR, entry_key(R->E))) {
        T = R->Left;
        continue;
      }
      // The root key is inside the range: the range spans both sides.
      return Entry::aug_combine(
          Entry::aug_combine(aug_right(R->Left, KL),
                             Entry::aug_from_entry(R->E)),
          aug_left(R->Right, KR));
    }
    return Entry::aug_empty();
  }

  /// Keeps entries E with P(aug_from_entry(E)); subtrees whose aggregate
  /// fails \p P are pruned wholesale, so for monotone predicates (e.g.
  /// "max >= tau") the work is proportional to the output. Consumes \p T.
  template <class Pred> static node_t *aug_filter(node_t *T, const Pred &P) {
    if (!T)
      return nullptr;
    if (!P(aug_of(T))) {
      dec(T);
      return nullptr;
    }
    if (is_flat(T)) {
      size_t N = T->Size;
      typename MO::temp_buf Buf(N), Out(N);
      MO::flatten(T, Buf.data());
      Buf.set_count(N);
      size_t K = 0;
      for (size_t I = 0; I < N; ++I) {
        if (!P(Entry::aug_from_entry(Buf.data()[I])))
          continue;
        ::new (static_cast<void *>(Out.data() + K++))
            entry_t(std::move(Buf.data()[I]));
        Out.set_count(K);
      }
      return from_array_move(Out.data(), K);
    }
    exposed X = expose(T);
    node_t *L = nullptr, *R = nullptr;
    par::par_do_if(
        size(X.L) + size(X.R) >= par_gran(), [&] { L = aug_filter(X.L, P); },
        [&] { R = aug_filter(X.R, P); });
    if (P(Entry::aug_from_entry(X.E)))
      return join(L, std::move(X.E), R);
    return join2(L, R);
  }

  /// Leftmost entry whose prefix aggregate from the left satisfies \p P
  /// (P must be monotone in the prefix). Used by interval stabbing.
  /// Read-only; returns nullopt if no prefix satisfies P.
  template <class Pred>
  static std::optional<entry_t> aug_find_first(const node_t *T,
                                               const Pred &P) {
    if (!T || !P(aug_of(T)))
      return std::nullopt;
    while (true) {
      if (is_flat(T)) {
        const auto *F = static_cast<const typename NL::flat_t *>(T);
        std::optional<entry_t> Out;
        NL::encoder::for_each_while(
            NL::payload(F), T->Size, [&](const entry_t &E) {
              if (P(Entry::aug_from_entry(E))) {
                Out = E;
                return false;
              }
              return true;
            });
        return Out;
      }
      const auto *R = static_cast<const typename NL::regular_t *>(T);
      if (R->Left && P(aug_of(R->Left))) {
        T = R->Left;
        continue;
      }
      if (P(Entry::aug_from_entry(R->E)))
        return R->E;
      assert(R->Right && P(aug_of(R->Right)) &&
             "aggregate promised a match in this subtree");
      T = R->Right;
    }
  }
};

} // namespace cpam

#endif // CPAM_CORE_AUG_OPS_H
