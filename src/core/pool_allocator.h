//===- pool_allocator.h - Size-class pooled node allocator ----------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A size-class pooled allocator for tree nodes and temp buffers, in the
/// spirit of PAM/ParlayLib's pooled free-list allocators. Tree construction,
/// union and multi_insert allocate and free millions of small fixed-size
/// objects (regular nodes, flat-node payloads, merge buffers); routing each
/// through the global heap serializes the hot path on malloc's internal
/// locks and metadata. This pool instead serves them from per-thread free
/// lists with O(1) push/pop and no synchronization in the common case.
///
/// Structure:
///
///  - *Size classes*: multiples of 64 bytes up to 1 KiB (covering every
///    regular_t instantiation and small flat payloads), multiples of 256
///    bytes up to 8 KiB (the dominant flat-payload band, kept fine-grained
///    so blocked-tree leaves don't pay up to 2x internal fragmentation),
///    then powers of two up to 64 KiB (kappa-sized merge buffers). Larger
///    requests fall through to `operator new` directly.
///
///  - *Per-thread free lists*: each thread owns one free list per class.
///    Allocation pops the head; free pushes it back. The freed block's own
///    storage holds the list link, so there is no per-block metadata.
///
///  - *Batch exchange with a global pool*: when a thread's list for a class
///    runs dry it refills by taking a whole batch (~16 KiB of blocks — 256
///    for the node classes — with a 4-block floor that makes batches of the
///    largest classes up to 256 KiB) from a lock-striped global
///    pool, carving a fresh slab from the heap only when the global pool is
///    also empty. When a local list grows past two batches (a thread that
///    mostly frees — e.g. the consumers of a parallel `dec`), the colder
///    half is pushed back to the global pool as one batch. Cross-thread
///    produce/free patterns therefore cost one mutex acquisition per ~256
///    blocks instead of ping-ponging a cache line per block.
///
/// The pool is a cache, not an owner of liveness: live-object accounting
/// stays in tree_alloc/tree_free (allocator.h), so the leak-check fixtures
/// keep proving full reclamation regardless of how many blocks the pool
/// retains. Slabs are registered in the (intentionally leaked) global pool
/// and are never returned to the OS; LeakSanitizer sees them as reachable.
///
/// Compile-time gate: build with CPAM_POOL_ALLOC=0 (CMake option
/// -DCPAM_POOL_ALLOC=OFF) to bypass the pool entirely and hit `operator
/// new` per node — the mode sanitizer builds use so ASan redzones every
/// node boundary.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_CORE_POOL_ALLOCATOR_H
#define CPAM_CORE_POOL_ALLOCATOR_H

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <vector>

#include "src/parallel/scheduler.h"
#include "src/util/failpoint.h"

namespace cpam {

class pool_allocator {
public:
  /// Small classes: multiples of kGranularity in (0, kSmallMax].
  static constexpr size_t kGranularity = 64;
  static constexpr size_t kSmallMax = 1024;
  static constexpr size_t kNumSmall = kSmallMax / kGranularity; // 16
  /// Mid classes: multiples of kMidGranularity in (kSmallMax, kMidMax].
  static constexpr size_t kMidGranularity = 256;
  static constexpr size_t kMidMax = 8 * 1024;
  static constexpr size_t kNumMid =
      (kMidMax - kSmallMax) / kMidGranularity; // 28
  /// Large classes: powers of two in (kMidMax, kLargeMax].
  static constexpr size_t kLargeMax = 64 * 1024;
  static constexpr size_t kNumLarge = 3; // 16K, 32K, 64K.
  static constexpr size_t kNumClasses = kNumSmall + kNumMid + kNumLarge;
  /// A batch (the refill/drain unit) is ~16 KiB of blocks: 256 blocks for
  /// the smallest class, at least 4 for the largest.
  static constexpr size_t kBatchBytes = 16 * 1024;
  /// Stripes of the global pool; threads map to a home stripe by their
  /// scheduler slot so pool workers spread across stripes.
  static constexpr size_t kStripes = 8;

  /// True if requests of \p Bytes are served from the pool.
  static constexpr bool pooled(size_t Bytes) {
    return Bytes > 0 && Bytes <= kLargeMax;
  }

  /// Size-class index for \p Bytes, or -1 for direct (non-pooled) sizes.
  static int size_class(size_t Bytes) {
    if (!pooled(Bytes))
      return -1;
    if (Bytes <= kSmallMax)
      return static_cast<int>((Bytes + kGranularity - 1) / kGranularity - 1);
    if (Bytes <= kMidMax)
      return static_cast<int>(
          kNumSmall +
          (Bytes - kSmallMax + kMidGranularity - 1) / kMidGranularity - 1);
    int C = static_cast<int>(kNumSmall + kNumMid);
    for (size_t Cap = 2 * kMidMax; Cap < Bytes; Cap *= 2)
      ++C;
    return C;
  }

  /// Usable bytes of class \p C (what a block of that class occupies).
  static constexpr size_t class_bytes(int C) {
    assert(C >= 0 && static_cast<size_t>(C) < kNumClasses);
    if (static_cast<size_t>(C) < kNumSmall)
      return (static_cast<size_t>(C) + 1) * kGranularity;
    if (static_cast<size_t>(C) < kNumSmall + kNumMid)
      return kSmallMax +
             (static_cast<size_t>(C) - kNumSmall + 1) * kMidGranularity;
    return (2 * kMidMax) << (static_cast<size_t>(C) - kNumSmall - kNumMid);
  }

  /// Blocks per refill/drain batch for class \p C. Table-driven: the free
  /// fast path compares against 2*batch_blocks on every deallocation and
  /// must not pay a division there.
  static size_t batch_blocks(int C) {
    static constexpr std::array<size_t, kNumClasses> Table = [] {
      std::array<size_t, kNumClasses> T{};
      for (size_t I = 0; I < kNumClasses; ++I) {
        size_t N = kBatchBytes / class_bytes(static_cast<int>(I));
        T[I] = N < 4 ? 4 : N;
      }
      return T;
    }();
    assert(C >= 0 && static_cast<size_t>(C) < kNumClasses);
    return Table[static_cast<size_t>(C)];
  }

  /// Allocates \p Bytes (16-byte aligned) from the pool, or directly from
  /// the heap for beyond-pool sizes.
  static void *allocate(size_t Bytes) {
    int C = size_class(Bytes);
    if (C < 0)
      return ::operator new(Bytes, std::align_val_t(16));
    LocalCache &LC = local();
    LocalClass &L = LC.Classes[C];
    par::counter_bump(LC.Stats[C].Allocs);
    while (true) {
      if (L.Head) {
        FreeBlock *B = L.Head;
        L.Head = B->Next;
        --L.Count;
        return B;
      }
      if (L.Bump != L.BumpEnd) {
        // Fresh slabs are consumed by bumping, not by walking a pre-built
        // chain: chaining would touch every (cold) block once just to link
        // it — a whole extra pass of memory traffic on large builds.
        char *P = L.Bump;
        L.Bump += class_bytes(C);
        return P;
      }
      refill(C, L, LC.Stats[C]);
    }
  }

  /// Returns a block of \p Bytes obtained from allocate().
  static void deallocate(void *P, size_t Bytes) {
    int C = size_class(Bytes);
    if (C < 0) {
      ::operator delete(P, std::align_val_t(16));
      return;
    }
    LocalCache &LC = local();
    LocalClass &L = LC.Classes[C];
    par::counter_bump(LC.Stats[C].Frees);
    FreeBlock *B = static_cast<FreeBlock *>(P);
    B->Next = L.Head;
    L.Head = B;
    if (++L.Count >= 2 * batch_blocks(C)) {
      par::counter_bump(LC.Stats[C].DrainBatches);
      drain(C, L);
    }
  }

  //===--------------------------------------------------------------------===
  // Telemetry (tests and bench; all exact only when quiescent).
  //===--------------------------------------------------------------------===

  /// Total bytes of slab memory carved from the heap and retained.
  static int64_t reserved_bytes() {
    return global().SlabBytes.load(std::memory_order_relaxed);
  }

  /// Free blocks of class \p C parked in the global pool (sums batches
  /// across all stripes).
  static size_t global_free_blocks(int C) {
    GlobalPool &G = global();
    size_t N = 0;
    for (size_t S = 0; S < kStripes; ++S) {
      std::lock_guard<std::mutex> Lock(G.Classes[C].Stripes[S].M);
      for (const Batch &B : G.Classes[C].Stripes[S].Batches)
        N += B.Count;
    }
    return N;
  }

  /// Free blocks of class \p C on the calling thread's local list.
  static size_t local_free_blocks(int C) { return local().Classes[C].Count; }

  /// Per-size-class occupancy telemetry, summed over all threads (live and
  /// exited). Counters count *events* (tree_alloc/tree_free calls routed to
  /// the class and batch/slab exchanges), not residency: when the process
  /// is quiescent and every tree has been destroyed, Allocs == Frees per
  /// class, while Allocs - Frees is the class's live-block count at any
  /// snapshot. RefillBatches/DrainBatches are the global-pool exchange
  /// traffic — the data from which kBatchBytes should be sized (a high
  /// exchange rate relative to Allocs means batches are too small) — and
  /// SlabCarves counts fresh memory taken from the heap. Exact when
  /// quiescent, approximate (per-thread relaxed counters) under load.
  struct class_stats {
    size_t BlockBytes = 0;       ///< Usable bytes of the class.
    uint64_t Allocs = 0;         ///< Pool allocations served.
    uint64_t Frees = 0;          ///< Blocks returned to the pool.
    uint64_t RefillBatches = 0;  ///< Batches taken from the global pool.
    uint64_t DrainBatches = 0;   ///< Batches pushed to the global pool.
    uint64_t SlabCarves = 0;     ///< Fresh slabs carved from the heap.
  };

  /// Snapshot of the per-class telemetry (index = size-class id).
  static std::array<class_stats, kNumClasses> stats() {
    std::array<class_stats, kNumClasses> Out{};
    for (size_t C = 0; C < kNumClasses; ++C)
      Out[C].BlockBytes = class_bytes(static_cast<int>(C));
    GlobalPool &G = global();
    std::lock_guard<std::mutex> Lock(G.StatsM);
    auto Accum = [&Out](const LocalStats *S) {
      for (size_t C = 0; C < kNumClasses; ++C) {
        Out[C].Allocs += S[C].Allocs.load(std::memory_order_relaxed);
        Out[C].Frees += S[C].Frees.load(std::memory_order_relaxed);
        Out[C].RefillBatches +=
            S[C].RefillBatches.load(std::memory_order_relaxed);
        Out[C].DrainBatches +=
            S[C].DrainBatches.load(std::memory_order_relaxed);
        Out[C].SlabCarves += S[C].SlabCarves.load(std::memory_order_relaxed);
      }
    };
    Accum(G.DeadStats);
    for (const LocalStats *S : G.LiveStats)
      Accum(S);
    return Out;
  }

private:
  struct FreeBlock {
    FreeBlock *Next;
  };

  /// Per-thread, per-class event counters. Written only by the owning
  /// thread via par::counter_bump; read relaxed by stats() snapshots from
  /// any thread.
  struct LocalStats {
    std::atomic<uint64_t> Allocs{0};
    std::atomic<uint64_t> Frees{0};
    std::atomic<uint64_t> RefillBatches{0};
    std::atomic<uint64_t> DrainBatches{0};
    std::atomic<uint64_t> SlabCarves{0};
  };
  struct Batch {
    FreeBlock *Head;
    size_t Count;
  };

  struct BatchAddrGreater {
    bool operator()(const Batch &A, const Batch &B) const {
      return A.Head > B.Head; // Min-heap by address under std::*_heap.
    }
  };

  struct GlobalClass {
    struct alignas(64) Stripe {
      std::mutex M;
      /// Min-heap by batch address: refills take the lowest-addressed batch
      /// so a rebuild after a bulk teardown sees a globally ascending
      /// address stream (paired with drain()'s in-batch sort, this keeps
      /// recycled trees as compact as freshly carved ones).
      std::vector<Batch> Batches;
    };
    Stripe Stripes[kStripes];
  };

  struct GlobalPool {
    GlobalClass Classes[kNumClasses];
    std::mutex SlabM;
    std::vector<void *> Slabs; // Keeps slabs LSan-reachable; never freed.
    std::atomic<int64_t> SlabBytes{0};
    /// Telemetry registry: live threads' counter blocks plus the
    /// accumulated counters of exited threads.
    std::mutex StatsM;
    std::vector<const LocalStats *> LiveStats;
    LocalStats DeadStats[kNumClasses];
  };

  /// The global pool is allocated once and never destroyed: thread-local
  /// caches drain into it from thread-exit destructors, whose order against
  /// static destruction is unsequenced.
  static GlobalPool &global() {
    static GlobalPool *G = new GlobalPool;
    return *G;
  }

  struct LocalClass {
    /// Freed blocks, ready for LIFO reuse.
    FreeBlock *Head = nullptr;
    size_t Count = 0;
    /// Unconsumed tail of a freshly carved slab (bump-allocated).
    char *Bump = nullptr;
    char *BumpEnd = nullptr;
  };

  struct LocalCache {
    LocalClass Classes[kNumClasses] = {};
    LocalStats Stats[kNumClasses] = {};
    LocalCache() {
      GlobalPool &G = global();
      std::lock_guard<std::mutex> Lock(G.StatsM);
      G.LiveStats.push_back(Stats);
    }
    ~LocalCache() {
      // Return everything — including the unconsumed bump-slab tail, which
      // would otherwise be stranded forever by short-lived allocating
      // threads — so thread churn cannot grow reserved memory unboundedly.
      for (size_t C = 0; C < kNumClasses; ++C) {
        LocalClass &L = Classes[C];
        size_t CB = class_bytes(static_cast<int>(C));
        while (L.Bump != L.BumpEnd) {
          FreeBlock *B = reinterpret_cast<FreeBlock *>(L.Bump);
          B->Next = L.Head;
          L.Head = B;
          ++L.Count;
          L.Bump += CB;
        }
        if (!L.Head)
          continue;
        push_global(static_cast<int>(C), Batch{L.Head, L.Count});
        L.Head = nullptr;
        L.Count = 0;
      }
      // Fold this thread's counters into the dead-thread accumulator and
      // drop out of the live registry so stats() stays exact after exit.
      GlobalPool &G = global();
      std::lock_guard<std::mutex> Lock(G.StatsM);
      for (size_t C = 0; C < kNumClasses; ++C) {
        auto Fold = [](std::atomic<uint64_t> &Dst,
                       const std::atomic<uint64_t> &Src) {
          Dst.fetch_add(Src.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
        };
        Fold(G.DeadStats[C].Allocs, Stats[C].Allocs);
        Fold(G.DeadStats[C].Frees, Stats[C].Frees);
        Fold(G.DeadStats[C].RefillBatches, Stats[C].RefillBatches);
        Fold(G.DeadStats[C].DrainBatches, Stats[C].DrainBatches);
        Fold(G.DeadStats[C].SlabCarves, Stats[C].SlabCarves);
      }
      G.LiveStats.erase(
          std::find(G.LiveStats.begin(), G.LiveStats.end(), Stats));
    }
  };

  static LocalCache &local() {
    thread_local LocalCache Cache;
    return Cache;
  }

  static size_t home_stripe() {
    return static_cast<size_t>(par::thread_slot()) % kStripes;
  }

  static void push_global(int C, Batch B) {
    GlobalClass::Stripe &S = global().Classes[C].Stripes[home_stripe()];
    std::lock_guard<std::mutex> Lock(S.M);
    S.Batches.push_back(B);
    std::push_heap(S.Batches.begin(), S.Batches.end(), BatchAddrGreater());
  }

  /// Refills \p L with one batch: from the global pool if any stripe has
  /// one, otherwise by carving a fresh slab from the heap.
  static void refill(int C, LocalClass &L, LocalStats &St) {
    GlobalPool &G = global();
    size_t Home = home_stripe();
    for (size_t I = 0; I < kStripes; ++I) {
      GlobalClass::Stripe &S = G.Classes[C].Stripes[(Home + I) % kStripes];
      std::lock_guard<std::mutex> Lock(S.M);
      if (S.Batches.empty())
        continue;
      std::pop_heap(S.Batches.begin(), S.Batches.end(), BatchAddrGreater());
      Batch B = S.Batches.back();
      S.Batches.pop_back();
      L.Head = B.Head;
      L.Count = B.Count;
      par::counter_bump(St.RefillBatches);
      return;
    }
    // The "pool.refill" failpoint models heap exhaustion at the slab-carve
    // boundary: the global pool is dry and fresh memory is refused. Thrown
    // before any state changes, so the local cache stays consistent and the
    // next allocation retries cleanly.
    if (CPAM_FAILPOINT_ACTIVE("pool.refill"))
      throw std::bad_alloc();
    par::counter_bump(St.SlabCarves);
    // Carve a new slab, consumed by bump allocation (any bump tail left
    // over from a previous slab of this class is abandoned to that slab —
    // at most one batch of reserved-but-unused bytes per thread per class).
    size_t CB = class_bytes(C), N = batch_blocks(C);
    char *Slab = static_cast<char *>(
        ::operator new(N * CB, std::align_val_t(16)));
    {
      std::lock_guard<std::mutex> Lock(G.SlabM);
      G.Slabs.push_back(Slab);
    }
    G.SlabBytes.fetch_add(static_cast<int64_t>(N * CB),
                          std::memory_order_relaxed);
    L.Bump = Slab;
    L.BumpEnd = Slab + N * CB;
  }

  /// Keeps the hottest (most recently freed) batch locally and parks the
  /// colder tail in the global pool — in ascending address order. Bulk
  /// frees (tearing down a large tree) arrive in traversal order; without
  /// the sort, each build/teardown cycle through the pool scrambles block
  /// order a little more and successively built trees lose spatial
  /// locality (measurably: ~40% slower pointer-chased builds after five
  /// cycles). Sorting ~256 pointers amortizes to a few ns per free.
  static void drain(int C, LocalClass &L) {
    size_t Keep = batch_blocks(C);
    assert(L.Count >= 2 * Keep && "drain below threshold");
    FreeBlock *Cut = L.Head;
    for (size_t I = 1; I < Keep; ++I)
      Cut = Cut->Next;
    Batch B{Cut->Next, L.Count - Keep};
    Cut->Next = nullptr;
    L.Count = Keep;
    B.Head = sort_chain(B.Head);
    push_global(C, B);
  }

  /// Relinks a free chain into ascending address order. Bulk teardown
  /// produces (nearly) monotone chains — already-ascending ones pass
  /// through in one scan and descending ones are reversed in place; only
  /// genuinely shuffled chains pay an O(n log n) sort.
  static FreeBlock *sort_chain(FreeBlock *Head) {
    bool Ascending = true, Descending = true;
    for (FreeBlock *P = Head; P && P->Next; P = P->Next) {
      if (P < P->Next)
        Descending = false;
      else
        Ascending = false;
    }
    if (Ascending)
      return Head;
    if (Descending) {
      FreeBlock *Prev = nullptr;
      while (Head) {
        FreeBlock *Next = Head->Next;
        Head->Next = Prev;
        Prev = Head;
        Head = Next;
      }
      return Prev;
    }
    std::vector<FreeBlock *> Blocks;
    for (FreeBlock *P = Head; P; P = P->Next)
      Blocks.push_back(P);
    std::sort(Blocks.begin(), Blocks.end());
    for (size_t I = 0; I + 1 < Blocks.size(); ++I)
      Blocks[I]->Next = Blocks[I + 1];
    Blocks.back()->Next = nullptr;
    return Blocks.front();
  }
};

} // namespace cpam

#endif // CPAM_CORE_POOL_ALLOCATOR_H
