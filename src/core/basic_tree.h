//===- basic_tree.h - join / expose / split on PaC-trees -------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The join-based primitive layer of Figs. 5 and 9: `node_join` (the
/// invariant-enforcing `node()`), `expose`, `join` with weight-balanced
/// rotations, `split`, `split_last`/`join2`, and array<->tree conversion.
/// All higher-level algorithms (union, filter, maps, sequences, augmented
/// queries) are written against exactly these primitives, which is the
/// paper's central software-design claim: redesigning join and expose lets
/// the whole PAM algorithm suite run unchanged over compressed leaves.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_CORE_BASIC_TREE_H
#define CPAM_CORE_BASIC_TREE_H

#include <optional>
#include <utility>

#include "src/core/node.h"

/// Build-time default for the flat-leaf streaming fast paths (see
/// tree_ops::flat_fastpath). The CMake option CPAM_FLAT_FASTPATH sets it;
/// both code paths are always compiled so tests and benchmarks can A/B them
/// at runtime.
#ifndef CPAM_FLAT_FASTPATH
#define CPAM_FLAT_FASTPATH 1
#endif

namespace cpam {

template <class Entry, template <class> class EncoderT, int BlockSizeB>
struct tree_ops : node_layer<Entry, EncoderT, BlockSizeB> {
  using NL = node_layer<Entry, EncoderT, BlockSizeB>;
  using node_t = typename NL::node_t;
  using entry_t = typename NL::entry_t;
  using key_t = typename NL::key_t;
  using temp_buf = typename NL::temp_buf;
  using NL::as_flat;
  using NL::as_regular;
  using NL::dec;
  using NL::inc;
  using NL::is_flat;
  using NL::kB;
  using NL::kBlocked;
  using NL::make_flat;
  using NL::make_regular;
  using NL::flatten;
  using NL::ref_count;
  using NL::size;
  using NL::unfold;
  using NL::weight;

  /// Weight-balance parameter alpha = 0.29 (Def. 4.1), as the integer
  /// fraction kAlphaNum/100. alpha <= 1 - 1/sqrt(2) as required for
  /// join-based rebalancing [Blelloch-Ferizovic-Sun].
  static constexpr size_t kAlphaNum = 29;
  /// Default fork granularity: subproblems at least this large fork in
  /// parallel. 2048 entries of tree work (tens of microseconds) against a
  /// ~19 ns lock-free push+reclaim cycle keeps fork overhead well under 1%
  /// (bench_scheduler "fork_overhead" and the union/build/flatten grain
  /// A/B rows in BENCH_PR4.json). The mutex-deque scheduler needed 8192
  /// here — its fork cost measured 2.2x higher (42 ns) and degrades
  /// further under thief contention.
  static constexpr size_t kParGranDefault = 2048;

  /// Runtime fork granularity. Mutable (single-threaded setup code only)
  /// so bench_scheduler can A/B the retuned grain against the legacy 8192
  /// in one binary; everything below reads it per fork decision.
  static size_t &par_gran() {
    static size_t G = kParGranDefault;
    return G;
  }

  /// Whether set-operation and splice base cases over flat blocks merge
  /// cursor-to-cursor (leaf_reader -> leaf_writer), skipping the temp_buf
  /// flatten/re-encode round trip. Defaults to the CPAM_FLAT_FASTPATH build
  /// gate; mutable (single-threaded setup code only) so the differential
  /// suite and the A/B benchmarks can exercise both paths in one binary.
  static bool &flat_fastpath() {
    static bool On = CPAM_FLAT_FASTPATH != 0;
    return On;
  }

  /// True if a node with child weights \p WL, \p WR is weight-balanced.
  static bool balanced(size_t WL, size_t WR) {
    return 100 * WL >= kAlphaNum * (WL + WR) &&
           100 * WR >= kAlphaNum * (WL + WR);
  }
  /// True if the side with weight \p WA is too heavy against \p WB.
  static bool heavy(size_t WA, size_t WB) {
    return 100 * WB < kAlphaNum * (WA + WB);
  }

  //===--------------------------------------------------------------------===
  // node(): create a node enforcing the blocked-leaves invariant (Fig. 5).
  //===--------------------------------------------------------------------===

  /// Combines owned \p L, \p E, \p R into one tree. Callers must ensure
  /// weight balance (as join does); this function enforces only the
  /// blocked-leaves invariant: sizes in [B,2B] fold into one flat node,
  /// sizes in (2B,4B] redistribute around the median into two flat nodes.
  static node_t *node_join(node_t *L, entry_t E, node_t *R) {
    if constexpr (!kBlocked)
      return make_regular(L, std::move(E), R);
    size_t S = size(L) + size(R) + 1;
    if (S < kB)
      return make_regular(L, std::move(E), R);
    if (S > 4 * kB)
      return make_regular(normalize(L), std::move(E), normalize(R));
    if (S <= 2 * kB) {
      // Fold everything into a single flat node.
      temp_buf Buf(S);
      size_t Ls = flatten(L, Buf.data());
      ::new (static_cast<void *>(Buf.data() + Ls)) entry_t(std::move(E));
      flatten(R, Buf.data() + Ls + 1);
      Buf.set_count(S);
      return make_flat(Buf.data(), S);
    }
    // 2B < S <= 4B. If both children are already flat blocks of legal size
    // (a root block may be smaller than B), the invariant holds as-is.
    if (is_flat(L) && is_flat(R) && L->Size >= kB && R->Size >= kB)
      return make_regular(L, std::move(E), R);
    // Otherwise redistribute into two equal flat blocks around the median.
    temp_buf Buf(S);
    size_t Ls = flatten(L, Buf.data());
    ::new (static_cast<void *>(Buf.data() + Ls)) entry_t(std::move(E));
    flatten(R, Buf.data() + Ls + 1);
    Buf.set_count(S);
    size_t Mid = S / 2;
    node_t *Lf = make_flat(Buf.data(), Mid);
    node_t *Rf = make_flat(Buf.data() + Mid + 1, S - Mid - 1);
    return make_regular(Lf, std::move(Buf.data()[Mid]), Rf);
  }

  /// Folds a whole tree smaller than B into a single root-level flat block.
  /// Trees of size < B would otherwise be all-regular "simplex" trees
  /// (Def. 4.1 only constrains leaves when |T| >= B); storing them as one
  /// block is what makes low-degree edge lists and short posting lists
  /// compact, as in the CPAM implementation. Applied at API boundaries.
  static node_t *compress_root(node_t *T) {
    if constexpr (!kBlocked)
      return T;
    if (!T || is_flat(T) || T->Size >= kB)
      return T;
    size_t N = T->Size;
    temp_buf Buf(N);
    flatten(T, Buf.data());
    Buf.set_count(N);
    return make_flat(Buf.data(), N);
  }

  /// Repairs a child that should be a flat block but is a raw expanded
  /// subtree (possible after rotations over freshly unfolded nodes): any
  /// regular subtree of size [B, 2B] is folded into a single flat node.
  static node_t *normalize(node_t *C) {
    if constexpr (!kBlocked)
      return C;
    if (!C || is_flat(C) || C->Size < kB || C->Size > 2 * kB)
      return C;
    size_t N = C->Size;
    temp_buf Buf(N);
    flatten(C, Buf.data());
    Buf.set_count(N);
    return make_flat(Buf.data(), N);
  }

  //===--------------------------------------------------------------------===
  // expose (Fig. 5): destructure a tree into (left, entry, right).
  //===--------------------------------------------------------------------===

  struct exposed {
    node_t *L;
    entry_t E;
    node_t *R;
  };

  /// Destructures \p T, consuming one reference. Flat nodes are expanded
  /// first (unfold); unique nodes are cannibalized without copying.
  static exposed expose(node_t *T) {
    assert(T && "cannot expose an empty tree");
    if (is_flat(T))
      T = unfold(T);
    auto *R = as_regular(T);
    if (ref_count(T) == 1) {
      exposed Out{R->Left, std::move(R->E), R->Right};
      NL::free_regular_shell(R);
      return Out;
    }
    exposed Out{inc(R->Left), R->E, inc(R->Right)};
    dec(T);
    return Out;
  }

  //===--------------------------------------------------------------------===
  // join (Figs. 5/9): concatenate two trees around a middle entry.
  //===--------------------------------------------------------------------===

  /// Joins owned \p L and \p R around \p E; every key in L precedes E and
  /// every key in R follows it. O(|log w(L) - log w(R)|) work on complex
  /// trees (Thm. 6.1).
  static node_t *join(node_t *L, entry_t E, node_t *R) {
    if (heavy(weight(L), weight(R)))
      return join_right(L, std::move(E), R);
    if (heavy(weight(R), weight(L)))
      return join_left(L, std::move(E), R);
    return node_join(L, std::move(E), R);
  }

  static node_t *join_right(node_t *Tl, entry_t E, node_t *Tr) {
    if (balanced(weight(Tl), weight(Tr)))
      return node_join(Tl, std::move(E), Tr);
    // A flat Tl bounds the total size by < 3B; node_join redistributes.
    if (is_flat(Tl))
      return node_join(Tl, std::move(E), Tr);
    exposed X = expose(Tl);
    node_t *T2 = join_right(X.R, std::move(E), Tr);
    if (balanced(weight(X.L), weight(T2)))
      return node_join(X.L, std::move(X.E), T2);
    exposed Y = expose(T2);
    if (balanced(weight(X.L), weight(Y.L)) &&
        balanced(weight(X.L) + weight(Y.L), weight(Y.R)))
      // Single (left) rotation.
      return node_join(node_join(X.L, std::move(X.E), Y.L), std::move(Y.E),
                       Y.R);
    // Double rotation: rotate Y.L right, then the root left.
    exposed Z = expose(Y.L);
    return node_join(node_join(X.L, std::move(X.E), Z.L), std::move(Z.E),
                     node_join(Z.R, std::move(Y.E), Y.R));
  }

  static node_t *join_left(node_t *Tl, entry_t E, node_t *Tr) {
    if (balanced(weight(Tl), weight(Tr)))
      return node_join(Tl, std::move(E), Tr);
    if (is_flat(Tr))
      return node_join(Tl, std::move(E), Tr);
    exposed X = expose(Tr);
    node_t *T2 = join_left(Tl, std::move(E), X.L);
    if (balanced(weight(T2), weight(X.R)))
      return node_join(T2, std::move(X.E), X.R);
    exposed Y = expose(T2);
    if (balanced(weight(Y.R), weight(X.R)) &&
        balanced(weight(Y.R) + weight(X.R), weight(Y.L)))
      // Single (right) rotation.
      return node_join(Y.L, std::move(Y.E),
                       node_join(Y.R, std::move(X.E), X.R));
    // Double rotation: rotate Y.R left, then the root right.
    exposed Z = expose(Y.R);
    return node_join(node_join(Y.L, std::move(Y.E), Z.L), std::move(Z.E),
                     node_join(Z.R, std::move(X.E), X.R));
  }

  //===--------------------------------------------------------------------===
  // Array <-> tree conversion.
  //===--------------------------------------------------------------------===

  /// Builds a tree over A[0..N) (in the given order; sorted for maps/sets),
  /// moving entries out of \p A. Leaves respect the blocking invariant.
  static node_t *from_array_move(entry_t *A, size_t N) {
    if (N == 0)
      return nullptr;
    if constexpr (kBlocked) {
      if (N >= kB && N <= 2 * kB)
        return make_flat(A, N);
    }
    size_t Mid = N / 2;
    node_t *L = nullptr, *R = nullptr;
    par::par_do_if(
        N >= par_gran(), [&] { L = from_array_move(A, Mid); },
        [&] { R = from_array_move(A + Mid + 1, N - Mid - 1); });
    return make_regular(L, std::move(A[Mid]), R);
  }

  /// Builds a tree from a read-only array (entries copied).
  static node_t *from_array(const entry_t *A, size_t N) {
    temp_buf Buf(N);
    par::parallel_for(0, N, [&](size_t I) {
      ::new (static_cast<void *>(Buf.data() + I)) entry_t(A[I]);
    });
    Buf.set_count(N);
    return from_array_move(Buf.data(), N);
  }

  /// Writes all entries of \p T (which is retained, not consumed) into
  /// \p Out by copy, in order.
  static void to_array(const node_t *T, entry_t *Out) {
    if (!T)
      return;
    if (is_flat(T)) {
      size_t I = 0;
      NL::encoder::for_each_while(
          NL::payload(static_cast<const typename NL::flat_t *>(T)), T->Size,
          [&](const entry_t &E) {
            Out[I++] = E;
            return true;
          });
      return;
    }
    auto *R = static_cast<const typename NL::regular_t *>(T);
    size_t Ls = size(R->Left);
    Out[Ls] = R->E;
    par::par_do_if(
        T->Size >= par_gran(), [&] { to_array(R->Left, Out); },
        [&] { to_array(R->Right, Out + Ls + 1); });
  }

  //===--------------------------------------------------------------------===
  // Streaming leaf cursors (Sec. 8 base cases without materialization).
  //===--------------------------------------------------------------------===

  /// Streaming reader over a flat node, consuming one reference to it.
  /// Uniquely owned blocks are cannibalized: entries are moved out through
  /// the encoder's consuming read cursor and only the shell bytes are freed.
  /// Shared blocks are read by copy and dec'd. Abandoning the reader
  /// mid-block releases everything (the unconsumed tail included).
  class leaf_reader {
  public:
    explicit leaf_reader(node_t *T)
        : F(NL::as_flat(T)), Unique(NL::ref_count(T) == 1),
          C(NL::payload(F), T->Size, Unique) {}
    leaf_reader(const leaf_reader &) = delete;
    leaf_reader &operator=(const leaf_reader &) = delete;
    ~leaf_reader() {
      // Destroy any unconsumed entries before the shell bytes go away.
      C.release();
      if (Unique)
        NL::free_flat_shell(F);
      else
        NL::dec(F);
    }

    bool done() const { return C.done(); }
    const entry_t &peek() const { return C.peek(); }
    const key_t &key() const { return Entry::get_key(C.peek()); }
    entry_t take() { return C.take(); }
    void skip() { C.skip(); }

  private:
    typename NL::flat_t *F;
    bool Unique;
    typename NL::encoder::read_cursor C;
  };

  /// Streaming writer assembling a result tree from entries pushed in order
  /// (at most \p MaxN of them). Three representations, picked up front:
  ///
  ///  - Entry-staging encodings (raw): entries stream into an array that is
  ///    already the encoded form; finish() builds straight from it.
  ///  - Byte-coded encodings with MaxN <= 2B (result guaranteed to fit one
  ///    leaf): entries stream through the encoder's write_cursor, so
  ///    finish() is one exactly-sized allocation plus a memcpy — no
  ///    encoded_size or encode pass, no entry materialization. Results that
  ///    come up shorter than B decode back out of the (small) stream.
  ///  - Otherwise (possible multi-leaf result, or augmented trees, whose
  ///    aggregates need the entries): entries stage into a plain array and
  ///    finish() is from_array_move, which folds [B,2B] chunks into legal
  ///    flat leaves and keeps undersized/oversized results invariant-clean.
  ///
  /// Abandonment leaks nothing in any mode.
  class leaf_writer {
  public:
    using WC = typename NL::encoder::write_cursor;
    /// Byte-streaming pays off only when the result cannot overflow one
    /// leaf; past that the stream would be decoded and re-encoded anyway.
    static constexpr bool kCanStream =
        !WC::stages_entries && kBlocked && !NL::is_aug;

    explicit leaf_writer(size_t MaxN) {
      bool Cursor = WC::stages_entries || (kCanStream && MaxN <= 2 * kB);
      BufBytes = Cursor ? WC::max_bytes(MaxN) : MaxN * sizeof(entry_t);
      Buf = static_cast<uint8_t *>(tree_alloc(BufBytes));
      if (Cursor)
        C.emplace(Buf, MaxN);
    }
    leaf_writer(const leaf_writer &) = delete;
    leaf_writer &operator=(const leaf_writer &) = delete;
    ~leaf_writer() {
      if (C) {
        // Staged entries live inside Buf; drop them before freeing it.
        C->release();
      } else if constexpr (!std::is_trivially_destructible_v<entry_t>) {
        for (size_t I = 0; I < N; ++I)
          stage()[I].~entry_t();
      }
      tree_free(Buf, BufBytes);
    }

    void push(entry_t E) {
      if (C) {
        C->push(std::move(E));
      } else {
        assert((N + 1) * sizeof(entry_t) <= BufBytes && "leaf_writer overflow");
        ::new (static_cast<void *>(stage() + N)) entry_t(std::move(E));
        ++N;
      }
    }
    size_t count() const { return C ? C->count() : N; }

    /// Builds the result tree (nullptr when nothing was pushed).
    node_t *finish() {
      if (!C) {
        // Possible multi-leaf (or augmented) result: build from the staged
        // entries; from_array_move folds [B,2B] chunks into flat leaves and
        // keeps undersized/oversized results invariant-clean.
        return N ? from_array_move(stage(), N) : nullptr;
      }
      size_t Nc = C->count();
      if (Nc == 0)
        return nullptr;
      if constexpr (WC::stages_entries) {
        // The staging area is already an entry array: build straight from
        // it.
        return from_array_move(C->staged(), Nc);
      } else {
        if (Nc >= kB && Nc <= 2 * kB) {
          // Single-leaf result: adopt the streamed bytes wholesale.
          typename NL::flat_t *T = NL::alloc_flat(Nc, C->bytes());
          C->finish(NL::payload(T));
          return T;
        }
        // Result came up shorter than a legal leaf: rebuild as a (small)
        // regular tree from the decoded stream.
        temp_buf Out(Nc);
        C->drain(Out.data());
        Out.set_count(Nc);
        return from_array_move(Out.data(), Nc);
      }
    }

  private:
    entry_t *stage() { return reinterpret_cast<entry_t *>(Buf); }

    size_t BufBytes = 0;
    uint8_t *Buf = nullptr;
    std::optional<WC> C;
    size_t N = 0;
  };

  /// True when the cursor merge beats the array base case for a result of
  /// at most \p MaxOut entries: always for entry-staging encodings (the
  /// staging area doubles as the output), and for byte-coded encodings only
  /// while the result is guaranteed to fit a single streamed leaf — past
  /// that the stream would be decoded and re-encoded, which measures slower
  /// than the array path it replaces.
  static bool flat_merge_wins(size_t MaxOut) {
    return NL::encoder::write_cursor::stages_entries ||
           (leaf_writer::kCanStream && MaxOut <= 2 * kB);
  }

  //===--------------------------------------------------------------------===
  // split / split_last / join2 (Figs. 5/10).
  //===--------------------------------------------------------------------===

  struct split_t {
    node_t *L = nullptr;
    node_t *R = nullptr;
    std::optional<entry_t> E; // Set iff the key was present.
  };

  /// Binary search: index of the first entry in A[0..N) with key >= K.
  static size_t lower_bound_idx(const entry_t *A, size_t N, const key_t &K) {
    size_t Lo = 0, Hi = N;
    while (Lo < Hi) {
      size_t Mid = Lo + (Hi - Lo) / 2;
      if (Entry::comp(Entry::get_key(A[Mid]), K))
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    return Lo;
  }

  /// Splits \p T by key \p K into (keys < K, keys > K) plus the entry with
  /// key K if present. Consumes \p T.
  static split_t split(node_t *T, const key_t &K) {
    if (!T)
      return {};
    if (is_flat(T)) {
      // Flat base case: binary search inside the decoded block.
      size_t N = T->Size;
      temp_buf Buf(N);
      flatten(T, Buf.data());
      Buf.set_count(N);
      entry_t *A = Buf.data();
      size_t I = lower_bound_idx(A, N, K);
      bool Found = I < N && !Entry::comp(K, Entry::get_key(A[I]));
      split_t Out;
      Out.L = from_array_move(A, I);
      Out.R = from_array_move(A + I + Found, N - I - Found);
      if (Found)
        Out.E.emplace(std::move(A[I]));
      return Out;
    }
    exposed X = expose(T);
    const key_t &Ke = Entry::get_key(X.E);
    if (Entry::comp(K, Ke)) {
      split_t S = split(X.L, K);
      S.R = join(S.R, std::move(X.E), X.R);
      return S;
    }
    if (Entry::comp(Ke, K)) {
      split_t S = split(X.R, K);
      S.L = join(X.L, std::move(X.E), S.L);
      return S;
    }
    split_t Out;
    Out.L = X.L;
    Out.R = X.R;
    Out.E.emplace(std::move(X.E));
    return Out;
  }

  /// Removes and returns the last (largest) entry. \p T must be nonempty.
  static std::pair<node_t *, entry_t> split_last(node_t *T) {
    assert(T && "split_last on empty tree");
    if (is_flat(T)) {
      size_t N = T->Size;
      temp_buf Buf(N);
      flatten(T, Buf.data());
      Buf.set_count(N);
      node_t *Rest = from_array_move(Buf.data(), N - 1);
      return {Rest, std::move(Buf.data()[N - 1])};
    }
    exposed X = expose(T);
    if (!X.R)
      return {X.L, std::move(X.E)};
    auto [Rest, Last] = split_last(X.R);
    return {join(X.L, std::move(X.E), Rest), std::move(Last)};
  }

  /// Concatenates two owned trees (all keys in L precede all keys in R).
  static node_t *join2(node_t *L, node_t *R) {
    if (!L)
      return R;
    if (!R)
      return L;
    auto [Rest, Last] = split_last(L);
    return join(Rest, std::move(Last), R);
  }
};

} // namespace cpam

#endif // CPAM_CORE_BASIC_TREE_H
