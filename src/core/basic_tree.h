//===- basic_tree.h - join / expose / split on PaC-trees -------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The join-based primitive layer of Figs. 5 and 9: `node_join` (the
/// invariant-enforcing `node()`), `expose`, `join` with weight-balanced
/// rotations, `split`, `split_last`/`join2`, and array<->tree conversion.
/// All higher-level algorithms (union, filter, maps, sequences, augmented
/// queries) are written against exactly these primitives, which is the
/// paper's central software-design claim: redesigning join and expose lets
/// the whole PAM algorithm suite run unchanged over compressed leaves.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_CORE_BASIC_TREE_H
#define CPAM_CORE_BASIC_TREE_H

#include <algorithm>
#include <optional>
#include <utility>

#include "src/core/node.h"
#include "src/obs/trace.h"

/// Build-time default for the flat-leaf streaming fast paths (see
/// tree_ops::flat_fastpath). The CMake option CPAM_FLAT_FASTPATH sets it;
/// both code paths are always compiled so tests and benchmarks can A/B them
/// at runtime.
#ifndef CPAM_FLAT_FASTPATH
#define CPAM_FLAT_FASTPATH 1
#endif

namespace cpam {

template <class Entry, template <class> class EncoderT, int BlockSizeB>
struct tree_ops : node_layer<Entry, EncoderT, BlockSizeB> {
  using NL = node_layer<Entry, EncoderT, BlockSizeB>;
  using node_t = typename NL::node_t;
  using entry_t = typename NL::entry_t;
  using key_t = typename NL::key_t;
  using temp_buf = typename NL::temp_buf;
  using node_guard = typename NL::node_guard;
  using NL::as_flat;
  using NL::as_regular;
  using NL::dec;
  using NL::inc;
  using NL::is_flat;
  using NL::kB;
  using NL::kBlocked;
  using NL::make_flat;
  using NL::make_regular;
  using NL::flatten;
  using NL::ref_count;
  using NL::size;
  using NL::unfold;
  using NL::weight;

  /// Weight-balance parameter alpha = 0.29 (Def. 4.1), as the integer
  /// fraction kAlphaNum/100. alpha <= 1 - 1/sqrt(2) as required for
  /// join-based rebalancing [Blelloch-Ferizovic-Sun].
  static constexpr size_t kAlphaNum = 29;
  /// Default fork granularity: subproblems at least this large fork in
  /// parallel. 2048 entries of tree work (tens of microseconds) against a
  /// ~19 ns lock-free push+reclaim cycle keeps fork overhead well under 1%
  /// (bench_scheduler "fork_overhead" and the union/build/flatten grain
  /// A/B rows in BENCH_PR4.json). The mutex-deque scheduler needed 8192
  /// here — its fork cost measured 2.2x higher (42 ns) and degrades
  /// further under thief contention.
  static constexpr size_t kParGranDefault = 2048;

  /// Runtime fork granularity. Mutable (single-threaded setup code only)
  /// so bench_scheduler can A/B the retuned grain against the legacy 8192
  /// in one binary; everything below reads it per fork decision.
  static size_t &par_gran() {
    static size_t G = kParGranDefault;
    return G;
  }

  /// Whether set-operation and splice base cases over flat blocks merge
  /// cursor-to-cursor (leaf_reader -> leaf_writer), skipping the temp_buf
  /// flatten/re-encode round trip. Defaults to the CPAM_FLAT_FASTPATH build
  /// gate; mutable (single-threaded setup code only) so the differential
  /// suite and the A/B benchmarks can exercise both paths in one binary.
  static bool &flat_fastpath() {
    static bool On = CPAM_FLAT_FASTPATH != 0;
    return On;
  }

  /// True if a node with child weights \p WL, \p WR is weight-balanced.
  static bool balanced(size_t WL, size_t WR) {
    return 100 * WL >= kAlphaNum * (WL + WR) &&
           100 * WR >= kAlphaNum * (WL + WR);
  }
  /// True if the side with weight \p WA is too heavy against \p WB.
  static bool heavy(size_t WA, size_t WB) {
    return 100 * WB < kAlphaNum * (WA + WB);
  }

  //===--------------------------------------------------------------------===
  // node(): create a node enforcing the blocked-leaves invariant (Fig. 5).
  //===--------------------------------------------------------------------===

  /// Combines owned \p L, \p E, \p R into one tree. Callers must ensure
  /// weight balance (as join does); this function enforces only the
  /// blocked-leaves invariant: sizes in [B,2B] fold into one flat node,
  /// sizes in (2B,4B] redistribute around the median into two flat nodes.
  /// Like every consuming builder: a throw (injected or real bad_alloc)
  /// releases all owned inputs, so callers holding siblings only need their
  /// own guards.
  static node_t *node_join(node_t *L, entry_t E, node_t *R) {
    if constexpr (!kBlocked)
      return make_regular(L, std::move(E), R);
    size_t S = size(L) + size(R) + 1;
    if (S < kB)
      return make_regular(L, std::move(E), R);
    if (S > 4 * kB) {
      node_guard GR(R);
      node_t *Ln = normalize(L);
      node_guard GLn(Ln);
      node_t *Rn = normalize(GR.release());
      return make_regular(GLn.release(), std::move(E), Rn);
    }
    if (S <= 2 * kB) {
      // Fold everything into a single flat node.
      node_guard GL(L), GR(R);
      temp_buf Buf(S);
      size_t Ls = flatten(GL.release(), Buf.data());
      ::new (static_cast<void *>(Buf.data() + Ls)) entry_t(std::move(E));
      flatten(GR.release(), Buf.data() + Ls + 1);
      Buf.set_count(S);
      return make_flat(Buf.data(), S);
    }
    // 2B < S <= 4B. If both children are already flat blocks of legal size
    // (a root block may be smaller than B), the invariant holds as-is.
    if (is_flat(L) && is_flat(R) && L->Size >= kB && R->Size >= kB)
      return make_regular(L, std::move(E), R);
    // Otherwise redistribute into two equal flat blocks around the median.
    node_guard GL(L), GR(R);
    temp_buf Buf(S);
    size_t Ls = flatten(GL.release(), Buf.data());
    ::new (static_cast<void *>(Buf.data() + Ls)) entry_t(std::move(E));
    flatten(GR.release(), Buf.data() + Ls + 1);
    Buf.set_count(S);
    size_t Mid = S / 2;
    node_t *Lf = make_flat(Buf.data(), Mid);
    node_t *Rf;
    try {
      Rf = make_flat(Buf.data() + Mid + 1, S - Mid - 1);
    } catch (...) {
      dec(Lf);
      throw;
    }
    return make_regular(Lf, std::move(Buf.data()[Mid]), Rf);
  }

  /// Folds a whole tree smaller than B into a single root-level flat block.
  /// Trees of size < B would otherwise be all-regular "simplex" trees
  /// (Def. 4.1 only constrains leaves when |T| >= B); storing them as one
  /// block is what makes low-degree edge lists and short posting lists
  /// compact, as in the CPAM implementation. Applied at API boundaries.
  static node_t *compress_root(node_t *T) {
    if constexpr (!kBlocked)
      return T;
    if (!T || is_flat(T) || T->Size >= kB)
      return T;
    size_t N = T->Size;
    node_guard G(T);
    temp_buf Buf(N);
    flatten(G.release(), Buf.data());
    Buf.set_count(N);
    return make_flat(Buf.data(), N);
  }

  /// Repairs a child that should be a flat block but is a raw expanded
  /// subtree (possible after rotations over freshly unfolded nodes): any
  /// regular subtree of size [B, 2B] is folded into a single flat node.
  static node_t *normalize(node_t *C) {
    if constexpr (!kBlocked)
      return C;
    if (!C || is_flat(C) || C->Size < kB || C->Size > 2 * kB)
      return C;
    size_t N = C->Size;
    node_guard G(C);
    temp_buf Buf(N);
    flatten(G.release(), Buf.data());
    Buf.set_count(N);
    return make_flat(Buf.data(), N);
  }

  //===--------------------------------------------------------------------===
  // expose (Fig. 5): destructure a tree into (left, entry, right).
  //===--------------------------------------------------------------------===

  struct exposed {
    node_t *L;
    entry_t E;
    node_t *R;
  };

  /// Destructures \p T, consuming one reference. Flat nodes are expanded
  /// first (unfold); unique nodes are cannibalized without copying.
  static exposed expose(node_t *T) {
    assert(T && "cannot expose an empty tree");
    if (is_flat(T))
      T = unfold(T);
    auto *R = as_regular(T);
    if (ref_count(T) == 1) {
      exposed Out{R->Left, std::move(R->E), R->Right};
      NL::free_regular_shell(R);
      return Out;
    }
    exposed Out{inc(R->Left), R->E, inc(R->Right)};
    dec(T);
    return Out;
  }

  //===--------------------------------------------------------------------===
  // join (Figs. 5/9): concatenate two trees around a middle entry.
  //===--------------------------------------------------------------------===

  /// Joins owned \p L and \p R around \p E; every key in L precedes E and
  /// every key in R follows it. O(|log w(L) - log w(R)|) work on complex
  /// trees (Thm. 6.1).
  static node_t *join(node_t *L, entry_t E, node_t *R) {
    if (heavy(weight(L), weight(R)))
      return join_right(L, std::move(E), R);
    if (heavy(weight(R), weight(L)))
      return join_left(L, std::move(E), R);
    return node_join(L, std::move(E), R);
  }

  static node_t *join_right(node_t *Tl, entry_t E, node_t *Tr) {
    if (balanced(weight(Tl), weight(Tr)))
      return node_join(Tl, std::move(E), Tr);
    // A flat Tl bounds the total size by < 3B; node_join redistributes.
    if (is_flat(Tl))
      return node_join(Tl, std::move(E), Tr);
    exposed X = expose(Tl);
    node_guard GXL(X.L);
    node_t *T2 = join_right(X.R, std::move(E), Tr);
    if (balanced(weight(X.L), weight(T2)))
      return node_join(GXL.release(), std::move(X.E), T2);
    exposed Y = expose(T2);
    if (balanced(weight(X.L), weight(Y.L)) &&
        balanced(weight(X.L) + weight(Y.L), weight(Y.R))) {
      // Single (left) rotation.
      node_guard GYR(Y.R);
      node_t *Inner = node_join(GXL.release(), std::move(X.E), Y.L);
      return node_join(Inner, std::move(Y.E), GYR.release());
    }
    // Double rotation: rotate Y.L right, then the root left.
    node_guard GYR(Y.R);
    exposed Z = expose(Y.L);
    node_guard GZR(Z.R);
    node_t *A = node_join(GXL.release(), std::move(X.E), Z.L);
    node_t *B;
    try {
      B = node_join(GZR.release(), std::move(Y.E), GYR.release());
    } catch (...) {
      dec(A);
      throw;
    }
    return node_join(A, std::move(Z.E), B);
  }

  static node_t *join_left(node_t *Tl, entry_t E, node_t *Tr) {
    if (balanced(weight(Tl), weight(Tr)))
      return node_join(Tl, std::move(E), Tr);
    if (is_flat(Tr))
      return node_join(Tl, std::move(E), Tr);
    exposed X = expose(Tr);
    node_guard GXR(X.R);
    node_t *T2 = join_left(Tl, std::move(E), X.L);
    if (balanced(weight(T2), weight(X.R)))
      return node_join(T2, std::move(X.E), GXR.release());
    exposed Y = expose(T2);
    if (balanced(weight(Y.R), weight(X.R)) &&
        balanced(weight(Y.R) + weight(X.R), weight(Y.L))) {
      // Single (right) rotation.
      node_guard GYL(Y.L);
      node_t *Inner = node_join(Y.R, std::move(X.E), GXR.release());
      return node_join(GYL.release(), std::move(Y.E), Inner);
    }
    // Double rotation: rotate Y.R left, then the root right.
    node_guard GYL(Y.L);
    exposed Z = expose(Y.R);
    node_guard GZL(Z.L);
    node_t *B = node_join(Z.R, std::move(X.E), GXR.release());
    node_t *A;
    try {
      A = node_join(GYL.release(), std::move(Y.E), GZL.release());
    } catch (...) {
      dec(B);
      throw;
    }
    return node_join(A, std::move(Z.E), B);
  }

  //===--------------------------------------------------------------------===
  // Array <-> tree conversion.
  //===--------------------------------------------------------------------===

  /// Builds a tree over A[0..N) (in the given order; sorted for maps/sets),
  /// moving entries out of \p A. Leaves respect the blocking invariant.
  static node_t *from_array_move(entry_t *A, size_t N) {
    if (N == 0)
      return nullptr;
    if constexpr (kBlocked) {
      if (N >= kB && N <= 2 * kB)
        return make_flat(A, N);
    }
    size_t Mid = N / 2;
    node_t *L = nullptr, *R = nullptr;
    try {
      par::par_do_if(
          N >= par_gran(), [&] { L = from_array_move(A, Mid); },
          [&] { R = from_array_move(A + Mid + 1, N - Mid - 1); });
    } catch (...) {
      dec(L);
      dec(R);
      throw;
    }
    return make_regular(L, std::move(A[Mid]), R);
  }

  /// Builds a tree from a read-only array (entries copied).
  static node_t *from_array(const entry_t *A, size_t N) {
    temp_buf Buf(N);
    par::parallel_for(0, N, [&](size_t I) {
      ::new (static_cast<void *>(Buf.data() + I)) entry_t(A[I]);
    });
    Buf.set_count(N);
    return from_array_move(Buf.data(), N);
  }

  /// Writes all entries of \p T (which is retained, not consumed) into
  /// \p Out by copy, in order.
  static void to_array(const node_t *T, entry_t *Out) {
    if (!T)
      return;
    if (is_flat(T)) {
      size_t I = 0;
      NL::encoder::for_each_while(
          NL::payload(static_cast<const typename NL::flat_t *>(T)), T->Size,
          [&](const entry_t &E) {
            Out[I++] = E;
            return true;
          });
      return;
    }
    auto *R = static_cast<const typename NL::regular_t *>(T);
    size_t Ls = size(R->Left);
    Out[Ls] = R->E;
    par::par_do_if(
        T->Size >= par_gran(), [&] { to_array(R->Left, Out); },
        [&] { to_array(R->Right, Out + Ls + 1); });
  }

  //===--------------------------------------------------------------------===
  // Streaming leaf cursors (Sec. 8 base cases without materialization).
  //===--------------------------------------------------------------------===

  /// Streaming reader over a flat node, consuming one reference to it.
  /// Uniquely owned blocks are cannibalized: entries are moved out through
  /// the encoder's consuming read cursor and only the shell bytes are freed.
  /// Shared blocks are read by copy and dec'd. Abandoning the reader
  /// mid-block releases everything (the unconsumed tail included).
  class leaf_reader {
  public:
    explicit leaf_reader(node_t *T)
        : F(NL::as_flat(T)), Unique(NL::ref_count(T) == 1),
          C(NL::payload(F), T->Size, Unique) {}
    leaf_reader(const leaf_reader &) = delete;
    leaf_reader &operator=(const leaf_reader &) = delete;
    ~leaf_reader() {
      // Destroy any unconsumed entries before the shell bytes go away.
      C.release();
      if (Unique)
        NL::free_flat_shell(F);
      else
        NL::dec(F);
    }

    bool done() const { return C.done(); }
    size_t remaining() const { return C.remaining(); }
    const entry_t &peek() const { return C.peek(); }
    const key_t &key() const { return Entry::get_key(C.peek()); }
    entry_t take() { return C.take(); }
    void skip() { C.skip(); }

  private:
    typename NL::flat_t *F;
    bool Unique;
    typename NL::encoder::read_cursor C;
  };

  /// Chunked streaming writer: turns one ordered entry stream of arbitrary
  /// length into a balanced tree of legal flat leaves with no decode/
  /// re-encode bounce — every entry is encoded exactly once, in batch.
  ///
  /// push() is a single store into a pending entry array. Once 3B+1
  /// entries are pending, the oldest 2B are fed to the encoder's
  /// write_cursor in one tight loop (batch encode, unlike a per-entry
  /// interleave this pipelines well) and sealed as a finished leaf — one
  /// exactly-sized allocation plus the encoder's cut(), a memcpy for
  /// byte-coded schemes — the next pending entry becomes the separator
  /// entry of a regular node, and the remaining B compact to the front.
  /// The 3B+1 threshold is the hold-back that makes tails legal without
  /// ever revisiting a sealed byte: a chunk is only sealed once B+1 later
  /// entries exist, so after any seal at least B entries are pending, and
  /// finish() always closes the stream as one or two leaves in [B, 2B]
  /// (a pending tail in (2B, 3B] splits around its median). Results
  /// shorter than B never touch the encoder at all: they build straight
  /// from the pending entries. finish() assembles the sealed leaves and
  /// separators into a weight-balanced top with join (forking for wide
  /// results, the same discipline as from_array_move).
  ///
  /// Abandonment mid-stream leaks nothing: sealed leaves are dec'd,
  /// pending and staged entries destroyed. Not for augmented trees:
  /// alloc_flat cannot aggregate a stream it never materializes
  /// (leaf_writer falls back to staging for those).
  class leaf_chunk_writer {
  public:
    using WC = typename NL::encoder::write_cursor;
    /// Entries per sealed leaf: full blocks, so a stream of k*2B entries
    /// becomes exactly k leaves (the ROADMAP's "fresh full-width key every
    /// ~2B entries").
    static constexpr size_t kChunk = 2 * kB;
    /// Pending entries that trigger a seal: chunk + separator + the B
    /// hold-back that keeps every later tail legal.
    static constexpr size_t kPendTrigger = 3 * kB + 1;

    explicit leaf_chunk_writer(size_t MaxN) {
      // One pooled allocation carries the encoder staging bytes, the
      // pending array and (for streams that can span leaves) the
      // separator and leaf-pointer arrays.
      size_t CursorCap = std::max<size_t>(1, std::min(MaxN, kChunk));
      PendCap = std::max<size_t>(1, std::min(MaxN, kPendTrigger));
      size_t PendOff = align_up(WC::max_bytes(CursorCap), alignof(entry_t));
      size_t SepOff = PendOff + PendCap * sizeof(entry_t);
      size_t LeafOff = SepOff;
      Bytes = SepOff;
      if (MaxN > kChunk) {
        // Every sealed leaf covers at least B+1 stream entries (leaf plus
        // separator), which bounds the unit arrays up front.
        MaxUnits = MaxN / (kB + 1) + 2;
        LeafOff = align_up(SepOff + MaxUnits * sizeof(entry_t),
                           alignof(node_t *));
        Bytes = LeafOff + MaxUnits * sizeof(node_t *);
      }
      Buf = static_cast<uint8_t *>(tree_alloc(Bytes));
      Pending = reinterpret_cast<entry_t *>(Buf + PendOff);
      if (MaxN > kChunk) {
        Seps = reinterpret_cast<entry_t *>(Buf + SepOff);
        Leaves = reinterpret_cast<node_t **>(Buf + LeafOff);
      }
      C.emplace(Buf, CursorCap);
    }
    leaf_chunk_writer(const leaf_chunk_writer &) = delete;
    leaf_chunk_writer &operator=(const leaf_chunk_writer &) = delete;
    ~leaf_chunk_writer() {
      C->release(); // Staged entries live inside Buf; drop them first.
      if constexpr (!std::is_trivially_destructible_v<entry_t>) {
        for (size_t I = 0; I < NPend; ++I)
          Pending[I].~entry_t();
        for (size_t I = 0; I < NSeps; ++I)
          Seps[I].~entry_t();
      }
      for (size_t I = 0; I < NLeaves; ++I)
        NL::dec(Leaves[I]);
      tree_free(Buf, Bytes);
    }

    void push(entry_t E) {
      assert(NPend < PendCap && "pending array overflow (push past MaxN?)");
      ::new (static_cast<void *>(Pending + NPend)) entry_t(std::move(E));
      if (++NPend == kPendTrigger && PendCap == kPendTrigger)
        drain_chunk();
    }
    /// Entries accepted so far — push() mode only (push_ahead callers
    /// drive the writer from arrays and track their own counts).
    size_t count() const { return Total + NPend; }

    /// Direct-encode push for producers that know their remaining length
    /// (the fused array merges): the entry goes straight into the encoder
    /// cursor — no pending staging — and a full chunk is sealed on the
    /// spot, with this entry as its separator. The caller must guarantee
    /// that at least B+1 entries still follow every push_ahead() (exact
    /// operand remainders make that a two-compare loop guard), which is
    /// what keeps every later tail legal. Close the stream with
    /// finish_tail(); do not mix with push().
    void push_ahead(entry_t E) {
      if (C->count() == kChunk) {
        seal(kChunk);
        new_separator(std::move(E));
        return;
      }
      C->push(std::move(E));
    }

    /// Batch push_ahead: encodes a whole run of \p Count entries from
    /// \p A through push_n, sealing full chunks as they complete (their
    /// separators come from the run). Long sorted runs — the CPMA-style
    /// batch-merge pattern — become single batch encodes. The push_ahead
    /// caller guarantee applies to the end of the run.
    void push_ahead_n(entry_t *A, size_t Count) {
      while (Count) {
        size_t Room = kChunk - C->count();
        if (Room == 0) {
          seal(kChunk);
          new_separator(std::move(*A));
          ++A;
          --Count;
          continue;
        }
        size_t Take = std::min(Room, Count);
        C->push_n(A, Take);
        A += Take;
        Count -= Take;
      }
    }

    /// Closes a push_ahead() stream: the already-merged remaining entries
    /// \p A[0..R) plus the open cursor chunk become the final one or two
    /// leaves. R < B+2 per operand side at switchover bounds R <= 2B+2.
    node_t *finish_tail(entry_t *A, size_t R) {
      size_t Cc = C->count();
      size_t Tail = Cc + R;
      Total = 0;
      if (Tail == 0)
        return nullptr; // Nothing sealed either (hold-back keeps tails > 0).
      if (NLeaves == 0 && Tail < kB) {
        // Short stream: build from entries (decoding the open chunk if the
        // caller streamed any of it).
        return close_short(A, R, Cc, Tail);
      }
      if (Tail <= kChunk) {
        // One final legal leaf.
        C->push_n(A, R);
        if (NLeaves == 0) {
          typename NL::flat_t *F = NL::alloc_flat(Tail, C->bytes());
          C->cut(NL::payload(F));
          return F;
        }
        seal(Tail);
        return close_top();
      }
      // More than one final leaf. The first must absorb the open chunk
      // (sealed bytes cannot move) plus enough tail entries to leave a
      // legal remainder; the push_ahead guard makes that feasible except
      // in a rare corner (open chunk near 2B meeting a dup-shortened
      // tail). Whatever follows the first leaf is a pure array problem:
      // one more leaf when it fits, from_array_move when it spans several
      // (the tail can reach ~4B when the chunk and both kept-back operand
      // remainders meet).
      size_t S1lo = std::max(Cc, kB);
      size_t S1hi = std::min(kChunk, Tail - 1 - kB);
      if (S1lo <= S1hi) {
        size_t S1 = std::min(std::max(Tail / 2, S1lo), S1hi);
        C->push_n(A, S1 - Cc);
        seal(S1);
        new_separator(std::move(A[S1 - Cc]));
        size_t Off = (S1 - Cc) + 1;
        size_t Rest = Tail - 1 - S1; // >= B by the S1hi bound.
        if (Rest <= kChunk) {
          C->push_n(A + Off, Rest);
          seal(Rest);
        } else {
          assert(NLeaves < MaxUnits && "leaf unit array overflow");
          Leaves[NLeaves++] = from_array_move(A + Off, Rest);
        }
        return close_top();
      }
      // Corner: decode the open chunk once and rebuild this last unit from
      // entries — the only decode bounce left, rare and bounded by 2B.
      node_t *Sub = close_short(A, R, Cc, Tail);
      if (NLeaves == 0)
        return Sub;
      Leaves[NLeaves++] = Sub;
      return close_top();
    }

    /// Builds the result tree (nullptr when nothing was pushed) and resets.
    node_t *finish() {
      node_t *Out;
      if (NLeaves == 0 && (WC::stages_entries || NPend < kB)) {
        // Short stream (or an entry-staging scheme, whose staging array
        // is the pending array itself): build directly from the entries.
        Out = NPend ? from_array_move(Pending, NPend) : nullptr;
      } else if (NLeaves == 0 && NPend <= kChunk) {
        // The whole stream is one legal leaf: adopt the batch-encoded
        // bytes wholesale (the unit arrays may not exist here — a
        // MaxN <= 2B writer never allocates them).
        feed(0, NPend);
        typename NL::flat_t *F = NL::alloc_flat(NPend, C->bytes());
        C->cut(NL::payload(F));
        Out = F;
      } else if (NPend <= kChunk) {
        // One more legal leaf under sealed ones: the hold-back
        // guarantees NPend >= B.
        assert(NPend >= kB && "hold-back must keep tails >= B");
        feed(0, NPend);
        seal(NPend);
        Out = close_top();
      } else {
        // Tail in (2B, 3B]: two legal leaves around the median entry.
        size_t S1 = NPend / 2;
        assert(S1 >= kB && NPend - 1 - S1 >= kB && "illegal tail split");
        feed(0, S1);
        seal(S1);
        new_separator(std::move(Pending[S1]));
        feed(S1 + 1, NPend);
        seal(NPend - 1 - S1);
        Out = close_top();
      }
      destroy_pending(); // Every branch leaves only movable husks behind.
      NPend = 0;
      Total = 0;
      return Out;
    }

  private:
    static constexpr size_t align_up(size_t X, size_t A) {
      return (X + A - 1) & ~(A - 1);
    }

    /// Batch-encodes pending entries [From, To) into the write cursor in
    /// one push_n pass (register-local chain state; a memcpy for raw).
    /// Entry-staging schemes move the entries out, leaving destructible
    /// husks; byte-coded schemes read integral keys and leave the slots
    /// untouched — either way the pending slots stay destructible.
    void feed(size_t From, size_t To) {
      C->push_n(Pending + From, To - From);
    }
    void destroy_pending(size_t From = 0) {
      if constexpr (!std::is_trivially_destructible_v<entry_t>)
        for (size_t I = From; I < NPend; ++I)
          Pending[I].~entry_t();
    }

    /// Rebuilds (open cursor chunk + tail entries) as one small tree from
    /// entries, decoding the chunk if nonempty.
    node_t *close_short(entry_t *A, size_t R, size_t Cc, size_t Tail) {
      if (Cc == 0)
        return R ? from_array_move(A, R) : nullptr;
      temp_buf All(Tail);
      C->drain(All.data());
      All.set_count(Cc);
      for (size_t I = 0; I < R; ++I)
        ::new (static_cast<void *>(All.data() + Cc + I))
            entry_t(std::move(A[I]));
      All.set_count(Tail);
      return from_array_move(All.data(), Tail);
    }

    /// Seals the current cursor chunk (N entries) as one finished leaf.
    /// The "leaf.seal" failpoint models an allocation failure mid-merge:
    /// the cursor still owns the staged chunk bytes, so abandonment after
    /// a throw here leaks nothing.
    void seal(size_t N) {
      assert(Leaves && NLeaves < MaxUnits &&
             "sealing requires the unit arrays (MaxN > 2B)");
      if (CPAM_FAILPOINT_ACTIVE("leaf.seal"))
        throw std::bad_alloc();
      typename NL::flat_t *F = NL::alloc_flat(N, C->bytes());
      C->cut(NL::payload(F));
      Leaves[NLeaves++] = F;
    }
    void new_separator(entry_t Sep) {
      ::new (static_cast<void *>(Seps + NSeps)) entry_t(std::move(Sep));
      ++NSeps;
    }

    /// Pending hit 3B+1: emit the oldest 2B as a sealed leaf, take the
    /// next as separator, compact the remaining B to the front.
    void drain_chunk() {
      feed(0, kChunk);
      seal(kChunk);
      new_separator(std::move(Pending[kChunk]));
      Total += kChunk + 1;
      size_t Rest = NPend - kChunk - 1; // == kB
      if constexpr (std::is_trivially_copyable_v<entry_t>) {
        std::memcpy(static_cast<void *>(Pending),
                    static_cast<const void *>(Pending + kChunk + 1),
                    Rest * sizeof(entry_t));
      } else {
        for (size_t I = 0; I < Rest; ++I)
          Pending[I] = std::move(Pending[kChunk + 1 + I]);
        destroy_pending(Rest);
      }
      NPend = Rest;
    }

    /// Top assembly over the sealed leaves once the tail is closed.
    node_t *close_top() {
      assert(NLeaves == NSeps + 1 &&
             "one separator between consecutive leaves");
      node_t *Out = build_top(Leaves, Seps, NLeaves);
      if constexpr (!std::is_trivially_destructible_v<entry_t>)
        for (size_t I = 0; I < NSeps; ++I)
          Seps[I].~entry_t(); // build_top moved them out; drop the husks.
      NLeaves = 0;
      NSeps = 0;
      return Out;
    }

    /// Balanced top over \p K sealed units and K-1 separators, built with
    /// join so near-equal unit weights (full chunks, plus final units in
    /// [B, 2B]) always land inside the alpha balance bound.
    /// Consumed leaf slots are nulled so that if assembly throws partway,
    /// the writer's destructor decs only the leaves still unconsumed
    /// (dec(nullptr) is a no-op) — never a double release.
    static node_t *build_top(node_t **Ls, entry_t *Ss, size_t K) {
      if (K == 1) {
        node_t *Out = Ls[0];
        Ls[0] = nullptr;
        return Out;
      }
      size_t Mid = K / 2;
      node_t *L = nullptr, *R = nullptr;
      try {
        par::par_do_if(
            K * kChunk >= par_gran(), [&] { L = build_top(Ls, Ss, Mid); },
            [&] { R = build_top(Ls + Mid, Ss + Mid, K - Mid); });
      } catch (...) {
        dec(L);
        dec(R);
        throw;
      }
      return join(L, std::move(Ss[Mid - 1]), R);
    }

    size_t Bytes = 0;
    uint8_t *Buf = nullptr;
    std::optional<WC> C;
    /// Pending (not yet encoded) entries; the hold-back that keeps every
    /// sealed leaf and tail inside [B, 2B].
    entry_t *Pending = nullptr;
    size_t PendCap = 0;
    size_t NPend = 0;
    /// Separator staging and sealed-leaf array: present only for streams
    /// that can span leaves (MaxN > 2B).
    entry_t *Seps = nullptr;
    node_t **Leaves = nullptr;
    size_t MaxUnits = 0;
    size_t NLeaves = 0;
    size_t NSeps = 0;
    size_t Total = 0; // Entries already drained out of Pending.
  };

  /// Streaming writer assembling a result tree from entries pushed in order
  /// (at most \p MaxN of them). Two representations, picked up front:
  ///
  ///  - Blocked, unaugmented, byte-coded trees: the chunked
  ///    leaf_chunk_writer above — the stream is emitted as finished leaves
  ///    chunk by chunk, whatever its length, with no entry
  ///    materialization.
  ///  - Everything else: entries stage into a plain array and finish() is
  ///    from_array_move. For entry-staging encodings (raw) the staging
  ///    array is already the encoded form, so this is the faster shape —
  ///    batch block encodes, parallel for wide results — and it is the
  ///    only correct one for augmented trees, whose aggregates need the
  ///    entries.
  ///
  /// Abandonment leaks nothing in either mode.
  class leaf_writer {
  public:
    using WC = typename NL::encoder::write_cursor;
    /// Chunked byte-streaming requires blocking, no augmented aggregate
    /// (which would need the entries materialized anyway) and a byte-coded
    /// scheme (entry-staging ones build faster from their staging array).
    static constexpr bool kCanStream =
        kBlocked && !NL::is_aug && !WC::stages_entries;

    explicit leaf_writer(size_t MaxN) {
      if constexpr (kCanStream) {
        CW.emplace(MaxN);
      } else {
        BufBytes = std::max<size_t>(1, MaxN) * sizeof(entry_t);
        Buf = static_cast<uint8_t *>(tree_alloc(BufBytes));
      }
    }
    leaf_writer(const leaf_writer &) = delete;
    leaf_writer &operator=(const leaf_writer &) = delete;
    ~leaf_writer() {
      if constexpr (!kCanStream) {
        if constexpr (!std::is_trivially_destructible_v<entry_t>)
          for (size_t I = 0; I < N; ++I)
            stage()[I].~entry_t();
        tree_free(Buf, BufBytes);
      }
    }

    void push(entry_t E) {
      if constexpr (kCanStream) {
        CW->push(std::move(E));
      } else {
        assert((N + 1) * sizeof(entry_t) <= BufBytes && "leaf_writer overflow");
        ::new (static_cast<void *>(stage() + N)) entry_t(std::move(E));
        ++N;
      }
    }
    size_t count() const {
      if constexpr (kCanStream)
        return CW->count();
      else
        return N;
    }

    /// Builds the result tree (nullptr when nothing was pushed).
    node_t *finish() {
      if constexpr (kCanStream)
        return CW->finish();
      else
        return N ? from_array_move(stage(), N) : nullptr;
    }

  private:
    entry_t *stage() { return reinterpret_cast<entry_t *>(Buf); }

    /// The chunk writer exists only in streaming instantiations, so
    /// staging-only trees (augmented, B = 0) never instantiate it.
    struct no_chunk_writer {};
    size_t BufBytes = 0;
    uint8_t *Buf = nullptr;
    std::conditional_t<kCanStream, std::optional<leaf_chunk_writer>,
                       no_chunk_writer>
        CW;
    size_t N = 0;
  };

  /// Measured break-even for the cursor merge, in combined operand
  /// *entries*. Entries are the one unit every call site can measure
  /// exactly: encoded payload bytes undercount a raw batch array by the
  /// compression factor, which is how multi_insert's accounting drifted
  /// from the set ops' (it mixed encoded bytes of the tree with
  /// `N * sizeof(entry_t)` of the batch). The default is the measured
  /// crossover for the byte-coded encoders (bench_merge / perf_smoke flat
  /// rows): at ~32 merged entries (B=8 leaf pairs) the cursor machinery's
  /// per-merge setup loses ~15% to the array path even on sorted-run
  /// shapes, while at ~512 entries (B=128 pairs) streaming wins 13-26% on
  /// those shapes; 128 splits the gap at the scale where the two paths
  /// measured even. Entry-staging encodings ignore this (their staging
  /// array already is the output). Runtime-mutable (single-threaded setup
  /// code only) for A/B benchmarks and hosts that measure differently.
  static constexpr size_t kFlatStreamMinEntriesDefault = 128;
  static size_t &flat_stream_min_entries() {
    static size_t V = kFlatStreamMinEntriesDefault;
    return V;
  }

  /// True when the cursor merge beats the array base case for flat operands
  /// carrying \p OperandEntries entries in total (both operands summed, a
  /// batch array counting each element as one entry). Since the chunked
  /// writer emits any number of finished leaves from one stream, this is a
  /// pure measured break-even, not a capability gate: entry-staging
  /// encodings always win (the staging area doubles as the output),
  /// byte-coded encodings win from flat_stream_min_entries() up. Augmented
  /// trees keep the array path (aggregates need the entries materialized).
  static bool flat_merge_wins(size_t OperandEntries) {
    if (NL::encoder::write_cursor::stages_entries)
      return true;
    return leaf_writer::kCanStream &&
           OperandEntries >= flat_stream_min_entries();
  }

  /// Capability-only variant for single-pass splices with bounded output:
  /// point insert/remove, split/split_last, filter/map, seq split_at and
  /// concat, and intersect/difference of two leaves. Those paths have no
  /// winner-run hazard (each side is consumed in one monotone pass and the
  /// result fits a leaf or is a pure concat), and streaming measured as a
  /// win for them even at the smallest block sizes where the merge-style
  /// ops lose (BENCH_PR5: intersect/difference diff B=8 1.26x/1.39x), so
  /// the flat_stream_min_entries() merge break-even does not apply.
  static bool flat_splice_wins() {
    return NL::encoder::write_cursor::stages_entries ||
           leaf_writer::kCanStream;
  }

  //===--------------------------------------------------------------------===
  // parallel_flat_merge: quantile-split chunked merges.
  //===--------------------------------------------------------------------===

  /// Hard cap on quantile-split chunks per merge. Bounds the on-stack
  /// boundary and part arrays, and keeps the join fan-in cheap; 64 chunks
  /// of parallel_merge_grain() entries each saturate far more workers than
  /// the elastic pool ever runs.
  static constexpr size_t kMaxMergeChunks = 64;

  /// Minimum entries of merge work per chunk before a flat merge is split
  /// at key quantiles and run as parallel chunk merges. Reuses the
  /// scheduler fork granularity default — a chunk is one fork's worth of
  /// work. 0 disables the parallel path. Runtime-mutable (single-threaded
  /// setup code only) so the differential tests can lower it to force
  /// chunked runs on small inputs and the merge benches can A/B it.
  static constexpr size_t kParallelMergeGrainDefault = kParGranDefault;
  static size_t &parallel_merge_grain() {
    static size_t G = kParallelMergeGrainDefault;
    return G;
  }

  /// Number of chunks a merge over \p Total combined entries (larger
  /// operand: \p Larger entries) splits into; 1 means "run sequentially".
  /// Depends only on operand sizes and the grain knob — never on the
  /// worker count — so the chunking, and with it the output tree, is
  /// identical at any thread count.
  static size_t merge_chunk_count(size_t Total, size_t Larger) {
    size_t G = parallel_merge_grain();
    if (G == 0 || Total < 2 * G)
      return 1;
    size_t C = std::min(std::min(Total / G, kMaxMergeChunks), Larger);
    return C < 2 ? 1 : C;
  }

  /// Quantile-split parallel merge driver. Splits the sorted inputs
  /// A[0..N1) (entries) and B[0..N2) (any sorted key-carrying elements,
  /// keys read via \p KB) into \p C aligned chunk pairs at key quantiles
  /// of the larger side, runs \p MC(AChunk, An, BChunk, Bn) -> node_t* on
  /// each pair under scheduler forks, and joins the per-chunk trees
  /// weight-balanced. A boundary key starts the *right* chunk on both
  /// sides (lower_bound), so equal-key pairs land in the same chunk and
  /// every chunk merge sees a self-contained key range.
  template <class EltB, class KeyOfB, class ChunkMerge>
  static node_t *parallel_flat_merge(entry_t *A, size_t N1, EltB *B,
                                     size_t N2, const KeyOfB &KB, size_t C,
                                     const ChunkMerge &MC) {
    assert(C >= 2 && C <= kMaxMergeChunks && "merge_chunk_count sizes C");
    size_t IA[kMaxMergeChunks + 1], IB[kMaxMergeChunks + 1];
    IA[0] = IB[0] = 0;
    IA[C] = N1;
    IB[C] = N2;
    auto LbB = [&](const key_t &K) {
      size_t Lo = 0, Hi = N2;
      while (Lo < Hi) {
        size_t Mid = Lo + (Hi - Lo) / 2;
        if (Entry::comp(KB(B[Mid]), K))
          Lo = Mid + 1;
        else
          Hi = Mid;
      }
      return Lo;
    };
    for (size_t I = 1; I < C; ++I) {
      // Quantile ranks on the larger side are exact boundaries (keys are
      // distinct within a side); the smaller side splits by binary search
      // on the same key, so the boundary keys — and the chunking — are a
      // pure function of the inputs.
      if (N1 >= N2) {
        IA[I] = I * N1 / C;
        IB[I] = LbB(Entry::get_key(A[IA[I]]));
      } else {
        IB[I] = I * N2 / C;
        IA[I] = lower_bound_idx(A, N1, KB(B[IB[I]]));
      }
    }
    // Zero-initialized so a throwing chunk merge leaves its slot (and any
    // never-run slots) as harmless nullptrs for the cleanup sweep.
    node_t *Parts[kMaxMergeChunks] = {};
    obs::trace::span MergeSpan("merge", "merge");
    try {
      par::parallel_for(
          0, C,
          [&](size_t I) {
            obs::trace::span S("merge_chunk", "merge");
            Parts[I] = MC(A + IA[I], IA[I + 1] - IA[I], B + IB[I],
                          IB[I + 1] - IB[I]);
          },
          /*Granularity=*/1);
      obs::trace::span JoinSpan("merge_join", "merge");
      return join_parts(Parts, C);
    } catch (...) {
      // join_parts nulls slots as it consumes them, so this sweep releases
      // exactly the chunk trees nobody owns yet.
      for (size_t I = 0; I < C; ++I)
        dec(Parts[I]);
      throw;
    }
  }

  /// Balanced concatenation of \p K adjacent chunk trees: divide and
  /// conquer so intermediate joins stay near-balanced regardless of how
  /// the per-chunk output sizes skew.
  static node_t *join_parts(node_t **P, size_t K) {
    if (K == 1) {
      node_t *Out = P[0];
      P[0] = nullptr; // Consumed: the caller's failure sweep must not re-dec.
      return Out;
    }
    size_t Mid = K / 2;
    node_t *L = join_parts(P, Mid);
    node_t *R;
    try {
      R = join_parts(P + Mid, K - Mid);
    } catch (...) {
      dec(L);
      throw;
    }
    return join2(L, R);
  }

  //===--------------------------------------------------------------------===
  // split / split_last / join2 (Figs. 5/10).
  //===--------------------------------------------------------------------===

  struct split_t {
    node_t *L = nullptr;
    node_t *R = nullptr;
    std::optional<entry_t> E; // Set iff the key was present.
  };

  /// Binary search: index of the first entry in A[0..N) with key >= K.
  static size_t lower_bound_idx(const entry_t *A, size_t N, const key_t &K) {
    size_t Lo = 0, Hi = N;
    while (Lo < Hi) {
      size_t Mid = Lo + (Hi - Lo) / 2;
      if (Entry::comp(Entry::get_key(A[Mid]), K))
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    return Lo;
  }

  /// Splits \p T by key \p K into (keys < K, keys > K) plus the entry with
  /// key K if present. Consumes \p T.
  static split_t split(node_t *T, const key_t &K) {
    if (!T)
      return {};
    if (is_flat(T)) {
      size_t N = T->Size;
      if (flat_fastpath() && flat_splice_wins()) {
        // Leaf splice: stream the block into the two sides, never
        // materializing it (each entry is decoded once on its way out).
        leaf_reader C(T);
        leaf_writer WL(N), WR(N);
        split_t Out;
        while (!C.done() && Entry::comp(Entry::get_key(C.peek()), K))
          WL.push(C.take());
        if (!C.done() && !Entry::comp(K, Entry::get_key(C.peek())))
          Out.E.emplace(C.take());
        while (!C.done())
          WR.push(C.take());
        Out.L = WL.finish();
        try {
          Out.R = WR.finish();
        } catch (...) {
          dec(Out.L);
          throw;
        }
        return Out;
      }
      // Array base case: binary search inside the decoded block.
      node_guard G(T);
      temp_buf Buf(N);
      flatten(G.release(), Buf.data());
      Buf.set_count(N);
      entry_t *A = Buf.data();
      size_t I = lower_bound_idx(A, N, K);
      bool Found = I < N && !Entry::comp(K, Entry::get_key(A[I]));
      split_t Out;
      Out.L = from_array_move(A, I);
      try {
        Out.R = from_array_move(A + I + Found, N - I - Found);
      } catch (...) {
        dec(Out.L);
        throw;
      }
      if (Found)
        Out.E.emplace(std::move(A[I]));
      return Out;
    }
    exposed X = expose(T);
    const key_t &Ke = Entry::get_key(X.E);
    if (Entry::comp(K, Ke)) {
      node_guard GR(X.R);
      split_t S = split(X.L, K);
      node_guard GL(S.L);
      S.R = join(S.R, std::move(X.E), GR.release());
      GL.release();
      return S;
    }
    if (Entry::comp(Ke, K)) {
      node_guard GL(X.L);
      split_t S = split(X.R, K);
      node_guard GR(S.R);
      S.L = join(GL.release(), std::move(X.E), S.L);
      GR.release();
      return S;
    }
    split_t Out;
    Out.L = X.L;
    Out.R = X.R;
    Out.E.emplace(std::move(X.E));
    return Out;
  }

  /// Removes and returns the last (largest) entry. \p T must be nonempty.
  static std::pair<node_t *, entry_t> split_last(node_t *T) {
    assert(T && "split_last on empty tree");
    if (is_flat(T)) {
      size_t N = T->Size;
      if (flat_fastpath() && flat_splice_wins()) {
        // Leaf splice: stream all but the last entry straight into the
        // result block.
        leaf_reader C(T);
        leaf_writer W(N);
        for (size_t I = 0; I + 1 < N; ++I)
          W.push(C.take());
        entry_t Last = C.take();
        return {W.finish(), std::move(Last)};
      }
      node_guard G(T);
      temp_buf Buf(N);
      flatten(G.release(), Buf.data());
      Buf.set_count(N);
      node_t *Rest = from_array_move(Buf.data(), N - 1);
      return {Rest, std::move(Buf.data()[N - 1])};
    }
    exposed X = expose(T);
    if (!X.R)
      return {X.L, std::move(X.E)};
    node_guard GL(X.L);
    auto [Rest, Last] = split_last(X.R);
    return {join(GL.release(), std::move(X.E), Rest), std::move(Last)};
  }

  /// Concatenates two owned trees (all keys in L precede all keys in R).
  static node_t *join2(node_t *L, node_t *R) {
    if (!L)
      return R;
    if (!R)
      return L;
    node_guard GR(R);
    auto [Rest, Last] = split_last(L);
    return join(Rest, std::move(Last), GR.release());
  }
};

} // namespace cpam

#endif // CPAM_CORE_BASIC_TREE_H
