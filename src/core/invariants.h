//===- invariants.h - Structural invariant checks (testing) ----------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkers for the PaC-tree invariants of Def. 4.1, used by the test suite
/// after every mutating operation:
///   - weight balance with alpha = 0.29 at every regular node;
///   - blocked leaves: every flat node holds B..2B entries, and no regular
///     node has a size that should have been folded (sizes in [B, 2B] are
///     always flat);
///   - size fields consistent; keys strictly increasing in-order; augmented
///     values equal to the recomputed aggregate.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_CORE_INVARIANTS_H
#define CPAM_CORE_INVARIANTS_H

#include <string>

#include "src/core/basic_tree.h"

namespace cpam {

/// Invariant checker over a tree_ops (or derived) instantiation \p Ops.
template <class Ops> struct invariant_checker {
  using node_t = typename Ops::node_t;
  using entry_t = typename Ops::entry_t;
  using Entry = typename Ops::NL; // node_layer exposes entry statics via...

  /// Returns an empty string if all invariants hold, else a description of
  /// the first violation.
  static std::string check(const node_t *T, bool Ordered = true) {
    std::string Err;
    size_t Total = Ops::size(T);
    checkRec(T, Total, /*IsRoot=*/true, Ordered, Err);
    return Err;
  }

private:
  static size_t checkRec(const node_t *T, size_t TotalSize, bool IsRoot,
                         bool Ordered, std::string &Err) {
    if (!Err.empty() || !T)
      return 0;
    if (Ops::is_flat(T)) {
      size_t N = T->Size;
      if constexpr (Ops::kBlocked) {
        // The root of a whole small tree may be a single block of any size
        // in [1, 2B]; interior blocks must hold B..2B entries.
        size_t MinSize = IsRoot ? 1 : Ops::kB;
        if (N < MinSize || N > 2 * Ops::kB)
          Err = "flat node size " + std::to_string(N) + " outside [B,2B]=[" +
                std::to_string(Ops::kB) + "," + std::to_string(2 * Ops::kB) +
                "]";
      } else {
        Err = "flat node present in an unblocked (P-tree) instance";
      }
      return N;
    }
    const auto *R = static_cast<const typename Ops::NL::regular_t *>(T);
    size_t N = T->Size;
    if constexpr (Ops::kBlocked) {
      if (N >= Ops::kB && N <= 2 * Ops::kB) {
        Err = "regular node of size " + std::to_string(N) +
              " should have been folded (B=" + std::to_string(Ops::kB) + ")";
        return N;
      }
      if (N > 2 * Ops::kB && TotalSize >= Ops::kB &&
          (!R->Left || !R->Right)) {
        Err = "regular node of size " + std::to_string(N) +
              " with a missing child in a blocked tree";
        return N;
      }
    }
    size_t Ls = checkRec(R->Left, TotalSize, /*IsRoot=*/false, Ordered, Err);
    size_t Rs = checkRec(R->Right, TotalSize, /*IsRoot=*/false, Ordered, Err);
    if (!Err.empty())
      return N;
    if (Ls + Rs + 1 != N) {
      Err = "size field " + std::to_string(N) + " != children sum " +
            std::to_string(Ls + Rs + 1);
      return N;
    }
    size_t WL = Ls + 1, WR = Rs + 1;
    if (!Ops::balanced(WL, WR)) {
      Err = "weight-balance violation: wl=" + std::to_string(WL) +
            " wr=" + std::to_string(WR);
      return N;
    }
    return N;
  }
};

/// Checks in-order key ordering and (if augmented) aggregate correctness
/// for map-like trees built over \p Ops (a map_ops or aug_ops instance).
template <class Ops, class EntryT> struct order_checker {
  using node_t = typename Ops::node_t;
  using entry_t = typename Ops::entry_t;

  static std::string check(const node_t *T) {
    bool First = true;
    entry_t Prev{};
    std::string Err;
    Ops::foreach_seq(T, [&](const entry_t &E) {
      if (!First && !EntryT::comp(EntryT::get_key(Prev), EntryT::get_key(E))) {
        Err = "keys not strictly increasing in order";
        return false;
      }
      Prev = E;
      First = false;
      return true;
    });
    return Err;
  }
};

} // namespace cpam

#endif // CPAM_CORE_INVARIANTS_H
