//===- entry.h - Entry traits for sets, maps and augmented maps -----------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Entry traits in the style of PAM: a tree is parameterized by an Entry
/// structure that defines the stored entry type, key extraction, ordering
/// and (optionally) augmentation. An augmented entry additionally provides
///
///   using aug_t = ...;                       // the augmented value type
///   static aug_t aug_empty();                // identity
///   static aug_t aug_from_entry(entry_t);    // g in the paper
///   static aug_t aug_combine(aug_t, aug_t);  // associative f
///
/// Non-augmented entries set `aug_t = no_aug`, which occupies no storage in
/// tree nodes.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_CORE_ENTRY_H
#define CPAM_CORE_ENTRY_H

#include <algorithm>
#include <functional>
#include <limits>
#include <type_traits>
#include <utility>

namespace cpam {

/// Marker type: this entry carries no augmented value.
struct no_aug {};

/// Entry for ordered maps: entries are (key, value) pairs ordered by key.
template <class K, class V, class Less = std::less<K>> struct map_entry {
  using key_t = K;
  using val_t = V;
  using entry_t = std::pair<K, V>;
  using aug_t = no_aug;
  static constexpr bool has_val = true;
  static const key_t &get_key(const entry_t &E) { return E.first; }
  static const val_t &get_val(const entry_t &E) { return E.second; }
  static val_t &get_val(entry_t &E) { return E.second; }
  static bool comp(const key_t &A, const key_t &B) { return Less()(A, B); }
};

/// Entry for ordered sets: the entry is the key itself.
template <class K, class Less = std::less<K>> struct set_entry {
  using key_t = K;
  using val_t = no_aug; // No associated value.
  using entry_t = K;
  using aug_t = no_aug;
  static constexpr bool has_val = false;
  static const key_t &get_key(const entry_t &E) { return E; }
  static bool comp(const key_t &A, const key_t &B) { return Less()(A, B); }
};

/// True iff Entry declares a real augmented value.
template <class Entry>
inline constexpr bool is_augmented_v =
    !std::is_same_v<typename Entry::aug_t, no_aug>;

/// Augmented map whose augmented value is the maximum of the values.
template <class K, class V, class Less = std::less<K>>
struct aug_max_entry : map_entry<K, V, Less> {
  using entry_t = typename map_entry<K, V, Less>::entry_t;
  using aug_t = V;
  static aug_t aug_empty() { return std::numeric_limits<V>::lowest(); }
  static aug_t aug_from_entry(const entry_t &E) { return E.second; }
  static aug_t aug_combine(const aug_t &A, const aug_t &B) {
    return std::max(A, B);
  }
};

/// Augmented map whose augmented value is the sum of the values.
template <class K, class V, class Less = std::less<K>>
struct aug_sum_entry : map_entry<K, V, Less> {
  using entry_t = typename map_entry<K, V, Less>::entry_t;
  using aug_t = V;
  static aug_t aug_empty() { return V(); }
  static aug_t aug_from_entry(const entry_t &E) { return E.second; }
  static aug_t aug_combine(const aug_t &A, const aug_t &B) { return A + B; }
};

} // namespace cpam

#endif // CPAM_CORE_ENTRY_H
