//===- seq_ops.h - Sequence operations over PaC-trees ----------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Sequence interface of Table 1: positional operations over PaC-trees
/// whose entries carry no ordering invariant. Provides split_at/subseq,
/// take/drop, append (O(log n + B) via join), reverse, map, reduce and
/// find_first. These back the Fig. 2 sequence microbenchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_CORE_SEQ_OPS_H
#define CPAM_CORE_SEQ_OPS_H

#include "src/core/basic_tree.h"
#include "src/parallel/primitives.h"

namespace cpam {

template <class Entry, template <class> class EncoderT, int BlockSizeB>
struct seq_ops : tree_ops<Entry, EncoderT, BlockSizeB> {
  using TO = tree_ops<Entry, EncoderT, BlockSizeB>;
  using NL = typename TO::NL;
  using node_t = typename TO::node_t;
  using entry_t = typename TO::entry_t;
  using temp_buf = typename TO::temp_buf;
  using exposed = typename TO::exposed;
  using TO::dec;
  using TO::expose;
  using TO::flatten;
  using TO::from_array_move;
  using TO::is_flat;
  using TO::join;
  using TO::join2;
  using TO::par_gran;
  using TO::size;

  /// Element at position \p I (0-based). O(log n + B) work.
  static entry_t nth(const node_t *T, size_t I) {
    assert(T && I < size(T) && "nth index out of range");
    while (true) {
      if (is_flat(T)) {
        const auto *F = static_cast<const typename NL::flat_t *>(T);
        entry_t Out{};
        size_t J = 0;
        NL::encoder::for_each_while(NL::payload(F), T->Size,
                                    [&](const entry_t &E) {
                                      if (J++ == I) {
                                        Out = E;
                                        return false;
                                      }
                                      return true;
                                    });
        return Out;
      }
      const auto *R = static_cast<const typename NL::regular_t *>(T);
      size_t Ls = size(R->Left);
      if (I < Ls) {
        T = R->Left;
      } else if (I == Ls) {
        return R->E;
      } else {
        I -= Ls + 1;
        T = R->Right;
      }
    }
  }

  /// Splits into (first I elements, the rest). Consumes \p T.
  static std::pair<node_t *, node_t *> split_at(node_t *T, size_t I) {
    if (!T)
      return {nullptr, nullptr};
    if (I == 0)
      return {nullptr, T};
    if (I >= size(T))
      return {T, nullptr};
    if (is_flat(T)) {
      size_t N = T->Size;
      if (TO::flat_fastpath() && TO::flat_splice_wins()) {
        // Stream the block into the two sides without materializing it.
        typename TO::leaf_reader C(T);
        typename TO::leaf_writer WL(I), WR(N - I);
        for (size_t J = 0; J < I; ++J)
          WL.push(C.take());
        while (!C.done())
          WR.push(C.take());
        node_t *L = WL.finish();
        return {L, WR.finish()};
      }
      temp_buf Buf(N);
      flatten(T, Buf.data());
      Buf.set_count(N);
      node_t *L = from_array_move(Buf.data(), I);
      node_t *R = from_array_move(Buf.data() + I, N - I);
      return {L, R};
    }
    exposed X = expose(T);
    size_t Ls = size(X.L);
    if (I <= Ls) {
      auto [LL, LR] = split_at(X.L, I);
      return {LL, join(LR, std::move(X.E), X.R)};
    }
    auto [RL, RR] = split_at(X.R, I - Ls - 1);
    return {join(X.L, std::move(X.E), RL), RR};
  }

  /// First \p I elements. Consumes \p T. O(log n + B) work.
  static node_t *take(node_t *T, size_t I) {
    auto [L, R] = split_at(T, I);
    dec(R);
    return L;
  }

  /// All but the first \p I elements. Consumes \p T.
  static node_t *drop(node_t *T, size_t I) {
    auto [L, R] = split_at(T, I);
    dec(L);
    return R;
  }

  /// Elements [From, To). Consumes \p T.
  static node_t *subseq(node_t *T, size_t From, size_t To) {
    return take(drop(T, From), To > From ? To - From : 0);
  }

  /// Concatenation. Consumes both. O(log n + B) work — the headline win
  /// over array sequences in Fig. 2 (arrays need O(n)).
  static node_t *append(node_t *L, node_t *R) {
    if (TO::flat_fastpath() && is_flat(L) && is_flat(R) &&
        TO::flat_splice_wins()) {
      // Flat x flat: stream both blocks into the chunked writer back to
      // back instead of bouncing L through split_last's temp_buf.
      typename TO::leaf_writer W(size(L) + size(R));
      {
        typename TO::leaf_reader A(L);
        while (!A.done())
          W.push(A.take());
      }
      {
        typename TO::leaf_reader B(R);
        while (!B.done())
          W.push(B.take());
      }
      return W.finish();
    }
    return join2(L, R);
  }

  /// Reversed copy. Consumes \p T. O(n) work, O(log n) span.
  static node_t *reverse(node_t *T) {
    size_t N = size(T);
    if (N <= 1)
      return T;
    temp_buf Buf(N);
    flatten(T, Buf.data());
    Buf.set_count(N);
    entry_t *A = Buf.data();
    par::parallel_for(0, N / 2, [&](size_t I) {
      std::swap(A[I], A[N - 1 - I]);
    });
    return from_array_move(A, N);
  }

  /// New sequence with f applied to every element. Consumes \p T.
  template <class F> static node_t *map(node_t *T, const F &f) {
    if (!T)
      return nullptr;
    if (is_flat(T)) {
      size_t N = T->Size;
      if (TO::flat_fastpath() && TO::flat_splice_wins()) {
        // Stream the block through the cursor pair (same discipline as
        // split_at above): each element is decoded once, transformed, and
        // pushed straight into the result leaf.
        typename TO::leaf_reader C(T);
        typename TO::leaf_writer W(N);
        while (!C.done()) {
          entry_t E = C.take();
          E = f(E);
          W.push(std::move(E));
        }
        return W.finish();
      }
      temp_buf Buf(N);
      flatten(T, Buf.data());
      Buf.set_count(N);
      for (size_t I = 0; I < N; ++I)
        Buf.data()[I] = f(Buf.data()[I]);
      return from_array_move(Buf.data(), N);
    }
    exposed X = expose(T);
    node_t *L = nullptr, *R = nullptr;
    par::par_do_if(
        size(X.L) + size(X.R) >= par_gran(), [&] { L = map(X.L, f); },
        [&] { R = map(X.R, f); });
    return TO::node_join(L, f(X.E), R);
  }

  /// Reduction with associative \p Cmb over f(element) (read-only).
  template <class F, class T2, class Combine>
  static T2 map_reduce(const node_t *T, const F &f, T2 Identity,
                       const Combine &Cmb) {
    if (!T)
      return Identity;
    if (is_flat(T)) {
      const auto *Fl = static_cast<const typename NL::flat_t *>(T);
      T2 Acc = Identity;
      NL::encoder::for_each_while(NL::payload(Fl), T->Size,
                                  [&](const entry_t &E) {
                                    Acc = Cmb(Acc, f(E));
                                    return true;
                                  });
      return Acc;
    }
    const auto *R = static_cast<const typename NL::regular_t *>(T);
    T2 A = Identity, B = Identity;
    par::par_do_if(
        T->Size >= par_gran(),
        [&] { A = map_reduce(R->Left, f, Identity, Cmb); },
        [&] { B = map_reduce(R->Right, f, Identity, Cmb); });
    return Cmb(Cmb(A, f(R->E)), B);
  }

  /// Index of the first element satisfying \p P, or size(T) if none.
  /// O(k) work where k is the returned index (FindFirst in Table 1).
  template <class Pred>
  static size_t find_first(const node_t *T, const Pred &P) {
    size_t Index = 0;
    return find_first_rec(T, P, Index) ? Index : size_npos(T);
  }

  /// Keeps elements satisfying \p P, in order. Consumes \p T.
  template <class Pred> static node_t *filter(node_t *T, const Pred &P) {
    if (!T)
      return nullptr;
    if (is_flat(T)) {
      size_t N = T->Size;
      temp_buf Buf(N), Out(N);
      flatten(T, Buf.data());
      Buf.set_count(N);
      size_t K = 0;
      for (size_t I = 0; I < N; ++I) {
        if (!P(Buf.data()[I]))
          continue;
        ::new (static_cast<void *>(Out.data() + K++))
            entry_t(std::move(Buf.data()[I]));
        Out.set_count(K);
      }
      return from_array_move(Out.data(), K);
    }
    exposed X = expose(T);
    node_t *L = nullptr, *R = nullptr;
    par::par_do_if(
        size(X.L) + size(X.R) >= par_gran(), [&] { L = filter(X.L, P); },
        [&] { R = filter(X.R, P); });
    if (P(X.E))
      return join(L, std::move(X.E), R);
    return join2(L, R);
  }

  /// Monotone check: true iff the sequence is sorted under \p Less.
  /// Implemented as a tree reduction carrying (first, last, ok).
  template <class Less>
  static bool is_sorted(const node_t *T, const Less &Lt) {
    struct Summary {
      bool Ok = true;
      bool Empty = true;
      entry_t First{}, Last{};
    };
    auto Single = [](const entry_t &E) {
      Summary S;
      S.Ok = true;
      S.Empty = false;
      S.First = S.Last = E;
      return S;
    };
    auto Merge = [&Lt](const Summary &A, const Summary &B) {
      if (A.Empty)
        return B;
      if (B.Empty)
        return A;
      Summary S;
      S.Empty = false;
      S.Ok = A.Ok && B.Ok && !Lt(B.First, A.Last);
      S.First = A.First;
      S.Last = B.Last;
      return S;
    };
    return map_reduce(T, Single, Summary{}, Merge).Ok;
  }

private:
  static size_t size_npos(const node_t *T) { return size(T); }

  template <class Pred>
  static bool find_first_rec(const node_t *T, const Pred &P, size_t &Index) {
    if (!T)
      return false;
    if (is_flat(T)) {
      const auto *F = static_cast<const typename NL::flat_t *>(T);
      bool Found = !NL::encoder::for_each_while(
          NL::payload(F), T->Size, [&](const entry_t &E) {
            if (P(E))
              return false;
            ++Index;
            return true;
          });
      return Found;
    }
    const auto *R = static_cast<const typename NL::regular_t *>(T);
    if (find_first_rec(R->Left, P, Index))
      return true;
    if (P(R->E))
      return true;
    ++Index;
    return find_first_rec(R->Right, P, Index);
  }
};

} // namespace cpam

#endif // CPAM_CORE_SEQ_OPS_H
