//===- map_ops.h - Join-based map and set algorithms -----------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Join-based algorithms over PaC-trees (Figs. 6, 8, 10): search, insertion
/// and deletion, the three set operations (union / intersect / difference),
/// multi_insert / multi_delete, filter, map_reduce and order statistics.
/// Each algorithm is written against expose/join/split only — plus the
/// optimized base cases of Sec. 8, taken whenever a subproblem fits in the
/// base-case granularity kappa (default 8B; configurable for the ablation
/// study). Base cases whose operands are both flat blocks merge encoded
/// block to encoded block through streaming cursors (tree_ops::leaf_reader
/// and leaf_writer) with no intermediate arrays; other shapes flatten into
/// arrays and merge, as does everything when flat_fastpath() is off.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_CORE_MAP_OPS_H
#define CPAM_CORE_MAP_OPS_H

#include <algorithm>
#include <atomic>
#include <optional>

#include "src/core/basic_tree.h"
#include "src/obs/metrics.h"
#include "src/parallel/primitives.h"

namespace cpam {

/// Default value-combine: keep the right (new) value.
struct take_right {
  template <class V> const V &operator()(const V &, const V &B) const {
    return B;
  }
};

template <class Entry, template <class> class EncoderT, int BlockSizeB>
struct map_ops : tree_ops<Entry, EncoderT, BlockSizeB> {
  using TO = tree_ops<Entry, EncoderT, BlockSizeB>;
  using NL = typename TO::NL;
  using node_t = typename TO::node_t;
  using entry_t = typename TO::entry_t;
  using key_t = typename TO::key_t;
  using temp_buf = typename TO::temp_buf;
  using node_guard = typename TO::node_guard;
  using exposed = typename TO::exposed;
  using split_t = typename TO::split_t;
  using TO::dec;
  using TO::expose;
  using TO::flat_fastpath;
  using TO::flatten;
  using TO::from_array_move;
  using TO::inc;
  using TO::is_flat;
  using TO::join;
  using TO::join2;
  using TO::kB;
  using TO::kBlocked;
  using TO::par_gran;
  using TO::lower_bound_idx;
  using TO::node_join;
  using TO::size;
  using TO::split;
  using leaf_reader = typename TO::leaf_reader;
  using leaf_writer = typename TO::leaf_writer;
  using leaf_chunk_writer = typename TO::leaf_chunk_writer;

  /// Base-case granularity kappa of Sec. 8: subproblems whose total size is
  /// at most this are solved by flattening into arrays and merging. The
  /// paper reports kappa = 8B as 6.7x faster than the expose-only algorithm.
  /// Mutable only for the ablation bench (single-threaded setup code).
  static size_t &kappa() {
    static size_t K = kBlocked ? 8 * static_cast<size_t>(kB) : 0;
    return K;
  }

  static const key_t &entry_key(const entry_t &E) { return Entry::get_key(E); }
  static bool key_less(const key_t &A, const key_t &B) {
    return Entry::comp(A, B);
  }

  /// Applies the value-combine \p Op to two entries with equal keys,
  /// returning the combined entry (no-op for sets).
  template <class CombineOp>
  static entry_t combine_entries(entry_t A, const entry_t &B,
                                 const CombineOp &Op) {
    if constexpr (Entry::has_val)
      Entry::get_val(A) = Op(Entry::get_val(A), Entry::get_val(B));
    return A;
  }

  //===--------------------------------------------------------------------===
  // Search (read-only; does not consume references).
  //===--------------------------------------------------------------------===

  /// Returns the entry with key \p K, if present. O(log n + B) work, no
  /// allocation: flat blocks are scanned without unfolding.
  static std::optional<entry_t> find(const node_t *T, const key_t &K) {
    while (T) {
      if (is_flat(T)) {
        const auto *F = static_cast<const typename NL::flat_t *>(T);
        std::optional<entry_t> Out;
        NL::encoder::for_each_while(
            NL::payload(F), T->Size, [&](const entry_t &E) {
              if (key_less(entry_key(E), K))
                return true; // Keep scanning.
              if (!key_less(K, entry_key(E)))
                Out = E;
              return false; // At or past K: stop.
            });
        return Out;
      }
      const auto *R = static_cast<const typename NL::regular_t *>(T);
      if (key_less(K, entry_key(R->E)))
        T = R->Left;
      else if (key_less(entry_key(R->E), K))
        T = R->Right;
      else
        return R->E;
    }
    return std::nullopt;
  }

  static bool contains(const node_t *T, const key_t &K) {
    return find(T, K).has_value();
  }

  /// Number of keys strictly less than \p K.
  static size_t rank(const node_t *T, const key_t &K) {
    size_t Acc = 0;
    while (T) {
      if (is_flat(T)) {
        const auto *F = static_cast<const typename NL::flat_t *>(T);
        NL::encoder::for_each_while(
            NL::payload(F), T->Size, [&](const entry_t &E) {
              if (!key_less(entry_key(E), K))
                return false;
              ++Acc;
              return true;
            });
        return Acc;
      }
      const auto *R = static_cast<const typename NL::regular_t *>(T);
      if (key_less(entry_key(R->E), K)) {
        Acc += size(R->Left) + 1;
        T = R->Right;
      } else {
        T = R->Left;
      }
    }
    return Acc;
  }

  /// The \p I-th smallest entry (0-based). Requires I < size(T).
  static entry_t select(const node_t *T, size_t I) {
    assert(T && I < size(T) && "select index out of range");
    while (true) {
      if (is_flat(T)) {
        const auto *F = static_cast<const typename NL::flat_t *>(T);
        entry_t Out{}; // Always assigned (I < size(T)); {} pacifies GCC.
        size_t J = 0;
        NL::encoder::for_each_while(
            NL::payload(F), T->Size, [&](const entry_t &E) {
              if (J++ == I) {
                Out = E;
                return false;
              }
              return true;
            });
        return Out;
      }
      const auto *R = static_cast<const typename NL::regular_t *>(T);
      size_t Ls = size(R->Left);
      if (I < Ls) {
        T = R->Left;
      } else if (I == Ls) {
        return R->E;
      } else {
        I -= Ls + 1;
        T = R->Right;
      }
    }
  }

  /// Largest entry with key <= K (Previous in Table 1).
  static std::optional<entry_t> previous_or_eq(const node_t *T,
                                               const key_t &K) {
    std::optional<entry_t> Best;
    while (T) {
      if (is_flat(T)) {
        const auto *F = static_cast<const typename NL::flat_t *>(T);
        NL::encoder::for_each_while(
            NL::payload(F), T->Size, [&](const entry_t &E) {
              if (key_less(K, entry_key(E)))
                return false;
              Best = E;
              return true;
            });
        return Best;
      }
      const auto *R = static_cast<const typename NL::regular_t *>(T);
      if (key_less(K, entry_key(R->E))) {
        T = R->Left;
      } else {
        Best = R->E;
        T = R->Right;
      }
    }
    return Best;
  }

  /// Smallest entry with key >= K (Next in Table 1).
  static std::optional<entry_t> next_or_eq(const node_t *T, const key_t &K) {
    std::optional<entry_t> Best;
    while (T) {
      if (is_flat(T)) {
        const auto *F = static_cast<const typename NL::flat_t *>(T);
        NL::encoder::for_each_while(
            NL::payload(F), T->Size, [&](const entry_t &E) {
              if (key_less(entry_key(E), K))
                return true;
              Best = E;
              return false;
            });
        return Best;
      }
      const auto *R = static_cast<const typename NL::regular_t *>(T);
      if (key_less(entry_key(R->E), K)) {
        T = R->Right;
      } else {
        Best = R->E;
        T = R->Left;
      }
    }
    return Best;
  }

  static std::optional<entry_t> first_entry(const node_t *T) {
    if (!T)
      return std::nullopt;
    return select(T, 0);
  }
  static std::optional<entry_t> last_entry(const node_t *T) {
    if (!T)
      return std::nullopt;
    return select(T, size(T) - 1);
  }

  //===--------------------------------------------------------------------===
  // Point updates.
  //===--------------------------------------------------------------------===

  /// Inserts \p E; on key collision the stored value becomes
  /// Op(old, new). O(log n + B) work. Consumes \p T.
  template <class CombineOp = take_right>
  static node_t *insert(node_t *T, entry_t E,
                        const CombineOp &Op = CombineOp()) {
    if (!T)
      return NL::singleton(std::move(E));
    if (is_flat(T)) {
      size_t N = T->Size;
      if (flat_fastpath() && TO::flat_splice_wins()) {
        // Leaf splice: copy-prefix / splice / copy-suffix through the
        // cursor pair — no whole-block materialization for a one-entry
        // change. A 2B+1-entry result chunks into two leaves. The reader
        // adopts T first so a throwing writer constructor releases it.
        leaf_reader C(T);
        leaf_writer W(N + 1);
        while (!C.done() && key_less(C.key(), entry_key(E)))
          W.push(C.take());
        if (!C.done() && !key_less(entry_key(E), C.key()))
          W.push(combine_entries(C.take(), E, Op));
        else
          W.push(std::move(E));
        while (!C.done())
          W.push(C.take());
        return W.finish();
      }
      // Array base case: splice into the decoded block.
      node_guard G(T);
      temp_buf Buf(N + 1);
      entry_t *A = Buf.data();
      flatten(G.release(), A);
      Buf.set_count(N);
      size_t I = lower_bound_idx(A, N, entry_key(E));
      if (I < N && !key_less(entry_key(E), entry_key(A[I]))) {
        A[I] = combine_entries(std::move(A[I]), E, Op);
        return from_array_move(A, N);
      }
      for (size_t J = N; J > I; --J) {
        ::new (static_cast<void *>(A + J)) entry_t(std::move(A[J - 1]));
        A[J - 1].~entry_t();
      }
      ::new (static_cast<void *>(A + I)) entry_t(std::move(E));
      Buf.set_count(N + 1);
      return from_array_move(A, N + 1);
    }
    exposed X = expose(T);
    if (key_less(entry_key(E), entry_key(X.E))) {
      node_guard GR(X.R);
      node_t *L2 = insert(X.L, std::move(E), Op);
      return join(L2, std::move(X.E), GR.release());
    }
    if (key_less(entry_key(X.E), entry_key(E))) {
      node_guard GL(X.L);
      node_t *R2 = insert(X.R, std::move(E), Op);
      return join(GL.release(), std::move(X.E), R2);
    }
    return node_join(X.L, combine_entries(std::move(X.E), E, Op), X.R);
  }

  /// Removes the entry with key \p K if present. Consumes \p T.
  static node_t *remove(node_t *T, const key_t &K) {
    if (!T)
      return nullptr;
    if (is_flat(T)) {
      size_t N = T->Size;
      if (flat_fastpath() && TO::flat_splice_wins()) {
        // Leaf splice: stream everything but the matching entry.
        leaf_reader C(T);
        leaf_writer W(N);
        while (!C.done() && key_less(C.key(), K))
          W.push(C.take());
        if (!C.done() && !key_less(K, C.key()))
          C.skip();
        while (!C.done())
          W.push(C.take());
        return W.finish();
      }
      node_guard G(T);
      temp_buf Buf(N);
      entry_t *A = Buf.data();
      flatten(G.release(), A);
      Buf.set_count(N);
      size_t I = lower_bound_idx(A, N, K);
      if (I == N || key_less(K, entry_key(A[I])))
        return from_array_move(A, N);
      for (size_t J = I; J + 1 < N; ++J)
        A[J] = std::move(A[J + 1]);
      return from_array_move(A, N - 1);
    }
    exposed X = expose(T);
    if (key_less(K, entry_key(X.E))) {
      node_guard GR(X.R);
      node_t *L2 = remove(X.L, K);
      return join(L2, std::move(X.E), GR.release());
    }
    if (key_less(entry_key(X.E), K)) {
      node_guard GL(X.L);
      node_t *R2 = remove(X.R, K);
      return join(GL.release(), std::move(X.E), R2);
    }
    return join2(X.L, X.R);
  }

  //===--------------------------------------------------------------------===
  // Set operations (Fig. 10) with Sec. 8 base cases. Two flat operands
  // merge cursor-to-cursor straight into finished flat nodes (leaf_reader
  // -> leaf_writer, no temp_buf round trip; multi-leaf results are emitted
  // chunk by chunk); every other base-case shape (and every base case when
  // flat_fastpath() is off) flattens into arrays.
  //===--------------------------------------------------------------------===

  /// Merges the sorted arrays A[0..N1) and B[0..N2) into \p Out's raw
  /// storage (entries moved; duplicate keys combined with \p Op, invoked
  /// exactly once) and returns the merged count. Out must have capacity
  /// N1+N2; its count is kept current so unwinding destroys exactly the
  /// constructed prefix.
  template <class CombineOp>
  static size_t merge_move(entry_t *A, size_t N1, entry_t *B, size_t N2,
                           temp_buf &Out, const CombineOp &Op) {
    entry_t *O = Out.data();
    size_t I = 0, J = 0, K = 0;
    while (I < N1 && J < N2) {
      if (key_less(entry_key(A[I]), entry_key(B[J])))
        ::new (static_cast<void *>(O + K++)) entry_t(std::move(A[I++]));
      else if (key_less(entry_key(B[J]), entry_key(A[I])))
        ::new (static_cast<void *>(O + K++)) entry_t(std::move(B[J++]));
      else {
        ::new (static_cast<void *>(O + K++))
            entry_t(combine_entries(std::move(A[I]), B[J], Op));
        ++I;
        ++J;
      }
      Out.set_count(K);
    }
    for (; I < N1; ++I, ++K)
      ::new (static_cast<void *>(O + K)) entry_t(std::move(A[I]));
    for (; J < N2; ++J, ++K)
      ::new (static_cast<void *>(O + K)) entry_t(std::move(B[J]));
    Out.set_count(K);
    return K;
  }

  /// Probe window, in emitted entries, of the run-length-adaptive fallback
  /// inside merge_arrays_streamed: after each window of output the merge
  /// compares emissions against winner-run count and, when runs have
  /// degenerated toward length 1, abandons per-entry streaming for one
  /// decoded-array merge plus one batch encode of the remainder. 0
  /// disables the fallback. Runtime-mutable (single-threaded setup code
  /// only) for the A/B benches and the fallback-trigger tests.
  static constexpr size_t kMergeProbeWindowDefault = 64;
  static size_t &merge_probe_window() {
    static size_t W = kMergeProbeWindowDefault;
    return W;
  }

  /// How many streamed merges have bailed out through the run-length
  /// fallback since process start — up front via probe_runs_degenerate or
  /// mid-merge via the window check (test and bench telemetry; relaxed —
  /// readers quiesce the scheduler before asserting on it). Shim over the
  /// obs registry's "merge.fallbacks" raw cell: every map_ops
  /// instantiation (any Entry/encoder/B) shares the one process-wide
  /// counter, it shows up in obs::export_json(), and obs::reset_all()
  /// zeroes it along with everything else.
  static std::atomic<uint64_t> &merge_fallback_count() {
    static std::atomic<uint64_t> &C =
        obs::registry::get().raw_counter("merge.fallbacks");
    return C;
  }

  /// Zeroes merge_fallback_count() so a telemetry assertion sees only the
  /// episodes it triggers itself, not earlier merges in the same process.
  /// Call while quiescent (no merges in flight), like the reader side.
  static void merge_fallback_count_reset() {
    merge_fallback_count().store(0, std::memory_order_relaxed);
  }

  /// Dry-run of the merge's first probe-window of output: pure compares
  /// over the decoded operand prefixes, counting winner runs, no writer
  /// and no moves. Returns true when the average run length is already
  /// below 2 — dense interleave or heavy duplication — where per-entry
  /// streaming measures slower than one array merge plus one batch
  /// encode, so the caller should skip the streamed path entirely (and
  /// save its cursor setup too). Merges whose prefix looks runs-y but
  /// degenerates later are caught by the same check windowed inside
  /// merge_arrays_streamed.
  static bool probe_runs_degenerate(const entry_t *A, size_t N1,
                                    const entry_t *B, size_t N2) {
    size_t W = merge_probe_window();
    if (W == 0)
      return false;
    // Fully degenerate shapes announce themselves fast, so bail at a
    // quarter window; only marginal shapes pay for the whole probe.
    size_t Check = std::max<size_t>(W / 4, 1);
    size_t I = 0, J = 0, Emit = 0, Runs = 0;
    while (Emit < W && I < N1 && J < N2) {
      // Each gallop stops at the window's edge: a run longer than the
      // remaining window proves the shape non-degenerate all by itself,
      // and scanning past W would bill every probe a full-operand walk on
      // exactly the disjoint/long-run shapes that should pay nothing.
      if (key_less(entry_key(A[I]), entry_key(B[J]))) {
        size_t R = I + 1, Cap = std::min(N1, I + (W - Emit));
        while (R < Cap && key_less(entry_key(A[R]), entry_key(B[J])))
          ++R;
        Emit += R - I;
        I = R;
      } else if (key_less(entry_key(B[J]), entry_key(A[I]))) {
        size_t R = J + 1, Cap = std::min(N2, J + (W - Emit));
        while (R < Cap && key_less(entry_key(B[R]), entry_key(A[I])))
          ++R;
        Emit += R - J;
        J = R;
      } else {
        ++Emit;
        ++I;
        ++J;
      }
      ++Runs;
      if (Emit >= Check) {
        if (Emit < 2 * Runs)
          return true;
        Check = W;
      }
    }
    return Emit < 2 * Runs;
  }

  /// Fused two-array merge+encode into the chunked leaf writer, for
  /// results that can span leaves: each winning entry is byte-coded on the
  /// spot (push_ahead — no staging pass, no encoded_size pass) while the
  /// exact operand remainders guarantee every sealed chunk a legal
  /// successor; once fewer than B+2 entries remain on each side, the rest
  /// merges into a small tail array that finish_tail() closes as the final
  /// one or two leaves. Entries are moved out of \p A and \p B; duplicate
  /// keys invoke \p Op exactly once. Callers gate on
  /// leaf_writer::kCanStream (augmented trees need their entries
  /// materialized; entry-staging schemes build faster from staging).
  template <class CombineOp>
  static node_t *merge_arrays_streamed(entry_t *A, size_t N1, entry_t *B,
                                       size_t N2, const CombineOp &Op) {
    static_assert(TO::leaf_writer::kCanStream,
                  "streamed merges are byte-coded, blocked, unaugmented");
    size_t I = 0, J = 0;
    leaf_chunk_writer W(N1 + N2);
    // Run-length probe state: every ProbeW emitted entries the loop checks
    // the average winner-run length; dense interleave and heavy
    // duplication degrade it toward 1, where the gallop is a per-entry
    // compare/encode chain and the decoded-array path (one merge pass, one
    // batch encode) measures faster. The window is scaled down for small
    // merges so leaf-sized dense merges can still bail out early.
    size_t ProbeW = std::min(merge_probe_window(), (N1 + N2) / 4);
    size_t WinEmit = 0, WinRuns = 0;
    // Galloping batch merge: a pure compare scan finds each run of
    // consecutive winners from one side, then a single push_ahead_n
    // batch-encodes it — compares and encodes run in separate tight
    // loops, and long sorted runs become single batch encodes. Runs
    // are clamped so the push_ahead guarantee (>= B+1 entries follow
    // every seal) always holds against the exact remainders.
    while (I < N1 && J < N2 && (N1 - I >= kB + 2 || N2 - J >= kB + 2)) {
      if (ProbeW != 0 && WinEmit >= ProbeW) {
        if (WinEmit < 2 * WinRuns) {
          // Runs degenerated (average < 2): merge the remainders in one
          // array pass and batch-encode, handing finish_tail its B+1
          // hold-back so every chunk sealed here keeps a legal successor.
          merge_fallback_count().fetch_add(1, std::memory_order_relaxed);
          temp_buf Rest((N1 - I) + (N2 - J));
          size_t K = merge_move(A + I, N1 - I, B + J, N2 - J, Rest, Op);
          if (K > kB + 1) {
            W.push_ahead_n(Rest.data(), K - (kB + 1));
            return W.finish_tail(Rest.data() + (K - (kB + 1)), kB + 1);
          }
          return W.finish_tail(Rest.data(), K);
        }
        WinEmit = WinRuns = 0;
      }
      if (key_less(entry_key(A[I]), entry_key(B[J]))) {
        size_t R = I + 1;
        while (R < N1 && key_less(entry_key(A[R]), entry_key(B[J])))
          ++R;
        if (N2 - J < kB + 2) {
          size_t Lim = N1 - (kB + 2); // Only A's remainder backs the
          if (R > Lim)                // guarantee: keep B+2 of it.
            R = Lim;
          if (R <= I)
            break;
        }
        W.push_ahead_n(A + I, R - I);
        WinEmit += R - I;
        ++WinRuns;
        I = R;
      } else if (key_less(entry_key(B[J]), entry_key(A[I]))) {
        size_t R = J + 1;
        while (R < N2 && key_less(entry_key(B[R]), entry_key(A[I])))
          ++R;
        if (N1 - I < kB + 2) {
          size_t Lim = N2 - (kB + 2);
          if (R > Lim)
            R = Lim;
          if (R <= J)
            break;
        }
        W.push_ahead_n(B + J, R - J);
        WinEmit += R - J;
        ++WinRuns;
        J = R;
      } else {
        W.push_ahead(combine_entries(std::move(A[I++]), B[J], Op));
        ++J;
        ++WinEmit;
        ++WinRuns;
      }
    }
    // A side whose partner is exhausted batch-encodes all but the B+1
    // entries the tail phase keeps for the hold-back.
    if (J == N2 && N1 - I > kB + 1) {
      size_t Take = (N1 - I) - (kB + 1);
      W.push_ahead_n(A + I, Take);
      I += Take;
    }
    if (I == N1 && N2 - J > kB + 1) {
      size_t Take = (N2 - J) - (kB + 1);
      W.push_ahead_n(B + J, Take);
      J += Take;
    }
    // Merge the short remainder (< B+2 per side) into the tail array.
    temp_buf TailB((N1 - I) + (N2 - J));
    size_t K = merge_move(A + I, N1 - I, B + J, N2 - J, TailB, Op);
    return W.finish_tail(TailB.data(), K);
  }

  //===--------------------------------------------------------------------===
  // Array-merge dispatchers: every sorted-array merge base case funnels
  // through one of these, which splits the work at key quantiles
  // (tree_ops::parallel_flat_merge) whenever merge_chunk_count — a pure
  // function of the operand sizes — says the operands carry at least two
  // chunks' worth, and otherwise runs the single-stream chunk merge
  // inline. Chunk boundaries never depend on the worker count, so the
  // output tree is identical at any thread count.
  //===--------------------------------------------------------------------===

  /// One union chunk over sorted entry arrays: the fused stream+encode
  /// when the encoding supports it (with the run-length fallback inside),
  /// else the array merge + build — which is both the production fallback
  /// and the entry-staging build, itself one batch encode.
  template <class CombineOp>
  static node_t *union_chunk(entry_t *A, size_t N1, entry_t *B, size_t N2,
                             const CombineOp &Op) {
    if constexpr (TO::leaf_writer::kCanStream) {
      if (flat_fastpath() && N1 + N2 > 2 * kB &&
          TO::flat_merge_wins(N1 + N2)) {
        if (!probe_runs_degenerate(A, N1, B, N2))
          return merge_arrays_streamed(A, N1, B, N2, Op);
        merge_fallback_count().fetch_add(1, std::memory_order_relaxed);
      }
    }
    temp_buf Out(N1 + N2);
    size_t K = merge_move(A, N1, B, N2, Out, Op);
    return from_array_move(Out.data(), K);
  }

  /// One intersect chunk: matched keys combine, everything else drops.
  template <class CombineOp>
  static node_t *intersect_chunk(entry_t *A, size_t N1, entry_t *B, size_t N2,
                                 const CombineOp &Op) {
    temp_buf Out(std::min(N1, N2));
    entry_t *O = Out.data();
    size_t I = 0, J = 0, K = 0;
    while (I < N1 && J < N2) {
      if (key_less(entry_key(A[I]), entry_key(B[J])))
        ++I;
      else if (key_less(entry_key(B[J]), entry_key(A[I])))
        ++J;
      else {
        ::new (static_cast<void *>(O + K++))
            entry_t(combine_entries(std::move(A[I]), B[J], Op));
        Out.set_count(K);
        ++I;
        ++J;
      }
    }
    return from_array_move(O, K);
  }

  /// One difference chunk: keeps A-entries whose keys are absent from B.
  static node_t *difference_chunk(entry_t *A, size_t N1, entry_t *B,
                                  size_t N2) {
    temp_buf Out(N1);
    entry_t *O = Out.data();
    size_t I = 0, J = 0, K = 0;
    while (I < N1) {
      while (J < N2 && key_less(entry_key(B[J]), entry_key(A[I])))
        ++J;
      if (J < N2 && !key_less(entry_key(A[I]), entry_key(B[J]))) {
        ++I; // Present in B: drop.
        continue;
      }
      ::new (static_cast<void *>(O + K++)) entry_t(std::move(A[I++]));
      Out.set_count(K);
    }
    return from_array_move(O, K);
  }

  /// One multi_delete chunk: keeps entries of B whose keys are absent from
  /// the sorted, distinct key array A.
  static node_t *erase_chunk(entry_t *B, size_t Nt, const key_t *A,
                             size_t N) {
    temp_buf Out(Nt);
    entry_t *O = Out.data();
    size_t I = 0, J = 0, K = 0;
    while (I < Nt) {
      while (J < N && key_less(A[J], entry_key(B[I])))
        ++J;
      if (J < N && !key_less(entry_key(B[I]), A[J])) {
        ++I;
        continue;
      }
      ::new (static_cast<void *>(O + K++)) entry_t(std::move(B[I++]));
      Out.set_count(K);
    }
    return from_array_move(O, K);
  }

  /// Key extractor for entry arrays (parallel_flat_merge's KeyOfB).
  struct key_of_entry_t {
    const key_t &operator()(const entry_t &E) const {
      return Entry::get_key(E);
    }
  };

  /// Union-merge of two sorted entry arrays (moved out) into a tree,
  /// parallel above the quantile-split threshold.
  template <class CombineOp>
  static node_t *merge_arrays(entry_t *A, size_t N1, entry_t *B, size_t N2,
                              const CombineOp &Op) {
    size_t C = TO::merge_chunk_count(N1 + N2, std::max(N1, N2));
    auto Chunk = [&Op](entry_t *CA, size_t Cn1, entry_t *CB, size_t Cn2) {
      return union_chunk(CA, Cn1, CB, Cn2, Op);
    };
    if (C >= 2)
      return TO::parallel_flat_merge(A, N1, B, N2, key_of_entry_t{}, C,
                                     Chunk);
    return Chunk(A, N1, B, N2);
  }

  /// Intersection of two sorted entry arrays (matches moved out), parallel
  /// above the quantile-split threshold.
  template <class CombineOp>
  static node_t *intersect_arrays(entry_t *A, size_t N1, entry_t *B,
                                  size_t N2, const CombineOp &Op) {
    size_t C = TO::merge_chunk_count(N1 + N2, std::max(N1, N2));
    auto Chunk = [&Op](entry_t *CA, size_t Cn1, entry_t *CB, size_t Cn2) {
      return intersect_chunk(CA, Cn1, CB, Cn2, Op);
    };
    if (C >= 2)
      return TO::parallel_flat_merge(A, N1, B, N2, key_of_entry_t{}, C,
                                     Chunk);
    return Chunk(A, N1, B, N2);
  }

  /// Difference of two sorted entry arrays (survivors moved out), parallel
  /// above the quantile-split threshold.
  static node_t *difference_arrays(entry_t *A, size_t N1, entry_t *B,
                                   size_t N2) {
    size_t C = TO::merge_chunk_count(N1 + N2, std::max(N1, N2));
    if (C >= 2)
      return TO::parallel_flat_merge(A, N1, B, N2, key_of_entry_t{}, C,
                                     &map_ops::difference_chunk);
    return difference_chunk(A, N1, B, N2);
  }

  /// Erases the sorted, distinct keys K[0..N) from the sorted entry array
  /// B (survivors moved out), parallel above the quantile-split threshold.
  static node_t *erase_arrays(entry_t *B, size_t Nt, const key_t *K,
                              size_t N) {
    size_t C = TO::merge_chunk_count(Nt + N, std::max(Nt, N));
    auto KeyOfKey = [](const key_t &Key) -> const key_t & { return Key; };
    auto Chunk = [](entry_t *CB, size_t Cn, const key_t *CK, size_t Cm) {
      return erase_chunk(CB, Cn, CK, Cm);
    };
    if (C >= 2)
      return TO::parallel_flat_merge(B, Nt, K, N, KeyOfKey, C, Chunk);
    return Chunk(B, Nt, K, N);
  }

  /// Merges two encoded blocks directly. Results that fit one leaf merge
  /// cursor-to-cursor (each entry decoded once on its way into the output
  /// stream; uniquely owned inputs moved out, never copied); wider results
  /// flatten both blocks and run the tight array merge above — batch
  /// decode and batch encode pipeline far better than a per-entry
  /// read/compare/encode interleave. Duplicate keys invoke \p Op exactly
  /// once either way.
  template <class CombineOp>
  static node_t *union_flat(node_t *T1, node_t *T2, const CombineOp &Op) {
    size_t N1 = size(T1), N2 = size(T2);
    if constexpr (TO::leaf_writer::kCanStream) {
      if (N1 + N2 > 2 * kB) {
        // Multi-leaf byte-coded result: batch-decode both blocks, then
        // run the fused merge+encode (batch pipelines beat a per-entry
        // decode/compare/encode interleave, whose serial dependency chain
        // measured ~1.5x slower here). Entry-staging encodings skip this
        // and stream interleaved below — their staging array already is
        // the output.
        node_guard G1(T1), G2(T2);
        temp_buf B1(N1), B2(N2);
        flatten(G1.release(), B1.data());
        B1.set_count(N1);
        flatten(G2.release(), B2.data());
        B2.set_count(N2);
        return merge_arrays(B1.data(), N1, B2.data(), N2, Op);
      }
    }
    leaf_reader A(T1), B(T2);
    leaf_writer W(N1 + N2);
    while (!A.done() && !B.done()) {
      if (key_less(A.key(), B.key())) {
        W.push(A.take());
      } else if (key_less(B.key(), A.key())) {
        W.push(B.take());
      } else {
        W.push(combine_entries(A.take(), B.peek(), Op));
        B.skip();
      }
    }
    while (!A.done())
      W.push(A.take());
    while (!B.done())
      W.push(B.take());
    return W.finish();
  }

  template <class CombineOp>
  static node_t *intersect_flat(node_t *T1, node_t *T2, const CombineOp &Op) {
    leaf_reader A(T1), B(T2);
    leaf_writer W(std::min(A.remaining(), B.remaining()));
    while (!A.done() && !B.done()) {
      if (key_less(A.key(), B.key())) {
        A.skip();
      } else if (key_less(B.key(), A.key())) {
        B.skip();
      } else {
        W.push(combine_entries(A.take(), B.peek(), Op));
        B.skip();
      }
    }
    return W.finish();
  }

  static node_t *difference_flat(node_t *T1, node_t *T2) {
    leaf_reader A(T1), B(T2);
    leaf_writer W(A.remaining());
    while (!A.done() && !B.done()) {
      if (key_less(A.key(), B.key())) {
        W.push(A.take());
      } else if (key_less(B.key(), A.key())) {
        B.skip();
      } else {
        A.skip();
        B.skip();
      }
    }
    while (!A.done())
      W.push(A.take());
    return W.finish();
  }

  template <class CombineOp>
  static node_t *union_base(node_t *T1, node_t *T2, const CombineOp &Op) {
    size_t N1 = size(T1), N2 = size(T2);
    if (TO::merge_chunk_count(N1 + N2, std::max(N1, N2)) < 2 &&
        flat_fastpath() && is_flat(T1) && is_flat(T2) &&
        TO::flat_merge_wins(N1 + N2))
      return union_flat(T1, T2, Op);
    node_guard G1(T1), G2(T2);
    temp_buf B1(N1), B2(N2);
    flatten(G1.release(), B1.data());
    B1.set_count(N1);
    flatten(G2.release(), B2.data());
    B2.set_count(N2);
    return merge_arrays(B1.data(), N1, B2.data(), N2, Op);
  }

  /// union of two owned trees; values of duplicate keys combine as
  /// Op(value in T1, value in T2). O(m log(n/m) + min(mB, n)) work
  /// (Thms. 6.3/6.7).
  template <class CombineOp = take_right>
  static node_t *union_(node_t *T1, node_t *T2,
                        const CombineOp &Op = CombineOp()) {
    if (!T1)
      return T2;
    if (!T2)
      return T1;
    if (size(T1) + size(T2) <= kappa())
      return union_base(T1, T2, Op);
    // Guard T1 across expose (which only consumes T2), then hold the four
    // subtree pieces until both recursive branches own them; par_do_if
    // always runs both branches, so a throwing side leaves its sibling's
    // result for the catch to release.
    node_guard G1(T1);
    exposed X = expose(T2);
    node_guard GXL(X.L), GXR(X.R);
    split_t S = split(G1.release(), entry_key(X.E));
    node_guard GSL(S.L), GSR(S.R);
    entry_t Mid = S.E ? combine_entries(std::move(*S.E), X.E, Op)
                      : std::move(X.E);
    node_t *SL = GSL.release(), *XL = GXL.release();
    node_t *SR = GSR.release(), *XR = GXR.release();
    node_t *L = nullptr, *R = nullptr;
    try {
      par::par_do_if(
          size(SL) + size(XL) >= par_gran(),
          [&] { L = union_(SL, XL, Op); }, [&] { R = union_(SR, XR, Op); });
    } catch (...) {
      dec(L);
      dec(R);
      throw;
    }
    return join(L, std::move(Mid), R);
  }

  template <class CombineOp>
  static node_t *intersect_base(node_t *T1, node_t *T2, const CombineOp &Op) {
    size_t N1 = size(T1), N2 = size(T2);
    if (TO::merge_chunk_count(N1 + N2, std::max(N1, N2)) < 2 &&
        flat_fastpath() && is_flat(T1) && is_flat(T2) &&
        TO::flat_splice_wins())
      return intersect_flat(T1, T2, Op);
    node_guard G1(T1), G2(T2);
    temp_buf B1(N1), B2(N2);
    flatten(G1.release(), B1.data());
    B1.set_count(N1);
    flatten(G2.release(), B2.data());
    B2.set_count(N2);
    return intersect_arrays(B1.data(), N1, B2.data(), N2, Op);
  }

  /// Intersection of two owned trees; kept values combine as
  /// Op(value in T1, value in T2).
  template <class CombineOp = take_right>
  static node_t *intersect(node_t *T1, node_t *T2,
                           const CombineOp &Op = CombineOp()) {
    if (!T1 || !T2) {
      dec(T1);
      dec(T2);
      return nullptr;
    }
    if (size(T1) + size(T2) <= kappa())
      return intersect_base(T1, T2, Op);
    node_guard G1(T1);
    exposed X = expose(T2);
    node_guard GXL(X.L), GXR(X.R);
    split_t S = split(G1.release(), entry_key(X.E));
    node_guard GSL(S.L), GSR(S.R);
    std::optional<entry_t> Mid =
        S.E ? std::optional<entry_t>(
                  combine_entries(std::move(*S.E), X.E, Op))
            : std::nullopt;
    node_t *SL = GSL.release(), *XL = GXL.release();
    node_t *SR = GSR.release(), *XR = GXR.release();
    node_t *L = nullptr, *R = nullptr;
    try {
      par::par_do_if(
          size(SL) + size(XL) >= par_gran(),
          [&] { L = intersect(SL, XL, Op); },
          [&] { R = intersect(SR, XR, Op); });
    } catch (...) {
      dec(L);
      dec(R);
      throw;
    }
    if (Mid)
      return join(L, std::move(*Mid), R);
    return join2(L, R);
  }

  static node_t *difference_base(node_t *T1, node_t *T2) {
    size_t N1 = size(T1), N2 = size(T2);
    if (TO::merge_chunk_count(N1 + N2, std::max(N1, N2)) < 2 &&
        flat_fastpath() && is_flat(T1) && is_flat(T2) &&
        TO::flat_splice_wins())
      return difference_flat(T1, T2);
    node_guard G1(T1), G2(T2);
    temp_buf B1(N1), B2(N2);
    flatten(G1.release(), B1.data());
    B1.set_count(N1);
    flatten(G2.release(), B2.data());
    B2.set_count(N2);
    return difference_arrays(B1.data(), N1, B2.data(), N2);
  }

  /// Difference T1 \ T2 of two owned trees.
  static node_t *difference(node_t *T1, node_t *T2) {
    if (!T1) {
      dec(T2);
      return nullptr;
    }
    if (!T2)
      return T1;
    if (size(T1) + size(T2) <= kappa())
      return difference_base(T1, T2);
    node_guard G1(T1);
    exposed X = expose(T2);
    node_guard GXL(X.L), GXR(X.R);
    split_t S = split(G1.release(), entry_key(X.E));
    node_t *SL = S.L, *XL = GXL.release();
    node_t *SR = S.R, *XR = GXR.release();
    node_t *L = nullptr, *R = nullptr;
    try {
      par::par_do_if(
          size(SL) + size(XL) >= par_gran(),
          [&] { L = difference(SL, XL); }, [&] { R = difference(SR, XR); });
    } catch (...) {
      dec(L);
      dec(R);
      throw;
    }
    return join2(L, R);
  }

  //===--------------------------------------------------------------------===
  // multi_insert / multi_delete (Fig. 8).
  //===--------------------------------------------------------------------===

  /// Inserts sorted, key-distinct entries A[0..N) (moved out) into owned
  /// \p T. O(m log(n/m + 1) + min(mB, n)) work.
  template <class CombineOp = take_right>
  static node_t *multi_insert_sorted(node_t *T, entry_t *A, size_t N,
                                     const CombineOp &Op = CombineOp()) {
    if (!T)
      return from_array_move(A, N);
    if (N == 0)
      return T;
    if (size(T) + N <= kappa() || is_flat(T)) {
      size_t Nt = size(T);
      // The same break-even gates every base case now: total operand
      // entries (the batch counts one per element — the old gate priced
      // it in raw bytes, which meant a different threshold here than on
      // the set ops).
      if (flat_fastpath() && is_flat(T) && TO::flat_merge_wins(Nt + N) &&
          Nt + N <= 2 * kB) {
        // Leaf splice: stream the block against the sorted batch (result
        // fits one leaf; anything wider goes through merge_arrays below).
        leaf_reader C(T);
        leaf_writer W(Nt + N);
        size_t J = 0;
        while (!C.done() && J < N) {
          if (key_less(C.key(), entry_key(A[J]))) {
            W.push(C.take());
          } else if (key_less(entry_key(A[J]), C.key())) {
            W.push(std::move(A[J++]));
          } else {
            W.push(combine_entries(C.take(), A[J], Op));
            ++J;
          }
        }
        while (!C.done())
          W.push(C.take());
        for (; J < N; ++J)
          W.push(std::move(A[J]));
        return W.finish();
      }
      // Flatten + merge base case (also folds oversized leaves
      // correctly). merge_arrays picks the fused stream+encode, the
      // quantile-split parallel driver, or the plain array merge — so a
      // large batch against a flat root no longer encodes on one worker.
      node_guard G(T);
      temp_buf Bt(Nt);
      flatten(G.release(), Bt.data());
      Bt.set_count(Nt);
      return merge_arrays(Bt.data(), Nt, A, N, Op);
    }
    exposed X = expose(T);
    size_t S = lower_bound_idx(A, N, entry_key(X.E));
    bool Dup = S < N && !key_less(entry_key(X.E), entry_key(A[S]));
    node_guard GL(X.L), GR(X.R);
    entry_t Mid = Dup ? combine_entries(std::move(X.E), A[S], Op)
                      : std::move(X.E);
    node_t *XL = GL.release(), *XR = GR.release();
    node_t *L = nullptr, *R = nullptr;
    try {
      par::par_do_if(
          size(XL) + size(XR) + N >= par_gran(),
          [&] { L = multi_insert_sorted(XL, A, S, Op); },
          [&] {
            R = multi_insert_sorted(XR, A + S + Dup, N - S - Dup, Op);
          });
    } catch (...) {
      dec(L);
      dec(R);
      throw;
    }
    return join(L, std::move(Mid), R);
  }

  /// Deletes the sorted, distinct keys A[0..N) from owned \p T.
  static node_t *multi_delete_sorted(node_t *T, const key_t *A, size_t N) {
    if (!T || N == 0)
      return T;
    if (is_flat(T) || size(T) <= kappa()) {
      size_t Nt = size(T);
      if (TO::merge_chunk_count(Nt + N, std::max(Nt, N)) < 2 &&
          flat_fastpath() && is_flat(T) && TO::flat_merge_wins(Nt + N)) {
        // Leaf splice: keys in A are sorted and distinct, so each can match
        // at most one block entry.
        leaf_reader C(T);
        leaf_writer W(Nt);
        size_t J = 0;
        while (!C.done()) {
          while (J < N && key_less(A[J], C.key()))
            ++J;
          if (J < N && !key_less(C.key(), A[J])) {
            C.skip();
            ++J;
            continue;
          }
          W.push(C.take());
        }
        return W.finish();
      }
      // Flatten + erase base case; erase_arrays splits a large delete
      // batch against a flat root into parallel quantile chunks.
      node_guard G(T);
      temp_buf Bt(Nt);
      flatten(G.release(), Bt.data());
      Bt.set_count(Nt);
      return erase_arrays(Bt.data(), Nt, A, N);
    }
    exposed X = expose(T);
    size_t Lo = 0, Hi = N;
    while (Lo < Hi) { // Keys < root key.
      size_t Mid = Lo + (Hi - Lo) / 2;
      if (key_less(A[Mid], entry_key(X.E)))
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    size_t S = Lo;
    bool Hit = S < N && !key_less(entry_key(X.E), A[S]);
    node_t *L = nullptr, *R = nullptr;
    try {
      par::par_do_if(
          size(X.L) + size(X.R) >= par_gran(),
          [&] { L = multi_delete_sorted(X.L, A, S); },
          [&] { R = multi_delete_sorted(X.R, A + S + Hit, N - S - Hit); });
    } catch (...) {
      dec(L);
      dec(R);
      throw;
    }
    if (Hit)
      return join2(L, R);
    return join(L, std::move(X.E), R);
  }

  //===--------------------------------------------------------------------===
  // Bulk traversals.
  //===--------------------------------------------------------------------===

  /// Keeps entries satisfying \p P. Consumes \p T.
  template <class Pred> static node_t *filter(node_t *T, const Pred &P) {
    if (!T)
      return nullptr;
    if (is_flat(T)) {
      size_t N = T->Size;
      if (flat_fastpath() && TO::flat_splice_wins()) {
        // Stream the block through the cursor pair: each kept entry is
        // decoded once on its way out, nothing is materialized for the
        // dropped ones (|result| <= |T| <= 2B always fits one leaf).
        leaf_reader C(T);
        leaf_writer W(N);
        while (!C.done()) {
          if (P(C.peek()))
            W.push(C.take());
          else
            C.skip();
        }
        return W.finish();
      }
      node_guard G(T);
      temp_buf Buf(N), Out(N);
      flatten(G.release(), Buf.data());
      Buf.set_count(N);
      size_t K = 0;
      for (size_t I = 0; I < N; ++I) {
        if (!P(Buf.data()[I]))
          continue;
        ::new (static_cast<void *>(Out.data() + K++))
            entry_t(std::move(Buf.data()[I]));
        Out.set_count(K);
      }
      return from_array_move(Out.data(), K);
    }
    exposed X = expose(T);
    node_t *L = nullptr, *R = nullptr;
    try {
      par::par_do_if(
          size(X.L) + size(X.R) >= par_gran(), [&] { L = filter(X.L, P); },
          [&] { R = filter(X.R, P); });
    } catch (...) {
      dec(L);
      dec(R);
      throw;
    }
    if (P(X.E))
      return join(L, std::move(X.E), R);
    return join2(L, R);
  }

  /// Transforms every value in place structurally (same entry type),
  /// preserving keys. Consumes \p T.
  template <class F> static node_t *map_values(node_t *T, const F &f) {
    static_assert(Entry::has_val, "map_values requires a map entry");
    if (!T)
      return nullptr;
    if (is_flat(T)) {
      size_t N = T->Size;
      if (flat_fastpath() && TO::flat_splice_wins()) {
        // Keys pass through untouched (still strictly increasing, as the
        // byte-coded write cursors require); only values are rewritten.
        leaf_reader C(T);
        leaf_writer W(N);
        while (!C.done()) {
          entry_t E = C.take();
          Entry::get_val(E) = f(E);
          W.push(std::move(E));
        }
        return W.finish();
      }
      node_guard G(T);
      temp_buf Buf(N);
      flatten(G.release(), Buf.data());
      Buf.set_count(N);
      for (size_t I = 0; I < N; ++I)
        Entry::get_val(Buf.data()[I]) = f(Buf.data()[I]);
      return from_array_move(Buf.data(), N);
    }
    exposed X = expose(T);
    node_t *L = nullptr, *R = nullptr;
    try {
      par::par_do_if(
          size(X.L) + size(X.R) >= par_gran(),
          [&] { L = map_values(X.L, f); }, [&] { R = map_values(X.R, f); });
    } catch (...) {
      dec(L);
      dec(R);
      throw;
    }
    Entry::get_val(X.E) = f(X.E);
    return node_join(L, std::move(X.E), R);
  }

  /// Reduces f(entry) over the tree with the associative \p Combine
  /// (read-only). O(n) work, O(log n) span.
  template <class F, class T2, class Combine>
  static T2 map_reduce(const node_t *T, const F &f, T2 Identity,
                       const Combine &Cmb) {
    if (!T)
      return Identity;
    if (is_flat(T)) {
      const auto *Fl = static_cast<const typename NL::flat_t *>(T);
      T2 Acc = Identity;
      NL::encoder::for_each_while(NL::payload(Fl), T->Size,
                                  [&](const entry_t &E) {
                                    Acc = Cmb(Acc, f(E));
                                    return true;
                                  });
      return Acc;
    }
    const auto *R = static_cast<const typename NL::regular_t *>(T);
    T2 A = Identity, B = Identity;
    par::par_do_if(
        T->Size >= par_gran(),
        [&] { A = map_reduce(R->Left, f, Identity, Cmb); },
        [&] { B = map_reduce(R->Right, f, Identity, Cmb); });
    return Cmb(Cmb(A, f(R->E)), B);
  }

  /// In-order sequential visit (read-only). \p f returns false to stop
  /// early; returns false if stopped.
  template <class F> static bool foreach_seq(const node_t *T, const F &f) {
    if (!T)
      return true;
    if (is_flat(T)) {
      const auto *Fl = static_cast<const typename NL::flat_t *>(T);
      return NL::encoder::for_each_while(NL::payload(Fl), T->Size, f);
    }
    const auto *R = static_cast<const typename NL::regular_t *>(T);
    return foreach_seq(R->Left, f) && f(R->E) && foreach_seq(R->Right, f);
  }

  /// Parallel indexed visit: f(I, E) where I is the in-order index
  /// (read-only).
  template <class F>
  static void foreach_index(const node_t *T, const F &f, size_t Offset = 0) {
    if (!T)
      return;
    if (is_flat(T)) {
      const auto *Fl = static_cast<const typename NL::flat_t *>(T);
      size_t I = Offset;
      NL::encoder::for_each_while(NL::payload(Fl), T->Size,
                                  [&](const entry_t &E) {
                                    f(I++, E);
                                    return true;
                                  });
      return;
    }
    const auto *R = static_cast<const typename NL::regular_t *>(T);
    size_t Ls = size(R->Left);
    f(Offset + Ls, R->E);
    par::par_do_if(
        T->Size >= par_gran(), [&] { foreach_index(R->Left, f, Offset); },
        [&] { foreach_index(R->Right, f, Offset + Ls + 1); });
  }

  //===--------------------------------------------------------------------===
  // Range extraction.
  //===--------------------------------------------------------------------===

  /// Tree of all entries with KL <= key <= KR. Consumes \p T.
  /// O(log n + B) work (Table 1).
  static node_t *range(node_t *T, const key_t &KL, const key_t &KR) {
    split_t S1 = split(T, KL);
    dec(S1.L);
    split_t S2 = split(S1.R, KR);
    dec(S2.R);
    node_t *Out = S2.L;
    if (S2.E)
      Out = join(Out, std::move(*S2.E), nullptr);
    if (S1.E)
      Out = join(nullptr, std::move(*S1.E), Out);
    return Out;
  }

  //===--------------------------------------------------------------------===
  // Build from unsorted input.
  //===--------------------------------------------------------------------===

  /// Sorts A by key and combines duplicate keys left-to-right with \p Op;
  /// returns the deduplicated length.
  template <class CombineOp = take_right>
  static size_t sort_and_combine(entry_t *A, size_t N,
                                 const CombineOp &Op = CombineOp()) {
    par::sort(A, N, [](const entry_t &X, const entry_t &Y) {
      return key_less(entry_key(X), entry_key(Y));
    });
    if (N == 0)
      return 0;
    // Find runs of equal keys in parallel, combine each run left-to-right.
    std::vector<size_t> Starts(N);
    size_t K = par::pack_index(
        N,
        [&](size_t I) {
          return I == 0 || key_less(entry_key(A[I - 1]), entry_key(A[I]));
        },
        Starts.data());
    std::vector<entry_t> Out(K);
    par::parallel_for(0, K, [&](size_t R) {
      size_t Lo = Starts[R], Hi = R + 1 < K ? Starts[R + 1] : N;
      entry_t Acc = std::move(A[Lo]);
      for (size_t I = Lo + 1; I < Hi; ++I)
        Acc = combine_entries(std::move(Acc), A[I], Op);
      Out[R] = std::move(Acc);
    });
    par::parallel_for(0, K, [&](size_t I) { A[I] = std::move(Out[I]); });
    return K;
  }

  /// Builds a tree from \p N unsorted entries with possible duplicate keys.
  /// O(n log n) work (Table 1).
  template <class CombineOp = take_right>
  static node_t *build(const entry_t *A, size_t N,
                       const CombineOp &Op = CombineOp()) {
    std::vector<entry_t> V(N);
    par::parallel_for(0, N, [&](size_t I) { V[I] = A[I]; });
    size_t K = sort_and_combine(V.data(), N, Op);
    return from_array_move(V.data(), K);
  }

  /// Builds from entries the caller relinquishes (no copy).
  template <class CombineOp = take_right>
  static node_t *build_move(entry_t *A, size_t N,
                            const CombineOp &Op = CombineOp()) {
    size_t K = sort_and_combine(A, N, Op);
    return from_array_move(A, K);
  }
};

} // namespace cpam

#endif // CPAM_CORE_MAP_OPS_H
