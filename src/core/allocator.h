//===- allocator.h - Node allocation with live-byte accounting ------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation shim for tree nodes. Every allocation and free updates
/// live-object/live-byte counters, which the tests use to prove the
/// reference-counting collector reclaims everything, and which the space
/// benchmarks cross-check against per-structure traversals. Counters are
/// sharded per thread: a single shared atomic would serialize all 24+
/// workers on two cache lines during tree construction.
///
/// Storage comes from the size-class pool allocator (pool_allocator.h) by
/// default; build with CPAM_POOL_ALLOC=0 (-DCPAM_POOL_ALLOC=OFF) for direct
/// `operator new` per node, the mode sanitizer builds use so ASan redzones
/// every node boundary. Accounting is identical in both modes: the pool is
/// only a storage cache, never an owner of liveness.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_CORE_ALLOCATOR_H
#define CPAM_CORE_ALLOCATOR_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

#ifndef CPAM_POOL_ALLOC
#define CPAM_POOL_ALLOC 1
#endif

#if CPAM_POOL_ALLOC
#include "src/core/pool_allocator.h"
#endif

#include "src/util/failpoint.h"

namespace cpam {

/// True when node storage is served by the pooled allocator.
constexpr bool pool_enabled() { return CPAM_POOL_ALLOC != 0; }

/// Sharded allocation statistics for tree nodes.
struct alloc_stats {
  static constexpr int kShards = 64;
  struct alignas(64) Shard {
    std::atomic<int64_t> Objects{0};
    std::atomic<int64_t> Bytes{0};
  };

  static Shard *shards() {
    static Shard S[kShards];
    return S;
  }

  static Shard &my_shard() {
    static std::atomic<unsigned> Next{0};
    thread_local unsigned Mine = Next.fetch_add(1) % kShards;
    return shards()[Mine];
  }

  /// Total live objects across all threads (exact when quiescent).
  static int64_t live_object_count() {
    int64_t N = 0;
    for (int I = 0; I < kShards; ++I)
      N += shards()[I].Objects.load(std::memory_order_relaxed);
    return N;
  }

  static int64_t live_byte_count() {
    int64_t N = 0;
    for (int I = 0; I < kShards; ++I)
      N += shards()[I].Bytes.load(std::memory_order_relaxed);
    return N;
  }
};

/// Allocates \p Bytes of node storage (16-byte aligned). Throws
/// std::bad_alloc on exhaustion — or when the "alloc.node" failpoint fires
/// (the chaos suites' injection site, covering both pool modes). Accounting
/// happens only after the storage is secured, so a throw from any layer
/// (failpoint, pool refill, heap) leaves the live counters untouched.
inline void *tree_alloc(size_t Bytes) {
  if (CPAM_FAILPOINT_ACTIVE("alloc.node"))
    throw std::bad_alloc();
#if CPAM_POOL_ALLOC
  void *P = pool_allocator::allocate(Bytes);
#else
  void *P = ::operator new(Bytes, std::align_val_t(16));
#endif
  alloc_stats::Shard &S = alloc_stats::my_shard();
  S.Objects.fetch_add(1, std::memory_order_relaxed);
  S.Bytes.fetch_add(static_cast<int64_t>(Bytes), std::memory_order_relaxed);
  return P;
}

/// Frees node storage previously obtained from tree_alloc.
inline void tree_free(void *P, size_t Bytes) {
  alloc_stats::Shard &S = alloc_stats::my_shard();
  S.Objects.fetch_sub(1, std::memory_order_relaxed);
  S.Bytes.fetch_sub(static_cast<int64_t>(Bytes), std::memory_order_relaxed);
#if CPAM_POOL_ALLOC
  pool_allocator::deallocate(P, Bytes);
#else
  ::operator delete(P, std::align_val_t(16));
#endif
}

} // namespace cpam

#endif // CPAM_CORE_ALLOCATOR_H
