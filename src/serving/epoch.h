//===- epoch.h - Epoch-based reclamation for snapshot readers --------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Epoch-based reclamation (EBR) for the versioned snapshot store
/// (src/serving/version_chain.h). The protocol guards exactly one narrow
/// window: the interval between a reader loading the current version
/// pointer and finishing its O(1) tree-root copy (an atomic refcount
/// increment in node.h). Once the copy exists, the tree itself is kept
/// alive by reference counts and the reader needs no further protection —
/// so pins last nanoseconds, not query lifetimes.
///
/// Scheme (per-reader epoch records, as in Fraser's EBR / Aspen's version
/// GC): a global epoch counter only the writer advances, and a fixed table
/// of reader slots. A reader *pins* by claiming a free slot with a CAS
/// from kIdle to the current global epoch, and *unpins* by storing kIdle
/// back. The writer retires a version by stamping it with the
/// pre-advance epoch R (epoch_manager::advance() returns R and bumps the
/// counter), and may free it once every occupied slot holds an epoch
/// strictly greater than R.
///
/// Safety argument (all epoch/slot/version-pointer accesses are seq_cst,
/// so one total order S covers them): a reader that obtains retired
/// version V loaded the version pointer before the writer's swap in S,
/// hence its pin precedes the swap, hence the epoch e it pinned satisfies
/// e <= R (the global counter is monotone and R is read after the swap).
/// That slot blocks the free until the reader unpins. Conversely a slot
/// the writer observes idle or > R belongs to a reader whose next load of
/// the version pointer follows the swap in S and therefore cannot return
/// V. The unpin store is release and the writer's slot scan is acquire,
/// so every plain read the reader made of V happens-before the free —
/// this is the edge ThreadSanitizer checks (no standalone fences, which
/// TSan cannot model).
///
/// Threads are not registered up front: any thread (pool worker or
/// foreign std::thread) may pin; the slot search starts from a hash of
/// par::thread_slot() so re-pinning threads land on their previous slot
/// with one CAS. Pins may nest trivially (each pin claims its own slot).
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_SERVING_EPOCH_H
#define CPAM_SERVING_EPOCH_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <thread>

#include "src/obs/metrics.h"
#include "src/parallel/random.h"
#include "src/parallel/scheduler.h"

namespace cpam {
namespace serving {

class epoch_manager {
public:
  /// Capacity of the reader-slot table. Pins outlive only the pointer-load
  /// + root-copy window, so concurrency is bounded by thread count, not
  /// outstanding snapshots; 512 slots of one cache line each (32 KiB)
  /// comfortably covers heavy oversubscription.
  static constexpr size_t kMaxReaders = 512;
  /// Slot value meaning "no reader here".
  static constexpr uint64_t kIdle = ~uint64_t{0};

  epoch_manager() = default;
  epoch_manager(const epoch_manager &) = delete;
  epoch_manager &operator=(const epoch_manager &) = delete;

  /// Pins the calling thread at the current global epoch. Returns the
  /// claimed slot index, to be passed to unpin(). Never fails: if all
  /// slots are busy (pathological oversubscription) it yields and
  /// retries. The stored epoch may lag the global counter by the time
  /// the CAS lands; that is conservative (it can only delay frees).
  size_t pin() {
    size_t Start = static_cast<size_t>(
        hash64(static_cast<uint64_t>(par::thread_slot())) % kMaxReaders);
    for (;;) {
      for (size_t I = 0; I < kMaxReaders; ++I) {
        size_t S = (Start + I) % kMaxReaders;
        uint64_t Idle = kIdle;
        uint64_t E = Global.load(std::memory_order_seq_cst);
        if (Slots[S].E.compare_exchange_strong(Idle, E,
                                               std::memory_order_seq_cst)) {
          // Wall-clock stamp for the stall watchdog. Relaxed: it feeds
          // telemetry only, and the kIdle filter in stalled_readers()
          // screens out released slots with stale stamps. Compiled out
          // with the rest of the metrics layer (CPAM_METRICS=0), where
          // stalled_readers() then reports 0 via the P != 0 filter.
          if (CPAM_METRICS)
            Slots[S].PinNs.store(obs::now_ns(), std::memory_order_relaxed);
          Pins.fetch_add(1, std::memory_order_relaxed);
          return S;
        }
        Conflicts.fetch_add(1, std::memory_order_relaxed);
      }
      // All 512 slots busy: pathological oversubscription. Count the full
      // failed sweep (the documented "never fails, only waits" fallback)
      // and retry after yielding.
      Exhausted.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  }

  /// Releases a slot claimed by pin(). Release order publishes every read
  /// the reader performed under the pin to the writer's slot scan.
  void unpin(size_t Slot) {
    assert(Slot < kMaxReaders && "bad epoch slot");
    assert(Slots[Slot].E.load(std::memory_order_relaxed) != kIdle &&
           "unpin of an idle slot");
    Slots[Slot].E.store(kIdle, std::memory_order_release);
  }

  /// RAII pin for the common reader path.
  class guard {
  public:
    explicit guard(epoch_manager &M) : M(M), Slot(M.pin()) {}
    guard(const guard &) = delete;
    guard &operator=(const guard &) = delete;
    ~guard() { M.unpin(Slot); }

  private:
    epoch_manager &M;
    size_t Slot;
  };

  /// Current global epoch (starts at 1 so retire stamps are nonzero).
  uint64_t current() const { return Global.load(std::memory_order_seq_cst); }

  /// Writer-side: advances the global epoch and returns the *pre-advance*
  /// value — the retire stamp for a version unpublished just before the
  /// call (every reader still able to reach it is pinned at an epoch <=
  /// this value).
  uint64_t advance() { return Global.fetch_add(1, std::memory_order_seq_cst); }

  /// Smallest epoch any pinned reader holds, or the current global epoch
  /// when no reader is pinned. A version retired with stamp R is
  /// reclaimable iff R < min_active(): acquire loads on the slot scan pair
  /// with the readers' unpin stores.
  uint64_t min_active() const {
    uint64_t Min = Global.load(std::memory_order_seq_cst);
    for (size_t S = 0; S < kMaxReaders; ++S) {
      uint64_t E = Slots[S].E.load(std::memory_order_seq_cst);
      if (E != kIdle && E < Min)
        Min = E;
    }
    return Min;
  }

  /// True when some reader is currently pinned (telemetry/tests; racy by
  /// nature).
  bool any_pinned() const {
    for (size_t S = 0; S < kMaxReaders; ++S)
      if (Slots[S].E.load(std::memory_order_acquire) != kIdle)
        return true;
    return false;
  }

  /// Stall watchdog: number of slots currently pinned for longer than
  /// \p AgeNs nanoseconds. A healthy pin lasts nanoseconds (pointer load +
  /// root-copy), so anything visible here is a reader stuck inside the
  /// guarded window — a wedged thread, a debugger stop, or a misuse that
  /// holds a guard across real work — and it blocks reclamation for every
  /// version retired since. Racy by nature (slots may unpin mid-scan);
  /// use as telemetry, not as a synchronization primitive.
  size_t stalled_readers(uint64_t AgeNs) const {
    uint64_t Now = obs::now_ns();
    size_t N = 0;
    for (size_t S = 0; S < kMaxReaders; ++S) {
      if (Slots[S].E.load(std::memory_order_seq_cst) == kIdle)
        continue;
      uint64_t P = Slots[S].PinNs.load(std::memory_order_relaxed);
      if (P != 0 && Now > P && Now - P > AgeNs)
        ++N;
    }
    return N;
  }

  struct stats_t {
    uint64_t Pins = 0;          ///< Successful slot claims.
    uint64_t SlotConflicts = 0; ///< CAS attempts that found a busy slot.
    uint64_t SlotExhausted = 0; ///< Full-table sweeps that found no slot.
  };
  stats_t stats() const {
    return {Pins.load(std::memory_order_relaxed),
            Conflicts.load(std::memory_order_relaxed),
            Exhausted.load(std::memory_order_relaxed)};
  }

private:
  struct alignas(64) slot_t {
    std::atomic<uint64_t> E{kIdle};
    /// obs::now_ns() at the moment the slot was claimed (watchdog input).
    std::atomic<uint64_t> PinNs{0};
  };

  std::atomic<uint64_t> Global{1};
  slot_t Slots[kMaxReaders];
  // Pins is bumped by many reader threads, so it uses a real RMW (unlike
  // the scheduler's single-writer counters); both counters are telemetry
  // only.
  std::atomic<uint64_t> Pins{0};
  std::atomic<uint64_t> Conflicts{0};
  std::atomic<uint64_t> Exhausted{0};
};

} // namespace serving
} // namespace cpam

#endif // CPAM_SERVING_EPOCH_H
