//===- version_chain.h - Versioned snapshot store with batch ingest --------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The repo's serving architecture: a single-writer/many-reader versioned
/// snapshot store over any purely-functional value T (a PaC-tree map/set,
/// a sym_graph, an aspen_graph — anything whose copy is an O(1) refcount
/// bump and whose destructor releases the refs).
///
/// Three layers:
///
///  - version_chain<T>: publishes immutable versions via one atomic
///    pointer swap. Readers acquire() a snapshot in O(1): pin an epoch
///    (src/serving/epoch.h), load the current version pointer, copy the
///    value (root refcount increment), unpin. The writer publish()es a new
///    version, retires the old one onto a writer-private list stamped with
///    the pre-advance epoch, and reclaims retired versions only once no
///    pinned reader epoch can still observe them — so the subtree
///    decrements of an abandoned version run on the writer, never on a
///    reader's critical path.
///
///  - ingest_pipeline<T, U>: the single-writer batch ingest front door.
///    Producers submit() updates into a bounded queue; a dedicated writer
///    thread drains them and applies one batch per publish (at most
///    BatchWindow updates each) through a caller-supplied apply function
///    (e.g. sym_graph::insert_edges / pam_map::multi_insert). Batching
///    amortizes the O(log n) structural work across the batch, which is
///    exactly the regime where PaC-tree multi-inserts win (Thm. 7.1).
///
///  - versioned_graph<G>: convenience binding of the two for graphs with
///    an insert_edges(std::vector<edge_pair>) batch API (sym_graph and
///    the aspen_graph baseline both qualify).
///
/// Concurrency contract: any number of threads may call acquire()
/// concurrently with one writer calling publish()/reclaim(). publish()
/// and reclaim() must not race each other (single-writer; the ingest
/// pipeline's writer thread satisfies this by construction, and a debug
/// assert trips on violations). Destroying the chain requires quiescence,
/// like destroying any other container.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_SERVING_VERSION_CHAIN_H
#define CPAM_SERVING_VERSION_CHAIN_H

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serving/epoch.h"
#include "src/util/datagen.h"
#include "src/util/failpoint.h"

namespace cpam {
namespace serving {

/// The serving layer's obs-registry bindings, resolved once: latency
/// histograms for the three lifecycle verbs (ns domain), the ingest
/// queue-depth gauge, and the published/reclaimed version counters. Shared
/// by every chain/pipeline instance in the process — instance-granular
/// numbers stay available through the per-object stats accessors.
struct serving_metrics_t {
  obs::histogram &AcquireNs;
  obs::histogram &PublishNs;
  obs::histogram &ReclaimNs;
  obs::gauge &QueueDepth;
  obs::counter &Published;
  obs::counter &Reclaimed;
  /// High-water mark of retired-but-unreclaimed versions (raw cell:
  /// CAS-maxed by the writer, read by export_json / the watchdog tests).
  std::atomic<uint64_t> &RetiredBacklogHw;
  /// Most recent stalled-reader count observed by a pipeline writer loop
  /// (raw cell, overwritten once per batch).
  std::atomic<uint64_t> &StalledReaders;
};

inline serving_metrics_t &serving_metrics() {
  // References into the leaked registry: valid for the process lifetime.
  static serving_metrics_t M{
      obs::registry::get().get_histogram("serving.acquire_ns"),
      obs::registry::get().get_histogram("serving.publish_ns"),
      obs::registry::get().get_histogram("serving.reclaim_ns"),
      obs::registry::get().get_gauge("serving.queue_depth"),
      obs::registry::get().get_counter("serving.published"),
      obs::registry::get().get_counter("serving.reclaimed"),
      obs::registry::get().raw_counter("serving.retired_backlog_hw"),
      obs::registry::get().raw_counter("serving.stalled_readers")};
  return M;
}

template <class T> class version_chain {
public:
  /// Creates the chain holding \p Initial as version 1.
  explicit version_chain(T Initial)
      : Current(new version_node{std::move(Initial), 1}) {}

  version_chain(const version_chain &) = delete;
  version_chain &operator=(const version_chain &) = delete;

  /// Requires quiescence (no concurrent readers or writer). Frees the
  /// current version and every still-retired one; with all snapshots
  /// dropped this releases every node the chain ever owned.
  ~version_chain() {
    delete Current.load(std::memory_order_relaxed);
    version_node *R = RetiredHead;
    while (R) {
      version_node *Next = R->NextRetired;
      delete R;
      R = Next;
    }
  }

  /// O(1) snapshot of the current version: epoch pin, pointer load, root
  /// refcount bump, unpin. Wait-free apart from the slot claim. Safe from
  /// any thread, concurrent with publish().
  T acquire() const {
    // Sampled timing (1 in 256 per thread): acquire is ~a hundred ns, so
    // two unconditional clock reads would be a double-digit-percent tax.
    const bool Timed = obs::sampled<8>();
    const uint64_t T0 = Timed ? obs::now_ns() : 0;
    epoch_manager::guard G(Epochs);
    slowReaderFailpoint();
    version_node *V = Current.load(std::memory_order_seq_cst);
    T Snap = V->Value;
    if (Timed)
      serving_metrics().AcquireNs.record(obs::now_ns() - T0);
    return Snap;
  }

  /// Snapshot plus its version sequence number.
  T acquire(uint64_t &SeqOut) const {
    const bool Timed = obs::sampled<8>();
    const uint64_t T0 = Timed ? obs::now_ns() : 0;
    epoch_manager::guard G(Epochs);
    slowReaderFailpoint();
    version_node *V = Current.load(std::memory_order_seq_cst);
    SeqOut = V->Seq;
    T Snap = V->Value;
    if (Timed)
      serving_metrics().AcquireNs.record(obs::now_ns() - T0);
    return Snap;
  }

  /// Sequence number of the current version (1-based, monotone).
  uint64_t seq() const {
    epoch_manager::guard G(Epochs);
    return Current.load(std::memory_order_seq_cst)->Seq;
  }

  /// Writer-side: publishes \p Next as the new current version, retires
  /// the old one, and opportunistically reclaims every retired version no
  /// reader can still observe. Single writer only.
  void publish(T Next) {
    assert(!WriterActive.exchange(true) && "version_chain: second writer");
    obs::trace::span S("publish", "serve");
    // Unsampled timing: one publish per batch, the clock reads are noise.
    const uint64_t T0 = CPAM_METRICS ? obs::now_ns() : 0;
    version_node *Old = Current.load(std::memory_order_relaxed);
    version_node *N = new version_node{std::move(Next), Old->Seq + 1};
    Current.store(N, std::memory_order_seq_cst);
    // Stamp with the pre-advance epoch: every reader still able to reach
    // Old is pinned at an epoch <= this value (see epoch.h).
    Old->RetireEpoch = Epochs.advance();
    Old->NextRetired = RetiredHead;
    RetiredHead = Old;
    ++NumRetired;
    if (NumRetired > RetiredHw) {
      RetiredHw = NumRetired;
      // CAS-max into the process-wide cell: stalled readers show up as a
      // climbing backlog high-water long before memory pressure does.
      auto &HW = serving_metrics().RetiredBacklogHw;
      uint64_t Cur = HW.load(std::memory_order_relaxed);
      while (Cur < RetiredHw &&
             !HW.compare_exchange_weak(Cur, RetiredHw,
                                       std::memory_order_relaxed)) {
      }
    }
    if (CPAM_METRICS) {
      serving_metrics().PublishNs.record(obs::now_ns() - T0);
      serving_metrics().Published.inc();
    }
    reclaimLocked();
    WriterActive.store(false);
  }

  /// Writer-side: frees every retired version whose retire epoch precedes
  /// all pinned readers. Returns the number of versions freed. publish()
  /// already calls this; exposed for tests and for draining after load.
  size_t reclaim() {
    assert(!WriterActive.exchange(true) && "version_chain: second writer");
    size_t Freed = reclaimLocked();
    WriterActive.store(false);
    return Freed;
  }

  /// Retired-but-not-yet-freed version count (writer thread only).
  size_t retired_count() const { return NumRetired; }
  /// High-water mark of retired_count() over the chain's lifetime (writer
  /// only). A mark far above steady-state means readers stalled long
  /// enough to dam up reclamation.
  size_t retired_high_water() const { return RetiredHw; }
  /// Total versions reclaimed over the chain's lifetime (writer only).
  uint64_t reclaimed_total() const { return NumReclaimed; }

  /// The chain's epoch manager (manual pinning in tests/telemetry).
  epoch_manager &epochs() const { return Epochs; }

private:
  struct version_node {
    T Value;
    uint64_t Seq;
    uint64_t RetireEpoch = 0;
    version_node *NextRetired = nullptr;
  };

  /// Chaos hook: stretches the reader's pinned window so the stall
  /// watchdog and retire-backlog paths can be exercised deterministically.
  /// The spec's arg clause sets the dwell in microseconds (default 1ms).
  static void slowReaderFailpoint() {
    if (CPAM_FAILPOINT_ACTIVE("serving.slow_reader"))
      std::this_thread::sleep_for(
          std::chrono::microseconds(fail::arg("serving.slow_reader", 1000)));
  }

  size_t reclaimLocked() {
    if (!RetiredHead)
      return 0;
    obs::trace::span S("reclaim", "serve");
    const uint64_t T0 = CPAM_METRICS ? obs::now_ns() : 0;
    uint64_t MinActive = Epochs.min_active();
    version_node **Link = &RetiredHead;
    size_t Freed = 0;
    while (*Link) {
      version_node *V = *Link;
      if (V->RetireEpoch < MinActive) {
        *Link = V->NextRetired;
        delete V; // ~T decrements the tree roots — off the reader path.
        ++Freed;
      } else {
        Link = &V->NextRetired;
      }
    }
    NumRetired -= Freed;
    NumReclaimed += Freed;
    if (CPAM_METRICS) {
      serving_metrics().ReclaimNs.record(obs::now_ns() - T0);
      serving_metrics().Reclaimed.inc(Freed);
    }
    return Freed;
  }

  std::atomic<version_node *> Current;
  mutable epoch_manager Epochs;
  // Writer-private state (guarded by the single-writer contract).
  version_node *RetiredHead = nullptr;
  size_t NumRetired = 0;
  size_t RetiredHw = 0;
  uint64_t NumReclaimed = 0;
  std::atomic<bool> WriterActive{false};
};

/// What a producer-facing submit does when the bounded ingest queue is
/// full. Counted per-policy in ingest_pipeline::stats_t and in the shared
/// queue metrics, so overload is observable rather than silent.
enum class overload_policy {
  /// Block the submitter until space frees (default; lossless
  /// backpressure).
  Block,
  /// Refuse the new update (submit returns false; Rejected counts it).
  RejectNewest,
  /// Drop the oldest queued update to admit the new one (Shed counts the
  /// victim). Keeps producers wait-free at the cost of losing the oldest
  /// not-yet-applied data — the classic head-drop queue.
  ShedOldest,
};

/// Single-writer batch-ingest pipeline in front of a version_chain<T>:
/// producers enqueue updates of type U into a bounded queue; the pipeline's
/// writer thread drains them and applies one batch per publish.
template <class T, class U> class ingest_pipeline {
public:
  /// Applies a batch of updates to a snapshot, returning the next version.
  using apply_fn = std::function<T(const T &, std::vector<U>)>;

  struct options {
    /// Bounded-queue capacity: the overload policy engages while this many
    /// updates are pending.
    size_t QueueCapacity = size_t(1) << 16;
    /// Max updates applied per published version. Small windows minimize
    /// snapshot staleness; large windows amortize structural work.
    size_t BatchWindow = size_t(1) << 12;
    /// What submit() does when the queue is full (see overload_policy).
    overload_policy Policy = overload_policy::Block;
    /// Pin age beyond which a reader counts as stalled (watchdog
    /// threshold; the writer loop samples stalled_readers(StallAgeNs)
    /// once per batch). Default 100ms — five orders of magnitude past a
    /// healthy pin.
    uint64_t StallAgeNs = 100'000'000;
  };

  ingest_pipeline(version_chain<T> &Chain, apply_fn Apply, options O = {})
      : Chain(Chain), Apply(std::move(Apply)), Opts(O) {
    assert(Opts.QueueCapacity > 0 && Opts.BatchWindow > 0);
    Writer = std::thread([this] { writerLoop(); });
  }

  ingest_pipeline(const ingest_pipeline &) = delete;
  ingest_pipeline &operator=(const ingest_pipeline &) = delete;

  ~ingest_pipeline() { stop(); }

  /// Enqueues one update, resolving a full queue per Opts.Policy: Block
  /// waits for space (lossless backpressure), RejectNewest returns false,
  /// ShedOldest drops the oldest queued update and admits this one.
  /// Returns false (dropping the update) once the pipeline is stopping —
  /// including when stop() races in while a Block submitter is waiting,
  /// which wakes every blocked submitter rather than stranding them.
  /// The "serving.queue_full" failpoint forces the reject path for chaos
  /// runs regardless of actual queue depth.
  bool submit(U Item) {
    if (CPAM_FAILPOINT_ACTIVE("serving.queue_full")) {
      std::lock_guard<std::mutex> L(M);
      ++NumRejected;
      return false;
    }
    std::unique_lock<std::mutex> L(M);
    if (Stopping)
      return false;
    bool DidShed = false;
    if (Pending.size() >= Opts.QueueCapacity) {
      switch (Opts.Policy) {
      case overload_policy::Block:
        ++FullWaits;
        NotFull.wait(L, [&] {
          return Pending.size() < Opts.QueueCapacity || Stopping;
        });
        if (Stopping)
          return false;
        break;
      case overload_policy::RejectNewest:
        ++NumRejected;
        return false;
      case overload_policy::ShedOldest:
        Pending.pop_front();
        ++NumShed;
        DidShed = true;
        break;
      }
    }
    Pending.push_back(std::move(Item));
    ++NumSubmitted;
    L.unlock();
    if (!DidShed) // Shedding swapped one queued item for another: net 0.
      serving_metrics().QueueDepth.add(1);
    NotEmpty.notify_one();
    return true;
  }

  /// Deadline-bounded submit: waits for queue space at most \p Timeout,
  /// then gives up (counted in DeadlineTimeouts). Ignores the overload
  /// policy — the deadline *is* the policy. Returns false on timeout or
  /// shutdown.
  template <class Rep, class Period>
  bool submit_for(U Item, std::chrono::duration<Rep, Period> Timeout) {
    if (CPAM_FAILPOINT_ACTIVE("serving.queue_full")) {
      std::lock_guard<std::mutex> L(M);
      ++NumRejected;
      return false;
    }
    std::unique_lock<std::mutex> L(M);
    if (Pending.size() >= Opts.QueueCapacity && !Stopping) {
      ++FullWaits;
      if (!NotFull.wait_for(L, Timeout, [&] {
            return Pending.size() < Opts.QueueCapacity || Stopping;
          })) {
        ++NumDeadlineTimeouts;
        return false;
      }
    }
    if (Stopping)
      return false;
    Pending.push_back(std::move(Item));
    ++NumSubmitted;
    L.unlock();
    serving_metrics().QueueDepth.add(1);
    NotEmpty.notify_one();
    return true;
  }

  /// Non-blocking submit; false if the queue is full or stopping.
  bool try_submit(U Item) {
    if (CPAM_FAILPOINT_ACTIVE("serving.queue_full")) {
      std::lock_guard<std::mutex> L(M);
      ++NumRejected;
      return false;
    }
    std::unique_lock<std::mutex> L(M);
    if (Stopping || Pending.size() >= Opts.QueueCapacity)
      return false;
    Pending.push_back(std::move(Item));
    ++NumSubmitted;
    L.unlock();
    serving_metrics().QueueDepth.add(1);
    NotEmpty.notify_one();
    return true;
  }

  /// Blocks until every update submitted before the call has been applied
  /// and published.
  void flush() {
    std::unique_lock<std::mutex> L(M);
    Drained.wait(L, [&] { return (Pending.empty() && !Applying) || Stopping; });
  }

  /// Deadline-bounded flush: true if the queue drained (or the pipeline
  /// stopped) within \p Timeout, false if work was still in flight.
  template <class Rep, class Period>
  bool flush_for(std::chrono::duration<Rep, Period> Timeout) {
    std::unique_lock<std::mutex> L(M);
    return Drained.wait_for(L, Timeout, [&] {
      return (Pending.empty() && !Applying) || Stopping;
    });
  }

  /// Drains the queue, publishes the remainder, and joins the writer
  /// thread. Idempotent; called by the destructor.
  void stop() {
    {
      std::lock_guard<std::mutex> L(M);
      if (Stopping)
        return;
      Stopping = true;
    }
    NotEmpty.notify_all();
    NotFull.notify_all();
    Drained.notify_all();
    if (Writer.joinable())
      Writer.join();
  }

  struct stats_t {
    uint64_t Submitted = 0; ///< Updates accepted into the queue.
    uint64_t Applied = 0;   ///< Updates applied and published.
    uint64_t Batches = 0;   ///< Versions published by the writer loop.
    uint64_t FullWaits = 0; ///< Times a submitter waited on a full queue.
    uint64_t Rejected = 0;  ///< Updates refused (RejectNewest / failpoint).
    uint64_t Shed = 0;      ///< Oldest-queued updates dropped (ShedOldest).
    uint64_t DeadlineTimeouts = 0; ///< submit_for() deadline expirations.
  };
  stats_t stats() const {
    std::lock_guard<std::mutex> L(M);
    return {NumSubmitted, NumApplied,  NumBatches,
            FullWaits,    NumRejected, NumShed,
            NumDeadlineTimeouts};
  }

private:
  void writerLoop() {
    // The writer tracks the tip locally: with a single writer the chain
    // head only moves underneath us via our own publishes.
    T Tip = Chain.acquire();
    std::vector<U> Batch;
    for (;;) {
      {
        std::unique_lock<std::mutex> L(M);
        NotEmpty.wait(L, [&] { return !Pending.empty() || Stopping; });
        if (Pending.empty() && Stopping)
          break;
        size_t Take = std::min(Opts.BatchWindow, Pending.size());
        Batch.assign(std::make_move_iterator(Pending.begin()),
                     std::make_move_iterator(Pending.begin() + Take));
        Pending.erase(Pending.begin(), Pending.begin() + Take);
        Applying = true;
      }
      NotFull.notify_all();
      serving_metrics().QueueDepth.sub(static_cast<int64_t>(Batch.size()));
      size_t Applied = Batch.size();
      {
        obs::trace::span S("apply_batch", "serve");
        // Chaos hook: a glacial apply (arg = dwell in ms, default 10)
        // backs the queue up against its capacity so the overload
        // policies and deadline paths can be driven deterministically.
        if (CPAM_FAILPOINT_ACTIVE("serving.slow_apply"))
          std::this_thread::sleep_for(
              std::chrono::milliseconds(fail::arg("serving.slow_apply", 10)));
        Tip = Apply(Tip, std::move(Batch));
        Chain.publish(Tip);
      }
      // Watchdog sweep, once per batch off the reader path: publish the
      // current stalled-reader count so export_json / bench_serving can
      // surface wedged pins without scanning the slot table themselves.
      if (CPAM_METRICS)
        serving_metrics().StalledReaders.store(
            Chain.epochs().stalled_readers(Opts.StallAgeNs),
            std::memory_order_relaxed);
      Batch.clear();
      {
        std::lock_guard<std::mutex> L(M);
        Applying = false;
        NumApplied += Applied;
        ++NumBatches;
      }
      Drained.notify_all();
    }
    // Leave retired versions fully drained when no reader is left pinned.
    Chain.reclaim();
  }

  version_chain<T> &Chain;
  apply_fn Apply;
  options Opts;

  mutable std::mutex M;
  std::condition_variable NotEmpty, NotFull, Drained;
  // Deque, not vector: ShedOldest pops the front in O(1).
  std::deque<U> Pending;
  bool Stopping = false;
  bool Applying = false;
  uint64_t NumSubmitted = 0, NumApplied = 0, NumBatches = 0, FullWaits = 0;
  uint64_t NumRejected = 0, NumShed = 0, NumDeadlineTimeouts = 0;

  std::thread Writer;
};

/// A versioned graph service: version_chain + ingest_pipeline bound to a
/// graph type with batch edge insertion (sym_graph, aspen_graph). Readers
/// snapshot(); producers submit_edge(); the pipeline's writer publishes one
/// new graph version per drained batch.
template <class G> class versioned_graph {
public:
  using pipeline_t = ingest_pipeline<G, edge_pair>;
  using options = typename pipeline_t::options;

  explicit versioned_graph(G Initial, options O = {})
      : Chain(std::move(Initial)),
        Pipe(Chain,
             [](const G &Cur, std::vector<edge_pair> Batch) {
               return Cur.insert_edges(std::move(Batch));
             },
             O) {}

  /// O(1) snapshot of the newest published graph.
  G snapshot() const { return Chain.acquire(); }
  G snapshot(uint64_t &SeqOut) const { return Chain.acquire(SeqOut); }

  /// Enqueues one directed edge (blocking backpressure when the queue is
  /// full). For undirected updates submit both directions.
  bool submit_edge(vertex_id U, vertex_id V) {
    return Pipe.submit(edge_pair{U, V});
  }
  bool submit_edge(edge_pair E) { return Pipe.submit(E); }

  /// Waits until all submitted edges are visible in snapshots.
  void flush() { Pipe.flush(); }
  /// Stops the writer thread (destructor also stops).
  void stop() { Pipe.stop(); }

  version_chain<G> &chain() { return Chain; }
  const version_chain<G> &chain() const { return Chain; }
  /// Direct pipeline access (deadline submits, overload counters).
  pipeline_t &pipeline() { return Pipe; }
  typename pipeline_t::stats_t ingest_stats() const { return Pipe.stats(); }

private:
  version_chain<G> Chain;
  pipeline_t Pipe;
};

} // namespace serving
} // namespace cpam

#endif // CPAM_SERVING_VERSION_CHAIN_H
