//===- metrics.h - Unified metrics registry (counters/gauges/histograms) ---===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The repo's one observability substrate: a process-wide registry of named
/// metrics that every subsystem records through and every bench/test/tool
/// reads from. Three owned metric kinds plus two integration hooks:
///
///  - counter: monotone event count, sharded into cache-line-padded
///    relaxed-atomic cells indexed by par::thread_slot(), aggregated on
///    read. inc() is one relaxed fetch_add on a (normally) uncontended
///    cell — a handful of instructions.
///  - gauge: like a counter but signed and bidirectional (add/sub), for
///    level-style quantities (queue depth, outstanding snapshots).
///  - histogram: log-bucketed latency/size histogram with sub-bucket
///    linear refinement (HdrHistogram-style): values below 2^kSubBits
///    index exact unit buckets; above that, each power-of-two octave is
///    split into 2^kSubBits linear sub-buckets, bounding relative bucket
///    error at 1/2^kSubBits (6.25% at the default 4 bits). record() is a
///    bit_width + shift + three relaxed RMWs (bucket, sum, CAS-max) —
///    lock-free and exact under any concurrency. Percentiles (p50/p90/p99)
///    come from a cumulative bucket walk on the (cold) read side and
///    report the bucket's inclusive upper bound clamped to the recorded
///    max, so a reported percentile never understates the true one and
///    overstates it by at most one sub-bucket width.
///
///  - raw_counter(name): a single named std::atomic<uint64_t> cell for
///    pre-existing telemetry that hands out a raw atomic reference
///    (tree_ops::merge_fallback_count). Always compiled, even when the
///    metric record paths are compiled out.
///  - register_source(name, json_fn, reset_fn): adopts an external
///    telemetry surface (scheduler stats, pool-allocator stats) into the
///    registry's export and reset_all() without moving its storage.
///
/// reset() semantics are uniform and deliberately simple: quiescent use
/// only, like every pre-existing telemetry reset in the repo
/// (par::scheduler_stats_reset, merge_fallback_count_reset). reset_all()
/// resets every owned metric, every raw cell and every source in one call
/// so benches cannot forget one surface.
///
/// Compile gate: -DCPAM_METRICS=OFF compiles every record path (inc/add/
/// record and the trace spans of trace.h) to nothing — the classes become
/// empty and reads return zero — while the registry core (names, raw
/// cells, sources, export, reset) stays live so the substrate telemetry
/// that predates this layer keeps working.
///
/// Export: export_json() renders the whole registry as one JSON object
/// (schema "cpam-metrics-v1") that perf_smoke/bench_merge/bench_serving
/// splice into their reports and the CPAM_STATS_DUMP atexit hook (obs.cpp)
/// writes on process exit.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_OBS_METRICS_H
#define CPAM_OBS_METRICS_H

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/parallel/scheduler.h"

/// Build-time gate for the metric record paths (CMake option CPAM_METRICS).
/// OFF turns counter::inc / gauge::add / histogram::record / trace spans
/// into no-ops that compile to nothing; the registry itself stays live.
#ifndef CPAM_METRICS
#define CPAM_METRICS 1
#endif

namespace cpam {
namespace obs {

/// Monotonic nanoseconds since process start (first call anchors the
/// origin). One steady_clock read — the cost unit every histogram record
/// and trace span pays.
inline uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point Origin = clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           Origin)
          .count());
}

/// Deterministic per-thread sampling for hot paths that cannot afford a
/// clock read per event: true on every 2^Shift-th call from each thread
/// (starting with the first, so single-shot tests still record). Compiles
/// to `false` under CPAM_METRICS=OFF, deleting the sampled block entirely.
template <int Shift> inline bool sampled() {
#if CPAM_METRICS
  thread_local uint64_t N = 0;
  return (N++ & ((uint64_t(1) << Shift) - 1)) == 0;
#else
  return false;
#endif
}

#if CPAM_METRICS

/// Monotone event counter, sharded per thread slot. Writers from any
/// thread; exact at all times (relaxed RMW per cell), though a read racing
/// writers observes some linearization of them like any concurrent sum.
class counter {
public:
  static constexpr size_t kShards = 64;

  void inc(uint64_t N = 1) {
    cell_for_thread().V.fetch_add(N, std::memory_order_relaxed);
  }

  uint64_t read() const {
    uint64_t S = 0;
    for (const cell &C : Cells)
      S += C.V.load(std::memory_order_relaxed);
    return S;
  }

  /// Quiescent use only (concurrent inc() during a reset may land in an
  /// already-zeroed or not-yet-zeroed cell).
  void reset() {
    for (cell &C : Cells)
      C.V.store(0, std::memory_order_relaxed);
  }

private:
  struct alignas(64) cell {
    std::atomic<uint64_t> V{0};
  };
  cell &cell_for_thread() {
    return Cells[static_cast<size_t>(par::thread_slot()) & (kShards - 1)];
  }
  cell Cells[kShards];
};

/// Signed level gauge: add()/sub() from any thread, read() sums the
/// sharded deltas (momentarily negative partial sums are fine; the total
/// is exact whenever producers and consumers are balanced).
class gauge {
public:
  static constexpr size_t kShards = 64;

  void add(int64_t N) {
    cell_for_thread().V.fetch_add(N, std::memory_order_relaxed);
  }
  void sub(int64_t N) { add(-N); }

  int64_t read() const {
    int64_t S = 0;
    for (const cell &C : Cells)
      S += C.V.load(std::memory_order_relaxed);
    return S;
  }

  /// Quiescent use only.
  void reset() {
    for (cell &C : Cells)
      C.V.store(0, std::memory_order_relaxed);
  }

private:
  struct alignas(64) cell {
    std::atomic<int64_t> V{0};
  };
  cell &cell_for_thread() {
    return Cells[static_cast<size_t>(par::thread_slot()) & (kShards - 1)];
  }
  cell Cells[kShards];
};

/// Log-bucketed histogram with linear sub-bucket refinement (see the file
/// header for the scheme). Domain: uint64 (nanoseconds by convention for
/// the *_ns metrics). Lock-free record; exact counts; percentile error
/// bounded by one sub-bucket (<= 1/16 relative at 4 sub-bits).
class histogram {
public:
  static constexpr int kSubBits = 4;
  static constexpr uint64_t kSub = uint64_t(1) << kSubBits;
  /// Direct buckets [0, kSub) + one kSub-wide block per octave 4..63.
  static constexpr size_t kBuckets = kSub + (63 - kSubBits + 1) * kSub;

  /// Bucket index of \p V: exact below kSub; octave block + linear
  /// sub-bucket above. Monotone in V.
  static size_t bucket_index(uint64_t V) {
    if (V < kSub)
      return static_cast<size_t>(V);
    int E = std::bit_width(V) - 1; // >= kSubBits
    return (static_cast<size_t>(E - kSubBits + 1) << kSubBits) +
           static_cast<size_t>((V >> (E - kSubBits)) & (kSub - 1));
  }

  /// Smallest value landing in bucket \p I.
  static uint64_t bucket_lo(size_t I) {
    if (I < kSub)
      return I;
    size_t Block = I >> kSubBits, Sub = I & (kSub - 1);
    return (kSub + Sub) << (Block - 1);
  }

  /// Largest value landing in bucket \p I (inclusive).
  static uint64_t bucket_hi(size_t I) {
    if (I + 1 >= kBuckets)
      return ~uint64_t{0};
    return bucket_lo(I + 1) - 1;
  }

  void record(uint64_t V) {
    Buckets[bucket_index(V)].fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(V, std::memory_order_relaxed);
    uint64_t M = Max.load(std::memory_order_relaxed);
    while (V > M &&
           !Max.compare_exchange_weak(M, V, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const {
    uint64_t N = 0;
    for (const auto &B : Buckets)
      N += B.load(std::memory_order_relaxed);
    return N;
  }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }

  /// Value at quantile \p P in [0,1]: inclusive upper bound of the bucket
  /// holding the ceil(P*count)-th recorded value, clamped to max() so the
  /// report never exceeds anything actually recorded. 0 when empty.
  uint64_t percentile(double P) const {
    uint64_t Total = count();
    if (Total == 0)
      return 0;
    uint64_t Target = static_cast<uint64_t>(P * static_cast<double>(Total));
    if (Target < 1)
      Target = 1;
    if (Target > Total)
      Target = Total;
    uint64_t Cum = 0;
    for (size_t I = 0; I < kBuckets; ++I) {
      Cum += Buckets[I].load(std::memory_order_relaxed);
      if (Cum >= Target)
        return std::min(bucket_hi(I), max());
    }
    return max();
  }

  struct snapshot_t {
    uint64_t Count = 0, Sum = 0, Max = 0;
    uint64_t P50 = 0, P90 = 0, P99 = 0;
  };
  snapshot_t snapshot() const {
    return {count(), sum(), max(),
            percentile(0.50), percentile(0.90), percentile(0.99)};
  }

  /// Quiescent use only.
  void reset() {
    for (auto &B : Buckets)
      B.store(0, std::memory_order_relaxed);
    Sum.store(0, std::memory_order_relaxed);
    Max.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Buckets[kBuckets] = {};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Max{0};
};

#else // !CPAM_METRICS — record paths compile to nothing; reads are zero.

class counter {
public:
  static constexpr size_t kShards = 1;
  void inc(uint64_t = 1) {}
  uint64_t read() const { return 0; }
  void reset() {}
};

class gauge {
public:
  static constexpr size_t kShards = 1;
  void add(int64_t) {}
  void sub(int64_t) {}
  int64_t read() const { return 0; }
  void reset() {}
};

class histogram {
public:
  static constexpr int kSubBits = 4;
  static constexpr uint64_t kSub = uint64_t(1) << kSubBits;
  static constexpr size_t kBuckets = 1;
  static size_t bucket_index(uint64_t) { return 0; }
  static uint64_t bucket_lo(size_t) { return 0; }
  static uint64_t bucket_hi(size_t) { return 0; }
  void record(uint64_t) {}
  uint64_t count() const { return 0; }
  uint64_t sum() const { return 0; }
  uint64_t max() const { return 0; }
  uint64_t percentile(double) const { return 0; }
  struct snapshot_t {
    uint64_t Count = 0, Sum = 0, Max = 0;
    uint64_t P50 = 0, P90 = 0, P99 = 0;
  };
  snapshot_t snapshot() const { return {}; }
  void reset() {}
};

#endif // CPAM_METRICS

/// The process-wide metric registry. Lookup (get_*) is mutexed and meant
/// for setup code — hot paths hold the returned reference, which stays
/// valid for the process lifetime (node-based map storage; the registry
/// itself is a leaked singleton so exit-time consumers like the
/// CPAM_STATS_DUMP atexit hook can always read it).
class registry {
public:
  static registry &get() {
    // Leaked deliberately: reachable through this static forever (so LSan
    // does not flag it) and immune to static-destruction order against the
    // atexit dump/trace hooks and worker-thread teardown.
    static registry *R = new registry;
    return *R;
  }

  counter &get_counter(const std::string &Name) {
    std::lock_guard<std::mutex> L(M);
    return Counters[Name];
  }
  gauge &get_gauge(const std::string &Name) {
    std::lock_guard<std::mutex> L(M);
    return Gauges[Name];
  }
  histogram &get_histogram(const std::string &Name) {
    std::lock_guard<std::mutex> L(M);
    return Hists[Name];
  }

  /// Named raw atomic cell (always live, even under CPAM_METRICS=OFF):
  /// the adoption path for pre-existing telemetry whose accessors hand out
  /// std::atomic references. Exported alongside the counters and zeroed by
  /// reset_all().
  std::atomic<uint64_t> &raw_counter(const std::string &Name) {
    std::lock_guard<std::mutex> L(M);
    auto &P = Raw[Name];
    if (!P)
      P = std::make_unique<std::atomic<uint64_t>>(0);
    return *P;
  }

  /// Adopts an external telemetry surface: \p Json renders its current
  /// state as one JSON value (object or array), \p Reset restores its
  /// zero/baseline state. Both run under the registry lock — they must not
  /// reenter the registry. Re-registering a name replaces the source.
  void register_source(const std::string &Name,
                       std::function<std::string()> Json,
                       std::function<void()> Reset) {
    std::lock_guard<std::mutex> L(M);
    Sources[Name] = source{std::move(Json), std::move(Reset)};
  }

  /// One reset for every telemetry surface in the process: owned metrics,
  /// raw cells, and registered sources (scheduler stats, pool-allocator
  /// baseline, ...). Quiescent use only, like each individual reset.
  void reset_all() {
    std::lock_guard<std::mutex> L(M);
    for (auto &[N, C] : Counters)
      C.reset();
    for (auto &[N, G] : Gauges)
      G.reset();
    for (auto &[N, H] : Hists)
      H.reset();
    for (auto &[N, R] : Raw)
      R->store(0, std::memory_order_relaxed);
    for (auto &[N, S] : Sources)
      if (S.Reset)
        S.Reset();
  }

  /// Whole-registry snapshot as one JSON object (schema cpam-metrics-v1):
  /// counters (owned + raw cells), gauges, histogram summaries
  /// (count/sum/max/p50/p90/p99, ns domain by convention) and each
  /// registered source under its name.
  std::string export_json() const {
    std::lock_guard<std::mutex> L(M);
    std::string Out = "{\n    \"schema\": \"cpam-metrics-v1\",\n"
                      "    \"metrics_compiled\": ";
    Out += CPAM_METRICS ? "true" : "false";
    char Buf[256];
    Out += ",\n    \"counters\": {";
    bool First = true;
    auto Emit = [&](const std::string &N, unsigned long long V) {
      std::snprintf(Buf, sizeof(Buf), "%s\n      \"%s\": %llu",
                    First ? "" : ",", N.c_str(), V);
      Out += Buf;
      First = false;
    };
    for (const auto &[N, C] : Counters)
      Emit(N, C.read());
    for (const auto &[N, R] : Raw)
      Emit(N, R->load(std::memory_order_relaxed));
    Out += First ? "}" : "\n    }";
    Out += ",\n    \"gauges\": {";
    First = true;
    for (const auto &[N, G] : Gauges) {
      std::snprintf(Buf, sizeof(Buf), "%s\n      \"%s\": %lld",
                    First ? "" : ",", N.c_str(),
                    static_cast<long long>(G.read()));
      Out += Buf;
      First = false;
    }
    Out += First ? "}" : "\n    }";
    Out += ",\n    \"histograms\": {";
    First = true;
    for (const auto &[N, H] : Hists) {
      histogram::snapshot_t S = H.snapshot();
      std::snprintf(
          Buf, sizeof(Buf),
          "%s\n      \"%s\": {\"count\": %llu, \"sum\": %llu, "
          "\"max\": %llu, \"p50\": %llu, \"p90\": %llu, \"p99\": %llu}",
          First ? "" : ",", N.c_str(), (unsigned long long)S.Count,
          (unsigned long long)S.Sum, (unsigned long long)S.Max,
          (unsigned long long)S.P50, (unsigned long long)S.P90,
          (unsigned long long)S.P99);
      Out += Buf;
      First = false;
    }
    Out += First ? "}" : "\n    }";
    Out += ",\n    \"sources\": {";
    First = true;
    for (const auto &[N, S] : Sources) {
      Out += First ? "\n      \"" : ",\n      \"";
      Out += N + "\": " + (S.Json ? S.Json() : std::string("null"));
      First = false;
    }
    Out += First ? "}" : "\n    }";
    Out += "\n  }";
    return Out;
  }

private:
  registry() = default;

  struct source {
    std::function<std::string()> Json;
    std::function<void()> Reset;
  };

  mutable std::mutex M;
  // std::map: node-based, so references returned by get_* stay stable.
  std::map<std::string, counter> Counters;
  std::map<std::string, gauge> Gauges;
  std::map<std::string, histogram> Hists;
  std::map<std::string, std::unique_ptr<std::atomic<uint64_t>>> Raw;
  std::map<std::string, source> Sources;
};

/// One reset for every telemetry surface (registry metrics + raw cells +
/// scheduler/pool/merge sources). The bench preamble.
inline void reset_all() { registry::get().reset_all(); }

/// The shared cpam-metrics-v1 exporter (see registry::export_json).
inline std::string export_json() { return registry::get().export_json(); }

} // namespace obs
} // namespace cpam

#endif // CPAM_OBS_METRICS_H
