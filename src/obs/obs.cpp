//===- obs.cpp - Built-in telemetry sources and env-triggered hooks --------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Adopts the pre-existing telemetry surfaces into the obs registry
// (metrics.h) and installs the environment-triggered exit hooks:
//
//  - source "scheduler": par::scheduler_stats() as a JSON object;
//    reset_all() routes to par::scheduler_stats_reset(). Guarded by
//    Scheduler::alive() so an exit-time export neither constructs a thread
//    pool nor touches a destroyed one.
//  - source "pool" (when CPAM_POOL_ALLOC): pool_allocator::stats() per
//    nonzero size class, reported as deltas against a baseline captured at
//    the last reset_all() — the allocator's own counters are never
//    disturbed, so the Allocs-Frees=live identities its tests rely on
//    stay exact.
//  - CPAM_STATS_DUMP=<path|1|stderr>: atexit dump of the cpam-metrics-v1
//    export to the given path (1/stderr mean stderr). Works in every
//    binary linking cpam_core.
//  - CPAM_TRACE=1|2 [+ CPAM_TRACE_OUT=<path>]: enables trace spans
//    (trace.h) at process start and flushes them to CPAM_TRACE_OUT
//    (default cpam_trace.json) at exit.
//
// Ordering: this file's global initializer runs before main(), so its
// atexit handlers run after every function-local static constructed during
// main() (the scheduler singleton included) has been destroyed — hence the
// alive() guard — while the registry, the trace state and the pool's
// global structures are deliberately leaked and remain valid.
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/allocator.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/parallel/scheduler.h"

namespace cpam {
namespace obs {
namespace {

std::string schedulerJson() {
  par::SchedulerStats S;
  if (par::Scheduler::alive())
    S = par::scheduler_stats();
  char Buf[384];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"forks\": %llu, \"inline_reclaims\": %llu, \"steals\": %llu, "
      "\"failed_steals\": %llu, \"parks\": %llu, \"wakes\": %llu, "
      "\"join_parks\": %llu}",
      (unsigned long long)S.Forks, (unsigned long long)S.InlineReclaims,
      (unsigned long long)S.Steals, (unsigned long long)S.FailedSteals,
      (unsigned long long)S.Parks, (unsigned long long)S.Wakes,
      (unsigned long long)S.JoinParks);
  return Buf;
}

void schedulerReset() {
  if (par::Scheduler::alive())
    par::scheduler_stats_reset();
}

#if CPAM_POOL_ALLOC
std::array<pool_allocator::class_stats, pool_allocator::kNumClasses> &
poolBaseline() {
  static std::array<pool_allocator::class_stats, pool_allocator::kNumClasses>
      B{};
  return B;
}

std::string poolJson() {
  auto Cur = pool_allocator::stats();
  const auto &Base = poolBaseline();
  std::string Out = "[";
  bool First = true;
  char Buf[256];
  for (size_t C = 0; C < pool_allocator::kNumClasses; ++C) {
    uint64_t Allocs = Cur[C].Allocs - Base[C].Allocs;
    uint64_t Frees = Cur[C].Frees - Base[C].Frees;
    if (Allocs == 0 && Frees == 0)
      continue;
    std::snprintf(
        Buf, sizeof(Buf),
        "%s\n      {\"block_bytes\": %zu, \"allocs\": %llu, \"frees\": "
        "%llu, \"refill_batches\": %llu, \"drain_batches\": %llu, "
        "\"slab_carves\": %llu}",
        First ? "" : ",", Cur[C].BlockBytes, (unsigned long long)Allocs,
        (unsigned long long)Frees,
        (unsigned long long)(Cur[C].RefillBatches - Base[C].RefillBatches),
        (unsigned long long)(Cur[C].DrainBatches - Base[C].DrainBatches),
        (unsigned long long)(Cur[C].SlabCarves - Base[C].SlabCarves));
    Out += Buf;
    First = false;
  }
  Out += First ? "]" : "\n    ]";
  return Out;
}

void poolReset() { poolBaseline() = pool_allocator::stats(); }
#endif // CPAM_POOL_ALLOC

std::string &statsDumpPath() {
  static std::string P;
  return P;
}

void dumpStatsAtExit() {
  const std::string &P = statsDumpPath();
  std::string Json = export_json();
  if (P.empty() || P == "1" || P == "stderr") {
    std::fprintf(stderr, "CPAM_STATS_DUMP:\n%s\n", Json.c_str());
    return;
  }
  std::FILE *F = std::fopen(P.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "CPAM_STATS_DUMP: cannot write %s\n", P.c_str());
    return;
  }
  std::fprintf(F, "%s\n", Json.c_str());
  std::fclose(F);
}

std::string &tracePath() {
  static std::string P;
  return P;
}

void flushTraceAtExit() {
  if (!trace::write_json(tracePath()))
    std::fprintf(stderr, "CPAM_TRACE: cannot write %s\n",
                 tracePath().c_str());
}

/// Registers the built-in sources and installs the env-driven exit hooks.
/// Runs during static initialization of cpam_core (before main), so the
/// atexit handlers run after main-time statics are gone — see the file
/// header for the ordering argument.
struct installer {
  installer() {
    registry &R = registry::get();
    R.register_source("scheduler", schedulerJson, schedulerReset);
#if CPAM_POOL_ALLOC
    R.register_source("pool", poolJson, poolReset);
#endif
    if (const char *Env = std::getenv("CPAM_STATS_DUMP");
        Env && *Env && std::strcmp(Env, "0") != 0) {
      statsDumpPath() = Env;
      std::atexit(dumpStatsAtExit);
    }
    if (const char *Env = std::getenv("CPAM_TRACE");
        Env && std::atoi(Env) > 0) {
      trace::set_level(std::atoi(Env));
      const char *Out = std::getenv("CPAM_TRACE_OUT");
      tracePath() = Out && *Out ? Out : "cpam_trace.json";
      std::atexit(flushTraceAtExit);
    }
  }
};
installer TheInstaller;

} // namespace
} // namespace obs
} // namespace cpam
