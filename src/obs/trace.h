//===- trace.h - Fork-join trace spans (Chrome trace-event output) ---------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scoped trace spans over the whole runtime — scheduler task execution,
/// parking and join-parking, parallel_flat_merge chunk fan-out, serving
/// publish/reclaim — recorded into per-thread ring buffers and flushed on
/// demand as Chrome trace-event JSON (loadable in chrome://tracing and
/// Perfetto), so a whole read-while-ingest run can be visualized lane by
/// lane.
///
/// Cost model: tracing is a diagnostic mode, off by default. Disabled, a
/// span site is one relaxed atomic load and a branch (and compiles to
/// nothing entirely under -DCPAM_METRICS=OFF, same gate as metrics.h).
/// Enabled, a span costs two steady_clock reads plus one uncontended
/// mutex-guarded ring append (~tens of ns) — the per-ring mutex is what
/// keeps concurrent flush TSan-clean without an ordering protocol.
///
/// Rings: each recording thread lazily allocates one fixed-capacity ring
/// (kRingCap events) registered with the leaked global trace state; rings
/// outlive their threads (kept for post-join flushes, reachable forever so
/// LSan stays quiet) and wrap by overwriting the oldest events, so a long
/// run keeps its most recent window. Timestamps come from one process-wide
/// monotonic origin (obs::now_ns), so lanes line up across threads.
///
/// Levels: 0 = off, 1 = spans + instants, 2 = verbose (adds per-fork
/// instant events — high volume, floods the ring on fork-heavy phases).
/// Enable programmatically (trace::set_level) or via the environment:
/// CPAM_TRACE=1|2 turns tracing on at process start and installs an atexit
/// flush to CPAM_TRACE_OUT (default "cpam_trace.json") — see obs.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_OBS_TRACE_H
#define CPAM_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/parallel/scheduler.h"

namespace cpam {
namespace obs {
namespace trace {

/// One recorded event. Name/Cat must be string literals (stored by
/// pointer; the flush dereferences them long after the span ended).
struct event {
  const char *Name;
  const char *Cat;
  uint64_t TsNs;
  uint64_t DurNs; // 0 for instant events.
  char Ph;        // 'X' complete span, 'i' instant.
};

/// Per-thread event ring. The owning thread appends under Mu; flush/clear
/// take the same mutex, which is the entire synchronization story.
struct ring {
  std::mutex Mu;
  std::vector<event> Ev;
  size_t Next = 0;        ///< Overwrite cursor once full.
  uint64_t Dropped = 0;   ///< Events overwritten after wrap.
  int Tid = 0;            ///< par::thread_slot() of the owner.
};

inline constexpr size_t kRingCap = size_t(1) << 14;

namespace detail {

struct state_t {
  std::atomic<int> Level{0};
  std::mutex RegMu;
  std::vector<ring *> Rings; // All rings ever created; never freed.
};

inline state_t &state() {
  // Leaked singleton: outlives every recording thread and the atexit
  // flush, reachable through this static so LSan does not flag it.
  static state_t *S = new state_t;
  return *S;
}

inline ring &my_ring() {
  thread_local ring *R = [] {
    ring *N = new ring;
    N->Tid = par::thread_slot();
    N->Ev.reserve(kRingCap);
    state_t &S = state();
    std::lock_guard<std::mutex> L(S.RegMu);
    S.Rings.push_back(N);
    return N;
  }();
  return *R;
}

inline void emit(const char *Name, const char *Cat, char Ph, uint64_t TsNs,
                 uint64_t DurNs) {
  ring &R = my_ring();
  std::lock_guard<std::mutex> L(R.Mu);
  if (R.Ev.size() < kRingCap) {
    R.Ev.push_back(event{Name, Cat, TsNs, DurNs, Ph});
    return;
  }
  R.Ev[R.Next] = event{Name, Cat, TsNs, DurNs, Ph};
  R.Next = (R.Next + 1) % kRingCap;
  ++R.Dropped;
}

} // namespace detail

/// Current trace level (0 = off). One relaxed load — the whole cost of a
/// span site while tracing is disabled.
inline int level() {
#if CPAM_METRICS
  return detail::state().Level.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}
inline bool enabled() { return level() > 0; }

inline void set_level(int L) {
  detail::state().Level.store(L < 0 ? 0 : L, std::memory_order_relaxed);
}
inline void enable() { set_level(1); }
inline void disable() { set_level(0); }

/// Zero-duration marker ('i' phase). \p Name/\p Cat: string literals.
inline void instant(const char *Name, const char *Cat = "cpam") {
#if CPAM_METRICS
  if (enabled())
    detail::emit(Name, Cat, 'i', now_ns(), 0);
#else
  (void)Name;
  (void)Cat;
#endif
}

#if CPAM_METRICS
/// RAII complete-span ('X' phase): records [construction, destruction) on
/// the calling thread's lane. Captures the enabled state at construction,
/// so a span straddling enable/disable is dropped whole, never half-timed.
class span {
public:
  explicit span(const char *Name, const char *Cat = "cpam")
      : Name(Name), Cat(Cat), T0Plus1(enabled() ? now_ns() + 1 : 0) {}
  span(const span &) = delete;
  span &operator=(const span &) = delete;
  ~span() {
    if (T0Plus1)
      detail::emit(Name, Cat, 'X', T0Plus1 - 1, now_ns() - (T0Plus1 - 1));
  }

private:
  const char *Name;
  const char *Cat;
  uint64_t T0Plus1; // Start + 1; 0 means "tracing was off at entry".
};
#else
class span {
public:
  explicit span(const char *, const char * = "cpam") {}
  span(const span &) = delete;
  span &operator=(const span &) = delete;
};
#endif

/// Drops every recorded event (takes each ring's mutex; rings stay
/// registered). For tests that want a fresh window.
inline void clear() {
  detail::state_t &S = detail::state();
  std::lock_guard<std::mutex> RL(S.RegMu);
  for (ring *R : S.Rings) {
    std::lock_guard<std::mutex> L(R->Mu);
    R->Ev.clear();
    R->Next = 0;
    R->Dropped = 0;
  }
}

/// Flushes every ring to \p Path as Chrome trace-event JSON (object form:
/// {"traceEvents": [...]}). Safe concurrent with recording (per-ring
/// mutexes); events recorded during the flush may or may not appear.
/// Returns false if the file cannot be opened.
inline bool write_json(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fprintf(F, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
  std::fprintf(F, "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
                  "\"tid\": 0, \"args\": {\"name\": \"cpam\"}}");
  detail::state_t &S = detail::state();
  std::vector<ring *> Rings;
  {
    std::lock_guard<std::mutex> RL(S.RegMu);
    Rings = S.Rings;
  }
  uint64_t Dropped = 0;
  for (ring *R : Rings) {
    std::vector<event> Ev;
    int Tid;
    {
      std::lock_guard<std::mutex> L(R->Mu);
      Ev = R->Ev;
      Tid = R->Tid;
      Dropped += R->Dropped;
    }
    if (Ev.empty())
      continue;
    std::fprintf(F,
                 ",\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
                 "\"tid\": %d, \"args\": {\"name\": \"%s %d\"}}",
                 Tid,
                 Tid < par::Scheduler::kForeignSlotBase ? "worker" : "thread",
                 Tid);
    for (const event &E : Ev) {
      if (E.Ph == 'X')
        std::fprintf(F,
                     ",\n{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                     "\"pid\": 0, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}",
                     E.Name, E.Cat, Tid, E.TsNs / 1e3, E.DurNs / 1e3);
      else
        std::fprintf(F,
                     ",\n{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"i\", "
                     "\"s\": \"t\", \"pid\": 0, \"tid\": %d, \"ts\": %.3f}",
                     E.Name, E.Cat, Tid, E.TsNs / 1e3);
    }
  }
  std::fprintf(F, "\n]}\n");
  std::fclose(F);
  if (Dropped)
    std::fprintf(stderr,
                 "cpam trace: %llu events dropped to ring wrap (oldest "
                 "window lost)\n",
                 static_cast<unsigned long long>(Dropped));
  return true;
}

} // namespace trace
} // namespace obs
} // namespace cpam

#endif // CPAM_OBS_TRACE_H
