//===- bfs.h - Parallel breadth-first search --------------------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#ifndef CPAM_GRAPH_BFS_H
#define CPAM_GRAPH_BFS_H

#include <atomic>
#include <limits>

#include "src/graph/ligra.h"

namespace cpam {

inline constexpr vertex_id kBfsUnvisited =
    std::numeric_limits<vertex_id>::max();

/// Frontier-based parallel BFS over any NeighborFn (flat snapshot or
/// baseline graph). Returns the parent array (kBfsUnvisited = unreached;
/// Parents[Src] == Src).
template <class NeighborFn>
std::vector<vertex_id> bfs(const NeighborFn &Neighbors, size_t NumVertices,
                           vertex_id Src) {
  std::vector<std::atomic<vertex_id>> Parents(NumVertices);
  par::parallel_for(0, NumVertices, [&](size_t I) {
    Parents[I].store(kBfsUnvisited, std::memory_order_relaxed);
  });
  Parents[Src].store(Src, std::memory_order_relaxed);
  vertex_subset Frontier;
  Frontier.Vs = {Src};
  while (!Frontier.empty()) {
    Frontier = edge_map(
        Neighbors, Frontier,
        [&](vertex_id U, vertex_id V) {
          vertex_id Expect = kBfsUnvisited;
          return Parents[V].compare_exchange_strong(Expect, U);
        },
        [&](vertex_id V) {
          return Parents[V].load(std::memory_order_relaxed) == kBfsUnvisited;
        });
  }
  std::vector<vertex_id> Out(NumVertices);
  par::parallel_for(0, NumVertices, [&](size_t I) {
    Out[I] = Parents[I].load(std::memory_order_relaxed);
  });
  return Out;
}

} // namespace cpam

#endif // CPAM_GRAPH_BFS_H
