//===- bc.h - Single-source betweenness centrality ---------------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#ifndef CPAM_GRAPH_BC_H
#define CPAM_GRAPH_BC_H

#include <atomic>
#include <limits>

#include "src/graph/ligra.h"

namespace cpam {

/// Single-source betweenness centrality contributions (Brandes) from \p
/// Src: forward level-synchronous BFS computing shortest-path counts sigma,
/// then a backward sweep accumulating dependencies. Races are avoided by
/// having each vertex pull from its own neighbor list (one scan per
/// direction). Returns delta[v] for all v.
template <class NeighborFn>
std::vector<double> bc_from_source(const NeighborFn &Neighbors,
                                   size_t NumVertices, vertex_id Src) {
  constexpr uint32_t kUnset = std::numeric_limits<uint32_t>::max();
  std::vector<std::atomic<uint32_t>> Dist(NumVertices);
  par::parallel_for(0, NumVertices, [&](size_t I) { Dist[I].store(kUnset); });
  Dist[Src].store(0);

  // Forward: discover levels.
  std::vector<std::vector<vertex_id>> Levels;
  vertex_subset Frontier;
  Frontier.Vs = {Src};
  uint32_t D = 0;
  while (!Frontier.empty()) {
    Levels.push_back(Frontier.Vs);
    ++D;
    Frontier = edge_map(
        Neighbors, Frontier,
        [&](vertex_id, vertex_id V) {
          uint32_t Expect = kUnset;
          return Dist[V].compare_exchange_strong(Expect, D);
        },
        [&](vertex_id V) { return Dist[V].load() == kUnset; });
  }

  // Sigma: each vertex pulls counts from the previous level.
  std::vector<double> Sigma(NumVertices, 0.0);
  Sigma[Src] = 1.0;
  for (uint32_t L = 1; L < Levels.size(); ++L) {
    par::parallel_for(
        0, Levels[L].size(),
        [&](size_t I) {
          vertex_id V = Levels[L][I];
          double S = 0;
          Neighbors(V, [&](vertex_id U) {
            if (Dist[U].load() == L - 1)
              S += Sigma[U];
          });
          Sigma[V] = S;
        },
        /*Gran=*/1);
  }

  // Backward: each vertex pulls dependencies from the next level.
  std::vector<double> Delta(NumVertices, 0.0);
  for (size_t L = Levels.size(); L-- > 1;) {
    par::parallel_for(
        0, Levels[L - 1].size(),
        [&](size_t I) {
          vertex_id U = Levels[L - 1][I];
          double Acc = 0;
          Neighbors(U, [&](vertex_id V) {
            if (Dist[V].load() == L)
              Acc += Sigma[U] / Sigma[V] * (1.0 + Delta[V]);
          });
          Delta[U] += Acc;
        },
        /*Gran=*/1);
  }
  return Delta;
}

} // namespace cpam

#endif // CPAM_GRAPH_BC_H
