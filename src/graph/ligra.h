//===- ligra.h - Frontier-based graph traversal primitives -----------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact Ligra-style interface (Shun-Blelloch) over flat snapshots:
/// vertex subsets plus edge_map. The paper's graph algorithms (Sec. 9) are
/// written against this interface, identically for CPAM graphs and the
/// C-tree (Aspen) baseline — both only need "iterate my neighbors".
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_GRAPH_LIGRA_H
#define CPAM_GRAPH_LIGRA_H

#include <vector>

#include "src/parallel/primitives.h"
#include "src/util/datagen.h"

namespace cpam {

/// A sparse set of active vertices.
struct vertex_subset {
  std::vector<vertex_id> Vs;
  size_t size() const { return Vs.size(); }
  bool empty() const { return Vs.empty(); }
};

/// Applies f(u, v) over all edges (u, v) with u in \p Frontier and
/// cond(v); v is added to the result frontier when f returns true.
/// \p Lists is any indexable neighbor container with
/// `foreach_seq(f: v -> void)` semantics via a callback: we require
/// Lists[u] to provide `template foreach(F)` — adapted below for edge_set.
template <class NeighborFn, class F, class Cond>
vertex_subset edge_map(const NeighborFn &Neighbors,
                       const vertex_subset &Frontier, const F &f,
                       const Cond &cond) {
  size_t N = Frontier.size();
  std::vector<std::vector<vertex_id>> Local(N);
  par::parallel_for(
      0, N,
      [&](size_t I) {
        vertex_id U = Frontier.Vs[I];
        Neighbors(U, [&](vertex_id V) {
          if (cond(V) && f(U, V))
            Local[I].push_back(V);
        });
      },
      /*Gran=*/1);
  // Concatenate the per-vertex outputs.
  std::vector<size_t> Sizes(N);
  par::parallel_for(0, N, [&](size_t I) { Sizes[I] = Local[I].size(); });
  std::vector<size_t> Offsets(N);
  size_t Total = par::scan_exclusive(Sizes.data(), N, Offsets.data());
  vertex_subset Out;
  Out.Vs.resize(Total);
  par::parallel_for(
      0, N,
      [&](size_t I) {
        std::copy(Local[I].begin(), Local[I].end(),
                  Out.Vs.begin() + Offsets[I]);
      },
      /*Gran=*/1);
  return Out;
}

/// Adapts a flat snapshot (vector of edge trees) to the NeighborFn shape.
template <class EdgeSet> struct snapshot_neighbors {
  const std::vector<EdgeSet> &Snap;
  template <class F> void operator()(vertex_id U, const F &f) const {
    if (U < Snap.size())
      Snap[U].foreach_seq([&](vertex_id V) { f(V); });
  }
};

template <class EdgeSet>
snapshot_neighbors<EdgeSet> make_neighbors(const std::vector<EdgeSet> &S) {
  return snapshot_neighbors<EdgeSet>{S};
}

} // namespace cpam

#endif // CPAM_GRAPH_LIGRA_H
