//===- mis.h - Parallel maximal independent set -----------------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#ifndef CPAM_GRAPH_MIS_H
#define CPAM_GRAPH_MIS_H

#include <atomic>

#include "src/graph/ligra.h"
#include "src/parallel/random.h"

namespace cpam {

/// Parallel maximal independent set via random priorities (Luby-style
/// rounds): each round, every undecided vertex whose hash-priority is a
/// strict local minimum among undecided neighbors joins the MIS and knocks
/// out its neighbors. Returns a flag per vertex. O(log n) rounds whp.
template <class NeighborFn>
std::vector<bool> mis(const NeighborFn &Neighbors, size_t NumVertices) {
  enum : uint8_t { Undecided = 0, InSet = 1, Out = 2 };
  std::vector<std::atomic<uint8_t>> State(NumVertices);
  par::parallel_for(0, NumVertices,
                    [&](size_t I) { State[I].store(Undecided); });
  auto Prio = [](vertex_id V) { return hash64(V); };

  std::vector<vertex_id> Active(NumVertices);
  par::parallel_for(0, NumVertices, [&](size_t I) {
    Active[I] = static_cast<vertex_id>(I);
  });
  while (!Active.empty()) {
    // Join: local priority minima enter the set.
    par::parallel_for(
        0, Active.size(),
        [&](size_t I) {
          vertex_id V = Active[I];
          if (State[V].load(std::memory_order_relaxed) != Undecided)
            return;
          bool IsMin = true;
          Neighbors(V, [&](vertex_id U) {
            if (U != V &&
                State[U].load(std::memory_order_relaxed) != Out &&
                Prio(U) < Prio(V))
              IsMin = false;
          });
          if (IsMin)
            State[V].store(InSet, std::memory_order_relaxed);
        },
        /*Gran=*/1);
    // Knock out neighbors of fresh members.
    par::parallel_for(
        0, Active.size(),
        [&](size_t I) {
          vertex_id V = Active[I];
          if (State[V].load(std::memory_order_relaxed) != InSet)
            return;
          Neighbors(V, [&](vertex_id U) {
            uint8_t Expect = Undecided;
            if (U != V)
              State[U].compare_exchange_strong(Expect, Out);
          });
        },
        /*Gran=*/1);
    // Compact the survivors.
    std::vector<vertex_id> Next(Active.size());
    size_t K = par::pack(
        Active.data(),
        [&](size_t I) {
          return State[Active[I]].load(std::memory_order_relaxed) ==
                 Undecided;
        },
        Active.size(), Next.data());
    Next.resize(K);
    Active = std::move(Next);
  }
  std::vector<bool> InMis(NumVertices);
  for (size_t I = 0; I < NumVertices; ++I)
    InMis[I] = State[I].load(std::memory_order_relaxed) == InSet;
  return InMis;
}

} // namespace cpam

#endif // CPAM_GRAPH_MIS_H
