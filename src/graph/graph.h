//===- graph.h - Purely-functional graph on PaC-trees ----------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The graph representation of Sec. 9: a two-level structure with a
/// top-level *vertex tree* (an augmented PaC-tree from vertex id to edge
/// list, augmented with the total edge count) whose values are *edge trees*
/// (difference-encoded PaC-trees of neighbor ids). Both levels use B = 64
/// as in the paper. Snapshots are O(1); batch updates are parallel unions /
/// differences over both levels; a *flat snapshot* (Sec. 10.5) caches one
/// edge-tree reference per vertex in an array so algorithms skip the vertex
/// tree traversal.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_GRAPH_GRAPH_H
#define CPAM_GRAPH_GRAPH_H

#include <vector>

#include "src/api/aug_map.h"
#include "src/api/pam_set.h"
#include "src/encoding/diff_encoder.h"
#include "src/util/datagen.h"

namespace cpam {

/// The graph's compile-time configuration: block sizes of the two levels
/// and the edge-tree encoder. Defaults follow the paper (B = 64, difference
/// encoding on edge trees; "PaC-tree (Diff)" also chunks the vertex tree).
template <int VertexB = 64, int EdgeB = 64,
          template <class> class EdgeEnc = diff_encoder>
struct graph_config {
  using edge_set = pam_set<vertex_id, EdgeB, EdgeEnc>;

  struct vertex_entry {
    using key_t = vertex_id;
    using val_t = edge_set;
    using entry_t = std::pair<vertex_id, edge_set>;
    using aug_t = size_t; // Total number of edges below.
    static constexpr bool has_val = true;
    static const key_t &get_key(const entry_t &E) { return E.first; }
    static const val_t &get_val(const entry_t &E) { return E.second; }
    static val_t &get_val(entry_t &E) { return E.second; }
    static bool comp(key_t A, key_t B) { return A < B; }
    static aug_t aug_empty() { return 0; }
    static aug_t aug_from_entry(const entry_t &E) { return E.second.size(); }
    static aug_t aug_combine(aug_t A, aug_t B) { return A + B; }
  };

  using vertex_tree = aug_map<vertex_entry, VertexB>;
};

/// An unweighted symmetric graph as a purely-functional value: copying a
/// sym_graph is an O(1) snapshot that can be read while newer versions are
/// updated (the multiversioning use case of Fig. 14).
template <class Config = graph_config<>> class sym_graph_t {
public:
  using config = Config;
  using edge_set = typename Config::edge_set;
  using vertex_tree = typename Config::vertex_tree;
  using vertex_entry_t = typename vertex_tree::entry_t;

  sym_graph_t() = default;

  /// Builds from a symmetric, sorted, deduplicated (src, dst) edge list.
  /// Every endpoint in [0, NumVertices) gets a (possibly empty) slot in
  /// flat snapshots.
  static sym_graph_t from_edges(const std::vector<edge_pair> &Edges,
                                size_t NumVertices) {
    sym_graph_t G;
    G.NumVertices = NumVertices;
    if (Edges.empty())
      return G;
    // Find per-source ranges.
    std::vector<size_t> Starts(Edges.size());
    size_t NumSrc = par::pack_index(
        Edges.size(),
        [&](size_t I) {
          return I == 0 || Edges[I].first != Edges[I - 1].first;
        },
        Starts.data());
    Starts.resize(NumSrc);
    std::vector<vertex_entry_t> Entries(NumSrc);
    par::parallel_for(
        0, NumSrc,
        [&](size_t S) {
          size_t Lo = Starts[S];
          size_t Hi = S + 1 < NumSrc ? Starts[S + 1] : Edges.size();
          std::vector<vertex_id> Ngh(Hi - Lo);
          for (size_t I = Lo; I < Hi; ++I)
            Ngh[I - Lo] = Edges[I].second;
          Entries[S] = {Edges[Lo].first,
                        edge_set::from_sorted(std::move(Ngh))};
        },
        /*Gran=*/1);
    G.VT = vertex_tree::from_sorted(std::move(Entries));
    return G;
  }

  size_t num_vertices() const { return NumVertices; }
  /// Number of directed edges (each undirected edge counts twice), from the
  /// vertex tree's augmentation — O(1).
  size_t num_edges() const { return VT.aug_val(); }
  /// Structure bytes: vertex tree plus every edge tree.
  size_t size_in_bytes() const {
    size_t Inner = VT.map_reduce(
        [](const vertex_entry_t &E) { return E.second.size_in_bytes(); },
        size_t(0), std::plus<size_t>());
    return VT.size_in_bytes() + Inner;
  }

  size_t degree(vertex_id V) const {
    auto E = VT.find_entry(V);
    return E ? E->second.size() : 0;
  }

  edge_set neighbors(vertex_id V) const {
    auto E = VT.find_entry(V);
    return E ? E->second : edge_set();
  }

  /// A flat snapshot (Sec. 10.5): one O(1) edge-tree snapshot per vertex,
  /// built in parallel by a single traversal of the vertex tree.
  std::vector<edge_set> flat_snapshot() const {
    std::vector<edge_set> Snap(NumVertices);
    VT.foreach_index([&](size_t, const vertex_entry_t &E) {
      Snap[E.first] = E.second;
    });
    return Snap;
  }

  /// Inserts a batch of *directed* edges (duplicates and existing edges are
  /// fine). For undirected updates include both directions in the batch.
  /// Work O(m log(n/m + 1)) for a sorted batch (Thm. 7.1's bound shape).
  sym_graph_t insert_edges(std::vector<edge_pair> Batch) const {
    return applyBatch(std::move(Batch), /*IsDelete=*/false);
  }

  /// Deletes a batch of directed edges (absent edges are ignored).
  sym_graph_t delete_edges(std::vector<edge_pair> Batch) const {
    return applyBatch(std::move(Batch), /*IsDelete=*/true);
  }

  std::string check_invariants() const {
    std::string S = VT.check_invariants();
    if (!S.empty())
      return S;
    bool Ok = true;
    VT.foreach_seq([&](const vertex_entry_t &E) {
      if (!E.second.check_invariants().empty())
        Ok = false;
    });
    return Ok ? "" : "edge tree invariant violation";
  }

  const vertex_tree &vertices() const { return VT; }

private:
  /// Shared batch path: group by source, build per-source deltas, then
  /// merge into the vertex tree with union / difference on edge trees.
  sym_graph_t applyBatch(std::vector<edge_pair> Batch, bool IsDelete) const {
    sym_graph_t Out;
    Out.NumVertices = NumVertices;
    if (Batch.empty()) {
      Out.VT = VT;
      return Out;
    }
    par::sort(Batch);
    size_t M = par::unique(Batch.data(), Batch.size());
    Batch.resize(M);
    std::vector<size_t> Starts(M);
    size_t NumSrc = par::pack_index(
        M,
        [&](size_t I) {
          return I == 0 || Batch[I].first != Batch[I - 1].first;
        },
        Starts.data());
    Starts.resize(NumSrc);
    std::vector<vertex_entry_t> Delta(NumSrc);
    par::parallel_for(
        0, NumSrc,
        [&](size_t S) {
          size_t Lo = Starts[S];
          size_t Hi = S + 1 < NumSrc ? Starts[S + 1] : M;
          std::vector<vertex_id> Ngh(Hi - Lo);
          for (size_t I = Lo; I < Hi; ++I)
            Ngh[I - Lo] = Batch[I].second;
          Delta[S] = {Batch[Lo].first,
                      edge_set::from_sorted(std::move(Ngh))};
        },
        /*Gran=*/1);
    if (IsDelete) {
      // Only existing vertices can lose edges; drop foreign sources, then
      // subtract per-vertex.
      std::vector<vertex_entry_t> Kept(Delta.size());
      size_t K = par::pack(
          Delta.data(),
          [&](size_t I) { return VT.contains(Delta[I].first); },
          Delta.size(), Kept.data());
      Kept.resize(K);
      vertex_tree DeltaT = vertex_tree::from_sorted(std::move(Kept));
      Out.VT = vertex_tree::map_union(
          VT, DeltaT, [](const edge_set &Old, const edge_set &Del) {
            return edge_set::map_difference(Old, Del);
          });
      return Out;
    }
    vertex_tree DeltaT = vertex_tree::from_sorted(std::move(Delta));
    Out.VT = vertex_tree::map_union(
        VT, DeltaT, [](const edge_set &Old, const edge_set &New) {
          return edge_set::map_union(Old, New);
        });
    // Batches may reference vertices beyond the current bound.
    size_t MaxV = static_cast<size_t>(Batch.back().first) + 1;
    if (MaxV > Out.NumVertices)
      Out.NumVertices = MaxV;
    return Out;
  }

  vertex_tree VT;
  size_t NumVertices = 0;
};

/// The paper's default graph configuration.
using sym_graph = sym_graph_t<graph_config<>>;
/// P-tree (PAM) baseline: no blocking, no compression at either level.
using sym_graph_ptree = sym_graph_t<graph_config<0, 0, raw_encoder>>;
/// PaC-tree without difference encoding (Fig. 11's "PaC-tree" bar).
using sym_graph_nodiff = sym_graph_t<graph_config<64, 64, raw_encoder>>;

} // namespace cpam

#endif // CPAM_GRAPH_GRAPH_H
