//===- graph_analytics.cpp - Streaming graph analytics demo -------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The Sec. 9/10.5 graph-streaming scenario: build a compressed functional
// graph from an rMAT stream, run analytics (BFS, MIS, betweenness) on a
// snapshot while batches of edges are inserted, and show that snapshots are
// unaffected by later updates.
//
//   ./build/examples/graph_analytics [log2_vertices]
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>

#include "src/graph/bc.h"
#include "src/graph/bfs.h"
#include "src/graph/graph.h"
#include "src/graph/mis.h"
#include "src/util/timer.h"

using namespace cpam;

int main(int argc, char **argv) {
  int LogN = argc > 1 ? std::atoi(argv[1]) : 16;
  size_t N = size_t(1) << LogN;
  auto Edges = rmat_graph(LogN, N * 10);
  Timer T;
  sym_graph G = sym_graph::from_edges(Edges, N);
  std::printf("built graph: %zu vertices, %zu directed edges in %.3fs, "
              "%.2f MB (%.2f bytes/edge)\n",
              G.num_vertices(), G.num_edges(), T.elapsed(),
              G.size_in_bytes() / 1048576.0,
              double(G.size_in_bytes()) / G.num_edges());

  // Analytics on a flat snapshot.
  T.reset();
  auto Snap = G.flat_snapshot();
  auto Ngh = make_neighbors(Snap);
  std::printf("flat snapshot in %.4fs\n", T.elapsed());

  T.reset();
  auto Parents = bfs(Ngh, N, Edges[0].first);
  size_t Reached = 0;
  for (auto P : Parents)
    Reached += P != kBfsUnvisited;
  std::printf("BFS from %u reached %zu vertices in %.4fs\n", Edges[0].first,
              Reached, T.elapsed());

  T.reset();
  auto InMis = mis(Ngh, N);
  size_t MisSize = 0;
  for (bool B : InMis)
    MisSize += B;
  std::printf("MIS of size %zu in %.4fs\n", MisSize, T.elapsed());

  T.reset();
  auto Delta = bc_from_source(Ngh, N, Edges[0].first);
  double MaxBc = 0;
  for (double D : Delta)
    MaxBc = std::max(MaxBc, D);
  std::printf("BC from %u: max dependency %.1f in %.4fs\n", Edges[0].first,
              MaxBc, T.elapsed());

  // Streaming: insert batches while the old snapshot stays queryable.
  sym_graph Before = G; // O(1) snapshot.
  RmatParams P;
  P.Seed = 777;
  for (int Round = 0; Round < 3; ++Round) {
    auto Raw = rmat_edges(LogN, 10000, P);
    P.Seed = hash64(P.Seed);
    std::vector<edge_pair> Batch;
    for (auto &[U, V] : Raw)
      if (U != V) {
        Batch.push_back({U, V});
        Batch.push_back({V, U});
      }
    T.reset();
    G = G.insert_edges(Batch);
    std::printf("round %d: +%zu edge updates in %.4fs -> %zu edges\n", Round,
                Batch.size(), T.elapsed(), G.num_edges());
  }
  std::printf("snapshot taken before streaming still has %zu edges "
              "(current: %zu)\n",
              Before.num_edges(), G.num_edges());
  return 0;
}
