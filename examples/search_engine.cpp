//===- search_engine.cpp - Inverted index demo --------------------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Builds a weighted inverted index over a synthetic Zipfian corpus (the
// paper's Wikipedia workload stand-in) and runs AND/OR and top-k queries —
// the Sec. 9 "search engine" application. Demonstrates compression: the
// difference-encoded posting lists use a few bytes per posting.
//
//   ./build/examples/search_engine [num_tokens]
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>

#include "src/apps/inverted_index.h"
#include "src/util/timer.h"

using namespace cpam;

int main(int argc, char **argv) {
  size_t N = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000000;
  std::printf("generating a %zu-token Zipfian corpus...\n", N);
  Corpus C = generate_corpus(N, 20000, N / 200 + 1, 1.0, 17);

  Timer T;
  inverted_index<> Idx(C);
  std::printf("indexed %zu words / %zu postings in %.3fs using %.2f MB "
              "(%.2f bytes/posting)\n",
              Idx.num_words(), Idx.num_postings(), T.elapsed(),
              Idx.size_in_bytes() / 1048576.0,
              double(Idx.size_in_bytes()) / Idx.num_postings());

  // Query the two most common words in the token stream.
  std::string W1 = C.Words[C.Tokens[0]];
  std::string W2 = C.Words[C.Tokens[1]];
  if (W1 == W2)
    W2 = C.Words[C.Tokens[2]];
  auto L1 = Idx.get_list(W1);
  std::printf("\nposting list of \"%s\": %zu docs, max score %u\n",
              W1.c_str(), L1.size(), L1.aug_val());

  auto And = Idx.query_and(W1, W2);
  auto Or = Idx.query_or(W1, W2);
  std::printf("\"%s\" AND \"%s\": %zu docs;  OR: %zu docs\n", W1.c_str(),
              W2.c_str(), And.size(), Or.size());

  std::printf("top-5 docs for the AND query (doc, combined score):\n");
  for (auto [Doc, Score] : inverted_index<>::top_k(And, 5))
    std::printf("  doc %u  score %u\n", Doc, Score);

  // Functional updates: indexes are values too — adding a document's worth
  // of postings to one word leaves earlier snapshots untouched.
  auto Snapshot = Idx.get_list(W1);
  auto Updated = Snapshot.insert(
      static_cast<uint32_t>(C.num_docs()), 42u);
  std::printf("\nafter inserting doc %zu into \"%s\": snapshot %zu docs, "
              "updated %zu docs\n",
              C.num_docs(), W1.c_str(), Snapshot.size(), Updated.size());
  return 0;
}
