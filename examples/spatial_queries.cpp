//===- spatial_queries.cpp - Interval and 2D range query demo -----------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The Sec. 9 computational-geometry applications: a 1D interval tree
// answering stabbing queries (e.g. "which TCP connections were open at time
// t?") and a 2D range tree counting/reporting points in rectangles — both
// purely functional, so queries can keep running against a snapshot while
// intervals/points are inserted.
//
//   ./build/examples/spatial_queries [n]
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>

#include "src/apps/interval_tree.h"
#include "src/apps/range_tree.h"
#include "src/util/timer.h"

using namespace cpam;

int main(int argc, char **argv) {
  size_t N = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000000;

  // --- Interval tree: connection log -----------------------------------
  std::printf("== interval tree: %zu connections ==\n", N);
  auto Ivs = random_intervals(N, 1u << 30, 50000, 5);
  Timer T;
  interval_tree<32> Conn(Ivs);
  std::printf("built in %.3fs, %.2f MB\n", T.elapsed(),
              Conn.size_in_bytes() / 1048576.0);
  uint64_t When = 1u << 29;
  T.reset();
  size_t Open = Conn.count_stab(When);
  std::printf("connections open at t=%lu: %zu (%.1f us)\n",
              (unsigned long)When, Open, T.elapsed() * 1e6);
  auto Some = Conn.report_stab(When);
  std::printf("first open connection: [%lu, %lu]\n",
              (unsigned long)Some.front().Left,
              (unsigned long)Some.front().Right);

  // Functional update: the snapshot keeps answering the old question.
  interval_tree<32> Snapshot = Conn.snapshot();
  Conn.insert_inplace({When - 5, When + 5});
  std::printf("after insert: live=%zu stabbing, snapshot=%zu stabbing\n",
              Conn.count_stab(When), Snapshot.count_stab(When));

  // --- 2D range tree: point map ------------------------------------------
  size_t Np = N / 5;
  std::printf("\n== 2D range tree: %zu points ==\n", Np);
  auto Raw = random_points(Np, 1u << 20, 6);
  std::vector<point2d> Pts(Raw.size());
  for (size_t I = 0; I < Raw.size(); ++I)
    Pts[I] = {static_cast<uint32_t>(Raw[I].first),
              static_cast<uint32_t>(Raw[I].second)};
  T.reset();
  range_tree<128, 16> RT(Pts);
  std::printf("built in %.3fs, %.2f MB (inner trees included)\n",
              T.elapsed(), RT.size_in_bytes() / 1048576.0);
  uint32_t Lo = 1u << 18, Hi = (1u << 18) + (1u << 17);
  T.reset();
  size_t Count = RT.query_count(Lo, Lo, Hi, Hi);
  double CountUs = T.elapsed() * 1e6;
  T.reset();
  auto Found = RT.query_points(Lo, Lo, Hi, Hi);
  std::printf("rectangle [%u,%u]^2: %zu points (count %.1f us, report "
              "%.1f us)\n",
              Lo, Hi, Count, CountUs, T.elapsed() * 1e6);
  std::printf("one of them: (%u, %u)\n", Found.front().X, Found.front().Y);
  return 0;
}
