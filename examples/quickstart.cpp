//===- quickstart.cpp - CPAM public API tour ---------------------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// A tour of the library: purely-functional sets, maps, augmented maps and
// sequences backed by PaC-trees; O(1) snapshots; parallel bulk operations;
// difference-encoded compression. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "src/api/aug_map.h"
#include "src/api/pam_map.h"
#include "src/api/pam_seq.h"
#include "src/api/pam_set.h"
#include "src/encoding/diff_encoder.h"

using namespace cpam;

int main() {
  std::printf("== CPAM quickstart (%d workers) ==\n", par::num_workers());

  // --- Ordered sets -------------------------------------------------------
  // A pam_set is a value: "inserting" returns a new set, the old one is an
  // unchanged snapshot sharing almost all memory.
  pam_set<uint64_t> Evens(
      par::tabulate(1000, [](size_t I) { return uint64_t(2 * I); }));
  pam_set<uint64_t> WithSeven = Evens.insert(7);
  std::printf("evens: %zu keys; with 7: %zu keys; old still has 7? %s\n",
              Evens.size(), WithSeven.size(),
              Evens.contains(7) ? "yes" : "no");

  // Set algebra runs in parallel with strong theoretical bounds (Table 1).
  pam_set<uint64_t> Threes(
      par::tabulate(700, [](size_t I) { return uint64_t(3 * I); }));
  auto Union = pam_set<uint64_t>::map_union(Evens, Threes);
  auto Common = pam_set<uint64_t>::map_intersect(Evens, Threes);
  std::printf("union: %zu, intersection (multiples of 6): %zu\n",
              Union.size(), Common.size());

  // --- Compressed sets -----------------------------------------------------
  // Difference encoding stores sorted integer keys in ~1-2 bytes each.
  using packed_set = pam_set<uint64_t, 128, diff_encoder>;
  auto Keys = par::tabulate(100000, [](size_t I) { return uint64_t(3 * I); });
  packed_set Packed(Keys);
  pam_set<uint64_t, 0> Uncompressed(Keys);
  std::printf("100k keys: P-tree %zu bytes, diff-encoded PaC-tree %zu bytes "
              "(%.1fx smaller)\n",
              Uncompressed.size_in_bytes(), Packed.size_in_bytes(),
              double(Uncompressed.size_in_bytes()) / Packed.size_in_bytes());

  // --- Ordered maps ---------------------------------------------------------
  pam_map<uint64_t, uint64_t> Salaries(
      {{101, 95000}, {102, 105000}, {103, 85000}});
  auto Raised =
      Salaries.map_values([](const auto &E) { return E.second + 5000; });
  std::printf("salary of 102: %lu -> %lu after raise\n",
              (unsigned long)*Salaries.find(102),
              (unsigned long)*Raised.find(102));

  // --- Augmented maps --------------------------------------------------------
  // Each node aggregates its subtree; range aggregates cost O(log n + B).
  aug_map<aug_sum_entry<uint64_t, uint64_t>> Sales(par::tabulate(
      10000, [](size_t I) {
        return std::pair<uint64_t, uint64_t>{I, I % 97};
      }));
  std::printf("total sales: %lu; sales in days [100, 200]: %lu\n",
              (unsigned long)Sales.aug_val(),
              (unsigned long)Sales.aug_range(100, 200));

  // --- Sequences -------------------------------------------------------------
  // O(log n) concatenation and slicing; arrays need O(n).
  auto S1 = pam_seq<uint64_t>::tabulate(1000, [](size_t I) { return I; });
  auto S2 = S1.reverse();
  auto Cat = pam_seq<uint64_t>::append(S1, S2);
  std::printf("palindrome of length %zu; middle two: %lu %lu\n", Cat.size(),
              (unsigned long)Cat.nth(999), (unsigned long)Cat.nth(1000));
  std::printf("sorted prefix? %s; full sorted? %s\n",
              Cat.take(1000).is_sorted() ? "yes" : "no",
              Cat.is_sorted() ? "yes" : "no");
  return 0;
}
