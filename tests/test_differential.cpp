//===- test_differential.cpp - Differential oracle testing -----------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential testing layer: random interleaved sequences of insert /
/// remove / union / intersect / difference / multi_insert / multi_delete
/// driven simultaneously against a PaC-tree and a std::map / std::set
/// oracle, at block sizes B in {0, 8, 128} (PAM baseline, small blocks, the
/// paper default) and with the flat-leaf streaming fast paths both on and
/// off in the same binary. After every step the tree must satisfy the
/// Def. 4.1 invariants and agree elementwise (keys *and* combined values)
/// with the oracle. PAM (Sun et al.) defines the uncompressed semantics the
/// compressed fast paths must preserve exactly; this suite is what licenses
/// the cursor rewrite of the Sec. 8 base cases.
///
/// The same sequences also run over difference- and gamma-encoded sets so
/// the compressed read/write cursors see every operation mix. Allocator
/// modes are covered by the build matrix (the sanitize CI leg runs this
/// suite with the pool off); within a run, the leak fixture checks that no
/// step drops nodes.
///
//===----------------------------------------------------------------------===//

#include <map>
#include <new>
#include <set>
#include <vector>

#include "gtest/gtest.h"

#include "src/api/pam_map.h"
#include "src/api/pam_set.h"
#include "src/encoding/diff_encoder.h"
#include "src/encoding/gamma_encoder.h"
#include "src/util/failpoint.h"
#include "tests/test_common.h"

using namespace cpam;

namespace {

constexpr uint64_t kUniverse = 2500; // Small: forces duplicate-key traffic.
constexpr int kSteps = 160;

//===----------------------------------------------------------------------===//
// Map differential (value combination checked through std::map).
//===----------------------------------------------------------------------===//

template <class MapT> class DifferentialMapTest : public test::LeakCheckTest {};

using MapTypes =
    ::testing::Types<pam_map<uint64_t, uint64_t, 0>,   // PAM baseline
                     pam_map<uint64_t, uint64_t, 8>,   // Small blocks
                     pam_map<uint64_t, uint64_t, 128>, // Paper default
                     pam_map<uint64_t, uint64_t, 8, diff_encoder>,
                     pam_map<uint64_t, uint64_t, 128, diff_encoder>>;
TYPED_TEST_SUITE(DifferentialMapTest, MapTypes);

using Oracle = std::map<uint64_t, uint64_t>;
using EntryVec = std::vector<std::pair<uint64_t, uint64_t>>;

EntryVec randomEntries(Rng &R, size_t N, uint64_t Universe) {
  EntryVec Out(N);
  for (auto &E : Out)
    E = {R.next(Universe), R.next(1u << 16)};
  return Out;
}

Oracle toOracle(const EntryVec &Entries) {
  // Duplicate keys combine left-to-right with +, matching sort_and_combine.
  Oracle O;
  for (const auto &[K, V] : Entries) {
    auto [It, New] = O.emplace(K, V);
    if (!New)
      It->second += V;
  }
  return O;
}

template <class MapT>
void checkAgainstOracle(const MapT &M, const Oracle &O, const char *What) {
  ASSERT_EQ(M.check_invariants(), "") << What;
  ASSERT_EQ(M.size(), O.size()) << What;
  EntryVec Got = M.to_vector();
  EntryVec Want(O.begin(), O.end());
  ASSERT_EQ(Got, Want) << What;
}

/// One random differential episode. All set algebra combines values with +
/// so a dropped or double-invoked combine is visible in the value, not just
/// the key set.
template <class MapT> void runMapEpisode(Rng R) {
  auto Plus = std::plus<uint64_t>();
  MapT M;
  Oracle O;
  for (int Step = 0; Step < kSteps; ++Step) {
    switch (R.next(10)) {
    case 0: { // Point insert (combine +).
      uint64_t K = R.next(kUniverse), V = R.next(1u << 16);
      M.insert_inplace(typename MapT::entry_t(K, V), Plus);
      auto [It, New] = O.emplace(K, V);
      if (!New)
        It->second += V;
      checkAgainstOracle(M, O, "insert");
      break;
    }
    case 1: { // Point remove (key may be absent).
      uint64_t K = R.next(kUniverse);
      M = M.remove(K);
      O.erase(K);
      checkAgainstOracle(M, O, "remove");
      break;
    }
    case 2: { // Union with a random map.
      EntryVec B = randomEntries(R, R.next(400), kUniverse);
      MapT MB(B, Plus);
      Oracle OB = toOracle(B);
      M = MapT::map_union(M, MB, Plus);
      for (const auto &[K, V] : OB) {
        auto [It, New] = O.emplace(K, V);
        if (!New)
          It->second += V;
      }
      checkAgainstOracle(M, O, "union");
      break;
    }
    case 3: { // Intersect with a map overlapping half our keys.
      EntryVec B = randomEntries(R, R.next(400), kUniverse);
      for (const auto &[K, V] : O)
        if (R.next(2))
          B.push_back({K, R.next(1u << 16)});
      MapT MB(B, Plus);
      Oracle OB = toOracle(B);
      M = MapT::map_intersect(M, MB, Plus);
      Oracle Kept;
      for (const auto &[K, V] : O) {
        auto It = OB.find(K);
        if (It != OB.end())
          Kept.emplace(K, V + It->second);
      }
      O = std::move(Kept);
      checkAgainstOracle(M, O, "intersect");
      break;
    }
    case 4: { // Difference.
      EntryVec B = randomEntries(R, R.next(400), kUniverse);
      MapT MB(B, Plus);
      M = MapT::map_difference(M, MB);
      for (const auto &KV : toOracle(B))
        O.erase(KV.first);
      checkAgainstOracle(M, O, "difference");
      break;
    }
    case 5: { // multi_insert with in-batch duplicate keys.
      EntryVec B = randomEntries(R, R.next(500), kUniverse);
      M = M.multi_insert(B, Plus);
      for (const auto &[K, V] : toOracle(B)) {
        auto [It, New] = O.emplace(K, V);
        if (!New)
          It->second += V;
      }
      checkAgainstOracle(M, O, "multi_insert");
      break;
    }
    case 6: { // multi_delete with duplicate keys in the batch.
      std::vector<uint64_t> Keys(R.next(500));
      for (auto &K : Keys)
        K = R.next(kUniverse);
      M = M.multi_delete(Keys);
      for (uint64_t K : Keys)
        O.erase(K);
      checkAgainstOracle(M, O, "multi_delete");
      break;
    }
    case 7: { // filter on a key+value predicate (cursor flat base case).
      uint64_t Mod = 2 + R.next(5);
      M = M.filter(
          [Mod](const auto &E) { return (E.first + E.second) % Mod != 0; });
      Oracle Kept;
      for (const auto &[K, V] : O)
        if ((K + V) % Mod != 0)
          Kept.emplace(K, V);
      O = std::move(Kept);
      checkAgainstOracle(M, O, "filter");
      break;
    }
    case 8: { // map_values (cursor flat base case; keys pass through).
      uint64_t Add = R.next(1u << 10);
      M = M.map_values(
          [Add](const auto &E) { return E.second * 2 + Add; });
      for (auto &KV : O)
        KV.second = KV.second * 2 + Add;
      checkAgainstOracle(M, O, "map_values");
      break;
    }
    default: { // Rebuild from scratch occasionally (fresh tree shapes).
      EntryVec B = randomEntries(R, R.next(800), kUniverse);
      M = MapT(B, Plus);
      O = toOracle(B);
      checkAgainstOracle(M, O, "rebuild");
      break;
    }
    }
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

TYPED_TEST(DifferentialMapTest, RandomOpsMatchStdMapBothFastPathSettings) {
  test::FlagGuard G(TypeParam::ops::flat_fastpath());
  for (bool Fast : {false, true}) {
    TypeParam::ops::flat_fastpath() = Fast;
    runMapEpisode<TypeParam>(test::seeded_rng(Fast));
    if (this->HasFatalFailure())
      break;
  }
}

//===----------------------------------------------------------------------===//
// Allocation-chaos episodes (map): every op may die mid-flight.
//===----------------------------------------------------------------------===//

/// Random op sequence with the "alloc.node" failpoint armed at 1-in-N per
/// node allocation: each step either survives (and must then agree with
/// the oracle exactly) or throws bad_alloc (and must then leave the
/// operand untouched — strong guarantee on the functional API — and leak
/// nothing, which the enclosing LeakCheckTest fixture verifies). Only
/// functional ops are used: *_inplace documents the weaker
/// collection-empties-on-throw contract.
template <class MapT> void runMapChaosEpisode(Rng R, uint64_t Salt) {
  fail::scoped_arm Arm("alloc.node",
                       "p=200/seed=" + std::to_string(Salt));
  auto Plus = std::plus<uint64_t>();
  MapT M;
  Oracle O;
  uint64_t Survived = 0, Died = 0;
  for (int Step = 0; Step < kSteps; ++Step) {
    try {
      switch (R.next(6)) {
      case 0: { // Point insert.
        uint64_t K = R.next(kUniverse), V = R.next(1u << 16);
        MapT Next = M.insert(typename MapT::entry_t(K, V));
        M = std::move(Next);
        O[K] = V; // Functional insert overwrites (take_right).
        break;
      }
      case 1: { // Point remove.
        uint64_t K = R.next(kUniverse);
        MapT Next = M.remove(K);
        M = std::move(Next);
        O.erase(K);
        break;
      }
      case 2: { // Union.
        EntryVec B = randomEntries(R, R.next(300), kUniverse);
        MapT MB(B, Plus);
        Oracle OB = toOracle(B);
        MapT Next = MapT::map_union(M, MB, Plus);
        M = std::move(Next);
        for (const auto &[K, V] : OB) {
          auto [It, New] = O.emplace(K, V);
          if (!New)
            It->second += V;
        }
        break;
      }
      case 3: { // Difference.
        EntryVec B = randomEntries(R, R.next(300), kUniverse);
        MapT MB(B, Plus);
        MapT Next = MapT::map_difference(M, MB);
        M = std::move(Next);
        for (const auto &KV : toOracle(B))
          O.erase(KV.first);
        break;
      }
      case 4: { // multi_insert.
        EntryVec B = randomEntries(R, R.next(400), kUniverse);
        MapT Next = M.multi_insert(B, Plus);
        M = std::move(Next);
        for (const auto &[K, V] : toOracle(B)) {
          auto [It, New] = O.emplace(K, V);
          if (!New)
            It->second += V;
        }
        break;
      }
      default: { // filter.
        uint64_t Mod = 2 + R.next(5);
        MapT Next = M.filter(
            [Mod](const auto &E) { return (E.first + E.second) % Mod != 0; });
        M = std::move(Next);
        Oracle Kept;
        for (const auto &[K, V] : O)
          if ((K + V) % Mod != 0)
            Kept.emplace(K, V);
        O = std::move(Kept);
        break;
      }
      }
      ++Survived;
      checkAgainstOracle(M, O, "chaos survivor");
    } catch (const std::bad_alloc &) {
      // The batch temporaries (MB/Next) unwound; the operand must be
      // byte-for-byte what it was before the failed op.
      ++Died;
      checkAgainstOracle(M, O, "operand after injected failure");
    }
    if (::testing::Test::HasFatalFailure())
      return;
  }
  EXPECT_GT(Survived, 0u) << "injection rate so high nothing completed";
  EXPECT_GT(fail::fires("alloc.node"), 0u)
      << "chaos episode never actually injected a failure";
  EXPECT_GT(Died, 0u) << "no op observed an injected allocation failure";
}

TYPED_TEST(DifferentialMapTest, AllocChaosLeavesOperandsIntact) {
  test::FlagGuard G(TypeParam::ops::flat_fastpath());
  for (bool Fast : {false, true}) {
    TypeParam::ops::flat_fastpath() = Fast;
    runMapChaosEpisode<TypeParam>(test::seeded_rng(Fast ? 55 : 66),
                                  Fast ? 17 : 29);
    if (this->HasFatalFailure())
      break;
  }
}

//===----------------------------------------------------------------------===//
// Set differential (compressed encodings included).
//===----------------------------------------------------------------------===//

template <class SetT> class DifferentialSetTest : public test::LeakCheckTest {};

using SetTypes =
    ::testing::Types<pam_set<uint64_t, 0>, pam_set<uint64_t, 8>,
                     pam_set<uint64_t, 128>,
                     pam_set<uint64_t, 8, diff_encoder>,
                     pam_set<uint64_t, 128, diff_encoder>,
                     pam_set<uint64_t, 8, gamma_encoder>,
                     pam_set<uint64_t, 128, gamma_encoder>>;
TYPED_TEST_SUITE(DifferentialSetTest, SetTypes);

template <class SetT>
void checkSetAgainstOracle(const SetT &S, const std::set<uint64_t> &O,
                           const char *What) {
  ASSERT_EQ(S.check_invariants(), "") << What;
  ASSERT_EQ(S.size(), O.size()) << What;
  std::vector<uint64_t> Want(O.begin(), O.end());
  ASSERT_EQ(S.to_vector(), Want) << What;
}

template <class SetT> void runSetEpisode(Rng R) {
  SetT S;
  std::set<uint64_t> O;
  auto RandomKeys = [&](size_t N) {
    std::vector<uint64_t> Keys(N);
    for (auto &K : Keys)
      K = R.next(kUniverse);
    return Keys;
  };
  for (int Step = 0; Step < kSteps; ++Step) {
    switch (R.next(7)) {
    case 0: {
      uint64_t K = R.next(kUniverse);
      S = S.insert(K);
      O.insert(K);
      checkSetAgainstOracle(S, O, "insert");
      break;
    }
    case 1: {
      uint64_t K = R.next(kUniverse);
      S = S.remove(K);
      O.erase(K);
      checkSetAgainstOracle(S, O, "remove");
      break;
    }
    case 2: {
      auto Keys = RandomKeys(R.next(400));
      S = SetT::map_union(S, SetT(Keys));
      O.insert(Keys.begin(), Keys.end());
      checkSetAgainstOracle(S, O, "union");
      break;
    }
    case 3: {
      auto Keys = RandomKeys(R.next(400));
      for (uint64_t K : O)
        if (R.next(2))
          Keys.push_back(K);
      std::set<uint64_t> OB(Keys.begin(), Keys.end());
      S = SetT::map_intersect(S, SetT(Keys));
      std::set<uint64_t> Kept;
      for (uint64_t K : O)
        if (OB.count(K))
          Kept.insert(K);
      O = std::move(Kept);
      checkSetAgainstOracle(S, O, "intersect");
      break;
    }
    case 4: {
      auto Keys = RandomKeys(R.next(400));
      S = SetT::map_difference(S, SetT(Keys));
      for (uint64_t K : Keys)
        O.erase(K);
      checkSetAgainstOracle(S, O, "difference");
      break;
    }
    case 5: {
      auto Keys = RandomKeys(R.next(500));
      S = S.multi_insert(Keys);
      O.insert(Keys.begin(), Keys.end());
      checkSetAgainstOracle(S, O, "multi_insert");
      break;
    }
    default: {
      auto Keys = RandomKeys(R.next(500));
      S = S.multi_delete(Keys);
      for (uint64_t K : Keys)
        O.erase(K);
      checkSetAgainstOracle(S, O, "multi_delete");
      break;
    }
    }
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

TYPED_TEST(DifferentialSetTest, RandomOpsMatchStdSetBothFastPathSettings) {
  test::FlagGuard G(TypeParam::ops::flat_fastpath());
  for (bool Fast : {false, true}) {
    TypeParam::ops::flat_fastpath() = Fast;
    runSetEpisode<TypeParam>(test::seeded_rng(Fast));
    if (this->HasFatalFailure())
      break;
  }
}

/// Set-typed allocation chaos: same contract as the map episode, typed
/// over every block size and encoder (the gamma cursor path included).
template <class SetT> void runSetChaosEpisode(Rng R, uint64_t Salt) {
  fail::scoped_arm Arm("alloc.node",
                       "p=200/seed=" + std::to_string(Salt));
  SetT S;
  std::set<uint64_t> O;
  auto RandomKeys = [&](size_t N) {
    std::vector<uint64_t> Keys(N);
    for (auto &K : Keys)
      K = R.next(kUniverse);
    return Keys;
  };
  uint64_t Survived = 0, Died = 0;
  for (int Step = 0; Step < kSteps; ++Step) {
    try {
      switch (R.next(6)) {
      case 0: {
        uint64_t K = R.next(kUniverse);
        SetT Next = S.insert(K);
        S = std::move(Next);
        O.insert(K);
        break;
      }
      case 1: {
        uint64_t K = R.next(kUniverse);
        SetT Next = S.remove(K);
        S = std::move(Next);
        O.erase(K);
        break;
      }
      case 2: {
        auto Keys = RandomKeys(R.next(300));
        SetT Next = SetT::map_union(S, SetT(Keys));
        S = std::move(Next);
        O.insert(Keys.begin(), Keys.end());
        break;
      }
      case 3: {
        auto Keys = RandomKeys(R.next(300));
        SetT Next = SetT::map_difference(S, SetT(Keys));
        S = std::move(Next);
        for (uint64_t K : Keys)
          O.erase(K);
        break;
      }
      case 4: {
        auto Keys = RandomKeys(R.next(400));
        SetT Next = S.multi_insert(Keys);
        S = std::move(Next);
        O.insert(Keys.begin(), Keys.end());
        break;
      }
      default: {
        auto Keys = RandomKeys(R.next(400));
        SetT Next = S.multi_delete(Keys);
        S = std::move(Next);
        for (uint64_t K : Keys)
          O.erase(K);
        break;
      }
      }
      ++Survived;
      checkSetAgainstOracle(S, O, "chaos survivor");
    } catch (const std::bad_alloc &) {
      ++Died;
      checkSetAgainstOracle(S, O, "operand after injected failure");
    }
    if (::testing::Test::HasFatalFailure())
      return;
  }
  EXPECT_GT(Survived, 0u) << "injection rate so high nothing completed";
  EXPECT_GT(fail::fires("alloc.node"), 0u)
      << "chaos episode never actually injected a failure";
  EXPECT_GT(Died, 0u) << "no op observed an injected allocation failure";
}

TYPED_TEST(DifferentialSetTest, AllocChaosLeavesOperandsIntact) {
  test::FlagGuard G(TypeParam::ops::flat_fastpath());
  for (bool Fast : {false, true}) {
    TypeParam::ops::flat_fastpath() = Fast;
    runSetChaosEpisode<TypeParam>(test::seeded_rng(Fast ? 77 : 88),
                                  Fast ? 41 : 53);
    if (this->HasFatalFailure())
      break;
  }
}

//===----------------------------------------------------------------------===//
// Multi-leaf chunked outputs (small B included, diff and gamma included).
//===----------------------------------------------------------------------===//

/// Episodes sized so the flat x flat base cases and leaf splices routinely
/// emit results spanning many leaves through the chunked write path: a
/// large, mostly-disjoint key universe keeps union outputs near |A|+|B|
/// (at B = 8 a single base case then covers several chunks), and the
/// rebuild-then-multi_insert step streams batches of thousands of entries
/// against one flat root — dozens of sealed leaves from one cursor stream.
template <class SetT> void runMultiLeafEpisode(Rng R) {
  constexpr uint64_t Universe = 200000;
  SetT S;
  std::set<uint64_t> O;
  auto RandomKeys = [&R](size_t N, uint64_t Span) {
    std::vector<uint64_t> Keys(N);
    for (auto &K : Keys)
      K = R.next(Span);
    return Keys;
  };
  for (int Step = 0; Step < 16; ++Step) {
    switch (R.next(5)) {
    case 0: { // Union with a large, mostly-disjoint set.
      auto Keys = RandomKeys(500 + R.next(2000), Universe);
      S = SetT::map_union(S, SetT(Keys));
      O.insert(Keys.begin(), Keys.end());
      checkSetAgainstOracle(S, O, "multi-leaf union");
      break;
    }
    case 1: { // Rebuild tiny (one flat root), then splice a huge batch.
      auto Seed = RandomKeys(1 + R.next(10), Universe);
      auto Batch = RandomKeys(1500 + R.next(1500), Universe);
      S = SetT(Seed).multi_insert(Batch);
      O.clear();
      O.insert(Seed.begin(), Seed.end());
      O.insert(Batch.begin(), Batch.end());
      checkSetAgainstOracle(S, O, "multi-leaf multi_insert");
      break;
    }
    case 2: { // Difference against a random subset.
      auto Keys = RandomKeys(R.next(1000), Universe);
      S = SetT::map_difference(S, SetT(Keys));
      for (uint64_t K : Keys)
        O.erase(K);
      checkSetAgainstOracle(S, O, "multi-leaf difference");
      break;
    }
    case 3: { // multi_delete of a random half of the live keys.
      std::vector<uint64_t> Keys;
      for (uint64_t K : O)
        if (R.next(2))
          Keys.push_back(K);
      S = S.multi_delete(Keys);
      for (uint64_t K : Keys)
        O.erase(K);
      checkSetAgainstOracle(S, O, "multi-leaf multi_delete");
      break;
    }
    default: { // Intersect with a supersample of the live keys.
      auto Keys = RandomKeys(R.next(800), Universe);
      for (uint64_t K : O)
        if (R.next(4) != 0)
          Keys.push_back(K);
      std::set<uint64_t> OB(Keys.begin(), Keys.end());
      S = SetT::map_intersect(S, SetT(Keys));
      std::set<uint64_t> Kept;
      for (uint64_t K : O)
        if (OB.count(K))
          Kept.insert(K);
      O = std::move(Kept);
      checkSetAgainstOracle(S, O, "multi-leaf intersect");
      break;
    }
    }
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

TYPED_TEST(DifferentialSetTest, MultiLeafChunkedResultsBothFastPathSettings) {
  test::FlagGuard G(TypeParam::ops::flat_fastpath());
  for (bool Fast : {false, true}) {
    TypeParam::ops::flat_fastpath() = Fast;
    runMultiLeafEpisode<TypeParam>(test::seeded_rng(Fast ? 11 : 22));
    if (this->HasFatalFailure())
      break;
  }
}

//===----------------------------------------------------------------------===//
// Parallel quantile-split merges.
//===----------------------------------------------------------------------===//

/// Structural fingerprint of the whole tree: node kinds, sizes, child
/// shapes and (for flat nodes) exact encoded payload byte counts. Two
/// trees with equal fingerprints, sizes-in-bytes and node counts are
/// structurally identical down to the encoded blocks — the property the
/// determinism checks below compare across scheduling modes.
template <class SetT> uint64_t treeFingerprint(const SetT &S) {
  using ops = typename SetT::ops;
  using node_t = typename ops::node_t;
  struct Walk {
    uint64_t operator()(const node_t *T) const {
      if (!T)
        return 0x9e3779b97f4a7c15ULL;
      uint64_t H;
      if (ops::is_flat(T)) {
        const auto *F = static_cast<const typename ops::NL::flat_t *>(T);
        H = 0xff51afd7ed558ccdULL * (2 * T->Size + 1) + F->Bytes;
      } else {
        const auto *R = static_cast<const typename ops::NL::regular_t *>(T);
        H = (*this)(R->Left);
        H = H * 0xc4ceb9fe1a85ec53ULL + (*this)(R->Right);
        H = H * 0xff51afd7ed558ccdULL + 2 * T->Size;
      }
      return hash64(H);
    }
  };
  return Walk{}(S.root());
}

/// Drives every operation routed through the quantile-split parallel merge
/// with the grain lowered (so these test-sized inputs split into many
/// chunks) and kappa raised (so whole operands reach the merge base
/// cases). Each op is checked three ways: contents against the std::set
/// oracle, the Def. 4.1 invariants, and structural identity between a run
/// under the real scheduler and the same chunked code path with every fork
/// inlined (par::set_sequential). Chunk boundaries are a pure function of
/// the operand sizes — never the worker count — so this last check, run by
/// the x1/x4/x16 ctest variants of this suite, pins byte-identical output
/// trees at every thread count.
template <class SetT> void runParallelMergeEpisode(Rng R) {
  using ops = typename SetT::ops;
  test::ValueGuard<size_t> GGrain(ops::parallel_merge_grain());
  test::ValueGuard<size_t> GKappa(ops::kappa());
  ops::parallel_merge_grain() = 512;
  ops::kappa() = size_t{1} << 20;
  constexpr uint64_t Universe = 300000;

  auto RandomKeys = [&R](size_t N) {
    std::vector<uint64_t> Keys(N);
    for (auto &K : Keys)
      K = R.next(Universe);
    return Keys;
  };
  // Runs the builder once under the real scheduler and once fork-inlined,
  // checks structural identity, and returns the scheduled build.
  auto CheckDeterminism = [](const char *What, auto &&Mk) {
    SetT Par = Mk();
    par::set_sequential(true);
    SetT Seq = Mk();
    par::set_sequential(false);
    EXPECT_EQ(treeFingerprint(Par), treeFingerprint(Seq))
        << What << ": chunked merge output depends on scheduling";
    EXPECT_EQ(Par.size_in_bytes(), Seq.size_in_bytes()) << What;
    EXPECT_EQ(Par.node_count(), Seq.node_count()) << What;
    return Par;
  };

  std::vector<uint64_t> KA = RandomKeys(6000), KB = RandomKeys(5000);
  SetT SA(KA), SB(KB);
  std::set<uint64_t> OA(KA.begin(), KA.end()), OB(KB.begin(), KB.end());

  {
    SetT U = CheckDeterminism(
        "union", [&] { return SetT::map_union(SA, SB); });
    std::set<uint64_t> O = OA;
    O.insert(OB.begin(), OB.end());
    checkSetAgainstOracle(U, O, "parallel union");
  }
  {
    // Overlap half of SA's keys so the intersection is nonempty in every
    // chunk.
    std::vector<uint64_t> KC = KB;
    for (uint64_t K : KA)
      if (R.next(2))
        KC.push_back(K);
    SetT SC(KC);
    SetT I = CheckDeterminism(
        "intersect", [&] { return SetT::map_intersect(SA, SC); });
    std::set<uint64_t> OC(KC.begin(), KC.end()), O;
    for (uint64_t K : OA)
      if (OC.count(K))
        O.insert(K);
    checkSetAgainstOracle(I, O, "parallel intersect");
  }
  {
    SetT D = CheckDeterminism(
        "difference", [&] { return SetT::map_difference(SA, SB); });
    std::set<uint64_t> O;
    for (uint64_t K : OA)
      if (!OB.count(K))
        O.insert(K);
    checkSetAgainstOracle(D, O, "parallel difference");
  }
  {
    // The single-worker-encode-bottleneck shape: a tiny flat root spliced
    // with a batch that dwarfs it.
    auto Seed = RandomKeys(5);
    SetT Root(Seed);
    SetT M = CheckDeterminism(
        "multi_insert", [&] { return Root.multi_insert(KA); });
    std::set<uint64_t> O(Seed.begin(), Seed.end());
    O.insert(KA.begin(), KA.end());
    checkSetAgainstOracle(M, O, "parallel multi_insert");
  }
  {
    std::vector<uint64_t> Del;
    for (uint64_t K : OA)
      if (R.next(2))
        Del.push_back(K); // Sorted: OA iterates in key order.
    SetT M = CheckDeterminism(
        "multi_delete", [&] { return SA.multi_delete(Del); });
    std::set<uint64_t> O = OA;
    for (uint64_t K : Del)
      O.erase(K);
    checkSetAgainstOracle(M, O, "parallel multi_delete");
  }
}

TYPED_TEST(DifferentialSetTest, ParallelMergeMatchesInlineRunAndOracle) {
  test::FlagGuard G(TypeParam::ops::flat_fastpath());
  for (bool Fast : {false, true}) {
    TypeParam::ops::flat_fastpath() = Fast;
    runParallelMergeEpisode<TypeParam>(test::seeded_rng(Fast ? 33 : 44));
    if (this->HasFatalFailure())
      break;
  }
  par::set_sequential(false);
}

/// The dense 50%-interleaved shape that regressed the streamed merge in
/// PR 5: even keys against odd-shifted keys, so the winner alternates
/// every entry and half the pairs collide. The run-length probe must
/// abandon streaming mid-merge on byte-coded types — asserted through the
/// fallback telemetry counter — and the result must still match the
/// oracle exactly.
TYPED_TEST(DifferentialSetTest, DenseInterleavedMergeTriggersRunFallback) {
  using ops = typename TypeParam::ops;
  test::FlagGuard G(ops::flat_fastpath());
  ops::flat_fastpath() = true;
  test::ValueGuard<size_t> GKappa(ops::kappa());
  ops::kappa() = size_t{1} << 20;

  std::vector<uint64_t> A, B;
  for (uint64_t I = 0; I < 4000; ++I) {
    A.push_back(2 * I);
    B.push_back(2 * I + (I % 2 ? 0 : 1)); // 50% dups, 50% interleave.
  }
  // Start the telemetry from zero so this assertion counts only the
  // merges below — earlier episodes in the same process (other tests,
  // the fixture's own setup) cannot mask a fallback that never fires.
  ops::merge_fallback_count_reset();
  TypeParam SA(A), SB(B);
  TypeParam U = TypeParam::map_union(SA, SB);
  std::set<uint64_t> O(A.begin(), A.end());
  O.insert(B.begin(), B.end());
  checkSetAgainstOracle(U, O, "dense-interleaved union");
  if constexpr (ops::leaf_writer::kCanStream) {
    EXPECT_GT(ops::merge_fallback_count().load(), 0u)
        << "run-length fallback never fired on a degenerate-run merge";
  }
}

} // namespace
