//===- test_aug.cpp - Augmented map queries vs brute force -----------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include <algorithm>

#include "gtest/gtest.h"

#include "src/api/aug_map.h"
#include "src/api/pam_set.h"
#include "src/encoding/diff_encoder.h"
#include "src/parallel/random.h"

using namespace cpam;

namespace {

template <class MapT> class AugSumTest : public ::testing::Test {};

using SumEntry = aug_sum_entry<uint64_t, uint64_t>;
using AugSumTypes =
    ::testing::Types<aug_map<SumEntry, 0>, aug_map<SumEntry, 2>,
                     aug_map<SumEntry, 16>, aug_map<SumEntry, 128>,
                     aug_map<SumEntry, 64, diff_encoder>>;
TYPED_TEST_SUITE(AugSumTest, AugSumTypes);

TYPED_TEST(AugSumTest, AugValIsTotalSum) {
  std::vector<std::pair<uint64_t, uint64_t>> E;
  uint64_t Total = 0;
  for (uint64_t I = 0; I < 4000; ++I) {
    E.push_back({2 * I, I});
    Total += I;
  }
  TypeParam M(E);
  EXPECT_EQ(M.aug_val(), Total);
  EXPECT_EQ(M.check_invariants(), "");
}

TYPED_TEST(AugSumTest, AugRangeMatchesBruteForce) {
  std::vector<std::pair<uint64_t, uint64_t>> E;
  Rng R(3);
  for (uint64_t I = 0; I < 2000; ++I)
    E.push_back({3 * I, R.ith(I, 100)});
  TypeParam M(E);
  Rng Q(4);
  for (int T = 0; T < 200; ++T) {
    uint64_t Lo = Q.ith(2 * T, 6500);
    uint64_t Hi = Lo + Q.ith(2 * T + 1, 6500 - Lo);
    uint64_t Expect = 0;
    for (auto &[K, V] : E)
      if (K >= Lo && K <= Hi)
        Expect += V;
    ASSERT_EQ(M.aug_range(Lo, Hi), Expect) << "[" << Lo << "," << Hi << "]";
  }
  // Prefix and suffix aggregates.
  for (uint64_t K : {0ul, 1ul, 2999ul, 3000ul, 9999ul}) {
    uint64_t L = 0, Rr = 0;
    for (auto &[Key, V] : E) {
      if (Key <= K)
        L += V;
      if (Key >= K)
        Rr += V;
    }
    ASSERT_EQ(M.aug_left(K), L);
    ASSERT_EQ(M.aug_right(K), Rr);
  }
}

TYPED_TEST(AugSumTest, AugMaintainedThroughUpdates) {
  TypeParam M;
  uint64_t Total = 0;
  Rng R(5);
  for (int I = 0; I < 800; ++I) {
    uint64_t K = R.ith(I, 500), V = R.ith(I + 10000, 50);
    auto Old = M.find_entry(K);
    if (Old)
      Total -= Old->second;
    Total += V;
    M.insert_inplace(K, V);
    if (I % 97 == 0) {
      ASSERT_EQ(M.aug_val(), Total);
      ASSERT_EQ(M.check_invariants(), "");
    }
  }
  // Deletions keep the aggregate in sync as well.
  for (int I = 0; I < 400; ++I) {
    uint64_t K = R.ith(I + 50000, 500);
    auto Old = M.find_entry(K);
    if (Old)
      Total -= Old->second;
    M.remove_inplace(K);
    if (I % 83 == 0) {
      ASSERT_EQ(M.aug_val(), Total);
    }
  }
}

TYPED_TEST(AugSumTest, AugMaintainedThroughSetOps) {
  std::vector<std::pair<uint64_t, uint64_t>> A, B;
  for (uint64_t I = 0; I < 1000; ++I)
    A.push_back({I, 1});
  for (uint64_t I = 500; I < 1500; ++I)
    B.push_back({I, 10});
  TypeParam MA(A), MB(B);
  TypeParam U = TypeParam::map_union(MA, MB, std::plus<uint64_t>());
  // 500 keys with value 1, 500 with 11, 500 with 10.
  EXPECT_EQ(U.aug_val(), 500u * 1 + 500u * 11 + 500u * 10);
  TypeParam X = TypeParam::map_intersect(MA, MB, std::plus<uint64_t>());
  EXPECT_EQ(X.aug_val(), 500u * 11);
  TypeParam D = TypeParam::map_difference(MA, MB);
  EXPECT_EQ(D.aug_val(), 500u * 1);
}

using MaxEntry = aug_max_entry<uint64_t, uint64_t>;

TEST(AugMax, AugFilterPrunes) {
  using M = aug_map<MaxEntry, 16>;
  std::vector<std::pair<uint64_t, uint64_t>> E;
  for (uint64_t I = 0; I < 3000; ++I)
    E.push_back({I, I % 100});
  M Map(E);
  M Big = Map.aug_filter([](uint64_t A) { return A >= 90; });
  EXPECT_EQ(Big.size(), 300u);
  EXPECT_EQ(Big.check_invariants(), "");
  Big.foreach_seq([](const auto &Ent) { EXPECT_GE(Ent.second, 90u); });
}

TEST(AugMax, AugFindFirst) {
  using M = aug_map<MaxEntry, 8>;
  std::vector<std::pair<uint64_t, uint64_t>> E;
  for (uint64_t I = 0; I < 1000; ++I)
    E.push_back({I, I == 637 ? 999u : I % 10});
  M Map(E);
  auto Hit = Map.aug_find_first([](uint64_t A) { return A >= 500; });
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->first, 637u);
  EXPECT_FALSE(
      Map.aug_find_first([](uint64_t A) { return A >= 5000; }).has_value());
}

TEST(AugMax, RangeQueriesUseMax) {
  using M = aug_map<MaxEntry, 32>;
  std::vector<std::pair<uint64_t, uint64_t>> E;
  Rng R(6);
  for (uint64_t I = 0; I < 5000; ++I)
    E.push_back({I, R.ith(I, 1000000)});
  M Map(E);
  Rng Q(7);
  for (int T = 0; T < 100; ++T) {
    uint64_t Lo = Q.ith(2 * T, 5000);
    uint64_t Hi = std::min<uint64_t>(4999, Lo + Q.ith(2 * T + 1, 400));
    uint64_t Expect = std::numeric_limits<uint64_t>::lowest();
    for (uint64_t K = Lo; K <= Hi; ++K)
      Expect = std::max(Expect, E[K].second);
    ASSERT_EQ(Map.aug_range(Lo, Hi), Expect);
  }
}

// Nested structure: an augmented map whose values are themselves PaC-trees
// (the pattern used by the range tree and the graph representation). The
// augmented value is the total size of all inner sets.
struct NestedEntry {
  using inner_set = pam_set<uint32_t, 8>;
  using key_t = uint32_t;
  using val_t = inner_set;
  using entry_t = std::pair<uint32_t, inner_set>;
  using aug_t = size_t;
  static constexpr bool has_val = true;
  static const key_t &get_key(const entry_t &E) { return E.first; }
  static const val_t &get_val(const entry_t &E) { return E.second; }
  static val_t &get_val(entry_t &E) { return E.second; }
  static bool comp(key_t A, key_t B) { return A < B; }
  static aug_t aug_empty() { return 0; }
  static aug_t aug_from_entry(const entry_t &E) { return E.second.size(); }
  static aug_t aug_combine(aug_t A, aug_t B) { return A + B; }
};

TEST(NestedTrees, TreesAsValues) {
  using Outer = aug_map<NestedEntry, 4>;
  int64_t Before = alloc_stats::live_object_count();
  {
    std::vector<typename Outer::entry_t> E;
    size_t Total = 0;
    for (uint32_t I = 0; I < 200; ++I) {
      std::vector<uint32_t> Inner;
      for (uint32_t J = 0; J <= I % 17; ++J)
        Inner.push_back(J);
      Total += Inner.size();
      E.push_back({I, NestedEntry::inner_set(Inner)});
    }
    Outer M(E);
    EXPECT_EQ(M.size(), 200u);
    EXPECT_EQ(M.aug_val(), Total);
    auto Found = M.find_entry(16);
    ASSERT_TRUE(Found.has_value());
    EXPECT_EQ(Found->second.size(), 17u);
    EXPECT_TRUE(Found->second.contains(16));
    // Functional update of one inner set: snapshot the outer map first.
    Outer Snapshot = M;
    auto Entry16 = *M.find_entry(16);
    M.insert_inplace({16, Entry16.second.insert(999)});
    EXPECT_EQ(M.find_entry(16)->second.size(), 18u);
    EXPECT_EQ(Snapshot.find_entry(16)->second.size(), 17u)
        << "snapshot must not observe the new inner tree";
    EXPECT_EQ(M.aug_val(), Total + 1);
  }
  EXPECT_EQ(alloc_stats::live_object_count(), Before)
      << "nested trees leaked";
}

} // namespace
