//===- test_obs.cpp - Observability layer tests ----------------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The obs layer's suite: exact-count identities on the sharded counters
/// and histograms under 16-thread concurrent record, percentile error
/// bounds on a known distribution (the log-bucket scheme guarantees a
/// reported percentile in [true, true * (1 + 1/16)]), reset coherence
/// through obs::reset_all() across every surface (owned metrics, raw
/// cells, scheduler source), the merge-fallback shim identity (every
/// map_ops instantiation shares the one registry cell), and a trace-span
/// round trip: force a chunked parallel merge under tracing and assert the
/// flushed Chrome trace JSON parses structurally and contains the
/// merge-chunk spans. Runs in the CI TSan leg (concurrent record/flush).
///
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "src/api/pam_set.h"
#include "src/encoding/diff_encoder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/parallel/primitives.h"
#include "src/serving/version_chain.h"
#include "tests/test_common.h"

using namespace cpam;

namespace {

// Value-bearing assertions only make sense when the record paths are
// compiled; under -DCPAM_METRICS=OFF they skip (the structural tests —
// identity, export, reset plumbing — still run).
constexpr bool kMetricsOn = CPAM_METRICS != 0;

//===----------------------------------------------------------------------===//
// Counters and gauges.
//===----------------------------------------------------------------------===//

TEST(ObsCounter, SameNameSameObject) {
  obs::registry &R = obs::registry::get();
  EXPECT_EQ(&R.get_counter("test.identity"), &R.get_counter("test.identity"));
  EXPECT_EQ(&R.get_gauge("test.identity"), &R.get_gauge("test.identity"));
  EXPECT_EQ(&R.get_histogram("test.identity"),
            &R.get_histogram("test.identity"));
  EXPECT_EQ(&R.raw_counter("test.identity"), &R.raw_counter("test.identity"));
}

TEST(ObsCounter, ExactUnderConcurrentIncrement) {
  if (!kMetricsOn)
    GTEST_SKIP() << "record paths compiled out";
  obs::counter &C = obs::registry::get().get_counter("test.counter.exact");
  C.reset();
  constexpr int kThreads = 16;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < kThreads; ++T)
    Ts.emplace_back([&] {
      for (uint64_t I = 0; I < kPerThread; ++I)
        C.inc();
    });
  for (auto &T : Ts)
    T.join();
  // Sharded relaxed fetch_adds lose nothing, even with 16 foreign threads
  // colliding on few slots.
  EXPECT_EQ(C.read(), kThreads * kPerThread);
  C.reset();
  EXPECT_EQ(C.read(), 0u);
}

TEST(ObsGauge, BalancedAddSubReturnsToZero) {
  if (!kMetricsOn)
    GTEST_SKIP() << "record paths compiled out";
  obs::gauge &G = obs::registry::get().get_gauge("test.gauge.balance");
  G.reset();
  constexpr int kThreads = 8;
  std::vector<std::thread> Ts;
  for (int T = 0; T < kThreads; ++T)
    Ts.emplace_back([&, T] {
      for (int I = 0; I < 50000; ++I) {
        G.add(T + 1);
        G.sub(T + 1);
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(G.read(), 0);
  G.add(-7);
  EXPECT_EQ(G.read(), -7);
  G.reset();
  EXPECT_EQ(G.read(), 0);
}

//===----------------------------------------------------------------------===//
// Histogram bucket scheme.
//===----------------------------------------------------------------------===//

TEST(ObsHistogram, BucketIndexMonotoneAndBoundsTight) {
  if (!kMetricsOn)
    GTEST_SKIP() << "record paths compiled out";
  using H = obs::histogram;
  // Every probed value lands inside its bucket's [lo, hi] range, indices
  // are monotone in the value, and octave buckets are at most 1/16 wide
  // relative to their lower bound.
  size_t Prev = 0;
  for (uint64_t V = 0; V < 4096; ++V) {
    size_t I = H::bucket_index(V);
    ASSERT_GE(I, Prev) << "V=" << V;
    ASSERT_LE(H::bucket_lo(I), V) << "V=" << V;
    ASSERT_GE(H::bucket_hi(I), V) << "V=" << V;
    Prev = I;
  }
  for (uint64_t V : {uint64_t(1) << 20, (uint64_t(1) << 32) + 12345,
                     uint64_t(1) << 62, ~uint64_t{0}}) {
    size_t I = H::bucket_index(V);
    ASSERT_LT(I, H::kBuckets);
    ASSERT_LE(H::bucket_lo(I), V);
    ASSERT_GE(H::bucket_hi(I), V);
  }
  for (size_t I = H::kSub; I + 1 < H::kBuckets; ++I) {
    uint64_t Lo = H::bucket_lo(I), Hi = H::bucket_hi(I);
    ASSERT_LE((Hi - Lo + 1) * H::kSub, Lo + H::kSub)
        << "bucket " << I << " wider than 1/16 relative";
  }
}

TEST(ObsHistogram, ExactCountSumMaxUnderConcurrentRecord) {
  if (!kMetricsOn)
    GTEST_SKIP() << "record paths compiled out";
  obs::histogram &H = obs::registry::get().get_histogram("test.hist.exact");
  H.reset();
  constexpr int kThreads = 16;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < kThreads; ++T)
    Ts.emplace_back([&, T] {
      for (uint64_t I = 1; I <= kPerThread; ++I)
        H.record(I + uint64_t(T)); // Overlapping ranges across threads.
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(H.count(), kThreads * kPerThread);
  uint64_t WantSum = 0;
  for (int T = 0; T < kThreads; ++T)
    WantSum += kPerThread * (kPerThread + 1) / 2 + kPerThread * uint64_t(T);
  EXPECT_EQ(H.sum(), WantSum);
  EXPECT_EQ(H.max(), kPerThread + kThreads - 1);
}

TEST(ObsHistogram, PercentilesWithinOneSubBucketOfTruth) {
  if (!kMetricsOn)
    GTEST_SKIP() << "record paths compiled out";
  obs::histogram &H = obs::registry::get().get_histogram("test.hist.pct");
  H.reset();
  // Uniform 1..100000, once each: the true quantile q is q*100000, and the
  // bucket upper-bound report must sit in [truth, truth * 17/16].
  constexpr uint64_t N = 100000;
  for (uint64_t V = 1; V <= N; ++V)
    H.record(V);
  for (double Q : {0.50, 0.90, 0.99}) {
    uint64_t Truth = static_cast<uint64_t>(Q * N);
    uint64_t Got = H.percentile(Q);
    EXPECT_GE(Got, Truth) << "q=" << Q << " understated";
    EXPECT_LE(Got, Truth + Truth / 16 + 1) << "q=" << Q << " off by more "
                                           << "than one sub-bucket";
    EXPECT_LE(Got, H.max()) << "q=" << Q;
  }
  EXPECT_EQ(H.percentile(1.0), N); // Clamped to the recorded max exactly.
  auto S = H.snapshot();
  EXPECT_EQ(S.Count, N);
  EXPECT_EQ(S.Max, N);
  EXPECT_EQ(S.P50, H.percentile(0.50));
}

TEST(ObsHistogram, ResetLeavesNoResidue) {
  if (!kMetricsOn)
    GTEST_SKIP() << "record paths compiled out";
  obs::histogram &H = obs::registry::get().get_histogram("test.hist.reset");
  H.record(17);
  H.record(1 << 20);
  ASSERT_GT(H.count(), 0u);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.percentile(0.99), 0u);
  H.record(3);
  EXPECT_EQ(H.count(), 1u);
  EXPECT_EQ(H.percentile(0.5), 3u);
}

//===----------------------------------------------------------------------===//
// Registry-wide reset and export.
//===----------------------------------------------------------------------===//

TEST(ObsRegistry, ResetAllCoversEverySurface) {
  obs::registry &R = obs::registry::get();
  obs::counter &C = R.get_counter("test.resetall.counter");
  obs::gauge &G = R.get_gauge("test.resetall.gauge");
  obs::histogram &H = R.get_histogram("test.resetall.hist");
  std::atomic<uint64_t> &Raw = R.raw_counter("test.resetall.raw");
  C.inc(3);
  G.add(5);
  H.record(42);
  Raw.store(7, std::memory_order_relaxed);
  // Bump the scheduler source too: forks only come from parDo.
  par::parallel_for(0, 4096, [](size_t) {}, /*Granularity=*/64);
  obs::reset_all();
  EXPECT_EQ(C.read(), 0u);
  EXPECT_EQ(G.read(), 0);
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(Raw.load(std::memory_order_relaxed), 0u);
  EXPECT_EQ(par::scheduler_stats().Forks, 0u)
      << "reset_all must route to the adopted scheduler source";
}

TEST(ObsRegistry, ExportJsonCarriesAllSurfaces) {
  obs::registry &R = obs::registry::get();
  R.get_counter("test.export.counter").inc(2);
  R.get_gauge("test.export.gauge").add(-4);
  R.get_histogram("test.export.hist").record(1000);
  R.raw_counter("test.export.raw").store(9, std::memory_order_relaxed);
  std::string J = obs::export_json();
  EXPECT_NE(J.find("\"schema\": \"cpam-metrics-v1\""), std::string::npos);
  EXPECT_NE(J.find("test.export.counter"), std::string::npos);
  EXPECT_NE(J.find("test.export.gauge"), std::string::npos);
  EXPECT_NE(J.find("test.export.hist"), std::string::npos);
  EXPECT_NE(J.find("test.export.raw"), std::string::npos);
  EXPECT_NE(J.find("\"scheduler\""), std::string::npos)
      << "adopted scheduler source missing from the export";
  EXPECT_NE(J.find("\"p99\""), std::string::npos);
  // Structural sanity: braces and brackets balance (good enough to catch
  // splice bugs without a JSON parser; CI additionally python-parses the
  // bench reports that embed this object).
  int Depth = 0;
  for (char Ch : J) {
    if (Ch == '{' || Ch == '[')
      ++Depth;
    if (Ch == '}' || Ch == ']')
      --Depth;
    ASSERT_GE(Depth, 0);
  }
  EXPECT_EQ(Depth, 0);
  if (kMetricsOn) {
    EXPECT_NE(J.find("\"test.export.counter\": 2"), std::string::npos);
    EXPECT_NE(J.find("\"test.export.gauge\": -4"), std::string::npos);
  }
  EXPECT_NE(J.find("\"test.export.raw\": 9"), std::string::npos)
      << "raw cells must stay live even under CPAM_METRICS=OFF";
}

//===----------------------------------------------------------------------===//
// Adoption shims.
//===----------------------------------------------------------------------===//

TEST(ObsShims, MergeFallbackSharedAcrossInstantiations) {
  // Pre-PR 9 each map_ops instantiation had its own fallback counter; the
  // shim must alias every instantiation onto the one registry cell.
  using Ops8 = typename pam_set<uint64_t, 8>::ops;
  using Ops128 = typename pam_set<uint64_t, 128>::ops;
  using OpsDiff = typename pam_set<uint64_t, 128, diff_encoder>::ops;
  std::atomic<uint64_t> &Cell =
      obs::registry::get().raw_counter("merge.fallbacks");
  EXPECT_EQ(&Ops8::merge_fallback_count(), &Cell);
  EXPECT_EQ(&Ops128::merge_fallback_count(), &Cell);
  EXPECT_EQ(&OpsDiff::merge_fallback_count(), &Cell);
  Ops8::merge_fallback_count_reset();
  EXPECT_EQ(Cell.load(std::memory_order_relaxed), 0u);
  Ops128::merge_fallback_count().fetch_add(2, std::memory_order_relaxed);
  EXPECT_EQ(Ops8::merge_fallback_count().load(std::memory_order_relaxed), 2u);
  Ops8::merge_fallback_count_reset();
}

TEST(ObsShims, ServingMetricsRecordThroughRegistry) {
  if (!kMetricsOn)
    GTEST_SKIP() << "record paths compiled out";
  obs::reset_all();
  serving::serving_metrics_t &M = serving::serving_metrics();
  serving::version_chain<int> VC(1);
  VC.publish(2);
  VC.publish(3);
  EXPECT_EQ(M.Published.read(), 2u);
  EXPECT_EQ(M.PublishNs.count(), 2u);
  // No pinned readers: both retired versions reclaim immediately.
  EXPECT_EQ(M.Reclaimed.read(), 2u);
  EXPECT_GE(M.ReclaimNs.count(), 1u);
  // acquire timing is sampled 1-in-256 per thread, first call inclusive —
  // a fresh thread's first acquire must record.
  std::thread([&] { (void)VC.acquire(); }).join();
  EXPECT_GE(M.AcquireNs.count(), 1u);
  EXPECT_EQ(M.QueueDepth.read(), 0);
}

//===----------------------------------------------------------------------===//
// Trace spans.
//===----------------------------------------------------------------------===//

TEST(ObsTrace, ChunkedMergeSpansFlushAsLoadableJson) {
  if (!kMetricsOn)
    GTEST_SKIP() << "trace spans compiled out";
  using SetT = pam_set<uint64_t, 128>;
  using ops = typename SetT::ops;
  // Force the quantile-split path on test-sized inputs, exactly like the
  // differential parallel-merge episode.
  test::ValueGuard<size_t> GGrain(ops::parallel_merge_grain());
  test::ValueGuard<size_t> GKappa(ops::kappa());
  ops::parallel_merge_grain() = 512;
  ops::kappa() = size_t{1} << 20;

  obs::trace::clear();
  obs::trace::enable();
  std::vector<uint64_t> KA, KB;
  for (uint64_t I = 0; I < 6000; ++I)
    KA.push_back(3 * I);
  for (uint64_t I = 0; I < 5000; ++I)
    KB.push_back(3 * I + 1);
  SetT SA(KA), SB(KB);
  SetT U = SetT::map_union(SA, SB);
  ASSERT_EQ(U.size(), KA.size() + KB.size());
  obs::trace::disable();

  const char *Path = "test_obs_trace.json";
  ASSERT_TRUE(obs::trace::write_json(Path));
  std::string J;
  {
    std::FILE *F = std::fopen(Path, "r");
    ASSERT_NE(F, nullptr);
    char Buf[4096];
    size_t Got;
    while ((Got = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
      J.append(Buf, Got);
    std::fclose(F);
  }
  std::remove(Path);
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos);
  // merge_chunk spans fire inside the parallel_for lambda, which runs even
  // when every fork inlines — present at any worker count.
  EXPECT_NE(J.find("\"merge_chunk\""), std::string::npos);
  EXPECT_NE(J.find("\"merge_join\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(J.find("\"thread_name\""), std::string::npos);
  int Depth = 0;
  for (char Ch : J) {
    if (Ch == '{' || Ch == '[')
      ++Depth;
    if (Ch == '}' || Ch == ']')
      --Depth;
    ASSERT_GE(Depth, 0);
  }
  EXPECT_EQ(Depth, 0);
  obs::trace::clear();
}

TEST(ObsTrace, DisabledSpansRecordNothing) {
  obs::trace::disable();
  obs::trace::clear();
  {
    obs::trace::span S("should_not_appear", "test");
    obs::trace::instant("nor_this", "test");
  }
  const char *Path = "test_obs_trace_off.json";
  ASSERT_TRUE(obs::trace::write_json(Path));
  std::string J;
  {
    std::FILE *F = std::fopen(Path, "r");
    ASSERT_NE(F, nullptr);
    char Buf[4096];
    size_t Got;
    while ((Got = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
      J.append(Buf, Got);
    std::fclose(F);
  }
  std::remove(Path);
  EXPECT_EQ(J.find("should_not_appear"), std::string::npos);
  EXPECT_EQ(J.find("nor_this"), std::string::npos);
}

} // namespace
