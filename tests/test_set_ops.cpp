//===- test_set_ops.cpp - union/intersect/difference/multi_insert ----------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <set>

#include "gtest/gtest.h"

#include "src/api/pam_map.h"
#include "src/api/pam_set.h"
#include "src/encoding/diff_encoder.h"
#include "src/parallel/random.h"
#include "tests/test_common.h"

using namespace cpam;

namespace {

/// Leak-checked: the fixture fails any test that does not return every tree
/// node to the allocator.
template <class SetT> class SetOpsTest : public test::TypedLeakCheckTest<SetT> {};

using SetTypes = ::testing::Types<
    pam_set<uint64_t, 0>,                 // P-tree baseline
    pam_set<uint64_t, 2>, pam_set<uint64_t, 4>, pam_set<uint64_t, 16>,
    pam_set<uint64_t, 128>,               // Paper default
    pam_set<uint64_t, 32, diff_encoder>>; // Compressed
TYPED_TEST_SUITE(SetOpsTest, SetTypes);

std::vector<uint64_t> randomKeys(size_t N, uint64_t Universe, uint64_t Seed) {
  std::vector<uint64_t> V(N);
  Rng R(Seed);
  for (size_t I = 0; I < N; ++I)
    V[I] = R.ith(I, Universe);
  return V;
}

int64_t liveObjects() { return alloc_stats::live_object_count(); }

TYPED_TEST(SetOpsTest, UnionMatchesStdSet) {
  int64_t Before = liveObjects();
  {
    for (auto [Na, Nb] : {std::pair<size_t, size_t>{0, 100},
                          {100, 0},
                          {1000, 1000},
                          {5000, 50},
                          {37, 4211}}) {
      auto A = randomKeys(Na, 3000, 1);
      auto B = randomKeys(Nb, 3000, 2);
      TypeParam SA(A), SB(B);
      TypeParam U = TypeParam::map_union(SA, SB);
      ASSERT_EQ(U.check_invariants(), "") << Na << "+" << Nb;
      std::set<uint64_t> Ref(A.begin(), A.end());
      Ref.insert(B.begin(), B.end());
      ASSERT_EQ(U.size(), Ref.size());
      for (uint64_t K : Ref)
        ASSERT_TRUE(U.contains(K)) << K;
      // Inputs unchanged (purely functional).
      ASSERT_EQ(SA.size(), std::set<uint64_t>(A.begin(), A.end()).size());
      ASSERT_EQ(SB.size(), std::set<uint64_t>(B.begin(), B.end()).size());
    }
  }
  EXPECT_EQ(liveObjects(), Before) << "set union leaked nodes";
}

TYPED_TEST(SetOpsTest, IntersectMatchesStdSet) {
  int64_t Before = liveObjects();
  {
    for (auto [Na, Nb] : {std::pair<size_t, size_t>{500, 500},
                          {2000, 100},
                          {100, 2000},
                          {0, 10},
                          {1000, 1000}}) {
      auto A = randomKeys(Na, 1500, 3);
      auto B = randomKeys(Nb, 1500, 4);
      TypeParam SA(A), SB(B);
      TypeParam X = TypeParam::map_intersect(SA, SB);
      ASSERT_EQ(X.check_invariants(), "");
      std::set<uint64_t> RA(A.begin(), A.end()), RB(B.begin(), B.end()), Ref;
      for (uint64_t K : RA)
        if (RB.count(K))
          Ref.insert(K);
      ASSERT_EQ(X.size(), Ref.size());
      for (uint64_t K : Ref)
        ASSERT_TRUE(X.contains(K));
    }
  }
  EXPECT_EQ(liveObjects(), Before);
}

TYPED_TEST(SetOpsTest, DifferenceMatchesStdSet) {
  int64_t Before = liveObjects();
  {
    for (auto [Na, Nb] : {std::pair<size_t, size_t>{1000, 1000},
                          {2000, 10},
                          {10, 2000}}) {
      auto A = randomKeys(Na, 1500, 5);
      auto B = randomKeys(Nb, 1500, 6);
      TypeParam SA(A), SB(B);
      TypeParam D = TypeParam::map_difference(SA, SB);
      ASSERT_EQ(D.check_invariants(), "");
      std::set<uint64_t> RA(A.begin(), A.end()), RB(B.begin(), B.end());
      size_t Expect = 0;
      for (uint64_t K : RA) {
        if (RB.count(K)) {
          ASSERT_FALSE(D.contains(K));
        } else {
          ASSERT_TRUE(D.contains(K));
          ++Expect;
        }
      }
      ASSERT_EQ(D.size(), Expect);
    }
  }
  EXPECT_EQ(liveObjects(), Before);
}

TYPED_TEST(SetOpsTest, UnionIsCommutativeAndAssociative) {
  auto A = randomKeys(800, 2000, 7);
  auto B = randomKeys(900, 2000, 8);
  auto C = randomKeys(700, 2000, 9);
  TypeParam SA(A), SB(B), SC(C);
  auto AB_C = TypeParam::map_union(TypeParam::map_union(SA, SB), SC);
  auto A_BC = TypeParam::map_union(SA, TypeParam::map_union(SB, SC));
  auto BA = TypeParam::map_union(SB, SA);
  auto AB = TypeParam::map_union(SA, SB);
  EXPECT_EQ(AB_C.to_vector(), A_BC.to_vector());
  EXPECT_EQ(AB.to_vector(), BA.to_vector());
}

TYPED_TEST(SetOpsTest, SelfOperations) {
  auto A = randomKeys(1000, 5000, 10);
  TypeParam SA(A);
  EXPECT_EQ(TypeParam::map_union(SA, SA).size(), SA.size());
  EXPECT_EQ(TypeParam::map_intersect(SA, SA).size(), SA.size());
  EXPECT_EQ(TypeParam::map_difference(SA, SA).size(), 0u);
}

TYPED_TEST(SetOpsTest, MultiInsertMatchesUnion) {
  int64_t Before = liveObjects();
  {
    auto A = randomKeys(3000, 10000, 11);
    TypeParam SA(A);
    for (size_t BatchSize : {1u, 10u, 1000u, 5000u}) {
      auto B = randomKeys(BatchSize, 10000, 12 + BatchSize);
      TypeParam ViaMulti = SA.multi_insert(B);
      TypeParam ViaUnion = TypeParam::map_union(SA, TypeParam(B));
      ASSERT_EQ(ViaMulti.check_invariants(), "");
      ASSERT_EQ(ViaMulti.to_vector(), ViaUnion.to_vector());
    }
  }
  EXPECT_EQ(liveObjects(), Before);
}

TYPED_TEST(SetOpsTest, MultiDeleteMatchesDifference) {
  auto A = randomKeys(3000, 10000, 13);
  TypeParam SA(A);
  for (size_t BatchSize : {1u, 100u, 2500u}) {
    auto B = randomKeys(BatchSize, 10000, 14 + BatchSize);
    TypeParam ViaMulti = SA.multi_delete(B);
    TypeParam ViaDiff = TypeParam::map_difference(SA, TypeParam(B));
    ASSERT_EQ(ViaMulti.check_invariants(), "");
    ASSERT_EQ(ViaMulti.to_vector(), ViaDiff.to_vector());
  }
}

TYPED_TEST(SetOpsTest, LargeImbalancedUnion) {
  // Exercises the O(m log(n/m)) path plus base cases.
  auto A = randomKeys(100000, 1u << 30, 15);
  auto B = randomKeys(100, 1u << 30, 16);
  TypeParam SA(A), SB(B);
  TypeParam U = TypeParam::map_union(SA, SB);
  ASSERT_EQ(U.check_invariants(), "");
  std::set<uint64_t> Ref(A.begin(), A.end());
  Ref.insert(B.begin(), B.end());
  EXPECT_EQ(U.size(), Ref.size());
  for (uint64_t K : B)
    EXPECT_TRUE(U.contains(K));
}

// Map-specific: value combination on key collisions.
class MapSetOps : public test::LeakCheckTest {};

TEST_F(MapSetOps, UnionCombinesValues) {
  using M = pam_map<uint64_t, uint64_t, 16>;
  std::vector<std::pair<uint64_t, uint64_t>> A, B;
  for (uint64_t I = 0; I < 100; ++I)
    A.push_back({I, 1});
  for (uint64_t I = 50; I < 150; ++I)
    B.push_back({I, 2});
  M MA(A), MB(B);
  // Default: right (second map) wins.
  M U = M::map_union(MA, MB);
  EXPECT_EQ(*U.find(10), 1u);
  EXPECT_EQ(*U.find(70), 2u);
  EXPECT_EQ(*U.find(120), 2u);
  // Custom combine: sum.
  M S = M::map_union(MA, MB, std::plus<uint64_t>());
  EXPECT_EQ(*S.find(10), 1u);
  EXPECT_EQ(*S.find(70), 3u);
  EXPECT_EQ(*S.find(120), 2u);
  // Intersection keeps combined values too.
  M X = M::map_intersect(MA, MB, std::plus<uint64_t>());
  EXPECT_EQ(X.size(), 50u);
  EXPECT_EQ(*X.find(70), 3u);
}

TEST_F(MapSetOps, MultiInsertCombineWithinBatch) {
  using M = pam_map<uint64_t, uint64_t, 16>;
  M Empty;
  std::vector<std::pair<uint64_t, uint64_t>> Batch;
  for (uint64_t I = 0; I < 30; ++I)
    Batch.push_back({I % 10, 1});
  M Out = Empty.multi_insert(Batch, std::plus<uint64_t>());
  EXPECT_EQ(Out.size(), 10u);
  for (uint64_t K = 0; K < 10; ++K)
    EXPECT_EQ(*Out.find(K), 3u);
  // And combination with pre-existing values.
  M Out2 = Out.multi_insert(Batch, std::plus<uint64_t>());
  for (uint64_t K = 0; K < 10; ++K)
    EXPECT_EQ(*Out2.find(K), 6u);
}

// Cross-block-size agreement: all representations are views of the same
// abstract set, so every operation must agree elementwise.
TEST(CrossRepresentation, AllBlockSizesAgree) {
  auto A = randomKeys(5000, 40000, 17);
  auto B = randomKeys(3000, 40000, 18);
  pam_set<uint64_t, 0> A0(A), B0(B);
  pam_set<uint64_t, 8> A8(A), B8(B);
  pam_set<uint64_t, 128> A128(A), B128(B);
  pam_set<uint64_t, 64, diff_encoder> AD(A), BD(B);
  auto U0 = decltype(A0)::map_union(A0, B0).to_vector();
  auto U8 = decltype(A8)::map_union(A8, B8).to_vector();
  auto U128 = decltype(A128)::map_union(A128, B128).to_vector();
  auto UD = decltype(AD)::map_union(AD, BD).to_vector();
  EXPECT_EQ(U0, U8);
  EXPECT_EQ(U0, U128);
  EXPECT_EQ(U0, UD);
}

} // namespace
