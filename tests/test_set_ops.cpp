//===- test_set_ops.cpp - union/intersect/difference/multi_insert ----------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <set>

#include "gtest/gtest.h"

#include "src/api/pam_map.h"
#include "src/api/pam_set.h"
#include "src/encoding/diff_encoder.h"
#include "src/parallel/random.h"
#include "tests/test_common.h"

using namespace cpam;

namespace {

/// Leak-checked: the fixture fails any test that does not return every tree
/// node to the allocator.
template <class SetT> class SetOpsTest : public test::TypedLeakCheckTest<SetT> {};

using SetTypes = ::testing::Types<
    pam_set<uint64_t, 0>,                 // P-tree baseline
    pam_set<uint64_t, 2>, pam_set<uint64_t, 4>, pam_set<uint64_t, 16>,
    pam_set<uint64_t, 128>,               // Paper default
    pam_set<uint64_t, 32, diff_encoder>>; // Compressed
TYPED_TEST_SUITE(SetOpsTest, SetTypes);

std::vector<uint64_t> randomKeys(size_t N, uint64_t Universe, uint64_t Seed) {
  std::vector<uint64_t> V(N);
  Rng R(Seed);
  for (size_t I = 0; I < N; ++I)
    V[I] = R.ith(I, Universe);
  return V;
}

int64_t liveObjects() { return alloc_stats::live_object_count(); }

TYPED_TEST(SetOpsTest, UnionMatchesStdSet) {
  int64_t Before = liveObjects();
  {
    for (auto [Na, Nb] : {std::pair<size_t, size_t>{0, 100},
                          {100, 0},
                          {1000, 1000},
                          {5000, 50},
                          {37, 4211}}) {
      auto A = randomKeys(Na, 3000, 1);
      auto B = randomKeys(Nb, 3000, 2);
      TypeParam SA(A), SB(B);
      TypeParam U = TypeParam::map_union(SA, SB);
      ASSERT_EQ(U.check_invariants(), "") << Na << "+" << Nb;
      std::set<uint64_t> Ref(A.begin(), A.end());
      Ref.insert(B.begin(), B.end());
      ASSERT_EQ(U.size(), Ref.size());
      for (uint64_t K : Ref)
        ASSERT_TRUE(U.contains(K)) << K;
      // Inputs unchanged (purely functional).
      ASSERT_EQ(SA.size(), std::set<uint64_t>(A.begin(), A.end()).size());
      ASSERT_EQ(SB.size(), std::set<uint64_t>(B.begin(), B.end()).size());
    }
  }
  EXPECT_EQ(liveObjects(), Before) << "set union leaked nodes";
}

TYPED_TEST(SetOpsTest, IntersectMatchesStdSet) {
  int64_t Before = liveObjects();
  {
    for (auto [Na, Nb] : {std::pair<size_t, size_t>{500, 500},
                          {2000, 100},
                          {100, 2000},
                          {0, 10},
                          {1000, 1000}}) {
      auto A = randomKeys(Na, 1500, 3);
      auto B = randomKeys(Nb, 1500, 4);
      TypeParam SA(A), SB(B);
      TypeParam X = TypeParam::map_intersect(SA, SB);
      ASSERT_EQ(X.check_invariants(), "");
      std::set<uint64_t> RA(A.begin(), A.end()), RB(B.begin(), B.end()), Ref;
      for (uint64_t K : RA)
        if (RB.count(K))
          Ref.insert(K);
      ASSERT_EQ(X.size(), Ref.size());
      for (uint64_t K : Ref)
        ASSERT_TRUE(X.contains(K));
    }
  }
  EXPECT_EQ(liveObjects(), Before);
}

TYPED_TEST(SetOpsTest, DifferenceMatchesStdSet) {
  int64_t Before = liveObjects();
  {
    for (auto [Na, Nb] : {std::pair<size_t, size_t>{1000, 1000},
                          {2000, 10},
                          {10, 2000}}) {
      auto A = randomKeys(Na, 1500, 5);
      auto B = randomKeys(Nb, 1500, 6);
      TypeParam SA(A), SB(B);
      TypeParam D = TypeParam::map_difference(SA, SB);
      ASSERT_EQ(D.check_invariants(), "");
      std::set<uint64_t> RA(A.begin(), A.end()), RB(B.begin(), B.end());
      size_t Expect = 0;
      for (uint64_t K : RA) {
        if (RB.count(K)) {
          ASSERT_FALSE(D.contains(K));
        } else {
          ASSERT_TRUE(D.contains(K));
          ++Expect;
        }
      }
      ASSERT_EQ(D.size(), Expect);
    }
  }
  EXPECT_EQ(liveObjects(), Before);
}

TYPED_TEST(SetOpsTest, UnionIsCommutativeAndAssociative) {
  auto A = randomKeys(800, 2000, 7);
  auto B = randomKeys(900, 2000, 8);
  auto C = randomKeys(700, 2000, 9);
  TypeParam SA(A), SB(B), SC(C);
  auto AB_C = TypeParam::map_union(TypeParam::map_union(SA, SB), SC);
  auto A_BC = TypeParam::map_union(SA, TypeParam::map_union(SB, SC));
  auto BA = TypeParam::map_union(SB, SA);
  auto AB = TypeParam::map_union(SA, SB);
  EXPECT_EQ(AB_C.to_vector(), A_BC.to_vector());
  EXPECT_EQ(AB.to_vector(), BA.to_vector());
}

TYPED_TEST(SetOpsTest, SelfOperations) {
  auto A = randomKeys(1000, 5000, 10);
  TypeParam SA(A);
  EXPECT_EQ(TypeParam::map_union(SA, SA).size(), SA.size());
  EXPECT_EQ(TypeParam::map_intersect(SA, SA).size(), SA.size());
  EXPECT_EQ(TypeParam::map_difference(SA, SA).size(), 0u);
}

TYPED_TEST(SetOpsTest, MultiInsertMatchesUnion) {
  int64_t Before = liveObjects();
  {
    auto A = randomKeys(3000, 10000, 11);
    TypeParam SA(A);
    for (size_t BatchSize : {1u, 10u, 1000u, 5000u}) {
      auto B = randomKeys(BatchSize, 10000, 12 + BatchSize);
      TypeParam ViaMulti = SA.multi_insert(B);
      TypeParam ViaUnion = TypeParam::map_union(SA, TypeParam(B));
      ASSERT_EQ(ViaMulti.check_invariants(), "");
      ASSERT_EQ(ViaMulti.to_vector(), ViaUnion.to_vector());
    }
  }
  EXPECT_EQ(liveObjects(), Before);
}

TYPED_TEST(SetOpsTest, MultiDeleteMatchesDifference) {
  auto A = randomKeys(3000, 10000, 13);
  TypeParam SA(A);
  for (size_t BatchSize : {1u, 100u, 2500u}) {
    auto B = randomKeys(BatchSize, 10000, 14 + BatchSize);
    TypeParam ViaMulti = SA.multi_delete(B);
    TypeParam ViaDiff = TypeParam::map_difference(SA, TypeParam(B));
    ASSERT_EQ(ViaMulti.check_invariants(), "");
    ASSERT_EQ(ViaMulti.to_vector(), ViaDiff.to_vector());
  }
}

TYPED_TEST(SetOpsTest, LargeImbalancedUnion) {
  // Exercises the O(m log(n/m)) path plus base cases.
  auto A = randomKeys(100000, 1u << 30, 15);
  auto B = randomKeys(100, 1u << 30, 16);
  TypeParam SA(A), SB(B);
  TypeParam U = TypeParam::map_union(SA, SB);
  ASSERT_EQ(U.check_invariants(), "");
  std::set<uint64_t> Ref(A.begin(), A.end());
  Ref.insert(B.begin(), B.end());
  EXPECT_EQ(U.size(), Ref.size());
  for (uint64_t K : B)
    EXPECT_TRUE(U.contains(K));
}

// Map-specific: value combination on key collisions.
class MapSetOps : public test::LeakCheckTest {};

TEST_F(MapSetOps, UnionCombinesValues) {
  using M = pam_map<uint64_t, uint64_t, 16>;
  std::vector<std::pair<uint64_t, uint64_t>> A, B;
  for (uint64_t I = 0; I < 100; ++I)
    A.push_back({I, 1});
  for (uint64_t I = 50; I < 150; ++I)
    B.push_back({I, 2});
  M MA(A), MB(B);
  // Default: right (second map) wins.
  M U = M::map_union(MA, MB);
  EXPECT_EQ(*U.find(10), 1u);
  EXPECT_EQ(*U.find(70), 2u);
  EXPECT_EQ(*U.find(120), 2u);
  // Custom combine: sum.
  M S = M::map_union(MA, MB, std::plus<uint64_t>());
  EXPECT_EQ(*S.find(10), 1u);
  EXPECT_EQ(*S.find(70), 3u);
  EXPECT_EQ(*S.find(120), 2u);
  // Intersection keeps combined values too.
  M X = M::map_intersect(MA, MB, std::plus<uint64_t>());
  EXPECT_EQ(X.size(), 50u);
  EXPECT_EQ(*X.find(70), 3u);
}

TEST_F(MapSetOps, MultiInsertCombineWithinBatch) {
  using M = pam_map<uint64_t, uint64_t, 16>;
  M Empty;
  std::vector<std::pair<uint64_t, uint64_t>> Batch;
  for (uint64_t I = 0; I < 30; ++I)
    Batch.push_back({I % 10, 1});
  M Out = Empty.multi_insert(Batch, std::plus<uint64_t>());
  EXPECT_EQ(Out.size(), 10u);
  for (uint64_t K = 0; K < 10; ++K)
    EXPECT_EQ(*Out.find(K), 3u);
  // And combination with pre-existing values.
  M Out2 = Out.multi_insert(Batch, std::plus<uint64_t>());
  for (uint64_t K = 0; K < 10; ++K)
    EXPECT_EQ(*Out2.find(K), 6u);
}

//===----------------------------------------------------------------------===//
// Flat-fastpath regressions: the cursor-to-cursor base cases (leaf_reader ->
// leaf_writer) must preserve the array path's semantics exactly.
//===----------------------------------------------------------------------===//

using test::FlagGuard;

class FlatFastPath : public test::LeakCheckTest {};

// Oversized-leaf folding: splicing a batch into a full 2B leaf (and joining
// two full leaves) must fold the result back into legal [B,2B] leaves, in
// both fast-path settings.
TEST_F(FlatFastPath, OversizedLeafFolding) {
  auto FoldCase = [](auto SetTag, size_t TwoB) {
    using Set = decltype(SetTag);
    FlagGuard G(Set::ops::flat_fastpath());
    std::vector<uint64_t> Evens(TwoB), Odds(TwoB);
    for (size_t I = 0; I < TwoB; ++I) {
      Evens[I] = 2 * I;
      Odds[I] = 2 * I + 1;
    }
    for (bool Fast : {false, true}) {
      Set::ops::flat_fastpath() = Fast;
      Set A = Set::from_sorted(Evens);
      ASSERT_EQ(A.node_count(), 1u) << "a 2B-entry tree must be one leaf";
      // multi_insert splice: 2B + 2B entries can no longer be one leaf.
      Set Spliced = A.multi_insert(Odds);
      ASSERT_EQ(Spliced.check_invariants(), "") << "fast=" << Fast;
      ASSERT_EQ(Spliced.size(), 2 * TwoB);
      ASSERT_GT(Spliced.node_count(), 1u);
      // union of two full leaves folds the same way.
      Set U = Set::map_union(A, Set::from_sorted(Odds));
      ASSERT_EQ(U.check_invariants(), "") << "fast=" << Fast;
      ASSERT_EQ(U.to_vector(), Spliced.to_vector());
      // Shrinking splice: deleting most of a leaf must rebuild legal
      // (regular, sub-B) structure, not an undersized interior leaf.
      std::vector<uint64_t> Most(Evens.begin(), Evens.end() - 3);
      Set Small = A.multi_delete(Most);
      ASSERT_EQ(Small.check_invariants(), "") << "fast=" << Fast;
      ASSERT_EQ(Small.size(), 3u);
      // Near-2B splice: total stays within one leaf, so byte-coded
      // encoders take the single-leaf streaming splice (batches past 2B
      // instead run the chunked multi-leaf merge — PR 5 removed the old
      // array-path fallback gate).
      size_t B2 = TwoB / 2; // == block-size B.
      Set Partial = Set::from_sorted(
          std::vector<uint64_t>(Evens.begin(), Evens.begin() + B2 + 2));
      std::vector<uint64_t> SmallBatch(Odds.begin(), Odds.begin() + B2 - 4);
      Set NearFull = Partial.multi_insert(SmallBatch);
      ASSERT_EQ(NearFull.check_invariants(), "") << "fast=" << Fast;
      ASSERT_EQ(NearFull.size(), TwoB - 2);
      ASSERT_EQ(NearFull.node_count(), 1u)
          << "a result of 2B-2 entries must still be a single leaf";
    }
  };
  FoldCase(pam_set<uint64_t, 8>(), 16);
  FoldCase(pam_set<uint64_t, 128>(), 256);
  FoldCase(pam_set<uint64_t, 32, diff_encoder>(), 64);
}

// The combine op must run exactly once per duplicate key in every base-case
// shape, fast path on or off.
TEST_F(FlatFastPath, CombineOpInvokedOncePerDuplicateKey) {
  using M = pam_map<uint64_t, uint64_t, 16>;
  FlagGuard G(M::ops::flat_fastpath());
  for (bool Fast : {false, true}) {
    M::ops::flat_fastpath() = Fast;
    for (auto [Na, Nb, Overlap] : {std::tuple<size_t, size_t, size_t>{32, 32, 16},
                                   {300, 200, 100},
                                   {2000, 2000, 777}}) {
      std::vector<std::pair<uint64_t, uint64_t>> A, B;
      for (size_t I = 0; I < Na; ++I)
        A.push_back({I, 1});
      for (size_t I = Na - Overlap; I < Na - Overlap + Nb; ++I)
        B.push_back({I, 2});
      M MA(A), MB(B);
      int64_t Calls = 0;
      auto CountingPlus = [&Calls](uint64_t X, uint64_t Y) {
        ++Calls;
        return X + Y;
      };
      M U = M::map_union(MA, MB, CountingPlus);
      ASSERT_EQ(Calls, static_cast<int64_t>(Overlap)) << "union fast=" << Fast;
      ASSERT_EQ(U.size(), Na + Nb - Overlap);
      ASSERT_EQ(*U.find(Na - Overlap), 3u);
      Calls = 0;
      M X = M::map_intersect(MA, MB, CountingPlus);
      ASSERT_EQ(Calls, static_cast<int64_t>(Overlap))
          << "intersect fast=" << Fast;
      ASSERT_EQ(X.size(), Overlap);
      Calls = 0;
      M MI = MA.multi_insert(B, CountingPlus);
      ASSERT_EQ(Calls, static_cast<int64_t>(Overlap))
          << "multi_insert fast=" << Fast;
      ASSERT_EQ(MI.to_vector(), U.to_vector());
    }
  }
}

/// Entry type proving the ownership discipline of the cursor paths: entries
/// leave consumed (uniquely owned) blocks by move, never by copy, and
/// shared blocks are copied exactly once per entry.
struct Tracked {
  uint64_t K = 0;
  static int64_t Copies;
  Tracked() = default;
  explicit Tracked(uint64_t K) : K(K) {}
  Tracked(const Tracked &O) : K(O.K) { ++Copies; }
  Tracked(Tracked &&O) noexcept = default;
  Tracked &operator=(const Tracked &O) {
    K = O.K;
    ++Copies;
    return *this;
  }
  Tracked &operator=(Tracked &&O) noexcept = default;
};
int64_t Tracked::Copies = 0;

struct TrackedEntry {
  using key_t = uint64_t;
  using val_t = no_aug;
  using entry_t = Tracked;
  using aug_t = no_aug;
  static constexpr bool has_val = false;
  static const key_t &get_key(const entry_t &E) { return E.K; }
  static bool comp(const key_t &A, const key_t &B) { return A < B; }
};

TEST_F(FlatFastPath, ConsumedBlocksAreMovedNotCopied) {
  using Ops = map_ops<TrackedEntry, raw_encoder, 8>;
  FlagGuard G(Ops::flat_fastpath());
  Ops::flat_fastpath() = true;
  constexpr size_t N = 16; // One full leaf per side (B=8, 2B=16).
  auto MakeLeaf = [](uint64_t First) {
    std::vector<Tracked> A(N);
    for (size_t I = 0; I < N; ++I)
      A[I] = Tracked(First + 2 * I);
    return Ops::from_array_move(A.data(), N);
  };
  {
    // Unique operands: the whole union must happen by moves alone.
    Ops::node_t *T1 = MakeLeaf(0), *T2 = MakeLeaf(1);
    Tracked::Copies = 0;
    Ops::node_t *U = Ops::union_(T1, T2, take_right());
    EXPECT_EQ(Tracked::Copies, 0)
        << "uniquely owned blocks must be consumed by move";
    EXPECT_EQ(Ops::size(U), 2 * N);
    Ops::dec(U);
  }
  {
    // Shared operands: exactly one copy per entry (the decode), never two.
    Ops::node_t *T1 = MakeLeaf(0), *T2 = MakeLeaf(1);
    Ops::inc(T1);
    Ops::inc(T2);
    Tracked::Copies = 0;
    Ops::node_t *U = Ops::union_(T1, T2, take_right());
    EXPECT_EQ(Tracked::Copies, static_cast<int64_t>(2 * N))
        << "shared blocks must be copied exactly once per entry";
    EXPECT_EQ(Ops::size(U), 2 * N);
    Ops::dec(U);
    Ops::dec(T1);
    Ops::dec(T2);
  }
}

// Every flat-fastpath result must satisfy the Def. 4.1 invariants, across a
// randomized mix of shapes and both settings.
TEST_F(FlatFastPath, InvariantsHoldOnEveryFastPathResult) {
  auto RunMix = [](auto SetTag, uint64_t Salt) {
    using Set = decltype(SetTag);
    FlagGuard G(Set::ops::flat_fastpath());
    auto R = test::seeded_rng(Salt);
    for (bool Fast : {false, true}) {
      Set::ops::flat_fastpath() = Fast;
      for (int Round = 0; Round < 25; ++Round) {
        size_t Na = 1 + R.next(600), Nb = 1 + R.next(600);
        std::vector<uint64_t> A(Na), B(Nb);
        for (auto &K : A)
          K = R.next(2000);
        for (auto &K : B)
          K = R.next(2000);
        Set SA(A), SB(B);
        for (Set Out : {Set::map_union(SA, SB), Set::map_intersect(SA, SB),
                        Set::map_difference(SA, SB), SA.multi_insert(B),
                        SA.multi_delete(B)}) {
          ASSERT_EQ(Out.check_invariants(), "")
              << "fast=" << Fast << " Na=" << Na << " Nb=" << Nb;
        }
      }
    }
  };
  RunMix(pam_set<uint64_t, 4>(), 1);
  RunMix(pam_set<uint64_t, 16>(), 2);
  RunMix(pam_set<uint64_t, 128>(), 3);
  RunMix(pam_set<uint64_t, 16, diff_encoder>(), 4);
}

// Cross-block-size agreement: all representations are views of the same
// abstract set, so every operation must agree elementwise.
TEST(CrossRepresentation, AllBlockSizesAgree) {
  auto A = randomKeys(5000, 40000, 17);
  auto B = randomKeys(3000, 40000, 18);
  pam_set<uint64_t, 0> A0(A), B0(B);
  pam_set<uint64_t, 8> A8(A), B8(B);
  pam_set<uint64_t, 128> A128(A), B128(B);
  pam_set<uint64_t, 64, diff_encoder> AD(A), BD(B);
  auto U0 = decltype(A0)::map_union(A0, B0).to_vector();
  auto U8 = decltype(A8)::map_union(A8, B8).to_vector();
  auto U128 = decltype(A128)::map_union(A128, B128).to_vector();
  auto UD = decltype(AD)::map_union(AD, BD).to_vector();
  EXPECT_EQ(U0, U8);
  EXPECT_EQ(U0, U128);
  EXPECT_EQ(U0, UD);
}

} // namespace
