//===- test_graph.cpp - Graph layer and algorithms vs references -----------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include <deque>
#include <map>
#include <set>

#include "gtest/gtest.h"

#include "src/api/pam_map.h"
#include "src/baselines/aspen_graph.h"
#include "src/baselines/csr_graph.h"
#include "src/graph/bc.h"
#include "src/graph/bfs.h"
#include "src/graph/graph.h"
#include "src/graph/mis.h"

using namespace cpam;

namespace {

using AdjRef = std::map<vertex_id, std::set<vertex_id>>;

AdjRef toRef(const std::vector<edge_pair> &Edges) {
  AdjRef Ref;
  for (auto &[U, V] : Edges)
    Ref[U].insert(V);
  return Ref;
}

/// Sequential reference BFS returning distances.
std::vector<int64_t> refBfs(const AdjRef &Ref, size_t N, vertex_id Src) {
  std::vector<int64_t> Dist(N, -1);
  std::deque<vertex_id> Q{Src};
  Dist[Src] = 0;
  while (!Q.empty()) {
    vertex_id U = Q.front();
    Q.pop_front();
    auto It = Ref.find(U);
    if (It == Ref.end())
      continue;
    for (vertex_id V : It->second)
      if (Dist[V] < 0) {
        Dist[V] = Dist[U] + 1;
        Q.push_back(V);
      }
  }
  return Dist;
}

TEST(SymGraph, BuildMatchesReference) {
  auto Edges = rmat_graph(10, 4000);
  size_t N = 1 << 10;
  sym_graph G = sym_graph::from_edges(Edges, N);
  EXPECT_EQ(G.check_invariants(), "");
  EXPECT_EQ(G.num_edges(), Edges.size());
  AdjRef Ref = toRef(Edges);
  for (auto &[U, Ns] : Ref) {
    ASSERT_EQ(G.degree(U), Ns.size());
    auto ES = G.neighbors(U);
    for (vertex_id V : Ns)
      ASSERT_TRUE(ES.contains(V)) << U << "->" << V;
  }
  // Flat snapshot agrees.
  auto Snap = G.flat_snapshot();
  ASSERT_EQ(Snap.size(), N);
  for (auto &[U, Ns] : Ref)
    ASSERT_EQ(Snap[U].size(), Ns.size());
}

TEST(SymGraph, InsertAndDeleteEdges) {
  auto Edges = rmat_graph(9, 2000);
  size_t N = 1 << 9;
  sym_graph G = sym_graph::from_edges(Edges, N);
  AdjRef Ref = toRef(Edges);

  // Insert a random batch (symmetrized).
  auto Raw = rmat_edges(9, 500, {0.5, 0.1, 0.1, 99});
  std::vector<edge_pair> Batch;
  for (auto &[U, V] : Raw) {
    if (U == V)
      continue;
    Batch.push_back({U, V});
    Batch.push_back({V, U});
    Ref[U].insert(V);
    Ref[V].insert(U);
  }
  sym_graph G2 = G.insert_edges(Batch);
  EXPECT_EQ(G2.check_invariants(), "");
  size_t RefEdges = 0;
  for (auto &[U, Ns] : Ref)
    RefEdges += Ns.size();
  EXPECT_EQ(G2.num_edges(), RefEdges);
  for (auto &[U, Ns] : Ref) {
    auto ES = G2.neighbors(U);
    ASSERT_EQ(ES.size(), Ns.size()) << "vertex " << U;
  }
  // The old snapshot is untouched (multiversioning).
  EXPECT_EQ(G.num_edges(), Edges.size());

  // Delete the same batch.
  sym_graph G3 = G2.delete_edges(Batch);
  EXPECT_EQ(G3.check_invariants(), "");
  AdjRef Ref3 = toRef(Edges);
  for (auto &[U, V] : Batch)
    Ref3[U].erase(V);
  size_t Ref3Edges = 0;
  for (auto &[U, Ns] : Ref3)
    Ref3Edges += Ns.size();
  EXPECT_EQ(G3.num_edges(), Ref3Edges);
}

TEST(SymGraph, DeleteForeignVerticesIsNoop) {
  auto Edges = rmat_graph(8, 500);
  sym_graph G = sym_graph::from_edges(Edges, 1 << 8);
  sym_graph G2 = G.delete_edges({{100000, 5}, {100001, 7}});
  EXPECT_EQ(G2.num_edges(), G.num_edges());
}

TEST(Bfs, MatchesReferenceOnRmat) {
  auto Edges = rmat_graph(11, 8000);
  size_t N = 1 << 11;
  sym_graph G = sym_graph::from_edges(Edges, N);
  auto Snap = G.flat_snapshot();
  auto Neighbors = make_neighbors(Snap);
  AdjRef Ref = toRef(Edges);
  for (vertex_id Src : {0u, 1u, 37u}) {
    if (!Ref.count(Src))
      continue;
    auto Expect = refBfs(Ref, N, Src);
    auto Parents = bfs(Neighbors, N, Src);
    // Reached sets agree; parent edges exist and shorten distance by 1.
    for (size_t V = 0; V < N; ++V) {
      ASSERT_EQ(Parents[V] != kBfsUnvisited, Expect[V] >= 0) << V;
      if (Parents[V] != kBfsUnvisited && V != Src) {
        ASSERT_TRUE(Ref[Parents[V]].count(static_cast<vertex_id>(V)));
        ASSERT_EQ(Expect[V], Expect[Parents[V]] + 1);
      }
    }
  }
}

TEST(Bfs, MeshDiameter) {
  auto Edges = mesh_graph(20);
  size_t N = 400;
  sym_graph G = sym_graph::from_edges(Edges, N);
  auto Snap = G.flat_snapshot();
  auto Parents = bfs(make_neighbors(Snap), N, 0);
  AdjRef Ref = toRef(Edges);
  auto Expect = refBfs(Ref, N, 0);
  // Corner-to-corner distance on a 20x20 grid is 38.
  EXPECT_EQ(Expect[399], 38);
  for (size_t V = 0; V < N; ++V)
    ASSERT_NE(Parents[V], kBfsUnvisited);
}

TEST(Mis, IndependentAndMaximal) {
  auto Edges = rmat_graph(10, 6000);
  size_t N = 1 << 10;
  sym_graph G = sym_graph::from_edges(Edges, N);
  auto Snap = G.flat_snapshot();
  auto InMis = mis(make_neighbors(Snap), N);
  AdjRef Ref = toRef(Edges);
  // Independence.
  for (auto &[U, Ns] : Ref) {
    if (InMis[U]) {
      for (vertex_id V : Ns) {
        ASSERT_FALSE(U != V && InMis[V]) << U << " and " << V;
      }
    }
  }
  // Maximality: every non-member has a member neighbor.
  for (size_t V = 0; V < N; ++V) {
    if (InMis[V])
      continue;
    bool HasMemberNeighbor = false;
    if (auto It = Ref.find(static_cast<vertex_id>(V)); It != Ref.end())
      for (vertex_id U : It->second)
        if (U != V && InMis[U])
          HasMemberNeighbor = true;
    ASSERT_TRUE(HasMemberNeighbor) << "vertex " << V << " could join";
  }
}

/// Sequential reference Brandes from one source.
std::vector<double> refBc(const AdjRef &Ref, size_t N, vertex_id Src) {
  std::vector<int64_t> Dist = refBfs(Ref, N, Src);
  std::vector<double> Sigma(N, 0), Delta(N, 0);
  Sigma[Src] = 1;
  std::vector<vertex_id> Order;
  for (size_t V = 0; V < N; ++V)
    if (Dist[V] >= 0)
      Order.push_back(static_cast<vertex_id>(V));
  std::sort(Order.begin(), Order.end(), [&](vertex_id A, vertex_id B) {
    return Dist[A] < Dist[B];
  });
  for (vertex_id V : Order) {
    if (V == Src)
      continue;
    auto It = Ref.find(V);
    if (It == Ref.end())
      continue;
    for (vertex_id U : It->second)
      if (Dist[U] == Dist[V] - 1)
        Sigma[V] += Sigma[U];
  }
  for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
    vertex_id V = *It;
    auto AdjIt = Ref.find(V);
    if (AdjIt == Ref.end())
      continue;
    for (vertex_id U : AdjIt->second)
      if (Dist[U] == Dist[V] - 1)
        Delta[U] += Sigma[U] / Sigma[V] * (1.0 + Delta[V]);
  }
  return Delta;
}

TEST(Bc, MatchesReferenceBrandes) {
  auto Edges = rmat_graph(8, 1500);
  size_t N = 1 << 8;
  sym_graph G = sym_graph::from_edges(Edges, N);
  auto Snap = G.flat_snapshot();
  AdjRef Ref = toRef(Edges);
  for (vertex_id Src : {0u, 3u, 200u}) {
    if (!Ref.count(Src))
      continue;
    auto Got = bc_from_source(make_neighbors(Snap), N, Src);
    auto Expect = refBc(Ref, N, Src);
    for (size_t V = 0; V < N; ++V)
      ASSERT_NEAR(Got[V], Expect[V], 1e-9) << "src " << Src << " v " << V;
  }
}

//===----------------------------------------------------------------------===
// Baselines.
//===----------------------------------------------------------------------===

TEST(CsrGraph, MatchesReference) {
  auto Edges = rmat_graph(10, 5000);
  size_t N = 1 << 10;
  csr_graph G = csr_graph::from_edges(Edges, N);
  EXPECT_EQ(G.num_edges(), Edges.size());
  AdjRef Ref = toRef(Edges);
  for (auto &[U, Ns] : Ref) {
    std::vector<vertex_id> Got;
    G.foreach_neighbor(U, [&](vertex_id V) { Got.push_back(V); });
    std::vector<vertex_id> Expect(Ns.begin(), Ns.end());
    ASSERT_EQ(Got, Expect);
  }
  // BFS over CSR through the shared Ligra layer.
  auto Parents = bfs(G, N, Edges[0].first);
  EXPECT_EQ(Parents[Edges[0].first], Edges[0].first);
  EXPECT_EQ(Parents[Edges[0].second], Edges[0].first);
  // Space: smaller than raw 8-byte edge pairs.
  EXPECT_LT(G.size_in_bytes(), Edges.size() * 8);
}

TEST(CTree, BuildForeachContains) {
  auto Keys = random_keys_sorted(5000, 100000, 41);
  std::vector<uint32_t> K32(Keys.begin(), Keys.end());
  ctree_set<16> C = ctree_set<16>::from_sorted(K32);
  EXPECT_EQ(C.size(), K32.size());
  std::vector<uint32_t> Got;
  C.foreach_seq([&](uint32_t K) { Got.push_back(K); });
  EXPECT_EQ(Got, K32);
  std::set<uint32_t> Ref(K32.begin(), K32.end());
  for (uint32_t K = 0; K < 2000; ++K)
    ASSERT_EQ(C.contains(K), Ref.count(K) == 1) << K;
}

TEST(CTree, UnionMatchesStdSet) {
  for (int Trial = 0; Trial < 5; ++Trial) {
    auto A = random_keys_sorted(2000, 50000, 42 + Trial);
    auto B = random_keys_sorted(100 + Trial * 211, 50000, 52 + Trial);
    std::vector<uint32_t> A32(A.begin(), A.end()), B32(B.begin(), B.end());
    ctree_set<8> C = ctree_set<8>::from_sorted(A32);
    ctree_set<8> U = C.union_sorted(B32);
    std::set<uint32_t> Ref(A32.begin(), A32.end());
    Ref.insert(B32.begin(), B32.end());
    ASSERT_EQ(U.size(), Ref.size()) << "trial " << Trial;
    std::vector<uint32_t> Got;
    U.foreach_seq([&](uint32_t K) { Got.push_back(K); });
    std::vector<uint32_t> Expect(Ref.begin(), Ref.end());
    ASSERT_EQ(Got, Expect);
    // Original unchanged (functional).
    ASSERT_EQ(C.size(), A32.size());
  }
}

TEST(AspenGraph, BuildAndInsertMatchesSymGraph) {
  auto Edges = rmat_graph(9, 3000);
  size_t N = 1 << 9;
  aspen_graph A = aspen_graph::from_edges(Edges, N);
  sym_graph G = sym_graph::from_edges(Edges, N);
  EXPECT_EQ(A.num_edges(), G.num_edges());
  auto Raw = rmat_edges(9, 300, {0.5, 0.1, 0.1, 7});
  std::vector<edge_pair> Batch;
  for (auto &[U, V] : Raw)
    if (U != V) {
      Batch.push_back({U, V});
      Batch.push_back({V, U});
    }
  aspen_graph A2 = A.insert_edges(Batch);
  sym_graph G2 = G.insert_edges(Batch);
  EXPECT_EQ(A2.num_edges(), G2.num_edges());
  // BFS over the Aspen snapshot agrees with CPAM's on reachability.
  auto SnapA = A2.flat_snapshot();
  auto SnapG = G2.flat_snapshot();
  auto NA = [&](vertex_id U, auto f) {
    if (U < SnapA.size())
      SnapA[U].foreach_seq(f);
  };
  auto PA = bfs(NA, N, 0);
  auto PG = bfs(make_neighbors(SnapG), N, 0);
  for (size_t V = 0; V < N; ++V)
    ASSERT_EQ(PA[V] == kBfsUnvisited, PG[V] == kBfsUnvisited) << V;
}

TEST(GraphSpace, OrderingAcrossRepresentations) {
  auto Edges = rmat_graph(13, 60000);
  size_t N = 1 << 13;
  csr_graph Csr = csr_graph::from_edges(Edges, N);
  sym_graph Diff = sym_graph::from_edges(Edges, N);
  sym_graph_nodiff NoDiff = sym_graph_nodiff::from_edges(Edges, N);
  aspen_graph Aspen = aspen_graph::from_edges(Edges, N);
  sym_graph_ptree PTree = sym_graph_ptree::from_edges(Edges, N);
  // Fig. 11's ordering: GBBS <= PaC-diff < PaC < Aspen < P-tree.
  EXPECT_LE(Csr.size_in_bytes(), Diff.size_in_bytes());
  EXPECT_LT(Diff.size_in_bytes(), NoDiff.size_in_bytes());
  EXPECT_LT(Diff.size_in_bytes(), Aspen.size_in_bytes());
  EXPECT_LT(Aspen.size_in_bytes(), PTree.size_in_bytes());
}

} // namespace

// The paper notes the representation "also supports weights": edge trees
// become maps from neighbor id to weight (diff-encoded keys, raw weights).
// This exercises the same two-level composition with weighted values.
using wedge_tree = pam_map<vertex_id, float, 64, diff_encoder>;
struct WVertexEntry {
  using key_t = vertex_id;
  using val_t = wedge_tree;
  using entry_t = std::pair<vertex_id, wedge_tree>;
  using aug_t = size_t;
  static constexpr bool has_val = true;
  static const key_t &get_key(const entry_t &E) { return E.first; }
  static const val_t &get_val(const entry_t &E) { return E.second; }
  static val_t &get_val(entry_t &E) { return E.second; }
  static bool comp(key_t A, key_t B) { return A < B; }
  static aug_t aug_empty() { return 0; }
  static aug_t aug_from_entry(const entry_t &E) { return E.second.size(); }
  static aug_t aug_combine(aug_t A, aug_t B) { return A + B; }
};

TEST(WeightedGraph, EdgeTreesAsWeightMaps) {
  using wvertex_tree = aug_map<WVertexEntry, 64>;

  auto Edges = rmat_graph(8, 1000);
  std::map<vertex_id, std::map<vertex_id, float>> Ref;
  std::vector<typename wvertex_tree::entry_t> Entries;
  vertex_id Cur = UINT32_MAX;
  std::vector<std::pair<vertex_id, float>> Ngh;
  auto Flush = [&] {
    if (Cur != UINT32_MAX)
      Entries.push_back({Cur, wedge_tree::from_sorted(std::move(Ngh))});
    Ngh.clear();
  };
  for (auto &[U, V] : Edges) {
    if (U != Cur) {
      Flush();
      Cur = U;
    }
    float W = float(hash64(uint64_t(U) << 32 | V) % 1000) / 10.0f;
    Ngh.push_back({V, W});
    Ref[U][V] = W;
  }
  Flush();
  wvertex_tree G = wvertex_tree::from_sorted(std::move(Entries));
  ASSERT_EQ(G.aug_val(), Edges.size());
  ASSERT_EQ(G.check_invariants(), "");
  for (auto &[U, Ns] : Ref) {
    auto E = G.find_entry(U);
    ASSERT_TRUE(E.has_value());
    ASSERT_EQ(E->second.size(), Ns.size());
    for (auto &[V, W] : Ns)
      ASSERT_EQ(*E->second.find(V), W);
  }
  // Weighted batch update: halve one vertex's weights functionally.
  vertex_id U0 = Ref.begin()->first;
  auto E0 = *G.find_entry(U0);
  wedge_tree Halved =
      E0.second.map_values([](const auto &E) { return E.second / 2; });
  wvertex_tree G2 = G.insert({U0, Halved});
  auto Old = G.find_entry(U0), New = G2.find_entry(U0);
  vertex_id V0 = Ref[U0].begin()->first;
  ASSERT_EQ(*Old->second.find(V0), Ref[U0][V0]);
  ASSERT_EQ(*New->second.find(V0), Ref[U0][V0] / 2);
}
