//===- test_serving.cpp - Versioned snapshot store tests -------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the serving layer (src/serving/): the epoch manager's
/// pin/advance/min_active protocol, version_chain's publish/acquire/
/// reclaim contract (reclamation strictly after the last reader epoch
/// that could observe a version exits; snapshots stay valid past
/// reclamation through refcounts alone), the bounded batch-ingest
/// pipeline, and the versioned_graph binding for both sym_graph and the
/// aspen_graph baseline. The concurrent episodes run readers on foreign
/// std::threads — the scheduler's sequential degradation path — against a
/// live writer, and are part of the CI TSan leg. Leak-check fixtures
/// confirm a drained chain releases every tree node it ever owned.
///
//===----------------------------------------------------------------------===//

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "src/api/pam_set.h"
#include "src/baselines/aspen_graph.h"
#include "src/graph/graph.h"
#include "src/serving/version_chain.h"
#include "tests/test_common.h"

namespace cpam {
namespace {

using serving::epoch_manager;
using serving::ingest_pipeline;
using serving::version_chain;
using serving::versioned_graph;

using u64_set = pam_set<uint64_t>;

std::vector<uint64_t> iota(uint64_t N) {
  std::vector<uint64_t> V(N);
  for (uint64_t I = 0; I < N; ++I)
    V[I] = I;
  return V;
}

//===----------------------------------------------------------------------===//
// Epoch manager.
//===----------------------------------------------------------------------===//

TEST(EpochManager, PinUnpinAndMinActive) {
  epoch_manager E;
  uint64_t E0 = E.current();
  EXPECT_EQ(E.min_active(), E0) << "no pins: min_active is the global epoch";
  EXPECT_FALSE(E.any_pinned());

  size_t S1 = E.pin();
  EXPECT_TRUE(E.any_pinned());
  EXPECT_EQ(E.min_active(), E0);

  // Advancing with a pinned reader keeps min_active at the pin.
  EXPECT_EQ(E.advance(), E0);
  EXPECT_EQ(E.current(), E0 + 1);
  EXPECT_EQ(E.min_active(), E0) << "pinned reader holds min_active back";

  // A second pin at the newer epoch does not lift the floor.
  size_t S2 = E.pin();
  EXPECT_NE(S1, S2) << "nested pins claim distinct slots";
  EXPECT_EQ(E.min_active(), E0);

  E.unpin(S1);
  EXPECT_EQ(E.min_active(), E0 + 1) << "floor rises to the remaining pin";
  E.unpin(S2);
  EXPECT_EQ(E.min_active(), E.current());
  EXPECT_FALSE(E.any_pinned());
  EXPECT_GE(E.stats().Pins, 2u);
}

TEST(EpochManager, GuardIsRaii) {
  epoch_manager E;
  {
    epoch_manager::guard G(E);
    EXPECT_TRUE(E.any_pinned());
  }
  EXPECT_FALSE(E.any_pinned());
}

//===----------------------------------------------------------------------===//
// Version chain: deterministic single-thread contract.
//===----------------------------------------------------------------------===//

class ServingLeakTest : public test::LeakCheckTest {};

TEST_F(ServingLeakTest, PublishAcquireSequence) {
  version_chain<u64_set> Chain(u64_set::from_sorted(iota(1)));
  for (uint64_t K = 2; K <= 8; ++K)
    Chain.publish(u64_set::from_sorted(iota(K)));
  uint64_t Seq = 0;
  u64_set S = Chain.acquire(Seq);
  EXPECT_EQ(Seq, 8u);
  EXPECT_EQ(Chain.seq(), 8u);
  EXPECT_EQ(S.size(), 8u);
  EXPECT_TRUE(S.contains(7));
  EXPECT_FALSE(S.contains(8));
}

TEST_F(ServingLeakTest, ReclaimOnlyAfterLastReaderEpochExits) {
  version_chain<u64_set> Chain(u64_set::from_sorted(iota(4)));
  // Pin a reader epoch by hand, as a reader caught between loading the
  // version pointer and copying the root would.
  epoch_manager &E = Chain.epochs();
  size_t Slot = E.pin();

  for (uint64_t K = 5; K <= 9; ++K)
    Chain.publish(u64_set::from_sorted(iota(K)));
  // All five retired versions carry retire epochs >= the pinned epoch, so
  // nothing may be reclaimed — neither by publish's inline pass nor by an
  // explicit one.
  EXPECT_EQ(Chain.retired_count(), 5u);
  EXPECT_EQ(Chain.reclaim(), 0u);
  EXPECT_EQ(Chain.reclaimed_total(), 0u);

  E.unpin(Slot);
  // Last reader epoch gone: every retired version frees in one pass.
  EXPECT_EQ(Chain.reclaim(), 5u);
  EXPECT_EQ(Chain.retired_count(), 0u);
  EXPECT_EQ(Chain.reclaimed_total(), 5u);
}

TEST_F(ServingLeakTest, SnapshotOutlivesReclamation) {
  version_chain<u64_set> Chain(u64_set::from_sorted(iota(100)));
  // The snapshot handle holds the tree by refcount; the epoch pin only
  // protects the acquire window. Reclaiming the retired version node must
  // leave the held snapshot fully readable.
  u64_set Old = Chain.acquire();
  Chain.publish(u64_set::from_sorted(iota(200)));
  Chain.publish(u64_set::from_sorted(iota(300)));
  // No reader pinned: publish's inline pass reclaimed both versions.
  EXPECT_EQ(Chain.retired_count(), 0u);
  EXPECT_EQ(Chain.reclaimed_total(), 2u);
  EXPECT_EQ(Old.size(), 100u);
  EXPECT_TRUE(Old.contains(99));
  EXPECT_EQ(Chain.acquire().size(), 300u);
}

TEST_F(ServingLeakTest, ChainDrainReleasesAllNodes) {
  // The fixture snapshots live-node counts around the body: building a
  // chain, churning versions, and destroying it must return to baseline.
  {
    version_chain<u64_set> Chain(u64_set::from_sorted(iota(64)));
    for (int Round = 0; Round < 32; ++Round)
      Chain.publish(u64_set::from_sorted(iota(64 + Round)));
    u64_set Keep = Chain.acquire();
    EXPECT_EQ(Keep.size(), 95u);
  } // Chain destructor drains current + retired versions.
}

//===----------------------------------------------------------------------===//
// Version chain: readers vs writer (the TSan episodes).
//===----------------------------------------------------------------------===//

/// Readers acquire snapshots continuously while one writer publishes
/// versions holding {0..K}: every snapshot must be internally consistent
/// (size s implies membership of exactly 0..s-1) and version sequence
/// numbers must be monotone per reader.
TEST_F(ServingLeakTest, SnapshotDuringPublishIsConsistent) {
  constexpr uint64_t kVersions = 300;
  constexpr size_t kReaders = 4;
  {
    version_chain<u64_set> Chain(u64_set::from_sorted(iota(1)));
    std::atomic<bool> Done{false};
    std::vector<std::thread> Readers;
    for (size_t R = 0; R < kReaders; ++R) {
      Readers.emplace_back([&] {
        uint64_t LastSeq = 0;
        while (!Done.load(std::memory_order_acquire)) {
          uint64_t Seq = 0;
          u64_set S = Chain.acquire(Seq);
          size_t N = S.size();
          ASSERT_GE(N, 1u);
          EXPECT_TRUE(S.contains(N - 1))
              << "snapshot missing its own maximum";
          EXPECT_FALSE(S.contains(N)) << "snapshot sees a future element";
          EXPECT_GE(Seq, LastSeq) << "version sequence went backwards";
          LastSeq = Seq;
        }
      });
    }
    for (uint64_t K = 2; K <= kVersions; ++K)
      Chain.publish(u64_set::from_sorted(iota(K)));
    Done.store(true, std::memory_order_release);
    for (auto &T : Readers)
      T.join();
    // Writer idle, readers gone: the whole retired backlog drains.
    Chain.reclaim();
    EXPECT_EQ(Chain.retired_count(), 0u);
    EXPECT_EQ(Chain.reclaimed_total(), kVersions - 1);
  }
}

TEST_F(ServingLeakTest, ManyReadersManyVersionsReclaimsEverything) {
  constexpr uint64_t kMinVersions = 200;
  constexpr uint64_t kMinAcquires = 64;
  constexpr uint64_t kMaxVersions = 1u << 20; // Starvation backstop.
  constexpr size_t kReaders = 8;
  {
    version_chain<u64_set> Chain(u64_set::from_sorted(iota(16)));
    std::atomic<bool> Done{false};
    std::atomic<uint64_t> Acquires{0};
    std::vector<std::thread> Readers;
    for (size_t R = 0; R < kReaders; ++R) {
      Readers.emplace_back([&, R] {
        Rng Rnd(test::test_seed(R));
        uint64_t I = 0;
        while (!Done.load(std::memory_order_acquire)) {
          u64_set S = Chain.acquire();
          // Touch the tree beyond the root so TSan sees real reads of
          // shared nodes racing any (incorrect) premature free.
          uint64_t Probe = Rnd.ith(I++) % (S.size() + 1);
          (void)S.contains(Probe);
          Acquires.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    // Publish until readers have demonstrably raced the writer (on a
    // single-core box the writer can otherwise finish any fixed version
    // count before a reader is ever scheduled), yielding to let them run.
    uint64_t Published = 0;
    while (Published < kMinVersions ||
           (Acquires.load(std::memory_order_relaxed) < kMinAcquires &&
            Published < kMaxVersions)) {
      Chain.publish(u64_set::from_sorted(iota(16 + Published % 64)));
      ++Published;
      if ((Published & 63) == 0)
        std::this_thread::yield();
    }
    Done.store(true, std::memory_order_release);
    for (auto &T : Readers)
      T.join();
    EXPECT_GT(Acquires.load(), 0u);
    Chain.reclaim();
    EXPECT_EQ(Chain.retired_count(), 0u);
    EXPECT_EQ(Chain.reclaimed_total(), Published);
  }
}

//===----------------------------------------------------------------------===//
// Ingest pipeline.
//===----------------------------------------------------------------------===//

TEST_F(ServingLeakTest, IngestPipelineAppliesEverySubmittedUpdate) {
  constexpr size_t kProducers = 4;
  constexpr uint64_t kPerProducer = 500;
  {
    version_chain<u64_set> Chain(u64_set{});
    ingest_pipeline<u64_set, uint64_t>::options O;
    O.QueueCapacity = 64; // Small: force the backpressure path.
    O.BatchWindow = 32;
    ingest_pipeline<u64_set, uint64_t> Pipe(
        Chain,
        [](const u64_set &Cur, std::vector<uint64_t> Batch) {
          return u64_set::map_union(Cur, u64_set(Batch));
        },
        O);
    std::vector<std::thread> Producers;
    for (size_t P = 0; P < kProducers; ++P)
      Producers.emplace_back([&, P] {
        for (uint64_t I = 0; I < kPerProducer; ++I)
          ASSERT_TRUE(Pipe.submit(P * kPerProducer + I));
      });
    for (auto &T : Producers)
      T.join();
    Pipe.flush();
    u64_set Final = Chain.acquire();
    EXPECT_EQ(Final.size(), kProducers * kPerProducer)
        << "some submitted updates never reached a published version";
    auto St = Pipe.stats();
    EXPECT_EQ(St.Submitted, kProducers * kPerProducer);
    EXPECT_EQ(St.Applied, St.Submitted);
    EXPECT_GE(St.Batches, St.Applied / O.BatchWindow)
        << "batch window exceeded";
    Pipe.stop();
    Chain.reclaim();
    EXPECT_EQ(Chain.retired_count(), 0u);
  }
}

TEST_F(ServingLeakTest, IngestPipelineFlushSeesPriorSubmits) {
  {
    version_chain<u64_set> Chain(u64_set{});
    ingest_pipeline<u64_set, uint64_t> Pipe(
        Chain, [](const u64_set &Cur, std::vector<uint64_t> Batch) {
          return u64_set::map_union(Cur, u64_set(Batch));
        });
    for (uint64_t Round = 0; Round < 10; ++Round) {
      for (uint64_t I = 0; I < 100; ++I)
        ASSERT_TRUE(Pipe.submit(Round * 100 + I));
      Pipe.flush();
      EXPECT_EQ(Chain.acquire().size(), (Round + 1) * 100)
          << "flush returned before all prior submits were published";
    }
  }
}

//===----------------------------------------------------------------------===//
// Versioned graph binding (sym_graph and the aspen baseline).
//===----------------------------------------------------------------------===//

/// Drives a versioned_graph<G>: concurrent edge producers against BFS-free
/// readers checking snapshot degree consistency, then a flush and a full
/// content check.
template <class G> void runVersionedGraphEpisode() {
  constexpr size_t kProducers = 2;
  constexpr vertex_id kSpokes = 400;
  // Star around vertex 0 built incrementally: spoke K adds both directions
  // of (0, K). Any snapshot must satisfy degree(0) == #spokes visible, and
  // symmetric membership for every visible spoke.
  G Init = G::from_edges({{0, 1}, {1, 0}}, kSpokes + 1);
  typename versioned_graph<G>::options O;
  O.QueueCapacity = 128;
  O.BatchWindow = 64;
  versioned_graph<G> VG(std::move(Init), O);

  std::atomic<bool> Done{false};
  std::thread Reader([&] {
    size_t LastDeg = 0;
    while (!Done.load(std::memory_order_acquire)) {
      G Snap = VG.snapshot();
      size_t Deg = Snap.degree(0);
      EXPECT_GE(Deg, LastDeg) << "hub degree shrank across snapshots";
      EXPECT_GE(Deg, 1u);
      LastDeg = Deg;
    }
  });
  std::vector<std::thread> Producers;
  for (size_t P = 0; P < kProducers; ++P)
    Producers.emplace_back([&, P] {
      for (vertex_id V = 2 + P; V <= kSpokes; V += kProducers) {
        ASSERT_TRUE(VG.submit_edge(0, V));
        ASSERT_TRUE(VG.submit_edge(V, 0));
      }
    });
  for (auto &T : Producers)
    T.join();
  VG.flush();
  Done.store(true, std::memory_order_release);
  Reader.join();

  G Final = VG.snapshot();
  EXPECT_EQ(Final.degree(0), kSpokes);
  for (vertex_id V = 1; V <= kSpokes; ++V) {
    EXPECT_EQ(Final.degree(V), 1u) << "spoke " << V;
    EXPECT_TRUE(Final.neighbors(V).contains(0));
  }
  auto St = VG.ingest_stats();
  EXPECT_EQ(St.Applied, St.Submitted);
  VG.stop();
  VG.chain().reclaim();
  EXPECT_EQ(VG.chain().retired_count(), 0u);
}

TEST_F(ServingLeakTest, VersionedSymGraphServesConsistentSnapshots) {
  runVersionedGraphEpisode<sym_graph>();
}

TEST_F(ServingLeakTest, VersionedAspenGraphServesConsistentSnapshots) {
  runVersionedGraphEpisode<aspen_graph>();
}

} // namespace
} // namespace cpam
