//===- test_serving.cpp - Versioned snapshot store tests -------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the serving layer (src/serving/): the epoch manager's
/// pin/advance/min_active protocol, version_chain's publish/acquire/
/// reclaim contract (reclamation strictly after the last reader epoch
/// that could observe a version exits; snapshots stay valid past
/// reclamation through refcounts alone), the bounded batch-ingest
/// pipeline, and the versioned_graph binding for both sym_graph and the
/// aspen_graph baseline. The concurrent episodes run readers on foreign
/// std::threads — the scheduler's sequential degradation path — against a
/// live writer, and are part of the CI TSan leg. Leak-check fixtures
/// confirm a drained chain releases every tree node it ever owned.
///
//===----------------------------------------------------------------------===//

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "src/api/pam_set.h"
#include "src/baselines/aspen_graph.h"
#include "src/graph/graph.h"
#include "src/serving/version_chain.h"
#include "tests/test_common.h"

namespace cpam {
namespace {

using serving::epoch_manager;
using serving::ingest_pipeline;
using serving::overload_policy;
using serving::version_chain;
using serving::versioned_graph;

using u64_set = pam_set<uint64_t>;

std::vector<uint64_t> iota(uint64_t N) {
  std::vector<uint64_t> V(N);
  for (uint64_t I = 0; I < N; ++I)
    V[I] = I;
  return V;
}

//===----------------------------------------------------------------------===//
// Epoch manager.
//===----------------------------------------------------------------------===//

TEST(EpochManager, PinUnpinAndMinActive) {
  epoch_manager E;
  uint64_t E0 = E.current();
  EXPECT_EQ(E.min_active(), E0) << "no pins: min_active is the global epoch";
  EXPECT_FALSE(E.any_pinned());

  size_t S1 = E.pin();
  EXPECT_TRUE(E.any_pinned());
  EXPECT_EQ(E.min_active(), E0);

  // Advancing with a pinned reader keeps min_active at the pin.
  EXPECT_EQ(E.advance(), E0);
  EXPECT_EQ(E.current(), E0 + 1);
  EXPECT_EQ(E.min_active(), E0) << "pinned reader holds min_active back";

  // A second pin at the newer epoch does not lift the floor.
  size_t S2 = E.pin();
  EXPECT_NE(S1, S2) << "nested pins claim distinct slots";
  EXPECT_EQ(E.min_active(), E0);

  E.unpin(S1);
  EXPECT_EQ(E.min_active(), E0 + 1) << "floor rises to the remaining pin";
  E.unpin(S2);
  EXPECT_EQ(E.min_active(), E.current());
  EXPECT_FALSE(E.any_pinned());
  EXPECT_GE(E.stats().Pins, 2u);
}

TEST(EpochManager, GuardIsRaii) {
  epoch_manager E;
  {
    epoch_manager::guard G(E);
    EXPECT_TRUE(E.any_pinned());
  }
  EXPECT_FALSE(E.any_pinned());
}

/// Slot exhaustion contract: with all kMaxReaders slots pinned, pin()
/// does not fail or corrupt anything — it counts a SlotExhausted sweep,
/// yields, and completes as soon as any slot frees.
TEST(EpochManager, SlotExhaustionBlocksThenRecovers) {
  epoch_manager E;
  std::vector<size_t> Slots;
  Slots.reserve(epoch_manager::kMaxReaders);
  for (size_t I = 0; I < epoch_manager::kMaxReaders; ++I)
    Slots.push_back(E.pin());
  EXPECT_EQ(E.stats().SlotExhausted, 0u)
      << "exactly kMaxReaders pins must fit without a failed sweep";

  std::atomic<bool> Claimed{false};
  size_t LateSlot = 0;
  std::thread Late([&] {
    LateSlot = E.pin(); // Spins in yield-retry until a slot frees.
    Claimed.store(true, std::memory_order_release);
  });
  // The 513th pin cannot succeed while the table is full; wait until it
  // has demonstrably swept the whole table at least once.
  while (E.stats().SlotExhausted == 0)
    std::this_thread::yield();
  EXPECT_FALSE(Claimed.load(std::memory_order_acquire))
      << "pin claimed a slot while all were busy";

  E.unpin(Slots.back());
  Slots.pop_back();
  Late.join();
  EXPECT_TRUE(Claimed.load());
  E.unpin(LateSlot);
  for (size_t S : Slots)
    E.unpin(S);
  EXPECT_FALSE(E.any_pinned());
  EXPECT_GE(E.stats().SlotExhausted, 1u);
}

//===----------------------------------------------------------------------===//
// Version chain: deterministic single-thread contract.
//===----------------------------------------------------------------------===//

class ServingLeakTest : public test::LeakCheckTest {};

TEST_F(ServingLeakTest, PublishAcquireSequence) {
  version_chain<u64_set> Chain(u64_set::from_sorted(iota(1)));
  for (uint64_t K = 2; K <= 8; ++K)
    Chain.publish(u64_set::from_sorted(iota(K)));
  uint64_t Seq = 0;
  u64_set S = Chain.acquire(Seq);
  EXPECT_EQ(Seq, 8u);
  EXPECT_EQ(Chain.seq(), 8u);
  EXPECT_EQ(S.size(), 8u);
  EXPECT_TRUE(S.contains(7));
  EXPECT_FALSE(S.contains(8));
}

TEST_F(ServingLeakTest, ReclaimOnlyAfterLastReaderEpochExits) {
  version_chain<u64_set> Chain(u64_set::from_sorted(iota(4)));
  // Pin a reader epoch by hand, as a reader caught between loading the
  // version pointer and copying the root would.
  epoch_manager &E = Chain.epochs();
  size_t Slot = E.pin();

  for (uint64_t K = 5; K <= 9; ++K)
    Chain.publish(u64_set::from_sorted(iota(K)));
  // All five retired versions carry retire epochs >= the pinned epoch, so
  // nothing may be reclaimed — neither by publish's inline pass nor by an
  // explicit one.
  EXPECT_EQ(Chain.retired_count(), 5u);
  EXPECT_EQ(Chain.reclaim(), 0u);
  EXPECT_EQ(Chain.reclaimed_total(), 0u);

  E.unpin(Slot);
  // Last reader epoch gone: every retired version frees in one pass.
  EXPECT_EQ(Chain.reclaim(), 5u);
  EXPECT_EQ(Chain.retired_count(), 0u);
  EXPECT_EQ(Chain.reclaimed_total(), 5u);
}

TEST_F(ServingLeakTest, SnapshotOutlivesReclamation) {
  version_chain<u64_set> Chain(u64_set::from_sorted(iota(100)));
  // The snapshot handle holds the tree by refcount; the epoch pin only
  // protects the acquire window. Reclaiming the retired version node must
  // leave the held snapshot fully readable.
  u64_set Old = Chain.acquire();
  Chain.publish(u64_set::from_sorted(iota(200)));
  Chain.publish(u64_set::from_sorted(iota(300)));
  // No reader pinned: publish's inline pass reclaimed both versions.
  EXPECT_EQ(Chain.retired_count(), 0u);
  EXPECT_EQ(Chain.reclaimed_total(), 2u);
  EXPECT_EQ(Old.size(), 100u);
  EXPECT_TRUE(Old.contains(99));
  EXPECT_EQ(Chain.acquire().size(), 300u);
}

TEST_F(ServingLeakTest, ChainDrainReleasesAllNodes) {
  // The fixture snapshots live-node counts around the body: building a
  // chain, churning versions, and destroying it must return to baseline.
  {
    version_chain<u64_set> Chain(u64_set::from_sorted(iota(64)));
    for (int Round = 0; Round < 32; ++Round)
      Chain.publish(u64_set::from_sorted(iota(64 + Round)));
    u64_set Keep = Chain.acquire();
    EXPECT_EQ(Keep.size(), 95u);
  } // Chain destructor drains current + retired versions.
}

//===----------------------------------------------------------------------===//
// Version chain: readers vs writer (the TSan episodes).
//===----------------------------------------------------------------------===//

/// Readers acquire snapshots continuously while one writer publishes
/// versions holding {0..K}: every snapshot must be internally consistent
/// (size s implies membership of exactly 0..s-1) and version sequence
/// numbers must be monotone per reader.
TEST_F(ServingLeakTest, SnapshotDuringPublishIsConsistent) {
  constexpr uint64_t kVersions = 300;
  constexpr size_t kReaders = 4;
  {
    version_chain<u64_set> Chain(u64_set::from_sorted(iota(1)));
    std::atomic<bool> Done{false};
    std::vector<std::thread> Readers;
    for (size_t R = 0; R < kReaders; ++R) {
      Readers.emplace_back([&] {
        uint64_t LastSeq = 0;
        while (!Done.load(std::memory_order_acquire)) {
          uint64_t Seq = 0;
          u64_set S = Chain.acquire(Seq);
          size_t N = S.size();
          ASSERT_GE(N, 1u);
          EXPECT_TRUE(S.contains(N - 1))
              << "snapshot missing its own maximum";
          EXPECT_FALSE(S.contains(N)) << "snapshot sees a future element";
          EXPECT_GE(Seq, LastSeq) << "version sequence went backwards";
          LastSeq = Seq;
        }
      });
    }
    for (uint64_t K = 2; K <= kVersions; ++K)
      Chain.publish(u64_set::from_sorted(iota(K)));
    Done.store(true, std::memory_order_release);
    for (auto &T : Readers)
      T.join();
    // Writer idle, readers gone: the whole retired backlog drains.
    Chain.reclaim();
    EXPECT_EQ(Chain.retired_count(), 0u);
    EXPECT_EQ(Chain.reclaimed_total(), kVersions - 1);
  }
}

TEST_F(ServingLeakTest, ManyReadersManyVersionsReclaimsEverything) {
  constexpr uint64_t kMinVersions = 200;
  constexpr uint64_t kMinAcquires = 64;
  constexpr uint64_t kMaxVersions = 1u << 20; // Starvation backstop.
  constexpr size_t kReaders = 8;
  {
    version_chain<u64_set> Chain(u64_set::from_sorted(iota(16)));
    std::atomic<bool> Done{false};
    std::atomic<uint64_t> Acquires{0};
    std::vector<std::thread> Readers;
    for (size_t R = 0; R < kReaders; ++R) {
      Readers.emplace_back([&, R] {
        Rng Rnd(test::test_seed(R));
        uint64_t I = 0;
        while (!Done.load(std::memory_order_acquire)) {
          u64_set S = Chain.acquire();
          // Touch the tree beyond the root so TSan sees real reads of
          // shared nodes racing any (incorrect) premature free.
          uint64_t Probe = Rnd.ith(I++) % (S.size() + 1);
          (void)S.contains(Probe);
          Acquires.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    // Publish until readers have demonstrably raced the writer (on a
    // single-core box the writer can otherwise finish any fixed version
    // count before a reader is ever scheduled), yielding to let them run.
    uint64_t Published = 0;
    while (Published < kMinVersions ||
           (Acquires.load(std::memory_order_relaxed) < kMinAcquires &&
            Published < kMaxVersions)) {
      Chain.publish(u64_set::from_sorted(iota(16 + Published % 64)));
      ++Published;
      if ((Published & 63) == 0)
        std::this_thread::yield();
    }
    Done.store(true, std::memory_order_release);
    for (auto &T : Readers)
      T.join();
    EXPECT_GT(Acquires.load(), 0u);
    Chain.reclaim();
    EXPECT_EQ(Chain.retired_count(), 0u);
    EXPECT_EQ(Chain.reclaimed_total(), Published);
  }
}

//===----------------------------------------------------------------------===//
// Ingest pipeline.
//===----------------------------------------------------------------------===//

TEST_F(ServingLeakTest, IngestPipelineAppliesEverySubmittedUpdate) {
  constexpr size_t kProducers = 4;
  constexpr uint64_t kPerProducer = 500;
  {
    version_chain<u64_set> Chain(u64_set{});
    ingest_pipeline<u64_set, uint64_t>::options O;
    O.QueueCapacity = 64; // Small: force the backpressure path.
    O.BatchWindow = 32;
    ingest_pipeline<u64_set, uint64_t> Pipe(
        Chain,
        [](const u64_set &Cur, std::vector<uint64_t> Batch) {
          return u64_set::map_union(Cur, u64_set(Batch));
        },
        O);
    std::vector<std::thread> Producers;
    for (size_t P = 0; P < kProducers; ++P)
      Producers.emplace_back([&, P] {
        for (uint64_t I = 0; I < kPerProducer; ++I)
          ASSERT_TRUE(Pipe.submit(P * kPerProducer + I));
      });
    for (auto &T : Producers)
      T.join();
    Pipe.flush();
    u64_set Final = Chain.acquire();
    EXPECT_EQ(Final.size(), kProducers * kPerProducer)
        << "some submitted updates never reached a published version";
    auto St = Pipe.stats();
    EXPECT_EQ(St.Submitted, kProducers * kPerProducer);
    EXPECT_EQ(St.Applied, St.Submitted);
    EXPECT_GE(St.Batches, St.Applied / O.BatchWindow)
        << "batch window exceeded";
    Pipe.stop();
    Chain.reclaim();
    EXPECT_EQ(Chain.retired_count(), 0u);
  }
}

TEST_F(ServingLeakTest, IngestPipelineFlushSeesPriorSubmits) {
  {
    version_chain<u64_set> Chain(u64_set{});
    ingest_pipeline<u64_set, uint64_t> Pipe(
        Chain, [](const u64_set &Cur, std::vector<uint64_t> Batch) {
          return u64_set::map_union(Cur, u64_set(Batch));
        });
    for (uint64_t Round = 0; Round < 10; ++Round) {
      for (uint64_t I = 0; I < 100; ++I)
        ASSERT_TRUE(Pipe.submit(Round * 100 + I));
      Pipe.flush();
      EXPECT_EQ(Chain.acquire().size(), (Round + 1) * 100)
          << "flush returned before all prior submits were published";
    }
  }
}

//===----------------------------------------------------------------------===//
// Ingest pipeline: overload policies, deadlines, shutdown.
//===----------------------------------------------------------------------===//

/// Gates the pipeline's apply function: every batch blocks inside Apply
/// until open(), which lets a test hold the writer mid-batch and fill the
/// queue deterministically behind it.
struct apply_gate {
  std::mutex M;
  std::condition_variable Cv;
  bool Open = false;
  std::atomic<int> Entered{0};

  void block() {
    Entered.fetch_add(1, std::memory_order_release);
    std::unique_lock<std::mutex> L(M);
    Cv.wait(L, [&] { return Open; });
  }
  void open() {
    {
      std::lock_guard<std::mutex> L(M);
      Open = true;
    }
    Cv.notify_all();
  }
  void wait_entered(int N) {
    while (Entered.load(std::memory_order_acquire) < N)
      std::this_thread::yield();
  }
};

using u64_pipeline = ingest_pipeline<u64_set, uint64_t>;

/// Builds a gated pipeline: BatchWindow 1 so the writer takes exactly one
/// item per batch, and every apply blocks on \p Gate until opened.
u64_pipeline::options gatedOptions(size_t Capacity, overload_policy Policy) {
  u64_pipeline::options O;
  O.QueueCapacity = Capacity;
  O.BatchWindow = 1;
  O.Policy = Policy;
  return O;
}

u64_pipeline::apply_fn gatedApply(apply_gate &Gate) {
  return [&Gate](const u64_set &Cur, std::vector<uint64_t> Batch) {
    Gate.block();
    return u64_set::map_union(Cur, u64_set(Batch));
  };
}

/// Regression: a submitter blocked on a full queue (Block policy) must
/// wake and return false when stop() races in — not hang, and not sneak
/// its update into a stopping pipeline.
TEST_F(ServingLeakTest, StopWakesBlockedSubmitters) {
  constexpr size_t kBlocked = 3;
  {
    version_chain<u64_set> Chain(u64_set{});
    apply_gate Gate;
    u64_pipeline Pipe(Chain, gatedApply(Gate),
                      gatedOptions(2, overload_policy::Block));
    // Writer takes item 0 and parks inside Apply; then fill the queue.
    ASSERT_TRUE(Pipe.submit(0));
    Gate.wait_entered(1);
    ASSERT_TRUE(Pipe.submit(1));
    ASSERT_TRUE(Pipe.submit(2));

    // These block on NotFull: no space can free while the writer is parked.
    bool Res[kBlocked] = {true, true, true};
    std::vector<std::thread> Submitters;
    for (size_t I = 0; I < kBlocked; ++I)
      Submitters.emplace_back([&, I] { Res[I] = Pipe.submit(10 + I); });
    while (Pipe.stats().FullWaits < kBlocked)
      std::this_thread::yield();

    // stop() must wake all three even though the writer is still parked
    // inside Apply (stop itself blocks joining the writer, so run it on a
    // separate thread and release the gate afterwards).
    std::thread Stopper([&] { Pipe.stop(); });
    for (auto &T : Submitters)
      T.join();
    for (size_t I = 0; I < kBlocked; ++I)
      EXPECT_FALSE(Res[I]) << "blocked submitter " << I
                           << " was not refused on shutdown";
    Gate.open();
    Stopper.join();

    // The queued items drain on shutdown; the refused ones never land.
    u64_set Final = Chain.acquire();
    EXPECT_EQ(Final.size(), 3u);
    EXPECT_FALSE(Final.contains(10));
    EXPECT_EQ(Pipe.stats().Submitted, 3u);
    Chain.reclaim();
  }
}

/// RejectNewest: exactly the submits that found a full queue are refused
/// and counted; everything accepted is eventually applied.
TEST_F(ServingLeakTest, RejectNewestCountsExactly) {
  {
    version_chain<u64_set> Chain(u64_set{});
    apply_gate Gate;
    u64_pipeline Pipe(Chain, gatedApply(Gate),
                      gatedOptions(4, overload_policy::RejectNewest));
    ASSERT_TRUE(Pipe.submit(0));
    Gate.wait_entered(1);
    for (uint64_t I = 1; I <= 4; ++I)
      ASSERT_TRUE(Pipe.submit(I));
    for (uint64_t I = 5; I <= 7; ++I)
      EXPECT_FALSE(Pipe.submit(I)) << "queue was full; " << I
                                   << " must be rejected";
    auto St = Pipe.stats();
    EXPECT_EQ(St.Submitted, 5u);
    EXPECT_EQ(St.Rejected, 3u);
    EXPECT_EQ(St.Shed, 0u);

    Gate.open();
    Pipe.flush();
    u64_set Final = Chain.acquire();
    EXPECT_EQ(Final.size(), 5u);
    for (uint64_t I = 0; I <= 4; ++I)
      EXPECT_TRUE(Final.contains(I));
    for (uint64_t I = 5; I <= 7; ++I)
      EXPECT_FALSE(Final.contains(I));
    Pipe.stop();
    Chain.reclaim();
  }
}

/// ShedOldest: the oldest queued updates are the victims, the new ones
/// land, and Shed counts exactly the dropped items.
TEST_F(ServingLeakTest, ShedOldestDropsOldestExactly) {
  {
    version_chain<u64_set> Chain(u64_set{});
    apply_gate Gate;
    u64_pipeline Pipe(Chain, gatedApply(Gate),
                      gatedOptions(4, overload_policy::ShedOldest));
    ASSERT_TRUE(Pipe.submit(0));
    Gate.wait_entered(1);
    for (uint64_t I = 1; I <= 4; ++I)
      ASSERT_TRUE(Pipe.submit(I)); // Queue now holds {1,2,3,4}.
    ASSERT_TRUE(Pipe.submit(5));   // Sheds 1.
    ASSERT_TRUE(Pipe.submit(6));   // Sheds 2.
    auto St = Pipe.stats();
    EXPECT_EQ(St.Submitted, 7u);
    EXPECT_EQ(St.Shed, 2u);
    EXPECT_EQ(St.Rejected, 0u);

    Gate.open();
    Pipe.flush();
    u64_set Final = Chain.acquire();
    EXPECT_EQ(Final.size(), 5u);
    for (uint64_t I : {0u, 3u, 4u, 5u, 6u})
      EXPECT_TRUE(Final.contains(I)) << I;
    EXPECT_FALSE(Final.contains(1)) << "oldest victim survived";
    EXPECT_FALSE(Final.contains(2)) << "second victim survived";
    EXPECT_EQ(Pipe.stats().Applied, 5u)
        << "shed items must not be applied";
    Pipe.stop();
    Chain.reclaim();
  }
}

/// submit_for: the deadline expires against a wedged writer (counted in
/// DeadlineTimeouts), then succeeds once space frees.
TEST_F(ServingLeakTest, SubmitForDeadlineExpiresThenSucceeds) {
  {
    version_chain<u64_set> Chain(u64_set{});
    apply_gate Gate;
    u64_pipeline Pipe(Chain, gatedApply(Gate),
                      gatedOptions(2, overload_policy::Block));
    ASSERT_TRUE(Pipe.submit(0));
    Gate.wait_entered(1);
    ASSERT_TRUE(Pipe.submit(1));
    ASSERT_TRUE(Pipe.submit(2));

    EXPECT_FALSE(Pipe.submit_for(3, std::chrono::milliseconds(30)))
        << "deadline must expire while the writer is wedged";
    auto St = Pipe.stats();
    EXPECT_EQ(St.DeadlineTimeouts, 1u);
    EXPECT_EQ(St.Submitted, 3u);

    Gate.open();
    EXPECT_TRUE(Pipe.submit_for(4, std::chrono::seconds(30)));
    Pipe.flush();
    u64_set Final = Chain.acquire();
    EXPECT_EQ(Final.size(), 4u);
    EXPECT_FALSE(Final.contains(3)) << "timed-out update leaked in";
    EXPECT_TRUE(Final.contains(4));
    Pipe.stop();
    Chain.reclaim();
  }
}

/// flush_for reports in-flight work honestly: false while a batch is
/// wedged inside Apply, true once the queue drains.
TEST_F(ServingLeakTest, FlushForTimesOutWhileApplyWedged) {
  {
    version_chain<u64_set> Chain(u64_set{});
    apply_gate Gate;
    u64_pipeline Pipe(Chain, gatedApply(Gate),
                      gatedOptions(8, overload_policy::Block));
    ASSERT_TRUE(Pipe.submit(0));
    Gate.wait_entered(1);
    EXPECT_FALSE(Pipe.flush_for(std::chrono::milliseconds(30)));
    Gate.open();
    EXPECT_TRUE(Pipe.flush_for(std::chrono::seconds(30)));
    EXPECT_EQ(Chain.acquire().size(), 1u);
    Pipe.stop();
    Chain.reclaim();
  }
}

/// Stall watchdog + retire backlog: a reader pinned past the age
/// threshold shows up in stalled_readers() and dams up the retired list
/// (visible through retired_high_water()); unpinning clears both.
TEST_F(ServingLeakTest, StalledReaderWatchdogAndRetiredBacklog) {
  {
    version_chain<u64_set> Chain(u64_set::from_sorted(iota(8)));
    epoch_manager &E = Chain.epochs();
    EXPECT_EQ(E.stalled_readers(0), 0u) << "no pins, no stalls";

    size_t Slot = E.pin();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(E.stalled_readers(1'000'000), 1u)
        << "a 5ms-old pin must trip a 1ms threshold";
    EXPECT_EQ(E.stalled_readers(uint64_t(60) * 1'000'000'000), 0u)
        << "a 5ms-old pin must not trip a 60s threshold";

    for (uint64_t K = 9; K <= 16; ++K)
      Chain.publish(u64_set::from_sorted(iota(K)));
    EXPECT_EQ(Chain.retired_count(), 8u) << "stalled reader dams reclamation";
    EXPECT_GE(Chain.retired_high_water(), 8u);

    E.unpin(Slot);
    EXPECT_EQ(E.stalled_readers(1'000'000), 0u);
    Chain.reclaim();
    EXPECT_EQ(Chain.retired_count(), 0u);
    EXPECT_GE(Chain.retired_high_water(), 8u) << "high-water is sticky";
  }
}

//===----------------------------------------------------------------------===//
// Versioned graph binding (sym_graph and the aspen baseline).
//===----------------------------------------------------------------------===//

/// Drives a versioned_graph<G>: concurrent edge producers against BFS-free
/// readers checking snapshot degree consistency, then a flush and a full
/// content check.
template <class G> void runVersionedGraphEpisode() {
  constexpr size_t kProducers = 2;
  constexpr vertex_id kSpokes = 400;
  // Star around vertex 0 built incrementally: spoke K adds both directions
  // of (0, K). Any snapshot must satisfy degree(0) == #spokes visible, and
  // symmetric membership for every visible spoke.
  G Init = G::from_edges({{0, 1}, {1, 0}}, kSpokes + 1);
  typename versioned_graph<G>::options O;
  O.QueueCapacity = 128;
  O.BatchWindow = 64;
  versioned_graph<G> VG(std::move(Init), O);

  std::atomic<bool> Done{false};
  std::thread Reader([&] {
    size_t LastDeg = 0;
    while (!Done.load(std::memory_order_acquire)) {
      G Snap = VG.snapshot();
      size_t Deg = Snap.degree(0);
      EXPECT_GE(Deg, LastDeg) << "hub degree shrank across snapshots";
      EXPECT_GE(Deg, 1u);
      LastDeg = Deg;
    }
  });
  std::vector<std::thread> Producers;
  for (size_t P = 0; P < kProducers; ++P)
    Producers.emplace_back([&, P] {
      for (vertex_id V = 2 + P; V <= kSpokes; V += kProducers) {
        ASSERT_TRUE(VG.submit_edge(0, V));
        ASSERT_TRUE(VG.submit_edge(V, 0));
      }
    });
  for (auto &T : Producers)
    T.join();
  VG.flush();
  Done.store(true, std::memory_order_release);
  Reader.join();

  G Final = VG.snapshot();
  EXPECT_EQ(Final.degree(0), kSpokes);
  for (vertex_id V = 1; V <= kSpokes; ++V) {
    EXPECT_EQ(Final.degree(V), 1u) << "spoke " << V;
    EXPECT_TRUE(Final.neighbors(V).contains(0));
  }
  auto St = VG.ingest_stats();
  EXPECT_EQ(St.Applied, St.Submitted);
  VG.stop();
  VG.chain().reclaim();
  EXPECT_EQ(VG.chain().retired_count(), 0u);
}

TEST_F(ServingLeakTest, VersionedSymGraphServesConsistentSnapshots) {
  runVersionedGraphEpisode<sym_graph>();
}

TEST_F(ServingLeakTest, VersionedAspenGraphServesConsistentSnapshots) {
  runVersionedGraphEpisode<aspen_graph>();
}

} // namespace
} // namespace cpam
