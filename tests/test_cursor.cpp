//===- test_cursor.cpp - Streaming encoder cursor tests --------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-encoder read_cursor / write_cursor contract tests: round trips over
/// empty, single-entry, dense and max-width-delta blocks; fuzzed
/// skip/take/peek interleavings against the for_each_while reference;
/// bytes() agreement with encoded_size; move-only entries; and early
/// abandonment (no leaked or double-destroyed entries, checked with a
/// construction-counting entry type and with the allocator leak fixture at
/// the tree level). ASan (the sanitize CI leg) additionally checks the
/// max_bytes staging bound and shell-free ordering.
///
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "gtest/gtest.h"

#include "src/api/pam_set.h"
#include "src/core/entry.h"
#include "src/core/invariants.h"
#include "src/encoding/diff_encoder.h"
#include "src/encoding/gamma_encoder.h"
#include "src/encoding/raw_encoder.h"
#include "src/parallel/random.h"
#include "tests/test_common.h"

using namespace cpam;

namespace {

//===----------------------------------------------------------------------===//
// Shared round-trip machinery.
//===----------------------------------------------------------------------===//

/// Encodes \p Entries through a write_cursor into a tight block, asserting
/// bytes() agrees with encoded_size, and returns the block.
template <class Enc, class EntryT>
std::vector<uint8_t> encodeViaCursor(std::vector<EntryT> Entries) {
  size_t N = Entries.size();
  // +1 keeps the staging vector non-empty for the N == 0 case.
  std::vector<uint8_t> Staging(Enc::write_cursor::max_bytes(N) + 1);
  typename Enc::write_cursor W(Staging.data(), N);
  std::vector<EntryT> Reference = Entries; // For encoded_size cross-check.
  for (size_t I = 0; I < N; ++I) {
    W.push(std::move(Entries[I]));
    EXPECT_EQ(W.count(), I + 1);
  }
  EXPECT_EQ(W.bytes(), Enc::encoded_size(Reference.data(), N))
      << "write_cursor bytes() must equal encoded_size for the same entries";
  std::vector<uint8_t> Block(W.bytes());
  W.finish(Block.data());
  EXPECT_EQ(W.count(), 0u) << "finish() must reset the cursor";
  return Block;
}

/// Reads a whole block back through a borrowing read_cursor.
template <class Enc, class EntryT>
std::vector<EntryT> decodeViaCursor(const std::vector<uint8_t> &Block,
                                    size_t N) {
  std::vector<EntryT> Out;
  typename Enc::read_cursor R(Block.data(), N);
  while (!R.done()) {
    EXPECT_EQ(R.peek(), R.peek()) << "peek must be stable";
    Out.push_back(R.take());
  }
  return Out;
}

template <class Enc, class EntryT>
void roundTrip(const std::vector<EntryT> &Entries) {
  size_t N = Entries.size();
  std::vector<uint8_t> Block = encodeViaCursor<Enc>(Entries);
  // Cursor-written bytes decode identically through the non-cursor path.
  std::vector<EntryT> ViaForEach;
  Enc::for_each_while(Block.data(), N, [&](const EntryT &E) {
    ViaForEach.push_back(E);
    return true;
  });
  EXPECT_EQ(ViaForEach, Entries);
  EXPECT_EQ((decodeViaCursor<Enc, EntryT>(Block, N)), Entries);
}

using U64Set = set_entry<uint64_t>;
using U64Map = map_entry<uint64_t, uint64_t>;

using RawSetEnc = raw_encoder<U64Set>;
using DiffSetEnc = diff_encoder<U64Set>;
using GammaSetEnc = gamma_encoder<U64Set>;
using RawMapEnc = raw_encoder<U64Map>;
using DiffMapEnc = diff_encoder<U64Map>;
using DiffValMapEnc = diff_val_encoder<U64Map>;

std::vector<uint64_t> sortedUniqueKeys(size_t N, uint64_t MaxDelta, Rng &R) {
  std::vector<uint64_t> Keys(N);
  uint64_t K = R.next(1000);
  for (size_t I = 0; I < N; ++I) {
    Keys[I] = K;
    K += 1 + R.next(MaxDelta);
  }
  return Keys;
}

std::vector<std::pair<uint64_t, uint64_t>>
toMapEntries(const std::vector<uint64_t> &Keys, Rng &R) {
  std::vector<std::pair<uint64_t, uint64_t>> Out(Keys.size());
  for (size_t I = 0; I < Keys.size(); ++I)
    Out[I] = {Keys[I], R.next(1u << 20)};
  return Out;
}

//===----------------------------------------------------------------------===//
// Round trips: empty, single, dense, sparse, max-width.
//===----------------------------------------------------------------------===//

TEST(CursorRoundTrip, EmptyBlock) {
  roundTrip<RawSetEnc, uint64_t>({});
  roundTrip<DiffSetEnc, uint64_t>({});
  roundTrip<GammaSetEnc, uint64_t>({});
  roundTrip<DiffValMapEnc, std::pair<uint64_t, uint64_t>>({});
}

TEST(CursorRoundTrip, SingleEntry) {
  for (uint64_t K : {uint64_t(0), uint64_t(1), uint64_t(127), uint64_t(128),
                     uint64_t(1) << 40, ~uint64_t(0)}) {
    roundTrip<RawSetEnc, uint64_t>({K});
    roundTrip<DiffSetEnc, uint64_t>({K});
    roundTrip<GammaSetEnc, uint64_t>({K});
    roundTrip<RawMapEnc, std::pair<uint64_t, uint64_t>>({{K, 7}});
    roundTrip<DiffMapEnc, std::pair<uint64_t, uint64_t>>({{K, 7}});
    roundTrip<DiffValMapEnc, std::pair<uint64_t, uint64_t>>({{K, 7}});
  }
}

TEST(CursorRoundTrip, MaxWidthDeltas) {
  // First key 0 then a full-width jump: the largest delta each scheme can
  // carry (10-byte varints; 127-bit gamma codes).
  std::vector<uint64_t> Extremes = {0, ~uint64_t(0) - 1, ~uint64_t(0)};
  roundTrip<RawSetEnc, uint64_t>(Extremes);
  roundTrip<DiffSetEnc, uint64_t>(Extremes);
  roundTrip<GammaSetEnc, uint64_t>(Extremes);
  std::vector<uint64_t> HighFirst = {~uint64_t(0) - 7, ~uint64_t(0)};
  roundTrip<DiffSetEnc, uint64_t>(HighFirst);
  roundTrip<GammaSetEnc, uint64_t>(HighFirst);
  // Byte-coded values at max width too.
  roundTrip<DiffValMapEnc, std::pair<uint64_t, uint64_t>>(
      {{0, ~uint64_t(0)}, {~uint64_t(0), 0}});
}

TEST(CursorRoundTrip, FuzzAllWidths) {
  auto R = test::seeded_rng();
  for (uint64_t MaxDelta : {uint64_t(1), uint64_t(100), uint64_t(1) << 30,
                            uint64_t(1) << 52}) {
    for (size_t N : {size_t(2), size_t(17), size_t(256), size_t(300)}) {
      auto Keys = sortedUniqueKeys(N, MaxDelta, R);
      roundTrip<RawSetEnc, uint64_t>(Keys);
      roundTrip<DiffSetEnc, uint64_t>(Keys);
      roundTrip<GammaSetEnc, uint64_t>(Keys);
      auto Entries = toMapEntries(Keys, R);
      roundTrip<RawMapEnc, std::pair<uint64_t, uint64_t>>(Entries);
      roundTrip<DiffMapEnc, std::pair<uint64_t, uint64_t>>(Entries);
      roundTrip<DiffValMapEnc, std::pair<uint64_t, uint64_t>>(Entries);
    }
  }
}

//===----------------------------------------------------------------------===//
// skip/take/peek interleavings.
//===----------------------------------------------------------------------===//

template <class Enc> void fuzzSkipTake(uint64_t Salt) {
  auto R = test::seeded_rng(Salt);
  for (int Round = 0; Round < 20; ++Round) {
    size_t N = 1 + R.next(200);
    auto Keys = sortedUniqueKeys(N, 1 + R.next(1000), R);
    std::vector<uint8_t> Block = encodeViaCursor<Enc>(Keys);
    std::vector<uint64_t> Taken, Expect;
    typename Enc::read_cursor C(Block.data(), N);
    for (size_t I = 0; I < N; ++I) {
      ASSERT_FALSE(C.done());
      ASSERT_EQ(C.remaining(), N - I);
      ASSERT_EQ(C.peek(), Keys[I]);
      if (R.next(2)) {
        Taken.push_back(C.take());
        Expect.push_back(Keys[I]);
      } else {
        C.skip();
      }
    }
    ASSERT_TRUE(C.done());
    ASSERT_EQ(Taken, Expect);
  }
}

TEST(CursorSkipTake, Raw) { fuzzSkipTake<RawSetEnc>(1); }
TEST(CursorSkipTake, Diff) { fuzzSkipTake<DiffSetEnc>(2); }
TEST(CursorSkipTake, Gamma) { fuzzSkipTake<GammaSetEnc>(3); }

//===----------------------------------------------------------------------===//
// Chunked cut()/restart: one staging buffer, many sealed blocks.
//===----------------------------------------------------------------------===//

/// Pushes \p Entries through one write_cursor, sealing a block after each
/// prescribed chunk length. Every sealed block must carry exactly
/// encoded_size(slice) bytes — i.e. the chunk after a cut restarts with a
/// full-width leading key — and decode independently of its neighbours.
template <class Enc, class EntryT>
void cutRoundTrip(const std::vector<EntryT> &Entries,
                  const std::vector<size_t> &ChunkLens) {
  size_t MaxLen = 1;
  for (size_t L : ChunkLens)
    MaxLen = std::max(MaxLen, L);
  std::vector<uint8_t> Staging(Enc::write_cursor::max_bytes(MaxLen) + 1);
  typename Enc::write_cursor W(Staging.data(), MaxLen);
  size_t Pos = 0;
  for (size_t Len : ChunkLens) {
    std::vector<EntryT> Slice(Entries.begin() + Pos,
                              Entries.begin() + Pos + Len);
    for (EntryT E : Slice)
      W.push(std::move(E));
    ASSERT_EQ(W.count(), Len);
    ASSERT_EQ(W.bytes(), Enc::encoded_size(Slice.data(), Len))
        << "a cut chunk must restart with a full-width key";
    std::vector<uint8_t> Block(W.bytes());
    W.cut(Block.data());
    ASSERT_EQ(W.count(), 0u) << "cut() must restart the cursor";
    ASSERT_EQ((decodeViaCursor<Enc, EntryT>(Block, Len)), Slice);
    Pos += Len;
  }
  ASSERT_EQ(Pos, Entries.size());
}

/// Chunk lengths straddling the block-size boundaries the tree layer cuts
/// at: 1, 2B-1, 2B and 2B+1 entries, for a few B.
template <class Enc> void chunkBoundarySweep(uint64_t Salt) {
  auto R = test::seeded_rng(Salt);
  for (size_t B : {size_t(1), size_t(8), size_t(128)}) {
    std::vector<size_t> Lens = {1, 2 * B - 1, 2 * B, 2 * B + 1, 1, 2 * B};
    size_t Total = 0;
    for (size_t L : Lens)
      Total += L;
    for (uint64_t MaxDelta : {uint64_t(1), uint64_t(1) << 40})
      cutRoundTrip<Enc>(sortedUniqueKeys(Total, MaxDelta, R), Lens);
  }
}

TEST(CursorChunked, CutBoundariesRaw) { chunkBoundarySweep<RawSetEnc>(1); }
TEST(CursorChunked, CutBoundariesDiff) { chunkBoundarySweep<DiffSetEnc>(2); }
TEST(CursorChunked, CutBoundariesGamma) { chunkBoundarySweep<GammaSetEnc>(3); }

TEST(CursorChunked, CutFuzzAllEncoders) {
  auto R = test::seeded_rng();
  for (int Round = 0; Round < 15; ++Round) {
    std::vector<size_t> Lens(1 + R.next(8));
    size_t Total = 0;
    for (auto &L : Lens) {
      L = 1 + R.next(300);
      Total += L;
    }
    auto Keys = sortedUniqueKeys(Total, 1 + R.next(1u << 20), R);
    cutRoundTrip<RawSetEnc>(Keys, Lens);
    cutRoundTrip<DiffSetEnc>(Keys, Lens);
    cutRoundTrip<GammaSetEnc>(Keys, Lens);
    auto Entries = toMapEntries(Keys, R);
    cutRoundTrip<DiffMapEnc>(Entries, Lens);
    cutRoundTrip<DiffValMapEnc>(Entries, Lens);
  }
}

//===----------------------------------------------------------------------===//
// Ownership: counting entries, consuming cursors, early abandonment.
//===----------------------------------------------------------------------===//

/// An entry type that counts live instances and copy/move constructions.
struct Counted {
  uint64_t K = 0;
  static int64_t Live, Copies, Moves;

  Counted() { ++Live; }
  explicit Counted(uint64_t K) : K(K) { ++Live; }
  Counted(const Counted &O) : K(O.K) {
    ++Live;
    ++Copies;
  }
  Counted(Counted &&O) noexcept : K(O.K) {
    ++Live;
    ++Moves;
  }
  Counted &operator=(const Counted &O) {
    K = O.K;
    ++Copies;
    return *this;
  }
  Counted &operator=(Counted &&O) noexcept {
    K = O.K;
    ++Moves;
    return *this;
  }
  ~Counted() { --Live; }
  bool operator==(const Counted &O) const { return K == O.K; }

  static void reset() { Copies = Moves = 0; }
};
int64_t Counted::Live = 0;
int64_t Counted::Copies = 0;
int64_t Counted::Moves = 0;

struct CountedEntry {
  using key_t = uint64_t;
  using val_t = no_aug;
  using entry_t = Counted;
  using aug_t = no_aug;
  static constexpr bool has_val = false;
  static const key_t &get_key(const entry_t &E) { return E.K; }
  static bool comp(const key_t &A, const key_t &B) { return A < B; }
};
using CountedEnc = raw_encoder<CountedEntry>;

TEST(CursorOwnership, ConsumingTakeMovesAndAbandonmentDestroys) {
  ASSERT_EQ(Counted::Live, 0);
  {
    constexpr size_t N = 8;
    std::vector<uint8_t> Block(CountedEnc::encoded_size(nullptr, N));
    {
      std::vector<Counted> A;
      for (size_t I = 0; I < N; ++I)
        A.emplace_back(I * 10);
      CountedEnc::encode(A.data(), N, Block.data()); // Moves into the block.
    }
    ASSERT_EQ(Counted::Live, static_cast<int64_t>(N)); // Block owns them.
    Counted::reset();
    {
      CountedEnc::read_cursor C(Block.data(), N, /*Consume=*/true);
      Counted E0 = C.take();
      EXPECT_EQ(E0.K, 0u);
      C.skip();
      Counted E2 = C.take();
      EXPECT_EQ(E2.K, 20u);
      // Abandon with five entries unconsumed: the cursor destroys them.
    }
    EXPECT_EQ(Counted::Copies, 0) << "consuming take() must move, not copy";
    EXPECT_EQ(Counted::Live, 0) << "abandoned cursor leaked block entries";
  }
}

TEST(CursorOwnership, BorrowingTakeCopiesAndLeavesBlockAlive) {
  constexpr size_t N = 4;
  std::vector<uint8_t> Block(CountedEnc::encoded_size(nullptr, N));
  {
    std::vector<Counted> A;
    for (size_t I = 0; I < N; ++I)
      A.emplace_back(I);
    CountedEnc::encode(A.data(), N, Block.data());
  }
  Counted::reset();
  for (int Round = 0; Round < 2; ++Round) {
    CountedEnc::read_cursor C(Block.data(), N, /*Consume=*/false);
    while (!C.done())
      (void)C.take();
  }
  EXPECT_EQ(Counted::Copies, 2 * N) << "borrowing take() copies each entry";
  EXPECT_EQ(Counted::Live, static_cast<int64_t>(N)) << "block must stay alive";
  CountedEnc::destroy(Block.data(), N);
  EXPECT_EQ(Counted::Live, 0);
}

TEST(CursorOwnership, WriteCursorAbandonmentDestroysStagedEntries) {
  ASSERT_EQ(Counted::Live, 0);
  constexpr size_t N = 6;
  std::vector<uint8_t> Staging(CountedEnc::write_cursor::max_bytes(N));
  Counted::reset();
  {
    CountedEnc::write_cursor W(Staging.data(), N);
    for (size_t I = 0; I < N / 2; ++I)
      W.push(Counted(I));
    EXPECT_EQ(W.count(), N / 2);
    // Abandon without finish(): staged entries must be destroyed.
  }
  EXPECT_EQ(Counted::Live, 0) << "abandoned write_cursor leaked entries";
  EXPECT_EQ(Counted::Copies, 0) << "push must move, not copy";
}

TEST(CursorOwnership, WriteReadPipelineNeverCopies) {
  constexpr size_t N = 10;
  std::vector<uint8_t> Staging(CountedEnc::write_cursor::max_bytes(N));
  std::vector<uint8_t> Block;
  Counted::reset();
  {
    CountedEnc::write_cursor W(Staging.data(), N);
    for (size_t I = 0; I < N; ++I)
      W.push(Counted(I * 3));
    Block.resize(W.bytes());
    W.finish(Block.data());
  }
  {
    CountedEnc::read_cursor C(Block.data(), N, /*Consume=*/true);
    uint64_t I = 0;
    while (!C.done())
      EXPECT_EQ(C.take().K, 3 * I++);
  }
  EXPECT_EQ(Counted::Copies, 0)
      << "a full write->finish->consume pipeline must never copy an entry";
  EXPECT_EQ(Counted::Live, 0);
}

//===----------------------------------------------------------------------===//
// Move-only entries.
//===----------------------------------------------------------------------===//

struct MoveOnlyEntry {
  using key_t = uint64_t;
  using val_t = no_aug;
  using entry_t = std::unique_ptr<uint64_t>;
  using aug_t = no_aug;
  static constexpr bool has_val = false;
  static const key_t &get_key(const entry_t &E) { return *E; }
  static bool comp(const key_t &A, const key_t &B) { return A < B; }
};
using MoveOnlyEnc = raw_encoder<MoveOnlyEntry>;

TEST(CursorMoveOnly, RawCursorsHandleMoveOnlyEntries) {
  constexpr size_t N = 5;
  std::vector<uint8_t> Staging(MoveOnlyEnc::write_cursor::max_bytes(N));
  std::vector<uint8_t> Block;
  {
    MoveOnlyEnc::write_cursor W(Staging.data(), N);
    for (size_t I = 0; I < N; ++I)
      W.push(std::make_unique<uint64_t>(I * 2));
    Block.resize(W.bytes());
    W.finish(Block.data());
  }
  {
    MoveOnlyEnc::read_cursor C(Block.data(), N, /*Consume=*/true);
    uint64_t I = 0;
    while (!C.done()) {
      ASSERT_NE(C.peek(), nullptr);
      auto P = C.take();
      EXPECT_EQ(*P, 2 * I++);
    }
    EXPECT_EQ(I, N);
  }
}

TEST(CursorChunked, MoveOnlyEntriesSurviveAcrossCuts) {
  // Chunked writing of move-only entries: each cut seals a self-contained
  // block (entries moved, never copied); the stream continues after it.
  const std::vector<size_t> Lens = {4, 4, 1};
  std::vector<uint8_t> Staging(MoveOnlyEnc::write_cursor::max_bytes(4));
  MoveOnlyEnc::write_cursor W(Staging.data(), 4);
  std::vector<std::vector<uint8_t>> Blocks;
  uint64_t K = 0;
  for (size_t Len : Lens) {
    for (size_t I = 0; I < Len; ++I)
      W.push(std::make_unique<uint64_t>(K++));
    std::vector<uint8_t> Block(W.bytes());
    W.cut(Block.data());
    Blocks.push_back(std::move(Block));
  }
  uint64_t Expect = 0;
  for (size_t C = 0; C < Lens.size(); ++C) {
    MoveOnlyEnc::read_cursor R(Blocks[C].data(), Lens[C], /*Consume=*/true);
    while (!R.done())
      EXPECT_EQ(*R.take(), Expect++);
  }
  EXPECT_EQ(Expect, K);
}

TEST(CursorChunked, AbandonmentMidChunkAfterCutsLeaksNothing) {
  ASSERT_EQ(Counted::Live, 0);
  Counted::reset();
  constexpr size_t Chunk = 5;
  std::vector<uint8_t> Staging(CountedEnc::write_cursor::max_bytes(Chunk));
  std::vector<uint8_t> Block;
  {
    CountedEnc::write_cursor W(Staging.data(), Chunk);
    for (size_t I = 0; I < Chunk; ++I)
      W.push(Counted(I));
    Block.resize(W.bytes());
    W.cut(Block.data());
    for (size_t I = 0; I < 3; ++I)
      W.push(Counted(100 + I));
    // Abandon mid-chunk: the staged tail must be destroyed while the
    // sealed block keeps its entries.
  }
  EXPECT_EQ(Counted::Live, static_cast<int64_t>(Chunk))
      << "abandonment must only drop the unsealed tail";
  EXPECT_EQ(Counted::Copies, 0) << "cut() must move, not copy";
  CountedEnc::destroy(Block.data(), Chunk);
  EXPECT_EQ(Counted::Live, 0);
}

TEST(CursorMoveOnly, EarlyAbandonmentReleasesMoveOnlyTail) {
  constexpr size_t N = 7;
  std::vector<uint8_t> Staging(MoveOnlyEnc::write_cursor::max_bytes(N));
  std::vector<uint8_t> Block;
  {
    MoveOnlyEnc::write_cursor W(Staging.data(), N);
    for (size_t I = 0; I < N; ++I)
      W.push(std::make_unique<uint64_t>(I));
    Block.resize(W.bytes());
    W.finish(Block.data());
  }
  {
    MoveOnlyEnc::read_cursor C(Block.data(), N, /*Consume=*/true);
    (void)C.take();
    C.skip();
    // Abandon: the remaining unique_ptrs are destroyed by the cursor (ASan
    // and LeakSanitizer catch it in the sanitize leg if they are not).
  }
}

//===----------------------------------------------------------------------===//
// Tree level: leaf_reader/leaf_writer through the set-operation fast paths,
// under the allocator leak fixture.
//===----------------------------------------------------------------------===//

template <class SetT> class CursorTreeTest : public test::TypedLeakCheckTest<SetT> {};

using CursorSetTypes =
    ::testing::Types<pam_set<uint64_t, 8>, pam_set<uint64_t, 128>,
                     pam_set<uint64_t, 32, diff_encoder>,
                     pam_set<uint64_t, 32, gamma_encoder>>;
TYPED_TEST_SUITE(CursorTreeTest, CursorSetTypes);

TYPED_TEST(CursorTreeTest, LeafWriterChunksArbitraryLengthStreams) {
  // The chunked leaf pipeline end to end: one ordered stream of N entries
  // must come out as an invariant-clean tree of finished leaves for every
  // N around the chunk boundaries (1, B, 2B, 2B+1, many chunks, partial
  // and empty tails).
  using ops = typename TypeParam::ops;
  constexpr size_t B = ops::kB;
  auto R = test::seeded_rng();
  const size_t Ns[] = {1,         2,         B - 1,     B,        2 * B - 1,
                       2 * B,     2 * B + 1, 3 * B,     4 * B,    4 * B + 1,
                       6 * B + 5, 11 * B + 3};
  for (size_t N : Ns) {
    auto Keys = sortedUniqueKeys(N, 1 + R.next(1000), R);
    typename ops::leaf_writer W(N);
    for (uint64_t K : Keys)
      W.push(K);
    auto *T = W.finish();
    ASSERT_EQ(ops::size(T), N);
    ASSERT_EQ((invariant_checker<ops>::check(T)), "") << "N=" << N;
    std::vector<uint64_t> Got;
    ops::foreach_seq(T, [&](const uint64_t &K) {
      Got.push_back(K);
      return true;
    });
    ASSERT_EQ(Got, Keys) << "N=" << N;
    ops::dec(T);
  }
}

TYPED_TEST(CursorTreeTest, LeafReaderRemainingCountsDown) {
  using ops = typename TypeParam::ops;
  auto R = test::seeded_rng();
  auto Keys = sortedUniqueKeys(ops::kB + 3, 8, R);
  auto *T = ops::from_array_move(Keys.data(), Keys.size());
  ASSERT_TRUE(ops::is_flat(T));
  typename ops::leaf_reader C(T); // Consumes the (unique) reference.
  size_t Want = Keys.size();
  while (!C.done()) {
    ASSERT_EQ(C.remaining(), Want--);
    C.skip();
  }
  ASSERT_EQ(Want, 0u);
}

TYPED_TEST(CursorTreeTest, LeafWriterAbandonmentMidStreamLeaksNothing) {
  // Abandon a writer holding several sealed leaves, a pending separator
  // and a partial chunk; the leak fixture verifies every node and staged
  // entry is reclaimed.
  using ops = typename TypeParam::ops;
  constexpr size_t B = ops::kB;
  auto R = test::seeded_rng();
  auto Keys = sortedUniqueKeys(5 * B + 3, 64, R);
  {
    typename ops::leaf_writer W(Keys.size());
    for (size_t I = 0; I + 2 < Keys.size(); ++I)
      W.push(Keys[I]);
  }
}

TYPED_TEST(CursorTreeTest, FlatFastPathAgreesWithArrayPath) {
  auto R = test::seeded_rng();
  test::FlagGuard G(TypeParam::ops::flat_fastpath());
  for (int Round = 0; Round < 30; ++Round) {
    size_t Na = R.next(300), Nb = R.next(300);
    std::vector<uint64_t> A(Na), B(Nb);
    for (auto &K : A)
      K = R.next(1000);
    for (auto &K : B)
      K = R.next(1000);
    TypeParam SA(A), SB(B);
    TypeParam Results[2][3];
    for (bool Fast : {false, true}) {
      TypeParam::ops::flat_fastpath() = Fast;
      Results[Fast][0] = TypeParam::map_union(SA, SB);
      Results[Fast][1] = TypeParam::map_intersect(SA, SB);
      Results[Fast][2] = TypeParam::map_difference(SA, SB);
    }
    for (int OpI = 0; OpI < 3; ++OpI) {
      ASSERT_EQ(Results[0][OpI].to_vector(), Results[1][OpI].to_vector());
      ASSERT_EQ(Results[1][OpI].check_invariants(), "");
    }
  }
}

} // namespace
