//===- test_stress.cpp - Randomized stress, persistence and space bounds ----===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Long randomized operation sequences with invariants checked throughout,
// multi-version persistence checks, concurrent snapshot reads during
// updates, and the Thm. 4.2 space bound.
//
//===----------------------------------------------------------------------===//

#include <map>
#include <thread>

#include "gtest/gtest.h"

#include "src/api/pam_map.h"
#include "src/api/pam_set.h"
#include "src/encoding/diff_encoder.h"
#include "src/encoding/varint.h"
#include "src/parallel/random.h"
#include "src/util/datagen.h"

using namespace cpam;

namespace {

template <class MapT> class StressTest : public ::testing::Test {};

using StressTypes =
    ::testing::Types<pam_map<uint64_t, uint64_t, 2>,
                     pam_map<uint64_t, uint64_t, 3>,
                     pam_map<uint64_t, uint64_t, 16>,
                     pam_map<uint64_t, uint64_t, 128>,
                     pam_map<uint64_t, uint64_t, 8, diff_encoder>>;
TYPED_TEST_SUITE(StressTest, StressTypes);

TYPED_TEST(StressTest, MixedOperationSequence) {
  int64_t Before = alloc_stats::live_object_count();
  {
    TypeParam M;
    std::map<uint64_t, uint64_t> Ref;
    Rng R(101);
    for (int Step = 0; Step < 4000; ++Step) {
      uint64_t Op = R.ith(2 * Step, 100);
      uint64_t K = R.ith(2 * Step + 1, 600);
      if (Op < 45) {
        M.insert_inplace(K, Step);
        Ref[K] = Step;
      } else if (Op < 75) {
        M.remove_inplace(K);
        Ref.erase(K);
      } else if (Op < 85) {
        // Batch insert.
        std::vector<std::pair<uint64_t, uint64_t>> Batch;
        for (int J = 0; J < 20; ++J) {
          uint64_t BK = R.ith(Step * 31 + J, 600);
          Batch.push_back({BK, Step + J});
          Ref[BK] = Step + J; // Later batch entries win (take_right).
        }
        // Deduplicate Ref-style: multi_insert combines left-to-right, so
        // the last occurrence wins — matching the loop above.
        M = M.multi_insert(Batch);
      } else if (Op < 92) {
        // Range restriction.
        uint64_t Lo = R.ith(Step * 17, 600);
        uint64_t Hi = Lo + R.ith(Step * 17 + 1, 100);
        M = M.range(Lo, Hi);
        for (auto It = Ref.begin(); It != Ref.end();) {
          if (It->first < Lo || It->first > Hi)
            It = Ref.erase(It);
          else
            ++It;
        }
      } else {
        // Filter evens.
        M = M.filter([](const auto &E) { return E.first % 2 == 0; });
        for (auto It = Ref.begin(); It != Ref.end();) {
          if (It->first % 2 != 0)
            It = Ref.erase(It);
          else
            ++It;
        }
      }
      if (Step % 200 == 0) {
        ASSERT_EQ(M.check_invariants(), "") << "step " << Step;
        ASSERT_EQ(M.size(), Ref.size()) << "step " << Step;
      }
    }
    ASSERT_EQ(M.check_invariants(), "");
    ASSERT_EQ(M.size(), Ref.size());
    for (auto &[K, V] : Ref)
      ASSERT_EQ(*M.find(K), V);
  }
  EXPECT_EQ(alloc_stats::live_object_count(), Before) << "stress leaked";
}

TYPED_TEST(StressTest, ManyVersionsStayIndependent) {
  std::vector<TypeParam> Versions;
  TypeParam M;
  for (uint64_t I = 0; I < 300; ++I) {
    M.insert_inplace(I, I * I);
    Versions.push_back(M); // Snapshot after every insert.
  }
  // Version v must contain exactly keys 0..v.
  for (uint64_t V = 0; V < 300; V += 37) {
    ASSERT_EQ(Versions[V].size(), V + 1);
    ASSERT_TRUE(Versions[V].contains(V));
    ASSERT_FALSE(Versions[V].contains(V + 1));
    ASSERT_EQ(Versions[V].check_invariants(), "");
  }
  // Deleting from the newest version leaves old versions intact.
  TypeParam Gutted = Versions.back();
  for (uint64_t I = 0; I < 300; I += 2)
    Gutted.remove_inplace(I);
  ASSERT_EQ(Versions.back().size(), 300u);
  ASSERT_EQ(Gutted.size(), 150u);
}

TYPED_TEST(StressTest, ConcurrentSnapshotReadsDuringUpdates) {
  // One writer evolves the map; readers hammer a fixed snapshot from other
  // threads. Functional semantics make this safe by construction.
  std::vector<std::pair<uint64_t, uint64_t>> Init;
  for (uint64_t I = 0; I < 20000; ++I)
    Init.push_back({I, I});
  TypeParam M(Init);
  TypeParam Snapshot = M;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> ReadErrors{0};
  std::vector<std::thread> Readers;
  for (int T = 0; T < 4; ++T)
    Readers.emplace_back([&, T] {
      Rng R(T);
      uint64_t I = 0;
      while (!Stop.load(std::memory_order_relaxed)) {
        uint64_t K = R.ith(I++, 20000);
        auto V = Snapshot.find(K);
        if (!V || *V != K)
          ReadErrors.fetch_add(1);
      }
    });
  for (uint64_t I = 0; I < 5000; ++I)
    M.insert_inplace(hash64(I), I);
  Stop.store(true);
  for (auto &T : Readers)
    T.join();
  EXPECT_EQ(ReadErrors.load(), 0u);
  EXPECT_EQ(Snapshot.size(), 20000u);
}

// Thm. 4.2: a difference-encoded PaC-tree over integer keys takes
// s(E) + O(|E|/B + B) bytes, where s(E) is the difference-encoded array
// size.
TEST(SpaceBounds, Theorem42) {
  const size_t N = 200000;
  auto Keys = random_keys_sorted(N, uint64_t(1) << 34, 3);
  // s(E): byte-coded deltas in one array.
  size_t SE = 0;
  for (size_t I = 0; I < Keys.size(); ++I)
    SE += varint_size(I == 0 ? Keys[0] : Keys[I] - Keys[I - 1]);
  auto CheckB = [&](auto SetInstance, size_t B) {
    auto S = decltype(SetInstance)::from_sorted(Keys);
    size_t Used = S.size_in_bytes();
    // Explicit constant: 96 bytes per regular node/flat header is a safe
    // upper bound for this build.
    size_t Bound = SE + 96 * (Keys.size() / B + B) + 4096;
    EXPECT_LE(Used, Bound) << "B=" << B;
    EXPECT_GE(Used, SE) << "cannot beat the encoded array";
  };
  CheckB(pam_set<uint64_t, 16, diff_encoder>(), 16);
  CheckB(pam_set<uint64_t, 64, diff_encoder>(), 64);
  CheckB(pam_set<uint64_t, 256, diff_encoder>(), 256);
}

// Corollary 4.3 flavor: dense sets from a universe m cost O(n log(m/n))
// bits-ish; check a crude constant-factor version.
TEST(SpaceBounds, DenseSetsCompressWell) {
  const size_t N = 100000;
  std::vector<uint64_t> Dense(N);
  for (size_t I = 0; I < N; ++I)
    Dense[I] = 3 * I; // Deltas of 3: ~1 byte each.
  auto S = pam_set<uint64_t, 128, diff_encoder>::from_sorted(Dense);
  EXPECT_LT(S.size_in_bytes(), N * 2) << "~1 byte per element expected";
}

} // namespace
