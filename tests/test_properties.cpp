//===- test_properties.cpp - Parameterized property sweeps ------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Property-based sweeps over (block size, input size, seed) using
// parameterized gtest: algebraic identities of the set operations, the
// Def. 4.1 structural invariants after every operation, and agreement
// between all representations. Block size is a compile-time parameter, so
// the sweep dispatches over a fixed set of instantiations.
//
//===----------------------------------------------------------------------===//

#include <set>

#include "gtest/gtest.h"

#include "src/api/pam_set.h"
#include "src/encoding/diff_encoder.h"
#include "src/encoding/gamma_encoder.h"
#include "src/parallel/random.h"

using namespace cpam;

namespace {

struct PropertyParam {
  int BlockSize; // 0, 2, 8, 128
  size_t Na;
  size_t Nb;
  uint64_t Seed;
};

std::string paramName(const ::testing::TestParamInfo<PropertyParam> &Info) {
  return "B" + std::to_string(Info.param.BlockSize) + "_na" +
         std::to_string(Info.param.Na) + "_nb" +
         std::to_string(Info.param.Nb) + "_s" +
         std::to_string(Info.param.Seed);
}

std::vector<uint64_t> keysOf(size_t N, uint64_t Universe, uint64_t Seed) {
  std::vector<uint64_t> V(N);
  Rng R(Seed);
  for (size_t I = 0; I < N; ++I)
    V[I] = R.ith(I, Universe);
  return V;
}

/// The properties, checked for one block-size instantiation.
template <int B> void checkProperties(const PropertyParam &P) {
  using S = pam_set<uint64_t, B>;
  uint64_t Universe = 4 * (P.Na + P.Nb) + 16;
  auto A = keysOf(P.Na, Universe, P.Seed);
  auto Bk = keysOf(P.Nb, Universe, P.Seed + 1);
  S SA(A), SB(Bk);
  ASSERT_EQ(SA.check_invariants(), "");
  ASSERT_EQ(SB.check_invariants(), "");

  S U = S::map_union(SA, SB);
  S I = S::map_intersect(SA, SB);
  S DA = S::map_difference(SA, SB);
  S DB = S::map_difference(SB, SA);
  for (const S *T : {&U, &I, &DA, &DB})
    ASSERT_EQ(T->check_invariants(), "");

  // Inclusion-exclusion: |A ∪ B| + |A ∩ B| = |A| + |B|.
  EXPECT_EQ(U.size() + I.size(), SA.size() + SB.size());
  // Partition: |A \ B| + |A ∩ B| = |A|.
  EXPECT_EQ(DA.size() + I.size(), SA.size());
  EXPECT_EQ(DB.size() + I.size(), SB.size());
  // (A \ B) ∪ (B \ A) ∪ (A ∩ B) = A ∪ B.
  S Sym = S::map_union(S::map_union(DA, DB), I);
  EXPECT_EQ(Sym.to_vector(), U.to_vector());
  // Difference then union restores: (A \ B) ∪ B = A ∪ B.
  EXPECT_EQ(S::map_union(DA, SB).to_vector(), U.to_vector());
  // Filter partition: evens + odds = all.
  S Ev = SA.filter([](uint64_t K) { return K % 2 == 0; });
  S Od = SA.filter([](uint64_t K) { return K % 2 == 1; });
  EXPECT_EQ(Ev.size() + Od.size(), SA.size());
  EXPECT_EQ(S::map_union(Ev, Od).to_vector(), SA.to_vector());
  // Range glue: [min, k] ∪ (k, max] = all, for a probe key.
  if (!SA.empty()) {
    uint64_t K = Universe / 2;
    S Lo = SA.range(0, K);
    S Hi = SA.range(K + 1, UINT64_MAX);
    EXPECT_EQ(Lo.size() + Hi.size(), SA.size());
    EXPECT_EQ(S::map_union(Lo, Hi).to_vector(), SA.to_vector());
    // rank/select are inverse.
    for (size_t Idx : {size_t(0), SA.size() / 2, SA.size() - 1}) {
      uint64_t Key = SA.select(Idx);
      EXPECT_EQ(SA.rank(Key), Idx);
    }
  }
  // Reference agreement.
  std::set<uint64_t> RefA(A.begin(), A.end()), RefB(Bk.begin(), Bk.end());
  std::set<uint64_t> RefU = RefA;
  RefU.insert(RefB.begin(), RefB.end());
  EXPECT_EQ(U.size(), RefU.size());
  EXPECT_EQ(U.to_vector(), std::vector<uint64_t>(RefU.begin(), RefU.end()));
}

class SetProperties : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(SetProperties, AlgebraicIdentities) {
  const PropertyParam &P = GetParam();
  switch (P.BlockSize) {
  case 0:
    checkProperties<0>(P);
    break;
  case 2:
    checkProperties<2>(P);
    break;
  case 8:
    checkProperties<8>(P);
    break;
  case 128:
    checkProperties<128>(P);
    break;
  default:
    FAIL() << "unexpected block size " << P.BlockSize;
  }
}

std::vector<PropertyParam> makeParams() {
  std::vector<PropertyParam> Out;
  for (int B : {0, 2, 8, 128})
    for (auto [Na, Nb] : {std::pair<size_t, size_t>{0, 0},
                          {1, 1},
                          {100, 7},
                          {1000, 1000},
                          {5000, 100}})
      for (uint64_t Seed : {1ull, 99ull})
        Out.push_back({B, Na, Nb, Seed});
  return Out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SetProperties,
                         ::testing::ValuesIn(makeParams()), paramName);

//===----------------------------------------------------------------------===
// Gamma-encoded sets (the Sec. 8 user-defined scheme extension point).
//===----------------------------------------------------------------------===

class GammaSet : public ::testing::TestWithParam<size_t> {};

TEST_P(GammaSet, MatchesRawRepresentation) {
  size_t N = GetParam();
  auto Keys = keysOf(N, 8 * N + 16, 7);
  pam_set<uint64_t, 32, gamma_encoder> G(Keys);
  pam_set<uint64_t, 32> Raw(Keys);
  ASSERT_EQ(G.check_invariants(), "");
  ASSERT_EQ(G.size(), Raw.size());
  ASSERT_EQ(G.to_vector(), Raw.to_vector());
  // Point queries and updates behave identically.
  for (uint64_t K = 0; K < 50; ++K)
    ASSERT_EQ(G.contains(K), Raw.contains(K));
  auto G2 = G.insert(123456789);
  ASSERT_TRUE(G2.contains(123456789));
  ASSERT_EQ(G2.check_invariants(), "");
}

TEST_P(GammaSet, DenseKeysBeatByteCodes) {
  size_t N = std::max<size_t>(GetParam(), 256);
  // Deltas of 1-2: gamma ~1-3 bits vs >= 1 byte for byte codes.
  std::vector<uint64_t> Dense(N);
  for (size_t I = 0; I < N; ++I)
    Dense[I] = 2 * I;
  auto G = pam_set<uint64_t, 128, gamma_encoder>::from_sorted(Dense);
  auto D = pam_set<uint64_t, 128, diff_encoder>::from_sorted(Dense);
  EXPECT_LT(G.size_in_bytes(), D.size_in_bytes());
  EXPECT_EQ(G.to_vector(), D.to_vector());
}

INSTANTIATE_TEST_SUITE_P(Sizes, GammaSet,
                         ::testing::Values(1, 10, 500, 5000, 60000));

} // namespace
