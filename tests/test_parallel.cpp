//===- test_parallel.cpp - Scheduler and primitive tests -------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include <atomic>
#include <numeric>
#include <set>
#include <thread>

#include "gtest/gtest.h"

#include "src/parallel/primitives.h"
#include "src/parallel/random.h"
#include "src/parallel/scheduler.h"

using namespace cpam;

TEST(Scheduler, HasWorkers) {
  EXPECT_GE(par::num_workers(), 1);
  EXPECT_EQ(par::worker_id(), 0) << "main thread should be worker 0";
}

TEST(Scheduler, ParDoRunsBoth) {
  int A = 0, B = 0;
  par::par_do([&] { A = 1; }, [&] { B = 2; });
  EXPECT_EQ(A, 1);
  EXPECT_EQ(B, 2);
}

TEST(Scheduler, NestedForkJoin) {
  std::atomic<long> Sum{0};
  std::function<void(long, long)> Rec = [&](long Lo, long Hi) {
    if (Hi - Lo <= 16) {
      long Local = 0;
      for (long I = Lo; I < Hi; ++I)
        Local += I;
      Sum.fetch_add(Local, std::memory_order_relaxed);
      return;
    }
    long Mid = Lo + (Hi - Lo) / 2;
    par::par_do([&] { Rec(Lo, Mid); }, [&] { Rec(Mid, Hi); });
  };
  Rec(0, 100000);
  EXPECT_EQ(Sum.load(), 100000L * 99999 / 2);
}

TEST(Scheduler, ParallelForCoversRangeExactlyOnce) {
  const size_t N = 1 << 18;
  std::vector<std::atomic<int>> Hits(N);
  par::parallel_for(0, N, [&](size_t I) {
    Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(Scheduler, EmptyAndSingletonRanges) {
  int Count = 0;
  par::parallel_for(5, 5, [&](size_t) { ++Count; });
  EXPECT_EQ(Count, 0);
  par::parallel_for(7, 8, [&](size_t I) {
    EXPECT_EQ(I, 7u);
    ++Count;
  });
  EXPECT_EQ(Count, 1);
}

TEST(Scheduler, OffPoolThreadDegradesToSequential) {
  std::atomic<long> Sum{0};
  std::thread T([&] {
    EXPECT_EQ(par::worker_id(), -1);
    par::parallel_for(0, 1000,
                      [&](size_t I) { Sum.fetch_add(static_cast<long>(I)); });
  });
  T.join();
  EXPECT_EQ(Sum.load(), 999L * 1000 / 2);
}

TEST(Primitives, Tabulate) {
  auto V = par::tabulate(1000, [](size_t I) { return I * I; });
  ASSERT_EQ(V.size(), 1000u);
  for (size_t I = 0; I < V.size(); ++I)
    ASSERT_EQ(V[I], I * I);
}

TEST(Primitives, ReduceSum) {
  auto V = par::tabulate(1 << 20, [](size_t I) { return (long)I; });
  long S = par::reduce(V.data(), V.size(), 0L,
                       [](long A, long B) { return A + B; });
  EXPECT_EQ(S, (long)(V.size() - 1) * (long)V.size() / 2);
}

TEST(Primitives, ReduceMaxSmall) {
  std::vector<int> V = {3, 1, 4, 1, 5, 9, 2, 6};
  int M = par::reduce(V.data(), V.size(), 0,
                      [](int A, int B) { return std::max(A, B); });
  EXPECT_EQ(M, 9);
}

TEST(Primitives, ReduceEmpty) {
  std::vector<int> V;
  EXPECT_EQ(par::reduce(V.data(), 0, -7, [](int A, int B) { return A + B; }),
            -7);
}

TEST(Primitives, ScanExclusive) {
  for (size_t N : {0u, 1u, 5u, 2048u, 100000u}) {
    auto V = par::tabulate(N, [](size_t I) { return (long)(I % 10); });
    std::vector<long> Expect(N);
    long Acc = 0;
    for (size_t I = 0; I < N; ++I) {
      Expect[I] = Acc;
      Acc += V[I];
    }
    std::vector<long> Out(N);
    long Total = par::scan_exclusive(V.data(), N, Out.data());
    EXPECT_EQ(Total, Acc);
    EXPECT_EQ(Out, Expect);
  }
}

TEST(Primitives, ScanInPlace) {
  auto V = par::tabulate(50000, [](size_t) { return 1L; });
  long Total = par::scan_exclusive(V.data(), V.size(), V.data());
  EXPECT_EQ(Total, 50000);
  for (size_t I = 0; I < V.size(); ++I)
    ASSERT_EQ(V[I], (long)I);
}

TEST(Primitives, PackAndFilter) {
  for (size_t N : {0u, 10u, 4096u, 1u << 17}) {
    auto V = par::tabulate(N, [](size_t I) { return (int)I; });
    std::vector<int> Out(N);
    size_t K = par::filter(V.data(), N, Out.data(),
                           [](int X) { return X % 3 == 0; });
    std::vector<int> Expect;
    for (size_t I = 0; I < N; ++I)
      if (V[I] % 3 == 0)
        Expect.push_back(V[I]);
    ASSERT_EQ(K, Expect.size());
    for (size_t I = 0; I < K; ++I)
      ASSERT_EQ(Out[I], Expect[I]);
  }
}

TEST(Primitives, MergeRandom) {
  Rng R(11);
  for (size_t Na : {0u, 1u, 1000u, 50000u}) {
    size_t Nb = Na == 0 ? 17 : Na / 2 + 3;
    auto A = par::tabulate(Na, [&](size_t I) { return R.ith(I) % 1000; });
    auto B =
        par::tabulate(Nb, [&](size_t I) { return R.ith(I + Na) % 1000; });
    std::sort(A.begin(), A.end());
    std::sort(B.begin(), B.end());
    std::vector<uint64_t> Out(Na + Nb), Expect(Na + Nb);
    par::merge(A.data(), Na, B.data(), Nb, Out.data());
    std::merge(A.begin(), A.end(), B.begin(), B.end(), Expect.begin());
    EXPECT_EQ(Out, Expect);
  }
}

TEST(Primitives, SortRandom) {
  Rng R(13);
  for (size_t N : {0u, 1u, 2u, 1000u, 4096u, 1u << 18}) {
    auto V = par::tabulate(N, [&](size_t I) { return R.ith(I); });
    auto Expect = V;
    std::sort(Expect.begin(), Expect.end());
    par::sort(V);
    EXPECT_EQ(V, Expect) << "N=" << N;
  }
}

TEST(Primitives, SortCustomComparator) {
  auto V = par::tabulate(100000, [](size_t I) { return (int)hash64(I); });
  par::sort(V, std::greater<int>());
  for (size_t I = 1; I < V.size(); ++I)
    ASSERT_GE(V[I - 1], V[I]);
}

TEST(Primitives, UniqueSorted) {
  auto V = par::tabulate(100000, [](size_t I) { return I / 7; });
  size_t K = par::unique(V.data(), V.size());
  ASSERT_EQ(K, (100000 + 6) / 7);
  for (size_t I = 0; I < K; ++I)
    ASSERT_EQ(V[I], I);
}

TEST(Primitives, ReduceIndex) {
  long S = par::reduce_index(
      0, 1 << 20, [](size_t I) { return (long)I; }, 0L,
      [](long A, long B) { return A + B; });
  long N = 1 << 20;
  EXPECT_EQ(S, (N - 1) * N / 2);
}

TEST(Random, Determinism) {
  Rng A(5), B(5);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  Rng C(6);
  EXPECT_NE(Rng(5).ith(0), C.ith(0));
}

TEST(Random, DoubleInUnitInterval) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I) {
    double D = R.next_double();
    ASSERT_GE(D, 0.0);
    ASSERT_LT(D, 1.0);
  }
}
