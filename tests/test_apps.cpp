//===- test_apps.cpp - interval tree, range tree, inverted index -----------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <map>
#include <set>

#include "gtest/gtest.h"

#include "src/apps/interval_tree.h"
#include "src/apps/inverted_index.h"
#include "src/apps/range_tree.h"
#include "src/parallel/random.h"

using namespace cpam;

namespace {

//===----------------------------------------------------------------------===
// Interval tree.
//===----------------------------------------------------------------------===

template <class T> class IntervalTest : public ::testing::Test {};
using IntervalTypes =
    ::testing::Types<interval_tree<0>, interval_tree<4>, interval_tree<32>>;
TYPED_TEST_SUITE(IntervalTest, IntervalTypes);

TYPED_TEST(IntervalTest, StabbingMatchesBruteForce) {
  auto Ivs = random_intervals(2000, 100000, 500, 11);
  TypeParam T(Ivs);
  ASSERT_EQ(T.check_invariants(), "");
  Rng R(12);
  for (int Q = 0; Q < 300; ++Q) {
    uint64_t P = R.ith(Q, 100000);
    size_t Expect = 0;
    for (const Interval &Iv : Ivs)
      if (Iv.Left <= P && P <= Iv.Right)
        ++Expect;
    ASSERT_EQ(T.count_stab(P), Expect) << "P=" << P;
    ASSERT_EQ(T.stabs(P), Expect > 0);
    auto Rep = T.report_stab(P);
    ASSERT_EQ(Rep.size(), Expect);
    for (const Interval &Iv : Rep)
      ASSERT_TRUE(Iv.Left <= P && P <= Iv.Right);
  }
}

TYPED_TEST(IntervalTest, EmptyAndBoundary) {
  TypeParam T;
  EXPECT_FALSE(T.stabs(0));
  EXPECT_FALSE(T.stabs(12345));
  EXPECT_EQ(T.count_stab(7), 0u);
  T.insert_inplace({10, 20});
  EXPECT_TRUE(T.stabs(10));
  EXPECT_TRUE(T.stabs(20));
  EXPECT_FALSE(T.stabs(9));
  EXPECT_FALSE(T.stabs(21));
  T.insert_inplace({0, 3});
  EXPECT_TRUE(T.stabs(0));
  T.remove_inplace({0, 3});
  EXPECT_FALSE(T.stabs(0));
}

TYPED_TEST(IntervalTest, UpdatesAndSnapshots) {
  auto Ivs = random_intervals(500, 10000, 100, 13);
  TypeParam T(Ivs);
  auto Snap = T.snapshot();
  T.insert_inplace({5000, 5002});
  // Count on snapshot unchanged, live tree sees the new interval.
  size_t Before = 0;
  for (const Interval &Iv : Ivs)
    if (Iv.Left <= 5001 && 5001 <= Iv.Right)
      ++Before;
  EXPECT_EQ(Snap.count_stab(5001), Before);
  EXPECT_EQ(T.count_stab(5001), Before + 1);
}

//===----------------------------------------------------------------------===
// 2D range tree.
//===----------------------------------------------------------------------===

template <class T> class RangeTreeTest : public ::testing::Test {};
using RangeTypes = ::testing::Types<range_tree<0, 0>, range_tree<16, 4>,
                                    range_tree<128, 16>>;
TYPED_TEST_SUITE(RangeTreeTest, RangeTypes);

std::vector<point2d> makePoints(size_t N, uint32_t Universe, uint64_t Seed) {
  // Distinct (x, y) pairs.
  std::set<std::pair<uint32_t, uint32_t>> Seen;
  std::vector<point2d> Out;
  Rng R(Seed);
  uint64_t I = 0;
  while (Out.size() < N) {
    uint32_t X = static_cast<uint32_t>(R.ith(2 * I, Universe));
    uint32_t Y = static_cast<uint32_t>(R.ith(2 * I + 1, Universe));
    ++I;
    if (Seen.insert({X, Y}).second)
      Out.push_back({X, Y});
  }
  return Out;
}

TYPED_TEST(RangeTreeTest, CountMatchesBruteForce) {
  auto Pts = makePoints(2000, 10000, 21);
  TypeParam T(Pts);
  ASSERT_EQ(T.check_invariants(), "");
  ASSERT_EQ(T.size(), Pts.size());
  Rng R(22);
  for (int Q = 0; Q < 200; ++Q) {
    uint32_t XLo = static_cast<uint32_t>(R.ith(4 * Q, 10000));
    uint32_t XHi = XLo + static_cast<uint32_t>(R.ith(4 * Q + 1, 3000));
    uint32_t YLo = static_cast<uint32_t>(R.ith(4 * Q + 2, 10000));
    uint32_t YHi = YLo + static_cast<uint32_t>(R.ith(4 * Q + 3, 3000));
    size_t Expect = 0;
    for (const point2d &P : Pts)
      if (P.X >= XLo && P.X <= XHi && P.Y >= YLo && P.Y <= YHi)
        ++Expect;
    ASSERT_EQ(T.query_count(XLo, YLo, XHi, YHi), Expect)
        << "[" << XLo << "," << XHi << "]x[" << YLo << "," << YHi << "]";
    auto Found = T.query_points(XLo, YLo, XHi, YHi);
    ASSERT_EQ(Found.size(), Expect);
    for (const point2d &P : Found)
      ASSERT_TRUE(P.X >= XLo && P.X <= XHi && P.Y >= YLo && P.Y <= YHi);
  }
}

TYPED_TEST(RangeTreeTest, DegenerateRanges) {
  auto Pts = makePoints(300, 1000, 23);
  TypeParam T(Pts);
  // Full plane.
  EXPECT_EQ(T.query_count(0, 0, UINT32_MAX, UINT32_MAX), Pts.size());
  // Single point.
  EXPECT_EQ(T.query_count(Pts[0].X, Pts[0].Y, Pts[0].X, Pts[0].Y), 1u);
  // Empty range.
  EXPECT_EQ(T.query_count(5, 5, 4, 4), 0u);
}

TYPED_TEST(RangeTreeTest, DynamicUpdates) {
  auto Pts = makePoints(500, 5000, 24);
  TypeParam T(Pts);
  size_t All = T.query_count(0, 0, UINT32_MAX, UINT32_MAX);
  T.insert_inplace({4999, 4999});
  EXPECT_EQ(T.query_count(0, 0, UINT32_MAX, UINT32_MAX), All + 1);
  EXPECT_EQ(T.query_count(4999, 4999, 4999, 4999), 1u);
  T.remove_inplace({4999, 4999});
  EXPECT_EQ(T.query_count(0, 0, UINT32_MAX, UINT32_MAX), All);
  EXPECT_EQ(T.check_invariants(), "");
}

TEST(RangeTreeSpace, PacSmallerThanPTree) {
  auto Pts = makePoints(20000, 100000, 25);
  range_tree<0, 0> PTree(Pts);
  range_tree<128, 16> PaC(Pts);
  // Paper Sec. 10.4: ~2.2x smaller overall; require a conservative 1.5x.
  EXPECT_LT(PaC.size_in_bytes() * 3, PTree.size_in_bytes() * 2);
}

//===----------------------------------------------------------------------===
// Inverted index.
//===----------------------------------------------------------------------===

TEST(InvertedIndex, MatchesReferenceCounts) {
  Corpus C = generate_corpus(20000, 200, 50, 1.0, 31);
  inverted_index<16, 16> Idx(C);
  // Reference: word -> doc -> count.
  std::map<uint32_t, std::map<uint32_t, uint32_t>> Ref;
  for (size_t D = 0; D < C.num_docs(); ++D)
    for (uint64_t I = C.DocOffsets[D]; I < C.DocOffsets[D + 1]; ++I)
      Ref[C.Tokens[I]][static_cast<uint32_t>(D)]++;
  EXPECT_EQ(Idx.num_words(), Ref.size());
  size_t TotalPostings = 0;
  for (auto &[W, Docs] : Ref) {
    TotalPostings += Docs.size();
    auto List = Idx.get_list(C.Words[W]);
    ASSERT_EQ(List.size(), Docs.size()) << "word " << C.Words[W];
    for (auto &[D, Count] : Docs) {
      auto Score = List.find(D);
      ASSERT_TRUE(Score.has_value());
      ASSERT_EQ(*Score, Count);
    }
    ASSERT_EQ(List.check_invariants(), "");
  }
  EXPECT_EQ(Idx.num_postings(), TotalPostings);
}

TEST(InvertedIndex, AndOrQueries) {
  Corpus C = generate_corpus(30000, 100, 40, 1.0, 32);
  inverted_index<16, 16> Idx(C);
  // Take the two most frequent words (ids of rank 0/1 after shuffling are
  // unknown, so just pick two words that exist).
  std::string W1 = C.Words[C.Tokens[0]];
  std::string W2 = C.Words[C.Tokens[1]];
  if (W1 == W2)
    W2 = C.Words[C.Tokens[2]];
  auto L1 = Idx.get_list(W1), L2 = Idx.get_list(W2);
  auto And = Idx.query_and(W1, W2);
  auto Or = Idx.query_or(W1, W2);
  // |A AND B| + |A OR B| == |A| + |B|.
  EXPECT_EQ(And.size() + Or.size(), L1.size() + L2.size());
  And.foreach_seq([&](const auto &E) {
    auto S1 = L1.find(E.first), S2 = L2.find(E.first);
    ASSERT_TRUE(S1.has_value() && S2.has_value());
    EXPECT_EQ(E.second, *S1 + *S2);
  });
}

TEST(InvertedIndex, TopKOrdering) {
  Corpus C = generate_corpus(50000, 50, 30, 1.0, 33);
  inverted_index<16, 16> Idx(C);
  std::string W = C.Words[C.Tokens[0]];
  auto List = Idx.get_list(W);
  ASSERT_GT(List.size(), 10u);
  auto Top = inverted_index<16, 16>::top_k(List, 10);
  ASSERT_EQ(Top.size(), 10u);
  for (size_t I = 1; I < Top.size(); ++I)
    EXPECT_GE(Top[I - 1].second, Top[I].second) << "not score-sorted";
  // The first result really is the max.
  EXPECT_EQ(Top[0].second, List.aug_val());
  // Against brute force.
  auto All = List.to_vector();
  std::sort(All.begin(), All.end(), [](const auto &A, const auto &B) {
    return A.second > B.second;
  });
  for (size_t I = 0; I < 10; ++I)
    EXPECT_EQ(Top[I].second, All[I].second);
}

TEST(InvertedIndex, MissingWord) {
  Corpus C = generate_corpus(1000, 20, 5, 1.0, 34);
  inverted_index<16, 16> Idx(C);
  EXPECT_EQ(Idx.get_list("zzzznotaword").size(), 0u);
  EXPECT_EQ(Idx.query_and("zzzznotaword", C.Words[C.Tokens[0]]).size(), 0u);
}

TEST(InvertedIndexSpace, DiffEncodingShrinksPostings) {
  Corpus C = generate_corpus(500000, 1000, 2000, 1.0, 35);
  inverted_index<128, 128> Idx(C);
  // Lists of at least 2B postings are fully blocked+compressed; the paper's
  // "< 2 bytes per doc id" claim applies there (our entries additionally
  // carry a byte-coded score, so allow 4 bytes vs 8 raw).
  size_t LongPostings = 0, LongBytes = 0;
  Idx.index().foreach_seq([&](const auto &E) {
    if (E.second.size() < 256)
      return;
    LongPostings += E.second.size();
    LongBytes += E.second.size_in_bytes();
  });
  ASSERT_GT(LongPostings, 0u) << "corpus should have frequent words";
  EXPECT_LT(LongBytes, LongPostings * 4);
  // And the whole index is far smaller than the P-tree (PAM) equivalent.
  inverted_index<0, 0> PTreeIdx(C);
  EXPECT_LT(Idx.size_in_bytes() * 2, PTreeIdx.size_in_bytes());
}

} // namespace
