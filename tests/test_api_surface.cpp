//===- test_api_surface.cpp - API corners and composition -------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Coverage for API corners not hit elsewhere: root adoption, empty-value
// semantics across all operations, foreach early exit, batch operations on
// pre-sorted inputs, move semantics, and cross-encoder equality.
//
//===----------------------------------------------------------------------===//

#include "gtest/gtest.h"

#include "src/api/aug_map.h"
#include "src/api/pam_map.h"
#include "src/api/pam_set.h"
#include "src/encoding/diff_encoder.h"
#include "src/parallel/random.h"

using namespace cpam;

namespace {

using M = pam_map<uint64_t, uint64_t, 16>;
using S = pam_set<uint64_t, 16>;

TEST(ApiSurface, EmptyCollectionOperations) {
  M Empty;
  EXPECT_FALSE(Empty.first().has_value());
  EXPECT_FALSE(Empty.last().has_value());
  EXPECT_FALSE(Empty.next(5).has_value());
  EXPECT_FALSE(Empty.previous(5).has_value());
  EXPECT_EQ(Empty.rank(99), 0u);
  EXPECT_EQ(Empty.range(1, 10).size(), 0u);
  EXPECT_EQ(Empty.filter([](const auto &) { return true; }).size(), 0u);
  EXPECT_EQ(Empty.multi_insert({}).size(), 0u);
  EXPECT_EQ(Empty.multi_delete({1, 2, 3}).size(), 0u);
  EXPECT_EQ(Empty.to_vector().size(), 0u);
  EXPECT_EQ(M::map_union(Empty, Empty).size(), 0u);
  EXPECT_EQ(M::map_intersect(Empty, Empty).size(), 0u);
  EXPECT_EQ(M::map_difference(Empty, Empty).size(), 0u);
  EXPECT_EQ(Empty.size_in_bytes(), 0u);
  EXPECT_EQ(Empty.node_count(), 0u);
}

TEST(ApiSurface, SingletonCollection) {
  M One = M().insert(7, 42);
  EXPECT_EQ(One.size(), 1u);
  EXPECT_EQ(One.first()->first, 7u);
  EXPECT_EQ(One.last()->first, 7u);
  EXPECT_EQ(One.select(0).second, 42u);
  EXPECT_EQ(One.rank(7), 0u);
  EXPECT_EQ(One.rank(8), 1u);
  EXPECT_EQ(One.check_invariants(), "");
  M None = One.remove(7);
  EXPECT_TRUE(None.empty());
}

TEST(ApiSurface, ForeachEarlyExit) {
  std::vector<std::pair<uint64_t, uint64_t>> E;
  for (uint64_t I = 0; I < 1000; ++I)
    E.push_back({I, I});
  M Map(E);
  size_t Visited = 0;
  Map.foreach_seq([&](const auto &) { return ++Visited < 10; });
  EXPECT_EQ(Visited, 10u);
  // Void-returning callbacks visit everything.
  Visited = 0;
  Map.foreach_seq([&](const auto &) { ++Visited; });
  EXPECT_EQ(Visited, 1000u);
}

TEST(ApiSurface, MoveSemantics) {
  std::vector<uint64_t> Keys = {1, 2, 3, 4, 5};
  S A(Keys), B(Keys);
  S Moved = std::move(A);
  EXPECT_EQ(Moved.size(), 5u);
  EXPECT_EQ(A.size(), 0u); // Moved-from is empty, not dangling.
  S U = S::map_union(std::move(Moved), std::move(B));
  EXPECT_EQ(U.size(), 5u);
  EXPECT_EQ(U.check_invariants(), "");
  // Self-assignment safety.
  U = U;
  EXPECT_EQ(U.size(), 5u);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpragmas" // GCC < 13 lacks -Wself-move.
#pragma GCC diagnostic ignored "-Wself-move"
  U = std::move(U);
#pragma GCC diagnostic pop
  EXPECT_EQ(U.size(), 5u);
}

TEST(ApiSurface, TakeRootRoundTrip) {
  std::vector<uint64_t> Keys = {10, 20, 30};
  S A(Keys);
  auto *R = S::ops::inc(A.root());
  S B = S::take_root(R);
  EXPECT_EQ(B.size(), 3u);
  EXPECT_TRUE(B.contains(20));
}

TEST(ApiSurface, MultiInsertSortedFastPath) {
  std::vector<std::pair<uint64_t, uint64_t>> Sorted;
  for (uint64_t I = 0; I < 500; ++I)
    Sorted.push_back({2 * I, I});
  M A = M().multi_insert_sorted(Sorted);
  EXPECT_EQ(A.size(), 500u);
  std::vector<std::pair<uint64_t, uint64_t>> More;
  for (uint64_t I = 0; I < 500; ++I)
    More.push_back({2 * I + 1, I});
  M B = A.multi_insert_sorted(More);
  EXPECT_EQ(B.size(), 1000u);
  EXPECT_EQ(B.check_invariants(), "");
  // multi_delete_sorted drops exactly the given keys.
  std::vector<uint64_t> Del;
  for (uint64_t I = 0; I < 1000; I += 4)
    Del.push_back(I);
  M C = B.multi_delete_sorted(Del);
  EXPECT_EQ(C.size(), 750u);
  for (uint64_t I = 0; I < 1000; ++I)
    EXPECT_EQ(C.contains(I), I % 4 != 0) << I;
}

TEST(ApiSurface, BuildMoveMatchesBuildCopy) {
  Rng R(3);
  std::vector<std::pair<uint64_t, uint64_t>> E(5000);
  for (size_t I = 0; I < E.size(); ++I)
    E[I] = {R.ith(I, 2000), I};
  M Copy(E);
  std::vector<std::pair<uint64_t, uint64_t>> Relinquished = E;
  M Move(std::move(Relinquished), take_right()); // rvalue build
  EXPECT_EQ(Copy.size(), Move.size());
  EXPECT_EQ(Copy.to_vector(), Move.to_vector());
}

TEST(ApiSurface, CrossEncoderEquality) {
  Rng R(4);
  std::vector<uint64_t> Keys(3000);
  for (size_t I = 0; I < Keys.size(); ++I)
    Keys[I] = R.ith(I, 100000);
  pam_set<uint64_t, 16> Raw(Keys);
  pam_set<uint64_t, 16, diff_encoder> Diff(Keys);
  EXPECT_EQ(Raw.to_vector(), Diff.to_vector());
  // Mixed-operation parity.
  auto RawOut = Raw.remove(Keys[0]).insert(424242).range(100, 90000);
  auto DiffOut = Diff.remove(Keys[0]).insert(424242).range(100, 90000);
  EXPECT_EQ(RawOut.to_vector(), DiffOut.to_vector());
}

TEST(ApiSurface, AugMapValueFind) {
  using A = aug_map<aug_max_entry<uint64_t, uint64_t>, 8>;
  A Map(std::vector<std::pair<uint64_t, uint64_t>>{{1, 10}, {2, 20}});
  EXPECT_EQ(*Map.find(2), 20u);
  EXPECT_FALSE(Map.find(3).has_value());
  EXPECT_EQ(Map.aug_val(), 20u);
  A Map2 = Map.insert(3, 99);
  EXPECT_EQ(Map2.aug_val(), 99u);
  EXPECT_EQ(Map.aug_val(), 20u);
}

} // namespace
