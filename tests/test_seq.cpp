//===- test_seq.cpp - pam_seq sequence interface ---------------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include <numeric>

#include "gtest/gtest.h"

#include "src/api/pam_seq.h"
#include "src/parallel/random.h"
#include "tests/test_common.h"

using namespace cpam;

namespace {

/// Leak-checked: the fixture fails any test that does not return every tree
/// node to the allocator.
template <class SeqT> class SeqTest : public test::TypedLeakCheckTest<SeqT> {};

using SeqTypes =
    ::testing::Types<pam_seq<uint64_t, 0>, pam_seq<uint64_t, 2>,
                     pam_seq<uint64_t, 16>, pam_seq<uint64_t, 128>>;
TYPED_TEST_SUITE(SeqTest, SeqTypes);

int64_t liveObjects() { return alloc_stats::live_object_count(); }

TYPED_TEST(SeqTest, BuildPreservesOrder) {
  // Sequences keep arbitrary (unsorted) element order.
  std::vector<uint64_t> V(5000);
  Rng R(1);
  for (size_t I = 0; I < V.size(); ++I)
    V[I] = R.ith(I, 100);
  TypeParam S(V);
  EXPECT_EQ(S.size(), V.size());
  EXPECT_EQ(S.check_invariants(), "");
  EXPECT_EQ(S.to_vector(), V);
}

TYPED_TEST(SeqTest, NthMatchesVector) {
  std::vector<uint64_t> V(3000);
  std::iota(V.begin(), V.end(), 17);
  TypeParam S(V);
  for (size_t I = 0; I < V.size(); I += 13)
    ASSERT_EQ(S.nth(I), V[I]);
  ASSERT_EQ(S.nth(V.size() - 1), V.back());
}

TYPED_TEST(SeqTest, TakeDropSubseq) {
  int64_t Before = liveObjects();
  {
    std::vector<uint64_t> V(2500);
    std::iota(V.begin(), V.end(), 0);
    TypeParam S(V);
    for (size_t Cut : {0u, 1u, 100u, 1234u, 2500u}) {
      TypeParam T = S.take(Cut), D = S.drop(Cut);
      ASSERT_EQ(T.size(), Cut);
      ASSERT_EQ(D.size(), V.size() - Cut);
      ASSERT_EQ(T.check_invariants(), "");
      ASSERT_EQ(D.check_invariants(), "");
      auto TV = T.to_vector(), DV = D.to_vector();
      for (size_t I = 0; I < Cut; ++I)
        ASSERT_EQ(TV[I], V[I]);
      for (size_t I = 0; I < DV.size(); ++I)
        ASSERT_EQ(DV[I], V[Cut + I]);
    }
    TypeParam Sub = S.subseq(100, 200);
    ASSERT_EQ(Sub.size(), 100u);
    ASSERT_EQ(Sub.nth(0), 100u);
    ASSERT_EQ(Sub.nth(99), 199u);
  }
  EXPECT_EQ(liveObjects(), Before);
}

TYPED_TEST(SeqTest, AppendMatchesConcatenation) {
  int64_t Before = liveObjects();
  {
    for (auto [Na, Nb] : {std::pair<size_t, size_t>{0, 50},
                          {50, 0},
                          {1, 1},
                          {1000, 3},
                          {3, 1000},
                          {2000, 2000}}) {
      std::vector<uint64_t> A(Na), B(Nb);
      std::iota(A.begin(), A.end(), 0);
      std::iota(B.begin(), B.end(), 1000000);
      TypeParam SA(A), SB(B);
      TypeParam C = TypeParam::append(SA, SB);
      ASSERT_EQ(C.check_invariants(), "") << Na << "+" << Nb;
      std::vector<uint64_t> Expect = A;
      Expect.insert(Expect.end(), B.begin(), B.end());
      ASSERT_EQ(C.to_vector(), Expect);
      // Sources survive.
      ASSERT_EQ(SA.size(), Na);
      ASSERT_EQ(SB.size(), Nb);
    }
  }
  EXPECT_EQ(liveObjects(), Before);
}

TYPED_TEST(SeqTest, AppendAndSplitAtBothFastPathSettings) {
  // append's flat x flat streaming concat and split_at's cursor splice
  // must agree with the temp_buf paths for sizes around the chunk
  // boundaries (flat + flat results of up to 4B entries span two leaves).
  test::FlagGuard G(TypeParam::ops::flat_fastpath());
  constexpr size_t B = TypeParam::ops::kB > 0 ? TypeParam::ops::kB : 16;
  auto R = test::seeded_rng();
  for (bool Fast : {false, true}) {
    TypeParam::ops::flat_fastpath() = Fast;
    for (size_t Na : {size_t(1), B, 2 * B - 1, 2 * B}) {
      for (size_t Nb : {size_t(1), B - 1, 2 * B}) {
        std::vector<uint64_t> A(Na), Bv(Nb);
        for (auto &X : A)
          X = R.next(1u << 20);
        for (auto &X : Bv)
          X = R.next(1u << 20);
        TypeParam SA(A), SB(Bv);
        TypeParam C = TypeParam::append(SA, SB);
        ASSERT_EQ(C.check_invariants(), "")
            << "fast=" << Fast << " " << Na << "+" << Nb;
        std::vector<uint64_t> Expect = A;
        Expect.insert(Expect.end(), Bv.begin(), Bv.end());
        ASSERT_EQ(C.to_vector(), Expect);
        // Split the concatenation back apart at the seam and off-seam.
        for (size_t Cut : {size_t(0), Na, Na + Nb / 2, Na + Nb}) {
          TypeParam L = C.take(Cut), Rt = C.drop(Cut);
          ASSERT_EQ(L.check_invariants(), "");
          ASSERT_EQ(Rt.check_invariants(), "");
          ASSERT_EQ(L.size() + Rt.size(), Expect.size());
          auto LV = L.to_vector(), RV = Rt.to_vector();
          LV.insert(LV.end(), RV.begin(), RV.end());
          ASSERT_EQ(LV, Expect) << "fast=" << Fast << " cut=" << Cut;
        }
      }
    }
  }
}

TYPED_TEST(SeqTest, Reverse) {
  std::vector<uint64_t> V(4321);
  std::iota(V.begin(), V.end(), 5);
  TypeParam S(V);
  TypeParam R = S.reverse();
  EXPECT_EQ(R.check_invariants(), "");
  std::vector<uint64_t> Expect(V.rbegin(), V.rend());
  EXPECT_EQ(R.to_vector(), Expect);
  EXPECT_EQ(R.reverse().to_vector(), V);
}

TYPED_TEST(SeqTest, MapFilterReduce) {
  std::vector<uint64_t> V(5000);
  std::iota(V.begin(), V.end(), 0);
  TypeParam S(V);
  TypeParam M = S.map([](uint64_t X) { return 3 * X; });
  EXPECT_EQ(M.nth(10), 30u);
  EXPECT_EQ(M.size(), V.size());
  TypeParam F = S.filter([](uint64_t X) { return X % 5 == 0; });
  EXPECT_EQ(F.size(), 1000u);
  EXPECT_EQ(F.nth(3), 15u);
  uint64_t Sum = S.reduce(uint64_t(0), std::plus<uint64_t>());
  EXPECT_EQ(Sum, uint64_t(4999) * 5000 / 2);
  uint64_t Max = S.map_reduce([](uint64_t X) { return X; }, uint64_t(0),
                              [](uint64_t A, uint64_t B) {
                                return std::max(A, B);
                              });
  EXPECT_EQ(Max, 4999u);
}

TYPED_TEST(SeqTest, MapMatchesVectorBothFastPathSettings) {
  // seq map's flat base case streams through the encoder cursors when the
  // fast path is on and round-trips through temp_buf when it is off; both
  // must agree with the plain vector transform, element for element.
  test::FlagGuard G(TypeParam::ops::flat_fastpath());
  auto R = test::seeded_rng();
  std::vector<uint64_t> V(3000);
  for (auto &X : V)
    X = R.next(1u << 20);
  std::vector<uint64_t> Want(V.size());
  for (size_t I = 0; I < V.size(); ++I)
    Want[I] = V[I] * 7 + 3;
  for (bool Fast : {false, true}) {
    TypeParam::ops::flat_fastpath() = Fast;
    TypeParam S(V);
    TypeParam M = S.map([](uint64_t X) { return X * 7 + 3; });
    ASSERT_EQ(M.size(), V.size()) << "fastpath=" << Fast;
    std::vector<uint64_t> Got = M.to_vector();
    ASSERT_EQ(Got, Want) << "fastpath=" << Fast;
  }
}

TYPED_TEST(SeqTest, FindFirst) {
  std::vector<uint64_t> V(10000, 1);
  V[7777] = 42;
  TypeParam S(V);
  EXPECT_EQ(S.find_first([](uint64_t X) { return X == 42; }), 7777u);
  EXPECT_EQ(S.find_first([](uint64_t X) { return X == 43; }), V.size());
  EXPECT_EQ(S.find_first([](uint64_t X) { return X == 1; }), 0u);
}

TYPED_TEST(SeqTest, IsSorted) {
  std::vector<uint64_t> V(3000);
  std::iota(V.begin(), V.end(), 0);
  TypeParam S(V);
  EXPECT_TRUE(S.is_sorted());
  std::swap(V[1500], V[1501]);
  TypeParam S2(V);
  EXPECT_FALSE(S2.is_sorted());
  EXPECT_TRUE(TypeParam(std::vector<uint64_t>{}).is_sorted());
  EXPECT_TRUE(TypeParam(std::vector<uint64_t>{9}).is_sorted());
  // Equal elements count as sorted.
  EXPECT_TRUE(TypeParam(std::vector<uint64_t>(100, 7)).is_sorted());
}

TYPED_TEST(SeqTest, Tabulate) {
  TypeParam S = TypeParam::tabulate(1000, [](size_t I) { return I * I; });
  EXPECT_EQ(S.size(), 1000u);
  EXPECT_EQ(S.nth(31), 961u);
}

TYPED_TEST(SeqTest, SnapshotSemantics) {
  std::vector<uint64_t> V(100);
  std::iota(V.begin(), V.end(), 0);
  TypeParam A(V);
  TypeParam B = A; // O(1) snapshot.
  TypeParam C = TypeParam::append(A, B);
  EXPECT_EQ(A.size(), 100u);
  EXPECT_EQ(C.size(), 200u);
  EXPECT_EQ(A.to_vector(), V) << "append must not disturb sources";
}

class SeqMemory : public test::LeakCheckTest {};

TEST_F(SeqMemory, BlockedSequenceNearArraySize) {
  std::vector<uint64_t> V(200000);
  std::iota(V.begin(), V.end(), 0);
  pam_seq<uint64_t, 128> S(V);
  pam_seq<uint64_t, 0> P(V);
  size_t ArrayBytes = V.size() * sizeof(uint64_t);
  EXPECT_LT(S.size_in_bytes(), ArrayBytes * 12 / 10);
  EXPECT_GT(P.size_in_bytes(), ArrayBytes * 3); // P-trees pay per-node.
}

} // namespace
