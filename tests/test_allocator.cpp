//===- test_allocator.cpp - Pooled node allocator tests --------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Exercises the node allocation layer (allocator.h + pool_allocator.h):
// size-class mapping, every pooled class plus beyond-pool direct sizes,
// local-list drain/refill boundaries, cross-thread alloc/free (worker A
// allocates, worker B frees — the pattern parallel `dec` produces), and
// exactness of the live-object/live-byte counters when quiescent. The suite
// passes in both allocator modes: with CPAM_POOL_ALLOC=0 the pool-telemetry
// assertions are skipped but every alloc/free pattern still runs against
// the direct path (this is the configuration the sanitized CI job runs).
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "src/api/pam_map.h"
#include "src/api/pam_set.h"
#include "src/core/pool_allocator.h"
#include "tests/test_common.h"

namespace {

using namespace cpam;

using AllocatorTest = test::LeakCheckTest;

//===----------------------------------------------------------------------===
// Size-class mapping.
//===----------------------------------------------------------------------===

TEST(PoolClassTest, SizeClassRoundTrip) {
  // Every pooled size maps to a class at least as large, within one
  // granule/doubling, and class indices are monotone in the request size.
  int PrevClass = -1;
  for (size_t Bytes = 1; Bytes <= pool_allocator::kLargeMax; ++Bytes) {
    int C = pool_allocator::size_class(Bytes);
    ASSERT_GE(C, 0) << Bytes;
    ASSERT_LT(static_cast<size_t>(C), pool_allocator::kNumClasses);
    size_t CB = pool_allocator::class_bytes(C);
    ASSERT_GE(CB, Bytes) << "class too small for request";
    if (C > 0) {
      ASSERT_LT(pool_allocator::class_bytes(C - 1), Bytes)
          << "request fits a smaller class";
    }
    ASSERT_GE(C, PrevClass) << "class index not monotone";
    PrevClass = C;
    // Skip ahead; exhaustively checking 64K sizes one by one is slow in
    // debug builds and adds nothing past the class boundaries.
    if (Bytes > 2 * pool_allocator::kSmallMax && Bytes % 997 != 0 &&
        pool_allocator::size_class(Bytes + 1) == C)
      Bytes += 96;
  }
  EXPECT_EQ(pool_allocator::size_class(0), -1);
  EXPECT_EQ(pool_allocator::size_class(pool_allocator::kLargeMax + 1), -1);
}

TEST(PoolClassTest, BatchBlocksBounded) {
  for (size_t C = 0; C < pool_allocator::kNumClasses; ++C) {
    size_t N = pool_allocator::batch_blocks(static_cast<int>(C));
    EXPECT_GE(N, 4u);
    EXPECT_LE(N, pool_allocator::kBatchBytes / pool_allocator::kGranularity);
  }
  // The dominant node classes exchange in batches of ~256.
  EXPECT_EQ(pool_allocator::batch_blocks(0), 256u);
}

//===----------------------------------------------------------------------===
// Raw tree_alloc / tree_free.
//===----------------------------------------------------------------------===

TEST_F(AllocatorTest, AllSizeClassesAndDirectSizes) {
  // One size below, at, and above every class boundary, plus beyond-pool
  // sizes served directly (large flat payloads and merge buffers).
  std::vector<size_t> Sizes;
  for (size_t C = 0; C < pool_allocator::kNumClasses; ++C) {
    size_t CB = pool_allocator::class_bytes(static_cast<int>(C));
    Sizes.push_back(CB - 1);
    Sizes.push_back(CB);
    Sizes.push_back(CB + 1);
  }
  Sizes.push_back(pool_allocator::kLargeMax + 1);
  Sizes.push_back(128 * 1024);
  Sizes.push_back(8 * 1024 * 1024);

  int64_t Objs0 = alloc_stats::live_object_count();
  int64_t Bytes0 = alloc_stats::live_byte_count();
  struct Alloc {
    void *P;
    size_t Bytes;
  };
  std::vector<Alloc> Live;
  int64_t Total = 0;
  for (size_t Bytes : Sizes) {
    void *P = tree_alloc(Bytes);
    ASSERT_NE(P, nullptr);
    ASSERT_EQ(reinterpret_cast<uintptr_t>(P) % 16, 0u)
        << "tree_alloc must return 16-byte aligned storage";
    // Touch the whole block; overlapping blocks would corrupt the pattern.
    std::memset(P, static_cast<int>(Bytes % 251), Bytes);
    Live.push_back({P, Bytes});
    Total += static_cast<int64_t>(Bytes);
  }
  EXPECT_EQ(alloc_stats::live_object_count() - Objs0,
            static_cast<int64_t>(Sizes.size()));
  EXPECT_EQ(alloc_stats::live_byte_count() - Bytes0, Total);
  for (const Alloc &A : Live) {
    const auto *B = static_cast<const unsigned char *>(A.P);
    for (size_t I = 0; I < A.Bytes; I += 61)
      ASSERT_EQ(B[I], static_cast<unsigned char>(A.Bytes % 251))
          << "block contents clobbered (overlapping allocations?)";
    tree_free(A.P, A.Bytes);
  }
  EXPECT_EQ(alloc_stats::live_object_count(), Objs0);
  EXPECT_EQ(alloc_stats::live_byte_count(), Bytes0);
}

TEST_F(AllocatorTest, BlocksOfOneClassDoNotOverlap) {
  constexpr size_t Bytes = 192; // An odd class: 3 granules.
  constexpr size_t N = 700;     // Spans several refill batches.
  std::vector<char *> Ps(N);
  for (size_t I = 0; I < N; ++I) {
    Ps[I] = static_cast<char *>(tree_alloc(Bytes));
    std::memset(Ps[I], static_cast<int>(I % 251), Bytes);
  }
  std::vector<char *> Sorted = Ps;
  std::sort(Sorted.begin(), Sorted.end());
  for (size_t I = 1; I < N; ++I)
    ASSERT_GE(Sorted[I] - Sorted[I - 1], static_cast<ptrdiff_t>(Bytes))
        << "live blocks overlap";
  for (size_t I = 0; I < N; ++I) {
    ASSERT_EQ(static_cast<unsigned char>(Ps[I][Bytes - 1]),
              static_cast<unsigned char>(I % 251));
    tree_free(Ps[I], Bytes);
  }
}

TEST_F(AllocatorTest, DrainRefillBoundaries) {
  constexpr size_t Bytes = 320; // Class of 5 granules; batch ~51 blocks.
  const int C = pool_allocator::size_class(Bytes);
  ASSERT_GE(C, 0);
  const size_t Batch = pool_allocator::batch_blocks(C);
  const size_t N = 3 * Batch + 7; // Crosses the drain threshold repeatedly.

  std::vector<void *> Ps(N);
  for (size_t I = 0; I < N; ++I)
    Ps[I] = tree_alloc(Bytes);
  if constexpr (pool_enabled()) {
    int64_t Reserved = pool_allocator::reserved_bytes();
    size_t LocalBefore = pool_allocator::local_free_blocks(C);
    size_t GlobalBefore = pool_allocator::global_free_blocks(C);
    for (size_t I = 0; I < N; ++I)
      tree_free(Ps[I], Bytes);
    // Every freed block is parked on a free list (nothing unmapped), and
    // the local list was capped by the drain threshold, pushing batches to
    // the global pool.
    size_t LocalAfter = pool_allocator::local_free_blocks(C);
    size_t GlobalAfter = pool_allocator::global_free_blocks(C);
    EXPECT_EQ(LocalAfter + GlobalAfter, LocalBefore + GlobalBefore + N);
    EXPECT_LT(LocalAfter, 2 * Batch) << "drain threshold never applied";
    EXPECT_GT(GlobalAfter, GlobalBefore) << "no batch reached the pool";
    // Re-allocating the same count must be served entirely from the free
    // lists (local first, then global batches) without growing the heap.
    for (size_t I = 0; I < N; ++I)
      Ps[I] = tree_alloc(Bytes);
    EXPECT_EQ(pool_allocator::reserved_bytes(), Reserved)
        << "re-allocation carved fresh slabs instead of recycling";
    // Some allocations may be served from a leftover bump-slab tail rather
    // than the free lists, so up to one batch of list blocks can stay
    // parked; the lists never shrink below their pre-churn level.
    size_t FinalFree = pool_allocator::local_free_blocks(C) +
                       pool_allocator::global_free_blocks(C);
    EXPECT_GE(FinalFree, LocalBefore + GlobalBefore);
    EXPECT_LE(FinalFree, LocalBefore + GlobalBefore + Batch);
    for (size_t I = 0; I < N; ++I)
      tree_free(Ps[I], Bytes);
  } else {
    for (size_t I = 0; I < N; ++I)
      tree_free(Ps[I], Bytes);
  }
}

TEST_F(AllocatorTest, ThreadChurnDoesNotStrandSlabs) {
  // A thread's exit drain must return *everything* — free lists and the
  // unconsumed bump-slab tail — or short-lived allocating threads would
  // grow reserved slab memory without bound.
  if constexpr (!pool_enabled())
    GTEST_SKIP() << "pool telemetry only exists in pooled mode";
  constexpr size_t Bytes = 448; // A class the main thread rarely touches.
  auto OneThreadCycle = [&] {
    std::thread T([&] {
      void *P = tree_alloc(Bytes);
      std::memset(P, 1, Bytes);
      tree_free(P, Bytes);
    });
    T.join();
  };
  OneThreadCycle(); // First cycle may carve this class's first slab.
  int64_t Reserved = pool_allocator::reserved_bytes();
  for (int I = 0; I < 30; ++I)
    OneThreadCycle();
  EXPECT_EQ(pool_allocator::reserved_bytes(), Reserved)
      << "thread exits stranded slab memory";
}

//===----------------------------------------------------------------------===
// Cross-thread traffic.
//===----------------------------------------------------------------------===

TEST_F(AllocatorTest, CrossThreadAllocFree) {
  // Worker A allocates, worker B frees — the traffic pattern a parallel
  // `dec` produces. Several rounds so B's local list repeatedly crosses the
  // drain threshold with blocks it never allocated.
  constexpr size_t Bytes = 64;
  constexpr size_t PerRound = 2000;
  constexpr int Rounds = 5;
  for (int R = 0; R < Rounds; ++R) {
    std::vector<void *> Ps(PerRound);
    std::thread A([&] {
      for (size_t I = 0; I < PerRound; ++I) {
        Ps[I] = tree_alloc(Bytes);
        std::memset(Ps[I], 0xAB, Bytes);
      }
    });
    A.join();
    std::thread B([&] {
      for (size_t I = 0; I < PerRound; ++I)
        tree_free(Ps[I], Bytes);
    });
    B.join();
  }
  // LeakCheckTest::TearDown proves the counters returned to baseline.
}

TEST_F(AllocatorTest, SixteenThreadOversubscribedChurn) {
  // 16 threads (more than this machine's cores) hammer the same classes
  // concurrently: allocate a burst, hand it to a neighbor via a shared
  // mailbox, free what the previous round's neighbor left. Quiescent
  // counters must come back exact.
  constexpr int NumThreads = 16;
  constexpr int Rounds = 8;
  constexpr size_t PerBurst = 400;
  const size_t SizeOf[4] = {64, 192, 1024, 4096};

  std::vector<std::vector<void *>> Mailbox(NumThreads);
  for (int R = 0; R < Rounds; ++R) {
    std::vector<std::thread> Ts;
    Ts.reserve(NumThreads);
    for (int T = 0; T < NumThreads; ++T) {
      Ts.emplace_back([&, T] {
        // Free the burst a different thread allocated last round.
        for (void *P : Mailbox[T])
          tree_free(P, SizeOf[T % 4]);
        Mailbox[T].clear();
        // Allocate a burst destined for a neighbor (freed next round with
        // the neighbor's size index — so compute the size the *freer* will
        // use).
        int Dest = (T + 1) % NumThreads;
        size_t Bytes = SizeOf[Dest % 4];
        Mailbox[T].reserve(PerBurst);
        for (size_t I = 0; I < PerBurst; ++I) {
          void *P = tree_alloc(Bytes);
          std::memset(P, T, Bytes < 64 ? Bytes : 64);
          Mailbox[T].push_back(P);
        }
      });
    }
    for (std::thread &T : Ts)
      T.join();
    // Rotate mailboxes so each burst is freed by a different thread.
    std::vector<void *> Last = std::move(Mailbox[NumThreads - 1]);
    for (int T = NumThreads - 1; T > 0; --T)
      Mailbox[T] = std::move(Mailbox[T - 1]);
    Mailbox[0] = std::move(Last);
  }
  for (int T = 0; T < NumThreads; ++T)
    for (void *P : Mailbox[T])
      tree_free(P, SizeOf[T % 4]);
}

//===----------------------------------------------------------------------===
// Tree-level churn through the pool.
//===----------------------------------------------------------------------===

TEST_F(AllocatorTest, TreeBuiltHereFreedThere) {
  // Build trees on one thread, release the last reference on another —
  // every node crosses threads between allocation and free.
  auto Rng = test::seeded_rng();
  for (int Round = 0; Round < 3; ++Round) {
    pam_map<uint64_t, uint64_t, 128> Blocked;
    pam_map<uint64_t, uint64_t, 0> Plain;
    std::thread Builder([&] {
      std::vector<std::pair<uint64_t, uint64_t>> Es(20000);
      for (size_t I = 0; I < Es.size(); ++I)
        Es[I] = {Rng.next() % 1000000, I};
      Blocked = pam_map<uint64_t, uint64_t, 128>(Es);
      Plain = pam_map<uint64_t, uint64_t, 0>(Es);
    });
    Builder.join();
    EXPECT_EQ(Blocked.size(), Plain.size());
    std::thread Destroyer([&] {
      Blocked = {};
      Plain = {};
    });
    Destroyer.join();
  }
}

// A value type large enough that a full flat block (2B entries) overflows
// the pooled range and takes the direct beyond-pool path in make_flat.
struct BigVal {
  unsigned char Payload[512];
  bool operator==(const BigVal &O) const {
    return std::memcmp(Payload, O.Payload, sizeof(Payload)) == 0;
  }
};

TEST_F(AllocatorTest, BeyondPoolFlatPayloads) {
  constexpr int B = 128; // 2B entries * ~520B > 64 KiB pooled maximum.
  using Map = pam_map<uint64_t, BigVal, B>;
  std::vector<std::pair<uint64_t, BigVal>> Es(4 * B);
  for (size_t I = 0; I < Es.size(); ++I) {
    Es[I].first = I * 3;
    std::memset(Es[I].second.Payload, static_cast<int>(I % 256),
                sizeof(BigVal::Payload));
  }
  Map M = Map::from_sorted(Es);
  ASSERT_EQ(M.size(), Es.size());
  ASSERT_TRUE(M.check_invariants().empty()) << M.check_invariants();
  for (size_t I = 0; I < Es.size(); I += 37) {
    auto V = M.find(Es[I].first);
    ASSERT_TRUE(V.has_value());
    EXPECT_TRUE(*V == Es[I].second);
  }
  // Batch-update churn over the oversized payloads.
  std::vector<std::pair<uint64_t, BigVal>> Batch(B);
  for (size_t I = 0; I < Batch.size(); ++I) {
    Batch[I].first = I * 3 + 1;
    std::memset(Batch[I].second.Payload, 7, sizeof(BigVal::Payload));
  }
  Map M2 = M.multi_insert(Batch);
  EXPECT_EQ(M2.size(), Es.size() + Batch.size());
}

TEST_F(AllocatorTest, SetOpChurnQuiescentExact) {
  // union/intersect/difference drive the flatten-and-merge base cases,
  // the heaviest temp_buf users. Quiescent counters must be exact.
  auto Rng = test::seeded_rng();
  std::vector<uint64_t> Ka(30000), Kb(30000);
  for (size_t I = 0; I < Ka.size(); ++I) {
    Ka[I] = Rng.next() % 100000;
    Kb[I] = Rng.next() % 100000;
  }
  pam_set<uint64_t, 128> A(Ka), B(Kb);
  auto U = pam_set<uint64_t, 128>::map_union(A, B);
  auto I = pam_set<uint64_t, 128>::map_intersect(A, B);
  auto D = pam_set<uint64_t, 128>::map_difference(A, B);
  EXPECT_EQ(U.size(), A.size() + B.size() - I.size());
  EXPECT_EQ(D.size(), A.size() - I.size());
}

TEST_F(AllocatorTest, PerClassTelemetryBalancesWhenQuiescent) {
  if constexpr (!pool_enabled())
    GTEST_SKIP() << "pool telemetry only exists in pooled mode";
  else {
    auto Before = pool_allocator::stats();
    {
      // A build/destroy cycle heavy enough to cross the drain threshold of
      // the regular-node class and force global-pool round trips.
      using Map = pam_map<uint64_t, uint64_t, 0>; // B=0: one node per entry.
      std::vector<Map::entry_t> E(50000);
      for (size_t I = 0; I < E.size(); ++I)
        E[I] = {I, I};
      for (int Round = 0; Round < 3; ++Round) {
        Map M = Map::from_sorted(E);
        EXPECT_EQ(M.size(), E.size());
      }
    }
    auto After = pool_allocator::stats();
    uint64_t TotalAllocs = 0;
    for (size_t C = 0; C < pool_allocator::kNumClasses; ++C) {
      uint64_t DA = After[C].Allocs - Before[C].Allocs;
      uint64_t DF = After[C].Frees - Before[C].Frees;
      // Everything built in this test was destroyed: per class, allocation
      // and free *events* must balance exactly (residency in the free
      // lists does not affect the counters).
      EXPECT_EQ(DA, DF) << "class " << C << " (" << After[C].BlockBytes
                        << " B)";
      TotalAllocs += DA;
      // Exchange traffic only makes sense where traffic happened.
      if (DA == 0) {
        EXPECT_EQ(After[C].RefillBatches, Before[C].RefillBatches);
        EXPECT_EQ(After[C].DrainBatches, Before[C].DrainBatches);
      }
    }
    // 3 rounds x 50000 single-entry nodes dominate everything else here.
    EXPECT_GE(TotalAllocs, 150000u);
    // The build/teardown cycles must have recycled through the pool, not
    // carved fresh slabs every round: round 2+ should be served mostly by
    // refills of round 1's drained batches.
    uint64_t Carves = 0, Refills = 0;
    for (size_t C = 0; C < pool_allocator::kNumClasses; ++C) {
      Carves += After[C].SlabCarves - Before[C].SlabCarves;
      Refills += After[C].RefillBatches - Before[C].RefillBatches;
    }
    EXPECT_GT(Refills, 0u);
    EXPECT_GT(Carves, 0u);
  }
}

} // namespace
