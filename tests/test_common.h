//===- test_common.h - Shared test fixtures and helpers --------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared test infrastructure:
///
///  - test_seed() / seeded_rng(): deterministic per-test RNG seeding. The
///    seed is derived from the running test's full name, so every test gets
///    an independent, reproducible stream and copy-pasted seeds cannot
///    collide across tests.
///
///  - LeakCheckTest / TypedLeakCheckTest: fixtures that snapshot the node
///    allocator's live-object count in SetUp and fail the test in TearDown
///    if tree nodes leaked. Every tree built inside a test body is destroyed
///    before TearDown runs, so a nonzero delta means the reference-counting
///    collector dropped references. Adopted by the map/set/seq suites.
///
//===----------------------------------------------------------------------===//

#ifndef CPAM_TESTS_TEST_COMMON_H
#define CPAM_TESTS_TEST_COMMON_H

#include <cstdint>
#include <string>

#include "gtest/gtest.h"

#include "src/core/allocator.h"
#include "src/parallel/random.h"

namespace cpam {
namespace test {

/// Deterministic seed unique to the currently running test (FNV-1a over the
/// "Suite.Name" string, mixed with an optional salt). Stable across runs and
/// across machines.
inline uint64_t test_seed(uint64_t Salt = 0) {
  const ::testing::TestInfo *Info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  uint64_t H = 1469598103934665603ULL; // FNV offset basis.
  auto Mix = [&H](const char *S) {
    for (; S && *S; ++S) {
      H ^= static_cast<uint64_t>(static_cast<unsigned char>(*S));
      H *= 1099511628211ULL; // FNV prime.
    }
  };
  if (Info) {
    Mix(Info->test_suite_name());
    Mix(".");
    Mix(Info->name());
  }
  return hash64(H ^ Salt);
}

/// A counter-based RNG seeded deterministically for the current test.
inline Rng seeded_rng(uint64_t Salt = 0) { return Rng(test_seed(Salt)); }

/// Saves and restores a runtime switch (e.g. Ops::flat_fastpath()) around a
/// test body, so a failed ASSERT cannot leak a flipped global into later
/// tests in the same binary.
class FlagGuard {
public:
  explicit FlagGuard(bool &Flag) : Flag(Flag), Saved(Flag) {}
  FlagGuard(const FlagGuard &) = delete;
  FlagGuard &operator=(const FlagGuard &) = delete;
  ~FlagGuard() { Flag = Saved; }

private:
  bool &Flag;
  bool Saved;
};

/// FlagGuard's generalization to any copyable runtime knob (size_t grains,
/// thresholds): saves on construction, restores on scope exit, so a failed
/// ASSERT cannot leak a retuned global into later tests.
template <class T> class ValueGuard {
public:
  explicit ValueGuard(T &Ref) : Ref(Ref), Saved(Ref) {}
  ValueGuard(const ValueGuard &) = delete;
  ValueGuard &operator=(const ValueGuard &) = delete;
  ~ValueGuard() { Ref = Saved; }

private:
  T &Ref;
  T Saved;
};

/// Fails the test if tree nodes allocated during its body were not returned
/// to the allocator by the time the body finished.
class LeakCheckTest : public ::testing::Test {
protected:
  void SetUp() override {
    LiveObjectsBefore = alloc_stats::live_object_count();
    LiveBytesBefore = alloc_stats::live_byte_count();
  }
  void TearDown() override {
    EXPECT_EQ(alloc_stats::live_object_count(), LiveObjectsBefore)
        << "tree nodes leaked during this test";
    EXPECT_EQ(alloc_stats::live_byte_count(), LiveBytesBefore)
        << "tree node bytes leaked during this test";
  }

  int64_t LiveObjectsBefore = 0;
  int64_t LiveBytesBefore = 0;
};

/// Typed-suite variant of LeakCheckTest (TYPED_TEST_SUITE needs a class
/// template).
template <class T> class TypedLeakCheckTest : public LeakCheckTest {};

} // namespace test
} // namespace cpam

#endif // CPAM_TESTS_TEST_COMMON_H
