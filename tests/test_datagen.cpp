//===- test_datagen.cpp - Synthetic dataset generators ----------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include <map>
#include <set>

#include "gtest/gtest.h"

#include "src/util/datagen.h"
#include "src/util/textgen.h"

using namespace cpam;

namespace {

TEST(Rmat, DirectedEdgesInRange) {
  auto E = rmat_edges(10, 5000);
  ASSERT_EQ(E.size(), 5000u);
  for (auto &[U, V] : E) {
    ASSERT_LT(U, 1u << 10);
    ASSERT_LT(V, 1u << 10);
  }
  // Deterministic in the seed.
  auto E2 = rmat_edges(10, 5000);
  EXPECT_EQ(E, E2);
  RmatParams P;
  P.Seed = 77;
  EXPECT_NE(rmat_edges(10, 5000, P), E);
}

TEST(Rmat, SymmetricGraphProperties) {
  auto E = rmat_graph(10, 4000);
  std::set<edge_pair> S(E.begin(), E.end());
  EXPECT_EQ(S.size(), E.size()) << "duplicates survived";
  for (auto &[U, V] : E) {
    EXPECT_NE(U, V) << "self loop survived";
    EXPECT_TRUE(S.count({V, U})) << "not symmetric";
  }
  EXPECT_TRUE(std::is_sorted(E.begin(), E.end()));
}

TEST(Rmat, PowerLawSkew) {
  // rMAT with a=0.5 concentrates edges: the max degree should far exceed
  // the average.
  auto E = rmat_graph(12, 40000);
  std::map<vertex_id, size_t> Deg;
  for (auto &[U, V] : E)
    Deg[U]++;
  size_t MaxDeg = 0;
  for (auto &[U, D] : Deg)
    MaxDeg = std::max(MaxDeg, D);
  double Avg = double(E.size()) / Deg.size();
  // After symmetrization + dedup the tail flattens somewhat; a uniform
  // graph at this density would have max/avg < 2.
  EXPECT_GT(MaxDeg, Avg * 4);
}

TEST(Mesh, GridStructure) {
  auto E = mesh_graph(10);
  // 10x10 grid: 2 * (2 * 10 * 9) directed edges.
  EXPECT_EQ(E.size(), 360u);
  std::set<edge_pair> S(E.begin(), E.end());
  for (auto &[U, V] : E)
    EXPECT_TRUE(S.count({V, U}));
  // Corner vertex 0 has exactly 2 neighbors.
  EXPECT_EQ(std::count_if(E.begin(), E.end(),
                          [](const edge_pair &P) { return P.first == 0; }),
            2);
}

TEST(Intervals, WithinBounds) {
  auto Ivs = random_intervals(1000, 100000, 50, 3);
  for (auto &Iv : Ivs) {
    EXPECT_LE(Iv.Left, Iv.Right);
    EXPECT_LE(Iv.Right - Iv.Left, 50u);
    EXPECT_LT(Iv.Right, 100000u);
  }
}

TEST(Corpus, ZipfSkewAndCoverage) {
  Corpus C = generate_corpus(100000, 1000, 100, 1.0, 5);
  EXPECT_EQ(C.Tokens.size(), 100000u);
  EXPECT_EQ(C.num_docs(), 100u);
  EXPECT_EQ(C.DocOffsets.front(), 0u);
  EXPECT_EQ(C.DocOffsets.back(), C.Tokens.size());
  std::map<uint32_t, size_t> Freq;
  for (uint32_t W : C.Tokens) {
    ASSERT_LT(W, 1000u);
    Freq[W]++;
  }
  // Zipf: the most frequent word appears far more than average.
  size_t MaxF = 0;
  for (auto &[W, F] : Freq)
    MaxF = std::max(MaxF, F);
  EXPECT_GT(MaxF, 100000u / 1000 * 20);
}

TEST(Corpus, WordStringsAreUniqueAndStable) {
  std::set<std::string> Seen;
  for (uint32_t I = 0; I < 10000; ++I)
    ASSERT_TRUE(Seen.insert(word_string(I)).second) << I;
  EXPECT_EQ(word_string(0), "a");
  EXPECT_EQ(word_string(25), "z");
  EXPECT_EQ(word_string(26), "aa");
}

} // namespace
