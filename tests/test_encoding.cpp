//===- test_encoding.cpp - varint and block encoder tests -------------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include <string>

#include "gtest/gtest.h"

#include "src/core/entry.h"
#include "src/encoding/diff_encoder.h"
#include "src/encoding/gamma_encoder.h"
#include "src/encoding/raw_encoder.h"
#include "src/encoding/varint.h"
#include "src/parallel/random.h"

using namespace cpam;

namespace {

TEST(Varint, RoundTripBoundaries) {
  std::vector<uint64_t> Values = {0,       1,       127,        128,
                                  16383,   16384,   2097151,    2097152,
                                  UINT32_MAX, UINT64_MAX, UINT64_MAX - 1};
  for (uint64_t V : Values) {
    uint8_t Buf[10];
    uint8_t *End = varint_encode(V, Buf);
    EXPECT_EQ(static_cast<size_t>(End - Buf), varint_size(V));
    uint64_t Out;
    const uint8_t *Read = varint_decode(Buf, Out);
    EXPECT_EQ(Out, V);
    EXPECT_EQ(Read, End);
  }
}

TEST(Varint, SizeIsMinimal) {
  EXPECT_EQ(varint_size(0), 1u);
  EXPECT_EQ(varint_size(127), 1u);
  EXPECT_EQ(varint_size(128), 2u);
  EXPECT_EQ(varint_size(16383), 2u);
  EXPECT_EQ(varint_size(16384), 3u);
  EXPECT_EQ(varint_size(UINT64_MAX), 10u);
}

TEST(Varint, RandomRoundTrip) {
  Rng R(1);
  uint8_t Buf[10];
  for (int I = 0; I < 10000; ++I) {
    // Mix magnitudes so every byte-length is exercised.
    uint64_t V = R.ith(I) >> (R.ith(I + 50000) % 64);
    varint_encode(V, Buf);
    uint64_t Out;
    varint_decode(Buf, Out);
    ASSERT_EQ(Out, V);
  }
}

TEST(ZigZag, RoundTrip) {
  for (int64_t V : {0l, 1l, -1l, 63l, -64l, INT64_MAX, INT64_MIN})
    EXPECT_EQ(zigzag_decode(zigzag_encode(V)), V);
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
}

template <class Enc, class EntryT>
void roundTrip(const std::vector<typename EntryT::entry_t> &Entries) {
  using entry_t = typename EntryT::entry_t;
  size_t Bytes = Enc::encoded_size(Entries.data(), Entries.size());
  std::vector<uint8_t> Buf(Bytes);
  std::vector<entry_t> Copy = Entries;
  Enc::encode(Copy.data(), Copy.size(), Buf.data());
  // decode
  std::vector<entry_t> Out(Entries.size());
  Enc::destroy(Buf.data(), 0); // No-op smoke.
  std::vector<uint8_t> Buf2 = Buf;
  Enc::decode(Buf2.data(), Entries.size(),
              reinterpret_cast<entry_t *>(Out.data()));
  EXPECT_EQ(Out, Entries);
  // for_each_while visits in order
  size_t I = 0;
  Enc::for_each_while(Buf.data(), Entries.size(), [&](const entry_t &E) {
    EXPECT_EQ(E, Entries[I]) << "index " << I;
    ++I;
    return true;
  });
  EXPECT_EQ(I, Entries.size());
  // early exit stops
  I = 0;
  bool Finished = Enc::for_each_while(Buf.data(), Entries.size(),
                                      [&](const entry_t &) {
                                        return ++I < 3;
                                      });
  if (Entries.size() >= 3) {
    EXPECT_FALSE(Finished);
    EXPECT_EQ(I, 3u);
  }
}

TEST(DiffEncoder, SetRoundTrip) {
  using E = set_entry<uint64_t>;
  std::vector<uint64_t> Keys = {5};
  roundTrip<diff_encoder<E>, E>(Keys);
  Keys = {0, 1, 2, 3, 1000, 1000000, uint64_t(1) << 40};
  roundTrip<diff_encoder<E>, E>(Keys);
  // Dense keys compress to ~1 byte per key after the first.
  std::vector<uint64_t> Dense(1000);
  for (size_t I = 0; I < Dense.size(); ++I)
    Dense[I] = 10000 + I * 3;
  roundTrip<diff_encoder<E>, E>(Dense);
  size_t Bytes = diff_encoder<E>::encoded_size(Dense.data(), Dense.size());
  EXPECT_LT(Bytes, Dense.size() + 8);
}

TEST(DiffEncoder, MapRoundTripRawValues) {
  using E = map_entry<uint32_t, uint32_t>;
  std::vector<std::pair<uint32_t, uint32_t>> Entries;
  Rng R(7);
  uint32_t K = 0;
  for (int I = 0; I < 500; ++I) {
    K += 1 + R.ith(I, 100);
    Entries.push_back({K, static_cast<uint32_t>(R.ith(I + 900))});
  }
  roundTrip<diff_encoder<E>, E>(Entries);
  // Values raw: 4 bytes each, keys ~1 byte.
  size_t Bytes = diff_encoder<E>::encoded_size(Entries.data(),
                                               Entries.size());
  EXPECT_LT(Bytes, Entries.size() * 6 + 8);
  EXPECT_GE(Bytes, Entries.size() * 5);
}

TEST(DiffValEncoder, ByteCodedValuesSmaller) {
  using E = map_entry<uint32_t, uint32_t>;
  std::vector<std::pair<uint32_t, uint32_t>> Entries;
  for (uint32_t I = 0; I < 500; ++I)
    Entries.push_back({10 * I, I % 50}); // Small values.
  roundTrip<diff_val_encoder<E>, E>(Entries);
  size_t Raw = diff_encoder<E>::encoded_size(Entries.data(), Entries.size());
  size_t Coded =
      diff_val_encoder<E>::encoded_size(Entries.data(), Entries.size());
  EXPECT_LT(Coded, Raw) << "byte-coded small values should shrink";
  EXPECT_LT(Coded, Entries.size() * 3);
}

TEST(RawEncoder, TrivialType) {
  using E = set_entry<uint64_t>;
  std::vector<uint64_t> Keys = {9, 1, 4, 4, 0}; // Raw keeps any order.
  roundTrip<raw_encoder<E>, E>(Keys);
  EXPECT_EQ(raw_encoder<E>::encoded_size(Keys.data(), Keys.size()),
            Keys.size() * 8);
}

//===----------------------------------------------------------------------===
// Edge-case regressions: empty block, single element, max-width varints.
// Flat nodes never hold zero entries, but the encoder interface must still
// tolerate N == 0 with null/empty buffers (std::vector<uint8_t>{}.data()
// may be null), and the widest possible keys and deltas must round-trip.
//===----------------------------------------------------------------------===

template <class Enc, class EntryT> void emptyBlockIsWellBehaved() {
  using entry_t = typename EntryT::entry_t;
  EXPECT_EQ(Enc::encoded_size(nullptr, 0), 0u);
  std::vector<entry_t> NoEntries;
  std::vector<uint8_t> NoBytes;
  Enc::encode(NoEntries.data(), 0, NoBytes.data());
  Enc::decode(NoBytes.data(), 0, NoEntries.data());
  Enc::decode_move(NoBytes.data(), 0, NoEntries.data());
  size_t Visited = 0;
  EXPECT_TRUE(Enc::for_each_while(NoBytes.data(), 0, [&](const entry_t &) {
    ++Visited;
    return true;
  }));
  EXPECT_EQ(Visited, 0u);
  Enc::destroy(NoBytes.data(), 0);
}

TEST(EncoderEdgeCases, EmptyBlock) {
  using SetE = set_entry<uint64_t>;
  using MapE = map_entry<uint32_t, uint32_t>;
  emptyBlockIsWellBehaved<raw_encoder<SetE>, SetE>();
  emptyBlockIsWellBehaved<diff_encoder<SetE>, SetE>();
  emptyBlockIsWellBehaved<diff_encoder<MapE>, MapE>();
  emptyBlockIsWellBehaved<diff_val_encoder<MapE>, MapE>();
  emptyBlockIsWellBehaved<gamma_encoder<SetE>, SetE>();
}

TEST(EncoderEdgeCases, SingleElement) {
  using SetE = set_entry<uint64_t>;
  using MapE = map_entry<uint32_t, uint32_t>;
  for (uint64_t K : {uint64_t(0), uint64_t(1), uint64_t(127), uint64_t(128),
                     uint64_t(UINT64_MAX)}) {
    roundTrip<raw_encoder<SetE>, SetE>({K});
    roundTrip<diff_encoder<SetE>, SetE>({K});
    roundTrip<gamma_encoder<SetE>, SetE>({K});
  }
  roundTrip<diff_encoder<MapE>, MapE>({{UINT32_MAX, UINT32_MAX}});
  roundTrip<diff_val_encoder<MapE>, MapE>({{UINT32_MAX, UINT32_MAX}});
  // A singleton block stores exactly varint(key) for diff and gamma.
  uint64_t Max = UINT64_MAX;
  EXPECT_EQ(diff_encoder<SetE>::encoded_size(&Max, 1), varint_size(Max));
  EXPECT_EQ(gamma_encoder<SetE>::encoded_size(&Max, 1), varint_size(Max));
}

TEST(EncoderEdgeCases, MaxWidthVarint) {
  // UINT64_MAX needs the full 10 bytes: nine 0xff continuation bytes and a
  // final 0x01.
  uint8_t Buf[10];
  uint8_t *End = varint_encode(UINT64_MAX, Buf);
  ASSERT_EQ(End - Buf, 10);
  for (int I = 0; I < 9; ++I)
    EXPECT_EQ(Buf[I], 0xff) << "byte " << I;
  EXPECT_EQ(Buf[9], 0x01);
  uint64_t Out;
  const uint8_t *Read = varint_decode(Buf, Out);
  EXPECT_EQ(Out, UINT64_MAX);
  EXPECT_EQ(Read, Buf + 10);
  // One below the 9/10-byte boundary: 2^63 - 1 fits in 9 bytes.
  EXPECT_EQ(varint_size((uint64_t(1) << 63) - 1), 9u);
  EXPECT_EQ(varint_size(uint64_t(1) << 63), 10u);
}

TEST(EncoderEdgeCases, MaxWidthDeltas) {
  using SetE = set_entry<uint64_t>;
  // The widest possible delta: {0, UINT64_MAX}. Byte codes spend 10 bytes
  // on it; gamma spends 127 bits. Both must round-trip exactly.
  std::vector<uint64_t> Extremes = {0, UINT64_MAX};
  roundTrip<diff_encoder<SetE>, SetE>(Extremes);
  roundTrip<gamma_encoder<SetE>, SetE>(Extremes);
  // Near-maximal first key followed by a delta of exactly 1.
  roundTrip<diff_encoder<SetE>, SetE>({UINT64_MAX - 1, UINT64_MAX});
  roundTrip<gamma_encoder<SetE>, SetE>({UINT64_MAX - 1, UINT64_MAX});
  // High bit set in every delta: keys 2^63, 2^63 + 2^62, ...
  std::vector<uint64_t> Wide = {uint64_t(1) << 63,
                                (uint64_t(1) << 63) | (uint64_t(1) << 62),
                                UINT64_MAX - 2};
  roundTrip<diff_encoder<SetE>, SetE>(Wide);
  roundTrip<gamma_encoder<SetE>, SetE>(Wide);
}

TEST(RawEncoder, NonTrivialType) {
  using E = set_entry<std::string>;
  std::vector<std::string> Keys = {"alpha", "a string long enough to heap-allocate",
                                   "", "zed"};
  size_t Bytes = raw_encoder<E>::encoded_size(Keys.data(), Keys.size());
  std::vector<uint8_t> Buf(Bytes);
  std::vector<std::string> Copy = Keys;
  raw_encoder<E>::encode(Copy.data(), Copy.size(), Buf.data());
  // Visit, then destroy the encoded block's owned strings.
  size_t I = 0;
  raw_encoder<E>::for_each_while(Buf.data(), Keys.size(),
                                 [&](const std::string &S) {
                                   EXPECT_EQ(S, Keys[I++]);
                                   return true;
                                 });
  // decode_move extracts into raw storage; the block is then dead (no
  // destroy call needed for the moved-out entries).
  alignas(std::string) unsigned char Storage[8 * sizeof(std::string)];
  std::string *Out = reinterpret_cast<std::string *>(Storage);
  raw_encoder<E>::decode_move(Buf.data(), Keys.size(), Out);
  for (size_t J = 0; J < Keys.size(); ++J) {
    EXPECT_EQ(Out[J], Keys[J]);
    Out[J].~basic_string();
  }
}

} // namespace
