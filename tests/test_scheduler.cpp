//===- test_scheduler.cpp - Chase-Lev deque and runtime tests --------------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The work-stealing runtime's own suite: the Chase-Lev deque in isolation
/// (owner LIFO semantics, grow-on-overflow, and a one-owner/many-thieves
/// stress test proving every element is claimed exactly once), then the
/// scheduler built on it (nested parDo recursion depth, foreign-thread
/// degradation, park/unpark churn, telemetry). Registered with CTest four
/// ways: default, 16-worker oversubscribed, and both again with
/// CPAM_LOCKFREE_SCHED=0 so the legacy mutex path stays covered — all under
/// the tier1 label, so the ASan leg runs every variant.
///
//===----------------------------------------------------------------------===//

#include <atomic>
#include <cstdlib>
#include <functional>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "src/parallel/chase_lev.h"
#include "src/parallel/primitives.h"
#include "src/parallel/scheduler.h"
#include "tests/test_common.h"

using namespace cpam;
using cl_deque = par::chase_lev_deque<int64_t>;

//===----------------------------------------------------------------------===//
// Chase-Lev deque in isolation.
//===----------------------------------------------------------------------===//

TEST(ChaseLev, OwnerPushPopIsLifo) {
  cl_deque D;
  for (int64_t I = 0; I < 100; ++I)
    D.push(I);
  EXPECT_EQ(D.size_approx(), 100u);
  for (int64_t I = 99; I >= 0; --I) {
    int64_t V = -1;
    ASSERT_TRUE(D.pop(V));
    EXPECT_EQ(V, I);
  }
  int64_t V;
  EXPECT_FALSE(D.pop(V));
  EXPECT_TRUE(D.empty_approx());
}

TEST(ChaseLev, StealTakesOldest) {
  cl_deque D;
  for (int64_t I = 0; I < 10; ++I)
    D.push(I);
  int64_t V = -1;
  ASSERT_EQ(D.steal(V), cl_deque::steal_t::Ok);
  EXPECT_EQ(V, 0); // Oldest end.
  ASSERT_TRUE(D.pop(V));
  EXPECT_EQ(V, 9); // Newest end.
}

TEST(ChaseLev, GrowOnOverflowPreservesContents) {
  cl_deque D(/*InitCap=*/8);
  size_t Cap0 = D.capacity();
  const int64_t N = 5000;
  for (int64_t I = 0; I < N; ++I)
    D.push(I);
  EXPECT_GT(D.capacity(), Cap0);
  EXPECT_GE(D.capacity(), static_cast<size_t>(N));
  // Mixed draining: alternate pops (newest) and steals (oldest) and check
  // both frontiers stay coherent across the ring swaps.
  int64_t Lo = 0, Hi = N - 1;
  while (Lo <= Hi) {
    int64_t V = -1;
    if ((Lo + Hi) % 2) {
      ASSERT_TRUE(D.pop(V));
      EXPECT_EQ(V, Hi--);
    } else {
      ASSERT_EQ(D.steal(V), cl_deque::steal_t::Ok);
      EXPECT_EQ(V, Lo++);
    }
  }
  int64_t V;
  EXPECT_FALSE(D.pop(V));
  EXPECT_EQ(D.steal(V), cl_deque::steal_t::Empty);
}

TEST(ChaseLev, InterleavedPushPopNeverLoses) {
  cl_deque D(8);
  int64_t Next = 0;
  std::vector<bool> Seen(3000, false);
  Rng R(test::test_seed());
  // Random push/pop interleaving, owner only: every pushed value must come
  // back exactly once, in stack order.
  std::vector<int64_t> Stack;
  for (int Round = 0; Round < 3000; ++Round) {
    if (Next < 3000 && (Stack.empty() || R.next(2))) {
      D.push(Next);
      Stack.push_back(Next++);
    } else {
      int64_t V = -1;
      ASSERT_TRUE(D.pop(V));
      ASSERT_EQ(V, Stack.back());
      Stack.pop_back();
      ASSERT_FALSE(Seen[static_cast<size_t>(V)]);
      Seen[static_cast<size_t>(V)] = true;
    }
  }
}

/// The core safety property: one owner pushing/popping, many thieves
/// stealing, every element claimed exactly once — across ring growth.
TEST(ChaseLev, StressOneOwnerManyThieves) {
  const int64_t N = 200000;
  const int NumThieves = 4;
  cl_deque D(/*InitCap=*/8); // Small ring: force many grow cycles.
  std::vector<std::atomic<int>> Claimed(static_cast<size_t>(N));
  std::atomic<bool> OwnerDone{false};
  std::atomic<int64_t> TotalClaims{0};

  auto Claim = [&](int64_t V) {
    ASSERT_GE(V, 0);
    ASSERT_LT(V, N);
    Claimed[static_cast<size_t>(V)].fetch_add(1, std::memory_order_relaxed);
    TotalClaims.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> Thieves;
  for (int T = 0; T < NumThieves; ++T) {
    Thieves.emplace_back([&] {
      while (true) {
        int64_t V = -1;
        switch (D.steal(V)) {
        case cl_deque::steal_t::Ok:
          Claim(V);
          break;
        case cl_deque::steal_t::Lost:
          break; // Contention: retry immediately.
        case cl_deque::steal_t::Empty:
          if (OwnerDone.load(std::memory_order_acquire))
            return;
          std::this_thread::yield();
          break;
        }
      }
    });
  }

  // Owner: bursts of pushes with interspersed pops (the fork-join shape).
  Rng R(test::test_seed());
  int64_t Next = 0;
  while (Next < N) {
    int64_t Burst = static_cast<int64_t>(1 + R.next(64));
    for (int64_t I = 0; I < Burst && Next < N; ++I)
      D.push(Next++);
    int64_t Pops = static_cast<int64_t>(R.next(32));
    for (int64_t I = 0; I < Pops; ++I) {
      int64_t V = -1;
      if (!D.pop(V))
        break;
      Claim(V);
    }
  }
  // Drain whatever the thieves have not taken.
  int64_t V = -1;
  while (D.pop(V))
    Claim(V);
  OwnerDone.store(true, std::memory_order_release);
  for (std::thread &T : Thieves)
    T.join();

  EXPECT_EQ(TotalClaims.load(), N);
  for (int64_t I = 0; I < N; ++I)
    ASSERT_EQ(Claimed[static_cast<size_t>(I)].load(), 1) << "element " << I;
}

//===----------------------------------------------------------------------===//
// Scheduler on top.
//===----------------------------------------------------------------------===//

TEST(SchedulerRuntime, ModeMatchesEnvironment) {
  bool Expected = CPAM_LOCKFREE_SCHED != 0;
  if (const char *Env = std::getenv("CPAM_LOCKFREE_SCHED"))
    Expected = std::atoi(Env) != 0;
  EXPECT_EQ(par::lockfree_sched(), Expected);
}

TEST(SchedulerRuntime, NestedParDoRecursionDepth) {
  // A linear chain of nested parDos: every frame's task object lives on the
  // forking thread's stack, so this exercises deep reclaim/help interleaving
  // without exhausting memory.
  const int Depth = 2000; // Deep, but stack-safe under ASan's fat frames.
  std::atomic<long> Sum{0};
  std::function<void(int)> Rec = [&](int D) {
    if (D == 0)
      return;
    par::par_do([&] { Rec(D - 1); },
                [&] { Sum.fetch_add(1, std::memory_order_relaxed); });
  };
  Rec(Depth);
  EXPECT_EQ(Sum.load(), Depth);
}

TEST(SchedulerRuntime, BinaryRecursionClaimsEveryLeafOnce) {
  const size_t N = 1 << 18;
  std::vector<std::atomic<int>> Hits(N);
  std::function<void(size_t, size_t)> Rec = [&](size_t Lo, size_t Hi) {
    if (Hi - Lo == 1) {
      Hits[Lo].fetch_add(1, std::memory_order_relaxed);
      return;
    }
    size_t Mid = Lo + (Hi - Lo) / 2;
    // Grain 1: maximum fork pressure, every internal node is a push.
    par::par_do([&] { Rec(Lo, Mid); }, [&] { Rec(Mid, Hi); });
  };
  Rec(0, N);
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(Hits[I].load(), 1) << "leaf " << I;
}

TEST(SchedulerRuntime, ForeignThreadsDegradeAndGetSlots) {
  std::atomic<long> Sum{0};
  std::atomic<int> BadIds{0};
  std::vector<std::thread> Foreign;
  for (int T = 0; T < 4; ++T) {
    Foreign.emplace_back([&] {
      if (par::worker_id() != -1)
        BadIds.fetch_add(1);
      if (par::thread_slot() < par::Scheduler::kForeignSlotBase)
        BadIds.fetch_add(1);
      // parDo off-pool must degrade to sequential execution and still nest.
      par::par_do(
          [&] {
            par::parallel_for(0, 1000, [&](size_t I) {
              Sum.fetch_add(static_cast<long>(I), std::memory_order_relaxed);
            });
          },
          [&] { Sum.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  for (std::thread &T : Foreign)
    T.join();
  EXPECT_EQ(BadIds.load(), 0);
  EXPECT_EQ(Sum.load(), 4 * (999L * 1000 / 2 + 1));
}

TEST(SchedulerRuntime, StatsCountForksAndReclaims) {
  par::scheduler_stats_reset();
  const size_t N = 1 << 16;
  std::vector<std::atomic<int>> Hits(N);
  par::parallel_for(
      0, N, [&](size_t I) { Hits[I].fetch_add(1, std::memory_order_relaxed); },
      /*Gran=*/64);
  par::SchedulerStats S = par::scheduler_stats();
  if (par::num_workers() == 1) {
    // Single-worker pools bypass the deque entirely (parDo shortcut).
    EXPECT_EQ(S.Forks, 0u);
  } else {
    // N/64 chunks require (N/64 - 1) forks, whatever the tree shape.
    EXPECT_EQ(S.Forks, N / 64 - 1);
  }
  // Every fork is either reclaimed inline by its forker or stolen and
  // joined; nothing is lost.
  EXPECT_EQ(S.Forks, S.InlineReclaims + S.Steals);
  for (size_t I = 0; I < N; ++I)
    ASSERT_EQ(Hits[I].load(), 1);
}

TEST(SchedulerRuntime, ParkUnparkChurn) {
  par::scheduler_stats_reset();
  // Alternate short parallel bursts with idle gaps long enough for workers
  // to run through the spin/yield escalation and park, so every round
  // exercises the wake-on-push protocol from a cold (parked) pool.
  const int Rounds = 30;
  for (int R = 0; R < Rounds; ++R) {
    std::atomic<long> Sum{0};
    par::parallel_for(
        0, 4096,
        [&](size_t I) {
          Sum.fetch_add(static_cast<long>(I), std::memory_order_relaxed);
        },
        /*Gran=*/16);
    ASSERT_EQ(Sum.load(), 4095L * 4096 / 2) << "round " << R;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  par::SchedulerStats S = par::scheduler_stats();
  if (par::num_workers() > 1) {
    EXPECT_GT(S.Forks, 0u);
    // Workers must actually have parked during the gaps (the spin phase is
    // a few hundred microseconds; the gaps are 5 ms).
    EXPECT_GT(S.Parks, 0u);
  } else {
    EXPECT_EQ(S.Parks, 0u);
  }
}

TEST(SchedulerRuntime, JoinerParksOnLongStolenBranch) {
  // A forker whose stolen branch outlives its own branch must end up on the
  // join condition variable (JoinParks telemetry), not in a sleep-poll loop:
  // the completion signal, not a timer, is what wakes it. Stealing is
  // timing-dependent (the pushed branch may be reclaimed inline before any
  // thief gets scheduled), so retry until a steal actually happens.
  if (par::num_workers() < 2)
    GTEST_SKIP() << "needs a multi-worker pool";
  bool Parked = false;
  for (int Attempt = 0; Attempt < 40 && !Parked; ++Attempt) {
    par::scheduler_stats_reset();
    par::par_do(
        [&] {
          // Linger long enough for a thief to claim the pushed branch.
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        },
        [&] {
          // Hold the joiner far past its spin/yield probe budget.
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        });
    Parked = par::scheduler_stats().JoinParks > 0;
  }
  EXPECT_TRUE(Parked) << "joiner never parked on a long stolen branch";
}

TEST(SchedulerRuntime, MixedNestedWorkMatchesSequential) {
  // Nested parallel_for + par_do + tree recursion, compared against the
  // same computation with forking disabled.
  auto Work = [](std::atomic<uint64_t> &Acc) {
    par::par_do(
        [&] {
          par::parallel_for(0, 50000, [&](size_t I) {
            Acc.fetch_add(hash64(I) & 0xff, std::memory_order_relaxed);
          });
        },
        [&] {
          std::function<uint64_t(size_t, size_t)> Rec = [&](size_t Lo,
                                                            size_t Hi) {
            if (Hi - Lo <= 128) {
              uint64_t H = 0;
              for (size_t I = Lo; I < Hi; ++I)
                H += hash64(I) >> 56;
              return H;
            }
            size_t Mid = Lo + (Hi - Lo) / 2;
            uint64_t A = 0, B = 0;
            par::par_do([&] { A = Rec(Lo, Mid); }, [&] { B = Rec(Mid, Hi); });
            return A + B;
          };
          Acc.fetch_add(Rec(0, 100000), std::memory_order_relaxed);
        });
  };
  std::atomic<uint64_t> Par{0}, Seq{0};
  Work(Par);
  par::set_sequential(true);
  Work(Seq);
  par::set_sequential(false);
  EXPECT_EQ(Par.load(), Seq.load());
}
