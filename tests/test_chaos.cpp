//===- test_chaos.cpp - Fault-injection framework and chaos episodes -------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The chaos suite: semantics of the deterministic failpoint registry
/// (src/util/failpoint.h) and fault-injection episodes driving every armed
/// failure path — allocation throws mid-merge (alloc.node, leaf.seal),
/// fork refusal degrading to inline execution (sched.fork), and the
/// serving failure paths (queue-full rejection, wedged applies, stalled
/// readers tripping the watchdog). Episodes assert the exception contract
/// end to end: a failed op leaves its operands untouched, leaks nothing
/// (LeakCheckTest fixtures), and the structure still satisfies the
/// Def. 4.1 invariants. Runs in the ASan `chaos` CI leg with latency
/// failpoints armed process-wide via CPAM_FAILPOINTS, and in the TSan leg.
///
//===----------------------------------------------------------------------===//

#include <atomic>
#include <chrono>
#include <new>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

#include "src/api/pam_set.h"
#include "src/encoding/diff_encoder.h"
#include "src/encoding/gamma_encoder.h"
#include "src/serving/version_chain.h"
#include "src/util/failpoint.h"
#include "tests/test_common.h"

using namespace cpam;

namespace {

//===----------------------------------------------------------------------===//
// Failpoint registry semantics.
//===----------------------------------------------------------------------===//

TEST(Failpoint, DisarmedPointNeverFiresOrCounts) {
  // Arm an unrelated point so the global armed-count fast path is open and
  // the named lookup actually runs.
  fail::scoped_arm Other("chaos.other", "always");
  for (int I = 0; I < 8; ++I)
    EXPECT_FALSE(CPAM_FAILPOINT_ACTIVE("chaos.disarmed"));
  EXPECT_EQ(fail::hits("chaos.disarmed"), 0u)
      << "an off point must not count hits";
  EXPECT_EQ(fail::fires("chaos.disarmed"), 0u);
}

TEST(Failpoint, AlwaysFiresEveryHit) {
  fail::scoped_arm Arm("chaos.always", "always");
  for (int I = 0; I < 5; ++I)
    EXPECT_TRUE(CPAM_FAILPOINT_ACTIVE("chaos.always"));
  EXPECT_EQ(fail::hits("chaos.always"), 5u);
  EXPECT_EQ(fail::fires("chaos.always"), 5u);
}

TEST(Failpoint, NthFiresExactlyOnce) {
  fail::scoped_arm Arm("chaos.nth", "nth=3");
  std::vector<bool> Fired;
  for (int I = 0; I < 6; ++I)
    Fired.push_back(CPAM_FAILPOINT_ACTIVE("chaos.nth"));
  EXPECT_EQ(Fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
  EXPECT_EQ(fail::fires("chaos.nth"), 1u);
}

TEST(Failpoint, EveryNthFiresPeriodically) {
  fail::scoped_arm Arm("chaos.every", "every=2");
  std::vector<bool> Fired;
  for (int I = 0; I < 6; ++I)
    Fired.push_back(CPAM_FAILPOINT_ACTIVE("chaos.every"));
  EXPECT_EQ(Fired, (std::vector<bool>{false, true, false, true, false,
                                      true}));
  EXPECT_EQ(fail::fires("chaos.every"), 3u);
}

TEST(Failpoint, ProbStreamReplaysExactlyFromSeed) {
  // The p= decision is a pure function of (seed, hit index): re-arming the
  // same spec replays the identical fire pattern. scoped_arm zeroes the
  // hit counter on exit, so both passes start from hit 1.
  std::vector<bool> First, Second;
  {
    fail::scoped_arm Arm("chaos.prob", "p=4/seed=42");
    for (int I = 0; I < 256; ++I)
      First.push_back(CPAM_FAILPOINT_ACTIVE("chaos.prob"));
  }
  {
    fail::scoped_arm Arm("chaos.prob", "p=4/seed=42");
    for (int I = 0; I < 256; ++I)
      Second.push_back(CPAM_FAILPOINT_ACTIVE("chaos.prob"));
  }
  EXPECT_EQ(First, Second) << "p= stream is not a pure function of the spec";
  size_t Fires = 0;
  for (bool B : First)
    Fires += B;
  // ~64 expected at 1-in-4; just pin that the stream is neither empty nor
  // saturated.
  EXPECT_GT(Fires, 16u);
  EXPECT_LT(Fires, 128u);

  // A different seed gives a different stream.
  std::vector<bool> Reseeded;
  {
    fail::scoped_arm Arm("chaos.prob", "p=4/seed=43");
    for (int I = 0; I < 256; ++I)
      Reseeded.push_back(CPAM_FAILPOINT_ACTIVE("chaos.prob"));
  }
  EXPECT_NE(First, Reseeded);
}

TEST(Failpoint, ArgClauseCarriesPayload) {
  EXPECT_EQ(fail::arg("chaos.arg", 7), 7u) << "disarmed point: default";
  fail::scoped_arm Arm("chaos.arg", "always/arg=123");
  EXPECT_EQ(fail::arg("chaos.arg", 7), 123u);
}

TEST(Failpoint, MalformedSpecsAreRejected) {
  for (const char *Spec :
       {"", "bogus", "nth=0", "nth=x", "every=0", "p=", "p=0", "seed=x",
        "always=1", "arg=", "always/", "/always"})
    EXPECT_FALSE(fail::arm("chaos.malformed", Spec)) << Spec;
  // The point stayed off through all of that.
  EXPECT_FALSE(CPAM_FAILPOINT_ACTIVE("chaos.malformed"));
}

TEST(Failpoint, ScopedArmDisarmsAndZeroesOnExit) {
  {
    fail::scoped_arm Arm("chaos.scoped", "always");
    EXPECT_TRUE(CPAM_FAILPOINT_ACTIVE("chaos.scoped"));
    EXPECT_EQ(fail::hits("chaos.scoped"), 1u);
  }
  EXPECT_FALSE(CPAM_FAILPOINT_ACTIVE("chaos.scoped"));
  EXPECT_EQ(fail::hits("chaos.scoped"), 0u) << "counters survive the scope";
  EXPECT_EQ(fail::fires("chaos.scoped"), 0u);
}

//===----------------------------------------------------------------------===//
// Tree chaos: injected failures on the merge/splice hot paths.
//===----------------------------------------------------------------------===//

class ChaosLeakTest : public test::LeakCheckTest {};

template <class SetT>
void checkSet(const SetT &S, const std::set<uint64_t> &O, const char *What) {
  ASSERT_EQ(S.check_invariants(), "") << What;
  ASSERT_EQ(S.size(), O.size()) << What;
  std::vector<uint64_t> Want(O.begin(), O.end());
  ASSERT_EQ(S.to_vector(), Want) << What;
}

std::vector<uint64_t> randomKeys(Rng &R, size_t N, uint64_t Universe) {
  std::vector<uint64_t> Keys(N);
  for (auto &K : Keys)
    K = R.next(Universe);
  return Keys;
}

/// Pins a runtime size_t tuning knob for one scope, restoring on exit
/// (including early returns from fatal test failures).
struct SizeGuard {
  size_t &Ref;
  size_t Old;
  SizeGuard(size_t &R, size_t V) : Ref(R), Old(R) { R = V; }
  ~SizeGuard() { Ref = Old; }
};

/// Chunk-writer chaos: "leaf.seal" throws while a streamed multi-leaf
/// result is mid-write. The failed op must abandon its staged chunks
/// without leaking and leave the operand untouched; survivors must match
/// the oracle. Typed over the diff- and gamma-compressed block layouts —
/// the two byte-coded encoders that stream through seal (raw blocks stage
/// entries and finish via from_array_move, so seal never runs for them).
template <class SetT> void runLeafSealChaos(uint64_t Salt) {
  test::FlagGuard G(SetT::ops::flat_fastpath());
  SetT::ops::flat_fastpath() = true;
  // At B=8 every leaf-pair merge is under the 128-entry streaming
  // break-even and would take the array path; pin the break-even to zero
  // so the chunk writer (the code under test) runs for every base case.
  SizeGuard MG(SetT::ops::flat_stream_min_entries(), 0);
  fail::scoped_arm Arm("leaf.seal", "every=50");
  Rng R = test::seeded_rng(Salt);
  constexpr uint64_t kUniverse = 200000;
  SetT S;
  std::set<uint64_t> O;
  uint64_t Survived = 0, Died = 0;
  for (int Step = 0; Step < 24; ++Step) {
    // Sizes spread from a handful of seals (usually survives) to hundreds
    // (usually dies): both outcomes occur in every run.
    auto Keys = randomKeys(R, 50 + R.next(2000), kUniverse);
    try {
      if (Step % 2) {
        SetT Next = SetT::map_union(S, SetT(Keys));
        S = std::move(Next);
      } else {
        SetT Next = S.multi_insert(Keys);
        S = std::move(Next);
      }
      O.insert(Keys.begin(), Keys.end());
      ++Survived;
      checkSet(S, O, "seal-chaos survivor");
    } catch (const std::bad_alloc &) {
      ++Died;
      checkSet(S, O, "operand after mid-write seal failure");
    }
    if (::testing::Test::HasFatalFailure())
      return;
  }
  EXPECT_GT(fail::fires("leaf.seal"), 0u)
      << "chunked write path never hit the seal failpoint";
  EXPECT_GT(Survived, 0u);
  EXPECT_GT(Died, 0u);
}

TEST_F(ChaosLeakTest, LeafSealChaosDiffBlocks) {
  runLeafSealChaos<pam_set<uint64_t, 8, diff_encoder>>(101);
}

TEST_F(ChaosLeakTest, LeafSealChaosGammaBlocks) {
  runLeafSealChaos<pam_set<uint64_t, 8, gamma_encoder>>(103);
}

/// Fork refusal is not a failure: "sched.fork" firing makes parDo run both
/// branches inline, which must be invisible in the result.
TEST_F(ChaosLeakTest, ForkRefusalDegradesToInlineExecution) {
  fail::scoped_arm Arm("sched.fork", "p=2/seed=9");
  using SetT = pam_set<uint64_t, 128>;
  Rng R = test::seeded_rng(7);
  auto KA = randomKeys(R, 8000, 300000);
  auto KB = randomKeys(R, 6000, 300000);
  SetT A(KA), B(KB);
  SetT U = SetT::map_union(A, B);
  std::set<uint64_t> O(KA.begin(), KA.end());
  O.insert(KB.begin(), KB.end());
  checkSet(U, O, "union under fork refusal");
  EXPECT_GT(fail::hits("sched.fork"), 0u)
      << "parallel union never attempted a fork";
  EXPECT_GT(fail::fires("sched.fork"), 0u);
}

/// Capstone: every tree-layer failpoint armed at once over a mixed op
/// sequence. Any hole in the unwind paths shows up as an oracle mismatch,
/// an invariant break, or a fixture-detected leak.
TEST_F(ChaosLeakTest, CombinedChaosEpisode) {
  fail::scoped_arm A1("alloc.node", "p=300/seed=71");
  fail::scoped_arm A2("leaf.seal", "every=400");
  fail::scoped_arm A3("sched.fork", "p=3/seed=72");
  using SetT = pam_set<uint64_t, 8>;
  test::FlagGuard G(SetT::ops::flat_fastpath());
  SetT::ops::flat_fastpath() = true;
  SizeGuard MG(SetT::ops::flat_stream_min_entries(), 0);
  Rng R = test::seeded_rng(9);
  constexpr uint64_t kUniverse = 100000;
  SetT S;
  std::set<uint64_t> O;
  uint64_t Survived = 0, Died = 0;
  for (int Step = 0; Step < 48; ++Step) {
    auto Keys = randomKeys(R, R.next(1200), kUniverse);
    try {
      switch (Step % 4) {
      case 0: {
        SetT Next = SetT::map_union(S, SetT(Keys));
        S = std::move(Next);
        O.insert(Keys.begin(), Keys.end());
        break;
      }
      case 1: {
        SetT Next = S.multi_insert(Keys);
        S = std::move(Next);
        O.insert(Keys.begin(), Keys.end());
        break;
      }
      case 2: {
        SetT Next = SetT::map_difference(S, SetT(Keys));
        S = std::move(Next);
        for (uint64_t K : Keys)
          O.erase(K);
        break;
      }
      default: {
        SetT Next = S.multi_delete(Keys);
        S = std::move(Next);
        for (uint64_t K : Keys)
          O.erase(K);
        break;
      }
      }
      ++Survived;
      checkSet(S, O, "combined-chaos survivor");
    } catch (const std::bad_alloc &) {
      ++Died;
      checkSet(S, O, "operand after combined-chaos failure");
    }
    if (::testing::Test::HasFatalFailure())
      return;
  }
  EXPECT_GT(Survived, 0u);
  EXPECT_GT(Died, 0u);
  EXPECT_GT(fail::fires("alloc.node") + fail::fires("leaf.seal"), 0u);
}

//===----------------------------------------------------------------------===//
// Serving chaos: the hardened failure paths under injected faults.
//===----------------------------------------------------------------------===//

using u64_set = pam_set<uint64_t>;
using u64_pipeline = serving::ingest_pipeline<u64_set, uint64_t>;

u64_pipeline::apply_fn unionApply() {
  return [](const u64_set &Cur, std::vector<uint64_t> Batch) {
    return u64_set::map_union(Cur, u64_set(Batch));
  };
}

/// "serving.queue_full" forces every submit flavor down its reject path
/// regardless of real queue depth, and Rejected counts each one.
TEST_F(ChaosLeakTest, QueueFullFailpointForcesRejection) {
  {
    serving::version_chain<u64_set> Chain(u64_set{});
    u64_pipeline Pipe(Chain, unionApply());
    {
      fail::scoped_arm Arm("serving.queue_full", "always");
      EXPECT_FALSE(Pipe.submit(1));
      EXPECT_FALSE(Pipe.try_submit(2));
      EXPECT_FALSE(Pipe.submit_for(3, std::chrono::milliseconds(50)));
      auto St = Pipe.stats();
      EXPECT_EQ(St.Rejected, 3u);
      EXPECT_EQ(St.Submitted, 0u);
    }
    // Disarmed: the same calls go through.
    EXPECT_TRUE(Pipe.submit(1));
    Pipe.flush();
    EXPECT_EQ(Chain.acquire().size(), 1u);
    Pipe.stop();
    Chain.reclaim();
  }
}

/// "serving.slow_apply" wedges the writer; an open-loop producer then
/// drives the queue into its overload policy, proving backpressure
/// engages (and releases) under a glacial apply.
TEST_F(ChaosLeakTest, SlowApplyEngagesBackpressure) {
  {
    fail::scoped_arm Arm("serving.slow_apply", "always/arg=50");
    serving::version_chain<u64_set> Chain(u64_set{});
    u64_pipeline::options O;
    O.QueueCapacity = 2;
    O.BatchWindow = 1;
    O.Policy = serving::overload_policy::RejectNewest;
    u64_pipeline Pipe(Chain, unionApply(), O);
    // Far more submits than capacity while each apply dwells 50ms: the
    // queue must fill and rejections must be counted.
    uint64_t Accepted = 0, Refused = 0;
    for (uint64_t I = 0; I < 64; ++I)
      (Pipe.submit(I) ? Accepted : Refused) += 1;
    auto St = Pipe.stats();
    EXPECT_GT(Refused, 0u) << "queue never filled under a wedged writer";
    EXPECT_EQ(St.Rejected, Refused);
    EXPECT_EQ(St.Submitted, Accepted);
    Pipe.flush();
    // Only after the drain is the writer guaranteed to have run (on a
    // one-core box it may not be scheduled until the submit loop ends).
    EXPECT_GT(fail::fires("serving.slow_apply"), 0u);
    EXPECT_EQ(Chain.acquire().size(), Accepted);
    Pipe.stop();
    Chain.reclaim();
  }
}

/// "serving.slow_reader" stretches the pinned window so the stall watchdog
/// sees a live stalled reader; the count drops back to zero once the
/// reader finishes.
TEST_F(ChaosLeakTest, SlowReaderTripsStallWatchdog) {
  {
    serving::version_chain<u64_set> Chain(
        u64_set::from_sorted(std::vector<uint64_t>{0, 1, 2}));
    fail::scoped_arm Arm("serving.slow_reader", "always/arg=200000");
    std::atomic<bool> ReaderDone{false};
    std::thread Reader([&] {
      u64_set S = Chain.acquire(); // Dwells 200ms inside the pin.
      EXPECT_EQ(S.size(), 3u);
      ReaderDone.store(true, std::memory_order_release);
    });
    // Poll with a 1ms threshold until the dwelling pin trips the watchdog.
    bool Tripped = false;
    while (!ReaderDone.load(std::memory_order_acquire)) {
      if (Chain.epochs().stalled_readers(1'000'000) >= 1) {
        Tripped = true;
        break;
      }
      std::this_thread::yield();
    }
    Reader.join();
    EXPECT_TRUE(Tripped) << "a 200ms pin never tripped a 1ms threshold";
    EXPECT_EQ(Chain.epochs().stalled_readers(1'000'000), 0u)
        << "watchdog still reports a stall after the reader unpinned";
    EXPECT_GE(fail::fires("serving.slow_reader"), 1u);
  }
}

} // namespace
