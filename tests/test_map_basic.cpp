//===- test_map_basic.cpp - pam_map point operations vs std::map -----------===//
//
// Part of the CPAM reproduction of PaC-trees (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include <map>

#include "gtest/gtest.h"

#include "src/api/pam_map.h"
#include "src/encoding/diff_encoder.h"
#include "src/parallel/random.h"
#include "tests/test_common.h"

using namespace cpam;

namespace {

/// Typed across block sizes, including the P-tree baseline (B = 0) and the
/// difference-encoded variant. Every test is leak-checked: the fixture
/// snapshots the live node count and fails on unreclaimed nodes.
template <class MapT>
class MapBasicTest : public test::TypedLeakCheckTest<MapT> {};

using MapTypes = ::testing::Types<
    pam_map<uint64_t, uint64_t, 0>,   // P-tree (PAM baseline)
    pam_map<uint64_t, uint64_t, 2>,   // Tiny blocks stress folding
    pam_map<uint64_t, uint64_t, 8>,
    pam_map<uint64_t, uint64_t, 128>, // Paper default
    pam_map<uint64_t, uint64_t, 16, diff_encoder>,
    pam_map<uint64_t, uint64_t, 128, diff_val_encoder>>;
TYPED_TEST_SUITE(MapBasicTest, MapTypes);

int64_t liveObjects() { return alloc_stats::live_object_count(); }

TYPED_TEST(MapBasicTest, EmptyMap) {
  TypeParam M;
  EXPECT_EQ(M.size(), 0u);
  EXPECT_TRUE(M.empty());
  EXPECT_FALSE(M.find(42).has_value());
  EXPECT_EQ(M.check_invariants(), "");
}

TYPED_TEST(MapBasicTest, BuildAndFind) {
  int64_t Before = liveObjects();
  {
    std::vector<std::pair<uint64_t, uint64_t>> Entries;
    for (uint64_t I = 0; I < 1000; ++I)
      Entries.push_back({3 * I, I});
    TypeParam M(Entries);
    EXPECT_EQ(M.size(), 1000u);
    EXPECT_EQ(M.check_invariants(), "");
    for (uint64_t I = 0; I < 1000; ++I) {
      auto V = M.find(3 * I);
      ASSERT_TRUE(V.has_value()) << "key " << 3 * I;
      EXPECT_EQ(*V, I);
      EXPECT_FALSE(M.find(3 * I + 1).has_value());
    }
  }
  EXPECT_EQ(liveObjects(), Before) << "leak: nodes not reclaimed";
}

TYPED_TEST(MapBasicTest, BuildCombinesDuplicates) {
  std::vector<std::pair<uint64_t, uint64_t>> Entries;
  for (uint64_t I = 0; I < 300; ++I)
    Entries.push_back({I % 100, I});
  TypeParam M(Entries, [](uint64_t A, uint64_t B) { return A + B; });
  EXPECT_EQ(M.size(), 100u);
  for (uint64_t K = 0; K < 100; ++K) {
    auto V = M.find(K);
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, K + (K + 100) + (K + 200));
  }
}

TYPED_TEST(MapBasicTest, InsertMatchesStdMap) {
  int64_t Before = liveObjects();
  {
    TypeParam M;
    std::map<uint64_t, uint64_t> Ref;
    Rng R = test::seeded_rng();
    for (int I = 0; I < 3000; ++I) {
      uint64_t K = R.ith(I, 1000);
      M.insert_inplace(K, I);
      Ref[K] = I;
      if (I % 500 == 0) {
        ASSERT_EQ(M.check_invariants(), "") << "after insert " << I;
      }
    }
    ASSERT_EQ(M.size(), Ref.size());
    ASSERT_EQ(M.check_invariants(), "");
    for (auto &[K, V] : Ref) {
      auto Found = M.find(K);
      ASSERT_TRUE(Found.has_value());
      EXPECT_EQ(*Found, V);
    }
  }
  EXPECT_EQ(liveObjects(), Before);
}

TYPED_TEST(MapBasicTest, InsertWithCombine) {
  TypeParam M;
  for (int Round = 0; Round < 5; ++Round)
    for (uint64_t K = 0; K < 200; ++K)
      M.insert_inplace({K, 1}, [](uint64_t A, uint64_t B) { return A + B; });
  EXPECT_EQ(M.size(), 200u);
  for (uint64_t K = 0; K < 200; ++K)
    EXPECT_EQ(*M.find(K), 5u);
}

TYPED_TEST(MapBasicTest, RemoveMatchesStdMap) {
  int64_t Before = liveObjects();
  {
    std::vector<std::pair<uint64_t, uint64_t>> Entries;
    std::map<uint64_t, uint64_t> Ref;
    for (uint64_t I = 0; I < 2000; ++I) {
      Entries.push_back({I, I * I});
      Ref[I] = I * I;
    }
    TypeParam M(Entries);
    Rng R(23);
    for (int I = 0; I < 1500; ++I) {
      uint64_t K = R.ith(I, 2200); // Some keys missing on purpose.
      M.remove_inplace(K);
      Ref.erase(K);
      if (I % 250 == 0) {
        ASSERT_EQ(M.check_invariants(), "") << "after remove " << I;
      }
    }
    ASSERT_EQ(M.size(), Ref.size());
    for (auto &[K, V] : Ref)
      ASSERT_EQ(*M.find(K), V);
    for (uint64_t K = 0; K < 2200; ++K)
      ASSERT_EQ(M.contains(K), Ref.count(K) == 1) << "key " << K;
  }
  EXPECT_EQ(liveObjects(), Before);
}

TYPED_TEST(MapBasicTest, FunctionalInsertPreservesSnapshot) {
  std::vector<std::pair<uint64_t, uint64_t>> Entries;
  for (uint64_t I = 0; I < 500; ++I)
    Entries.push_back({2 * I, I});
  TypeParam Old(Entries);
  TypeParam New = Old.insert(1001, 77);
  // The old snapshot is untouched.
  EXPECT_EQ(Old.size(), 500u);
  EXPECT_FALSE(Old.find(1001).has_value());
  EXPECT_EQ(New.size(), 501u);
  EXPECT_EQ(*New.find(1001), 77u);
  EXPECT_EQ(Old.check_invariants(), "");
  EXPECT_EQ(New.check_invariants(), "");
  // Removal from the new snapshot does not affect the old one either.
  TypeParam Gone = New.remove(0);
  EXPECT_TRUE(Old.contains(0));
  EXPECT_TRUE(New.contains(0));
  EXPECT_FALSE(Gone.contains(0));
}

TYPED_TEST(MapBasicTest, RankSelectNextPrevious) {
  std::vector<std::pair<uint64_t, uint64_t>> Entries;
  for (uint64_t I = 0; I < 1000; ++I)
    Entries.push_back({10 * I, I});
  TypeParam M(Entries);
  for (uint64_t I = 0; I < 1000; I += 7) {
    EXPECT_EQ(M.rank(10 * I), I);
    EXPECT_EQ(M.rank(10 * I + 1), I + 1);
    auto E = M.select(I);
    EXPECT_EQ(E.first, 10 * I);
    auto Nx = M.next(10 * I + 1);
    if (I + 1 < 1000) {
      ASSERT_TRUE(Nx.has_value());
      EXPECT_EQ(Nx->first, 10 * (I + 1));
    } else {
      EXPECT_FALSE(Nx.has_value());
    }
    auto Pv = M.previous(10 * I + 5);
    ASSERT_TRUE(Pv.has_value());
    EXPECT_EQ(Pv->first, 10 * I);
  }
  EXPECT_EQ(M.first()->first, 0u);
  EXPECT_EQ(M.last()->first, 9990u);
}

TYPED_TEST(MapBasicTest, RangeExtraction) {
  std::vector<std::pair<uint64_t, uint64_t>> Entries;
  for (uint64_t I = 0; I < 1000; ++I)
    Entries.push_back({I, I});
  TypeParam M(Entries);
  TypeParam R = M.range(100, 199);
  EXPECT_EQ(R.size(), 100u);
  EXPECT_EQ(R.check_invariants(), "");
  EXPECT_TRUE(R.contains(100));
  EXPECT_TRUE(R.contains(199));
  EXPECT_FALSE(R.contains(99));
  EXPECT_FALSE(R.contains(200));
  // Empty and total ranges.
  EXPECT_EQ(M.range(2000, 3000).size(), 0u);
  EXPECT_EQ(M.range(0, 999).size(), 1000u);
}

TYPED_TEST(MapBasicTest, FilterAndMapValues) {
  std::vector<std::pair<uint64_t, uint64_t>> Entries;
  for (uint64_t I = 0; I < 1000; ++I)
    Entries.push_back({I, I});
  TypeParam M(Entries);
  TypeParam Even = M.filter([](const auto &E) { return E.first % 2 == 0; });
  EXPECT_EQ(Even.size(), 500u);
  EXPECT_EQ(Even.check_invariants(), "");
  TypeParam Doubled = M.map_values([](const auto &E) { return 2 * E.second; });
  EXPECT_EQ(Doubled.size(), 1000u);
  EXPECT_EQ(*Doubled.find(7), 14u);
  EXPECT_EQ(*M.find(7), 7u) << "map_values must not mutate the source";
}

TYPED_TEST(MapBasicTest, MapReduceAndForeach) {
  std::vector<std::pair<uint64_t, uint64_t>> Entries;
  uint64_t Expect = 0;
  for (uint64_t I = 0; I < 5000; ++I) {
    Entries.push_back({I, I});
    Expect += I;
  }
  TypeParam M(Entries);
  uint64_t Sum = M.map_reduce([](const auto &E) { return E.second; },
                              uint64_t(0), std::plus<uint64_t>());
  EXPECT_EQ(Sum, Expect);
  // foreach_seq visits in key order.
  uint64_t Prev = 0;
  bool First = true, Ordered = true;
  M.foreach_seq([&](const auto &E) {
    if (!First && E.first <= Prev)
      Ordered = false;
    Prev = E.first;
    First = false;
  });
  EXPECT_TRUE(Ordered);
  // foreach_index agrees with to_vector.
  auto V = M.to_vector();
  std::vector<uint64_t> ByIndex(M.size());
  M.foreach_index([&](size_t I, const auto &E) { ByIndex[I] = E.first; });
  for (size_t I = 0; I < V.size(); ++I)
    ASSERT_EQ(ByIndex[I], V[I].first);
}

TYPED_TEST(MapBasicTest, LargeBuildParallel) {
  const size_t N = 200000;
  std::vector<std::pair<uint64_t, uint64_t>> Entries(N);
  par::parallel_for(0, N, [&](size_t I) {
    Entries[I] = {hash64(I), I};
  });
  TypeParam M(Entries);
  EXPECT_EQ(M.check_invariants(), "");
  EXPECT_EQ(M.size(), N); // hash64 is a bijection: no duplicate keys.
  EXPECT_TRUE(M.contains(hash64(12345)));
}

class MapMemory : public test::LeakCheckTest {};

TEST_F(MapMemory, SnapshotSharingIsCheap) {
  using M128 = pam_map<uint64_t, uint64_t, 128>;
  std::vector<std::pair<uint64_t, uint64_t>> Entries;
  for (uint64_t I = 0; I < 100000; ++I)
    Entries.push_back({I, I});
  M128 A(Entries);
  int64_t BytesBefore = alloc_stats::live_byte_count();
  M128 B = A;       // O(1) snapshot.
  M128 C = B.insert(7, 9); // Path copy only.
  int64_t BytesAfter = alloc_stats::live_byte_count();
  EXPECT_LT(BytesAfter - BytesBefore,
            (int64_t)(64 * 1024)) // A path, not a copy of 100k entries.
      << "functional update copied far too much";
  EXPECT_EQ(*A.find(7), 7u);
  EXPECT_EQ(*C.find(7), 9u);
}

TEST_F(MapMemory, PacTreeSmallerThanPTree) {
  std::vector<std::pair<uint64_t, uint64_t>> Entries;
  for (uint64_t I = 0; I < 100000; ++I)
    Entries.push_back({I, I});
  pam_map<uint64_t, uint64_t, 0> PTree(Entries);
  pam_map<uint64_t, uint64_t, 128> PaC(Entries);
  pam_map<uint64_t, uint64_t, 128, diff_encoder> PaCDiff(Entries);
  // Paper: ~2.5x smaller unencoded, further ~1.7x with difference encoding
  // (Sec. 10.1). Check the ordering and a conservative factor.
  EXPECT_LT(PaC.size_in_bytes() * 2, PTree.size_in_bytes());
  EXPECT_LT(PaCDiff.size_in_bytes(), PaC.size_in_bytes());
  // PaC with B=128 should be within ~10% of the flat-array lower bound.
  size_t ArrayBytes = 100000 * 16;
  EXPECT_LT(PaC.size_in_bytes(), ArrayBytes * 11 / 10);
}

} // namespace
